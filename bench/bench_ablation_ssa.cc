// Ablation: SSA parameters — forwarding fraction, scheme, and ripple TTL.
//
// The SSA scheme has two free knobs the paper fixes implicitly: the
// fraction of neighbours each forwarder selects, and the TTL of the
// subscription ripple search (evaluated at 2).  This bench sweeps both and
// also contrasts the three announcement schemes (utility SSA, random SSA,
// NSSA) at the default fraction, exposing the trade-off frontier between
// message load, receiving rate, and subscription success.
#include <cstdio>
#include <vector>

#include "metrics/experiment.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

metrics::ScenarioConfig make_config(core::AnnouncementScheme scheme,
                                    double fraction, std::size_t ripple_ttl) {
  metrics::ScenarioConfig config;
  config.peer_count = 1500;
  config.groups = 6;
  config.seed = 77;
  config.scheme = scheme;
  config.forward_fraction = fraction;
  config.ripple_ttl = ripple_ttl;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using core::AnnouncementScheme;

  // All three ablation sweeps share one grid, so --jobs parallelism spans
  // the whole binary; rows print from the results in declaration order.
  const std::vector<double> fractions{0.15, 0.25, 0.35, 0.5, 0.75};
  const std::vector<AnnouncementScheme> schemes{
      AnnouncementScheme::kSsaUtility, AnnouncementScheme::kSsaRandom,
      AnnouncementScheme::kNssa};
  const std::vector<std::size_t> ttls{1, 2, 3};

  std::vector<metrics::ScenarioConfig> points;
  for (const double fraction : fractions) {
    points.push_back(make_config(AnnouncementScheme::kSsaUtility, fraction, 2));
  }
  for (const auto scheme : schemes) {
    points.push_back(make_config(scheme, 0.35, 2));
  }
  for (const std::size_t ttl : ttls) {
    points.push_back(make_config(AnnouncementScheme::kSsaUtility, 0.35, ttl));
  }
  metrics::GridOptions options;
  options.jobs = tracing.jobs();
  options.counters = trace::counters().enabled();
  const auto results = metrics::run_scenario_grid(points, options);
  // Fold per-run counters back so --trace_out exports the accumulated
  // totals (no-op without the flag).
  for (const auto& r : results) trace::counters().merge(r.counters);
  std::size_t idx = 0;

  std::printf("Ablation A: forwarding fraction (GroupCast overlay, "
              "utility SSA, TTL=2)\n");
  std::printf("%9s %10s %10s %12s %10s\n", "fraction", "adv msgs",
              "sub msgs", "recv rate", "success");
  for (const double fraction : fractions) {
    const auto& r = results[idx++];
    std::printf("%9.2f %10.0f %10.0f %11.1f%% %9.1f%%\n", fraction,
                r.advertisement_messages, r.subscription_messages,
                100.0 * r.receiving_rate,
                100.0 * r.subscription_success_rate);
  }

  std::printf("\nAblation B: announcement scheme (fraction 0.35)\n");
  std::printf("%-12s %10s %10s %12s %10s %10s\n", "scheme", "adv msgs",
              "sub msgs", "recv rate", "success", "overload");
  for (const auto scheme : schemes) {
    const auto& r = results[idx++];
    std::printf("%-12s %10.0f %10.0f %11.1f%% %9.1f%% %10.4f\n",
                core::to_string(scheme), r.advertisement_messages,
                r.subscription_messages, 100.0 * r.receiving_rate,
                100.0 * r.subscription_success_rate, r.overload_index);
  }

  std::printf("\nAblation C: ripple-search TTL (utility SSA, fraction "
              "0.35)\n");
  std::printf("%5s %10s %10s %12s\n", "TTL", "sub msgs", "success",
              "lookup ms");
  for (const std::size_t ttl : ttls) {
    const auto& r = results[idx++];
    std::printf("%5zu %10.0f %11.1f%% %10.1f\n", ttl,
                r.subscription_messages,
                100.0 * r.subscription_success_rate, r.lookup_latency_ms);
  }
  std::printf("\nThe paper's operating point (fraction ~0.35, TTL 2) sits "
              "where success is ~100%%\nat a fraction of the NSSA message "
              "load.\n");
  return 0;
}
