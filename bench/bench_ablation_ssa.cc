// Ablation: SSA parameters — forwarding fraction, scheme, and ripple TTL.
//
// The SSA scheme has two free knobs the paper fixes implicitly: the
// fraction of neighbours each forwarder selects, and the TTL of the
// subscription ripple search (evaluated at 2).  This bench sweeps both and
// also contrasts the three announcement schemes (utility SSA, random SSA,
// NSSA) at the default fraction, exposing the trade-off frontier between
// message load, receiving rate, and subscription success.
#include <cstdio>

#include "metrics/experiment.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

metrics::ScenarioResult run(core::AnnouncementScheme scheme, double fraction,
                            std::size_t ripple_ttl) {
  metrics::ScenarioConfig config;
  config.peer_count = 1500;
  config.groups = 6;
  config.seed = 77;
  config.scheme = scheme;
  config.forward_fraction = fraction;
  config.ripple_ttl = ripple_ttl;
  return metrics::run_scenario(config);
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using core::AnnouncementScheme;

  std::printf("Ablation A: forwarding fraction (GroupCast overlay, "
              "utility SSA, TTL=2)\n");
  std::printf("%9s %10s %10s %12s %10s\n", "fraction", "adv msgs",
              "sub msgs", "recv rate", "success");
  for (const double fraction : {0.15, 0.25, 0.35, 0.5, 0.75}) {
    const auto r = run(AnnouncementScheme::kSsaUtility, fraction, 2);
    std::printf("%9.2f %10.0f %10.0f %11.1f%% %9.1f%%\n", fraction,
                r.advertisement_messages, r.subscription_messages,
                100.0 * r.receiving_rate,
                100.0 * r.subscription_success_rate);
  }

  std::printf("\nAblation B: announcement scheme (fraction 0.35)\n");
  std::printf("%-12s %10s %10s %12s %10s %10s\n", "scheme", "adv msgs",
              "sub msgs", "recv rate", "success", "overload");
  for (const auto scheme :
       {AnnouncementScheme::kSsaUtility, AnnouncementScheme::kSsaRandom,
        AnnouncementScheme::kNssa}) {
    const auto r = run(scheme, 0.35, 2);
    std::printf("%-12s %10.0f %10.0f %11.1f%% %9.1f%% %10.4f\n",
                core::to_string(scheme), r.advertisement_messages,
                r.subscription_messages, 100.0 * r.receiving_rate,
                100.0 * r.subscription_success_rate, r.overload_index);
  }

  std::printf("\nAblation C: ripple-search TTL (utility SSA, fraction "
              "0.35)\n");
  std::printf("%5s %10s %10s %12s\n", "TTL", "sub msgs", "success",
              "lookup ms");
  for (const std::size_t ttl : {1u, 2u, 3u}) {
    const auto r = run(AnnouncementScheme::kSsaUtility, 0.35, ttl);
    std::printf("%5zu %10.0f %11.1f%% %10.1f\n", ttl,
                r.subscription_messages,
                100.0 * r.subscription_success_rate, r.lookup_latency_ms);
  }
  std::printf("\nThe paper's operating point (fraction ~0.35, TTL 2) sits "
              "where success is ~100%%\nat a fraction of the NSSA message "
              "load.\n");
  return 0;
}
