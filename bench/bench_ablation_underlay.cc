// Ablation: does the evaluation depend on the GT-ITM transit-stub model?
//
// The paper runs everything on transit-stub underlays.  This bench repeats
// the headline comparison (GroupCast vs random power-law, SSA) on a Waxman
// random-graph underlay of comparable size.  If the conclusions are about
// the *middleware* rather than the terrain, the orderings must survive the
// change of terrain.
#include <cstdio>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "metrics/graph_stats.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

struct Row {
  double neighbor_dist;
  double delay;
  double link_stress;
  double overload;
  double lookup;
};

Row run(core::UnderlayModel underlay, core::OverlayKind overlay,
        std::uint64_t seed) {
  core::MiddlewareConfig config;
  config.peer_count = 1200;
  config.seed = seed;
  config.underlay_model = underlay;
  config.overlay = overlay;
  core::GroupCastMiddleware middleware(config);
  Row row{};
  row.neighbor_dist = metrics::neighbor_distance_summary(
                          middleware.population(), middleware.graph())
                          .mean();
  const int groups = 5;
  for (int g = 0; g < groups; ++g) {
    auto group = middleware.establish_random_group(120);
    const auto session = middleware.session(group);
    const auto m = metrics::evaluate_session(middleware.population(), session,
                                             group.advert.rendezvous);
    row.delay += m.delay_penalty / groups;
    row.link_stress += m.link_stress / groups;
    row.overload += m.overload_index / groups;
    row.lookup += group.report.average_response_time_ms() / groups;
  }
  return row;
}

void print_block(const char* title, core::UnderlayModel underlay) {
  std::printf("-- %s\n", title);
  std::printf("%-12s %10s %8s %10s %10s %10s\n", "overlay", "nbr-dist",
              "delay", "lstress", "overload", "lookup");
  for (const auto kind : {core::OverlayKind::kGroupCast,
                          core::OverlayKind::kRandomPowerLaw}) {
    const auto row = run(underlay, kind, 777);
    std::printf("%-12s %9.1f %8.2f %10.2f %10.4f %8.1fms\n",
                core::to_string(kind), row.neighbor_dist, row.delay,
                row.link_stress, row.overload, row.lookup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  std::printf("Ablation: underlay terrain (1200 peers, 120 subscribers, "
              "SSA)\n\n");
  print_block("GT-ITM transit-stub (paper)",
              core::UnderlayModel::kTransitStub);
  print_block("Waxman random graph", core::UnderlayModel::kWaxman);
  std::printf("\nEvery GroupCast-vs-random ordering must hold on both "
              "terrains; absolute numbers shift\nwith the latency "
              "distribution of the underlay.\n");
  return 0;
}
