// Ablation: what does each half of the utility function buy?
//
// DESIGN.md calls out the adaptive γ-blend of Equations 4–5 as the central
// design choice.  This bench re-runs the full group-communication pipeline
// (overlay construction + SSA + subscription + dissemination) with the
// blend pinned, via the libraries' pinned_resource_level ablation hook:
//
//   distance-only  r pinned to 0.001 (γ ≈ 0: pure proximity selection)
//   fixed blend    r pinned to 0.5   (γ ≈ 0.62 for everyone)
//   capacity-only  r pinned to 0.999 (γ ≈ 1: pure capacity selection)
//   adaptive       r sampled per peer (the paper's Eq. 5)
//
// Expected: distance-only gets the best proximity but the worst overload
// (weak peers become relays and hubs never form); capacity-only controls
// overload but stretches links (everyone chases the same strong peers);
// the adaptive blend holds both ends.
#include <cstdio>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "metrics/graph_stats.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

void run_variant(const char* label, double pinned, std::uint64_t seed) {
  core::MiddlewareConfig config;
  config.peer_count = 1200;
  config.seed = seed;
  config.bootstrap.pinned_resource_level = pinned;
  config.advertisement.pinned_resource_level = pinned;
  core::GroupCastMiddleware middleware(config);

  double delay = 0, overload = 0, stress = 0, lookup = 0;
  const int groups = 6;
  for (int g = 0; g < groups; ++g) {
    auto group = middleware.establish_random_group(120);
    const auto session = middleware.session(group);
    const auto m = metrics::evaluate_session(middleware.population(), session,
                                             group.advert.rendezvous);
    delay += m.delay_penalty / groups;
    overload += m.overload_index / groups;
    stress += m.node_stress / groups;
    lookup += group.report.average_response_time_ms() / groups;
  }
  const auto proximity = metrics::neighbor_distance_summary(
      middleware.population(), middleware.graph());
  const auto degrees = metrics::degree_distribution(middleware.graph());
  std::printf("%-18s %8.2f %12.5f %9.2f %9.1f %10.1f %10.2f\n", label, delay,
              overload, stress, lookup, proximity.mean(),
              degrees.log_log_slope());
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  std::printf("Ablation: utility blend (1200 peers, 120 subscribers, "
              "6 groups per variant)\n");
  std::printf("%-18s %8s %12s %9s %9s %10s %10s\n", "variant", "delay",
              "overload", "nstress", "lookup", "nbr-dist", "deg-slope");
  run_variant("distance-only", 0.001, 4242);
  run_variant("fixed r=0.5", 0.5, 4242);
  run_variant("capacity-only", 0.999, 4242);
  run_variant("adaptive (paper)", -1.0, 4242);
  std::printf("\nThe adaptive parameterization should match distance-only "
              "on proximity/delay\nwhile matching capacity-only on "
              "overload.\n");
  return 0;
}
