// Churn-recovery sweep: how the reliable control plane holds the
// dissemination tree together under message loss and ungraceful failures,
// and how much of the lost group data the reliable data plane wins back.
//
// The grid crosses steady-state loss probability with the fraction of
// group members crashed ungracefully mid-session (plus a graceful-leave
// column), all on the node runtime with heartbeats and the retry ladder
// active (docs/ROBUSTNESS.md) — once with the legacy fire-and-forget data
// path and once with NACK/retransmit reliability on the tree edges.
// Reported per point: post-churn delivery ratio with its seed-to-seed
// stddev, the fraction of surviving subscribers re-attached, mean orphan
// time in convergence epochs, and the recovery overhead counters
// (control_retries / control_giveups / nacks / retransmits).
//
// --jobs=N parallelizes over the grid via metrics::run_scenario_grid;
// results are byte-identical for every job count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "json_report.h"
#include "metrics/experiment.h"
#include "trace/cli.h"
#include "trace/counters.h"

namespace {

using namespace groupcast;

metrics::ScenarioConfig recovery_point(std::size_t peers, double loss,
                                       double crash_fraction,
                                       double graceful_fraction,
                                       bool reliable_data) {
  metrics::ScenarioConfig config;
  config.peer_count = peers;
  config.groups = 1;
  config.seed = 7100;
  config.recovery.enabled = true;
  config.recovery.loss_probability = loss;
  config.recovery.crash_fraction = crash_fraction;
  config.recovery.graceful_fraction = graceful_fraction;
  config.recovery.reliable_data = reliable_data;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const trace::CliTracing tracing(argc, argv);
  const std::size_t shards = tracing.shards();
  const double scale = metrics::bench_scale();
  // Scale ladder (ROADMAP: "GROUPCAST_BENCH_SCALE=4 recovery runs at 8k+
  // peers"): 400 -> 800 -> 8192 peers.
  const std::size_t peers = scale >= 4.0 ? 8192 : scale >= 2.0 ? 800 : 400;

  const std::vector<double> losses = {0.0, 0.1, 0.2};
  struct Churn {
    double crash;
    double graceful;
    const char* label;
  };
  std::vector<Churn> churns = {
      {0.0, 0.0, "no churn"},
      {0.15, 0.15, "15% crash + 15% leave"},
      {0.30, 0.0, "30% crash"},
  };
  if (scale >= 2.0) churns.push_back({0.5, 0.0, "50% crash"});

  struct Cell {
    double loss;
    const Churn* churn;
    bool reliable;
    bool flow = false;
  };
  std::vector<Cell> cells;
  std::vector<metrics::ScenarioConfig> points;
  for (const bool reliable : {false, true}) {
    for (const double loss : losses) {
      for (const auto& churn : churns) {
        cells.push_back(Cell{loss, &churn, reliable});
        points.push_back(recovery_point(peers, loss, churn.crash,
                                        churn.graceful, reliable));
      }
    }
  }
  // Slow-child cells: every fifth subscriber acks at a tenth of the
  // normal cadence, starving its parent's ack clock.  Run once without
  // flow control (the sender buffer backs up to the cap) and once with
  // flow control + adaptive detection (the backlog parks behind the
  // window instead).  Static labels: `cells` keeps raw Churn pointers,
  // so these must not live in the reallocating `churns` vector.
  static const Churn kSlowChild{0.0, 0.0, "slow child (1-in-5)"};
  static const Churn kSlowChildFlow{0.0, 0.0, "slow child + flow control"};
  for (const bool flow : {false, true}) {
    cells.push_back(Cell{0.0, flow ? &kSlowChildFlow : &kSlowChild,
                         /*reliable=*/true, flow});
    auto config = recovery_point(peers, 0.0, 0.0, 0.0, /*reliable_data=*/true);
    config.recovery.slow_peer_stride = 5;
    config.recovery.speaking_payloads = 32;
    config.recovery.flow_control = flow;
    // A window narrower than the speaking round, so the slow children's
    // edges actually block and the throttle path shows up in the cell.
    config.recovery.flow_window = 8;
    config.recovery.adaptive = flow;
    points.push_back(config);
  }

  // Partition-heal cells: a 30-second partition cuts the rendezvous point
  // and a slice of its subtree off from the rest of the network while a
  // 3-member replica quorum hands the lease to the majority side; both
  // sides keep publishing and the heal must merge the divergent epoch
  // logs (docs/ROBUSTNESS.md, "Rendezvous replication & quorum handoff").
  // Static labels, same rule as the slow-child cells above.
  static const Churn kPartition{0.0, 0.0, "30s RP-side partition"};
  static const Churn kPartitionChurn{0.1, 0.0, "30s partition + 10% crash"};
  const std::size_t first_partition_cell = cells.size();
  for (const auto* churn : {&kPartition, &kPartitionChurn}) {
    cells.push_back(Cell{0.0, churn, /*reliable=*/false});
    auto config = recovery_point(peers, 0.0, churn->crash, churn->graceful,
                                 /*reliable_data=*/false);
    config.recovery.replication = true;
    config.recovery.replicas = 3;
    config.recovery.partition_seconds = 30.0;
    points.push_back(config);
  }

  for (auto& point : points) point.shards = shards;

  metrics::GridOptions options;
  options.jobs = tracing.jobs();
  // Seed repetitions: the loss sweep must report seed-to-seed dispersion
  // of the delivery ratio, so even the fast tier runs >= 2 topologies.
  // The 8k tier stays at 1 — that run is a wall-clock-bounded scale probe.
  options.repetitions = scale >= 4.0 ? 1 : scale >= 2.0 ? 3 : 2;
  options.counters = true;
  // Distribution + trajectory views (histogram summaries and the
  // per-epoch timeline in each JSON cell); merged order-independently,
  // so the report stays byte-identical at every --jobs count.
  options.histograms = true;
  // The per-epoch timeline snapshots global counters from an event handler,
  // which has no safe home on a sharded run (docs/PERFORMANCE.md, "Sharded
  // execution"); sharded reports omit the timeline field instead.
  options.timeline = shards == 1;
  const auto start = std::chrono::steady_clock::now();
  const auto results = metrics::run_scenario_grid(points, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!tracing.json_out().empty()) {
    bench::JsonReport report("churn_recovery");
    std::uint64_t events = 0;
    std::uint64_t peak = 0;
    for (const auto& r : results) {
      events += r.events_fired;
      peak = std::max(peak, r.queue_high_water);
    }
    report.root()
        .number("wall_clock_seconds", wall_seconds)
        .integer("events_fired", events)
        .integer("peak_queue_depth", peak)
        .integer("jobs", options.jobs)
        .integer("repetitions", options.repetitions)
        .integer("peers", peers);
    if (shards > 1) {
      // Sharded-kernel runs only: absent fields keep --shards=1 reports
      // byte-identical to pre-shard builds.  Imbalance is max/min of the
      // element-wise per-shard event totals across every grid cell.
      std::vector<std::uint64_t> per_shard(shards, 0);
      for (const auto& r : results) {
        for (std::size_t s = 0;
             s < std::min(per_shard.size(), r.events_per_shard.size()); ++s) {
          per_shard[s] += r.events_per_shard[s];
        }
      }
      const auto [min_it, max_it] =
          std::minmax_element(per_shard.begin(), per_shard.end());
      report.root()
          .integer("shards", shards)
          .number("events_per_second_per_shard",
                  wall_seconds > 0.0
                      ? static_cast<double>(events) / wall_seconds /
                            static_cast<double>(shards)
                      : 0.0)
          .number("shard_imbalance",
                  *min_it > 0 ? static_cast<double>(*max_it) /
                                    static_cast<double>(*min_it)
                              : 0.0);
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      auto& cell = report.add_cell();
      cell.text("churn", cells[i].churn->label);
      bench::fill_scenario_cell(cell, results[i]);
    }
    report.write_file(tracing.json_out());
  }

  std::printf("Churn recovery on the node runtime "
              "(%zu peers, %zu-member group, jobs=%zu, reps=%zu)\n\n",
              peers, points.front().effective_group_size(), options.jobs,
              options.repetitions);
  std::printf("%-4s %-6s %-24s %9s %7s %10s %7s %6s %8s %8s %9s %6s\n",
              "rel", "loss", "churn", "delivery", "+/-", "reattached",
              "orphan", "conv", "retries", "nacks", "retransmit", "viol");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& cell = cells[i];
    const auto& c = r.counters;
    std::printf(
        "%-4s %-6.2f %-24s %8.1f%% %6.1f%% %9.1f%% %7.2f %6.1f %8llu "
        "%8llu %9llu %6.0f\n",
        cell.reliable ? (cell.flow ? "flow" : "on") : "off", cell.loss,
        cell.churn->label,
        100.0 * r.delivery_ratio, 100.0 * r.delivery_ratio_stddev,
        100.0 * r.reattached_fraction, r.mean_orphan_epochs,
        r.epochs_to_converge,
        static_cast<unsigned long long>(
            c.total(trace::CounterId::kControlRetries)),
        static_cast<unsigned long long>(
            c.total(trace::CounterId::kNacksSent)),
        static_cast<unsigned long long>(
            c.total(trace::CounterId::kRetransmits)),
        r.invariant_violations);
  }
  std::printf("\n(+/- = seed-to-seed stddev of the delivery ratio; orphan "
              "= mean epochs survivors spent detached; conv = epochs to "
              "full re-convergence; viol = tree-invariant violations at "
              "the end — expect 0)\n");
  std::printf("\nPartition-heal cells (both sides must keep delivering "
              "through the cut):\n");
  for (std::size_t i = first_partition_cell; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("  %-26s majority %5.1f%%  minority %5.1f%%  handoffs "
                "%.1f  epoch_conflicts %.1f\n",
                cells[i].churn->label,
                100.0 * r.partition_majority_delivery,
                100.0 * r.partition_minority_delivery, r.lease_handoffs,
                r.epoch_conflicts);
  }
  return 0;
}
