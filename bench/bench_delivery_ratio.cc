// Analysis bench: packet delivery under capacity-constrained relays.
//
// Section 3.1's claim — capacity/workload mismatch "may result in high
// packet losses" — quantified: payloads are disseminated through relays
// that can only sustain capacity/stream_units forwarded copies, and the
// delivery ratio is compared across the four {overlay} x {scheme}
// combinations and stream rates.
//
// Expected shape: utility-aware construction (which keeps weak peers out
// of relay positions) holds delivery near 100% even for fat streams,
// while random overlays with non-selective trees shed subscribers as the
// stream rate grows.
#include <cstdio>

#include "core/middleware.h"
#include "sweep_common.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

double run(core::OverlayKind overlay, core::AnnouncementScheme scheme,
           double stream_units, std::uint64_t seed) {
  core::MiddlewareConfig config;
  config.peer_count = 1500;
  config.seed = seed;
  config.overlay = overlay;
  config.advertisement.scheme = scheme;
  core::GroupCastMiddleware middleware(config);
  util::Rng rng(seed ^ 0xD15EA5E);

  double ratio = 0.0;
  const int groups = 6, payloads = 5;
  for (int g = 0; g < groups; ++g) {
    auto group = middleware.establish_random_group(150);
    const auto session = middleware.session(group);
    core::GroupSession::LossyOptions options;
    options.stream_units = stream_units;
    for (int p = 0; p < payloads; ++p) {
      const auto result =
          session.disseminate_lossy(group.advert.rendezvous, options, rng);
      ratio += result.delivery_ratio() / (groups * payloads);
    }
  }
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  std::printf("Delivery ratio under capacity-constrained forwarding "
              "(1500 peers, 150 subscribers)\n");
  std::printf("stream rate: 1x = 64kbps audio, 8x = 512kbps video\n\n");
  std::printf("%-18s %12s %12s %12s\n", "combo", "1x stream", "4x stream",
              "8x stream");
  for (const auto& combo : bench::all_combos()) {
    std::printf("%-18s", combo.label);
    for (const double units : {1.0, 4.0, 8.0}) {
      std::printf(" %11.1f%%",
                  100.0 * run(combo.overlay, combo.scheme, units, 1812));
    }
    std::printf("\n");
  }
  std::printf("\nUtility-aware overlays keep weak peers out of relay roles: "
              "delivery stays ~1.5-3x the\nrandom overlay's at every stream "
              "rate, with near-full delivery for audio-rate streams.\n");
  return 0;
}
