// Figure 12: advertisement receiving rate and subscription success rate
// under SSA, on GroupCast vs. random power-law overlays, over overlay size.
//
// Expected shapes (paper): fewer peers in GroupCast receive the SSA
// advertisement than in the random power-law overlay, yet the subscription
// success rate stays at (or near) 100% for both, even with the ripple
// search TTL fixed at 2.
#include "sweep_common.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  auto plan = bench::default_sweep_plan();
  plan.jobs = tracing.jobs();
  bench::print_sweep_header(
      "Figure 12: receiving rate & subscription success rate (SSA, TTL=2)",
      plan);

  const auto combos = bench::ssa_combos();
  const auto results = bench::run_sweep_grid_reported(
      tracing, "fig12_success", plan, combos);
  std::printf("%8s %-12s %16s %16s\n", "peers", "overlay", "receiving rate",
              "success rate");
  std::size_t idx = 0;
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      const auto& r = results[idx++];
      std::printf("%8zu %-12s %15.1f%% %15.1f%%\n", n, combo.label,
                  100.0 * r.receiving_rate,
                  100.0 * r.subscription_success_rate);
    }
  }
  return 0;
}
