// Figure 13: service lookup latency (subscription response time) under SSA
// on GroupCast vs. random power-law overlays, over overlay size.
//
// Expected shape (paper): the GroupCast overlay cuts lookup latency by
// 74%-84% relative to the random power-law overlay, because subscribers
// reach nearby advertisement holders over short physical links.
#include "sweep_common.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  auto plan = bench::default_sweep_plan();
  plan.jobs = tracing.jobs();
  bench::print_sweep_header("Figure 13: service lookup latency (SSA)", plan);

  const auto combos = bench::ssa_combos();
  const auto results = bench::run_sweep_grid_reported(
      tracing, "fig13_latency", plan, combos);
  std::printf("%8s %-12s %18s\n", "peers", "overlay", "lookup latency");
  std::size_t idx = 0;
  for (const std::size_t n : plan.sizes) {
    double latency[2] = {0, 0};
    int row = 0;
    for (const auto& combo : combos) {
      const auto& r = results[idx++];
      latency[row++] = r.lookup_latency_ms;
      std::printf("%8zu %-12s %15.1f ms\n", n, combo.label,
                  r.lookup_latency_ms);
    }
    std::printf("%8s reduction: %.0f%%\n", "",
                100.0 * (1.0 - latency[0] / latency[1]));
  }
  return 0;
}
