// Figure 14: relative delay penalty of end-system multicast over the four
// {overlay} x {scheme} combinations, over overlay size.
//
// Relative delay penalty = average ESM delay / average IP-multicast delay.
//
// Expected shapes (paper): ~1.5 (close to the theoretical lower bound of 1)
// on GroupCast overlays regardless of scheme; notably higher on random
// power-law overlays, where SSA makes a visible difference.
#include "sweep_common.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  auto plan = bench::default_sweep_plan();
  plan.jobs = tracing.jobs();
  bench::print_sweep_header("Figure 14: relative delay penalty", plan);

  const auto combos = bench::all_combos();
  const auto results = bench::run_sweep_grid_reported(
      tracing, "fig14_delay_penalty", plan, combos);
  std::printf("%8s %-18s %14s\n", "peers", "combo", "delay penalty");
  std::size_t idx = 0;
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      const auto& r = results[idx++];
      std::printf("%8zu %-18s %14.2f\n", n, combo.label, r.delay_penalty);
    }
  }
  return 0;
}
