// Figure 16: node stress (average number of children a non-leaf peer
// handles in the ESM tree) over the four {overlay} x {scheme} combinations
// and overlay sizes.
//
// Expected shape (paper): on GroupCast overlays node stress stays almost
// constant as the system scales, because capacity-aware construction keeps
// fan-out matched to node strength.
#include "sweep_common.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  auto plan = bench::default_sweep_plan();
  plan.jobs = tracing.jobs();
  bench::print_sweep_header("Figure 16: node stress", plan);

  const auto combos = bench::all_combos();
  const auto results = bench::run_sweep_grid_reported(
      tracing, "fig16_node_stress", plan, combos);
  std::printf("%8s %-18s %12s\n", "peers", "combo", "node stress");
  std::size_t idx = 0;
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      const auto& r = results[idx++];
      std::printf("%8zu %-18s %12.2f\n", n, combo.label, r.node_stress);
    }
  }
  return 0;
}
