// Figure 17: overload index (log scale) over the four {overlay} x {scheme}
// combinations and overlay sizes.
//
// Overload index = (fraction of peers overloaded) x (average workload
// exceeding those peers' capacities).
//
// Expected shapes (paper):
//  * SSA reduces overloading on the random power-law overlay by about an
//    order of magnitude;
//  * GroupCast overlays cut it by one to two further orders of magnitude;
//  * the GroupCast+NSSA and random-PL+SSA curves cross at large N —
//    overlay-level optimization beats application-level optimization as
//    the system grows.
#include "sweep_common.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  auto plan = bench::default_sweep_plan();
  plan.jobs = tracing.jobs();
  bench::print_sweep_header("Figure 17: overload index (log scale)", plan);

  const auto combos = bench::all_combos();
  const auto results = bench::run_sweep_grid_reported(
      tracing, "fig17_overload", plan, combos);
  std::printf("%8s %-18s %16s\n", "peers", "combo", "overload index");
  std::size_t idx = 0;
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      const auto& r = results[idx++];
      std::printf("%8zu %-18s %16.6f\n", n, combo.label, r.overload_index);
    }
  }
  return 0;
}
