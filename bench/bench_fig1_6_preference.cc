// Figures 1–6: selection preference of low/medium/high capacity peers
// vs. distance (Figs 1–3) and vs. capacity (Figs 4–6).
//
// Paper setup (Section 3.1): a candidate list of 1000 peers whose
// capacities follow a Zipf distribution with parameter 2.0 and whose
// distances are Unif(0ms, 400ms); the selecting peer has resource level
// r_i in {0.05 (weak), 0.50 (medium), 0.95 (powerful)}.
//
// Expected shapes:
//   r=0.05: preference falls steeply with distance; both capacity classes
//           overlap (distance decides) — Figures 1 and 4.
//   r=0.50: both dimensions matter — Figures 2 and 5.
//   r=0.95: the top-20%-capacity candidates dominate at every distance;
//           preference rises with capacity — Figures 3 and 6.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/utility.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"

#include "trace/cli.h"

namespace {

using groupcast::core::Candidate;
using groupcast::util::Rng;

struct Sample {
  std::vector<Candidate> candidates;
  double capacity_top20_threshold = 0.0;
};

Sample make_candidates(Rng& rng) {
  // Capacity = Zipf(2.0) rank over {1..1000}: small capacities common,
  // large ones rare, spanning the paper's 10^0..10^3 x-axis.
  groupcast::util::ZipfDistribution zipf(1000, 2.0);
  Sample sample;
  sample.candidates.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    sample.candidates.push_back(Candidate{
        static_cast<double>(zipf.sample(rng)), rng.uniform(0.0, 400.0)});
  }
  std::vector<double> caps;
  for (const auto& c : sample.candidates) caps.push_back(c.capacity);
  std::sort(caps.begin(), caps.end());
  sample.capacity_top20_threshold = caps[caps.size() * 8 / 10];
  return sample;
}

void report_for_resource_level(double r, const Sample& sample) {
  const auto prefs =
      groupcast::core::selection_preferences(r, sample.candidates);
  const auto params =
      groupcast::core::UtilityParams::from_resource_level(r);
  std::printf("\n-- r_i = %.2f  (alpha=%.3f beta=%.3f gamma=%.3f)\n", r,
              params.alpha, params.beta, params.gamma);

  // Figures 1-3 view: mean preference per 50ms distance bin, split into
  // the top-20%-capacity class and the rest.
  std::printf("   distance bin |  pref(top-20%% cap) | pref(bottom-80%%)\n");
  for (int bin = 0; bin < 8; ++bin) {
    const double lo = bin * 50.0, hi = lo + 50.0;
    double top = 0.0, bottom = 0.0;
    int n_top = 0, n_bottom = 0;
    for (std::size_t i = 0; i < sample.candidates.size(); ++i) {
      const auto& c = sample.candidates[i];
      if (c.distance_ms < lo || c.distance_ms >= hi) continue;
      if (c.capacity >= sample.capacity_top20_threshold) {
        top += prefs[i];
        ++n_top;
      } else {
        bottom += prefs[i];
        ++n_bottom;
      }
    }
    std::printf("   %3.0f-%3.0f ms   |  %12.3e (n=%3d) | %12.3e (n=%3d)\n",
                lo, hi, n_top ? top / n_top : 0.0, n_top,
                n_bottom ? bottom / n_bottom : 0.0, n_bottom);
  }

  // Figures 4-6 view: mean preference per capacity decade.
  std::printf("   capacity bin |  mean preference\n");
  for (double lo = 1.0; lo < 1000.0; lo *= 10.0) {
    const double hi = lo * 10.0;
    double total = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < sample.candidates.size(); ++i) {
      const auto& c = sample.candidates[i];
      if (c.capacity < lo || c.capacity >= hi) continue;
      total += prefs[i];
      ++n;
    }
    std::printf("   [%4.0f,%5.0f) |  %12.3e (n=%3d)\n", lo, hi,
                n ? total / n : 0.0, n);
  }

  // The headline correlations: weak peers anti-correlate preference with
  // distance, powerful peers correlate it with capacity.
  std::vector<double> p(prefs.begin(), prefs.end()), d, c;
  for (const auto& cand : sample.candidates) {
    d.push_back(cand.distance_ms);
    c.push_back(cand.capacity);
  }
  std::printf("   corr(pref, distance) = %+.3f   corr(pref, capacity) = %+.3f\n",
              groupcast::util::pearson(p, d), groupcast::util::pearson(p, c));
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  Rng rng(31415);
  const Sample sample = make_candidates(rng);
  std::printf("Figures 1-6: selection preference vs distance / capacity\n");
  std::printf("candidate list: 1000 peers, capacity ~ Zipf(2.0), "
              "distance ~ Unif(0, 400ms)\n");
  for (const double r : {0.05, 0.50, 0.95}) {
    report_for_resource_level(r, sample);
  }
  return 0;
}
