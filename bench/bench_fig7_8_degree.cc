// Figures 7 and 8: log-log degree distributions of a 5000-peer GroupCast
// overlay (utility-aware bootstrap, Fig 7) and a 5000-peer random
// power-law overlay generated with PLOD, alpha = 1.8 (Fig 8).
//
// Expected shapes: both distributions are straight lines in log-log space
// (power laws); the GroupCast tail is shorter ("does not have a long
// tail") and its clustering coefficient is lower than PLOD's.
#include <cstdio>

#include "core/middleware.h"
#include "metrics/experiment.h"
#include "metrics/graph_stats.h"

#include "trace/cli.h"

namespace {

void report(const char* title, groupcast::core::OverlayKind kind,
            std::size_t peers, std::uint64_t seed) {
  using namespace groupcast;
  core::MiddlewareConfig config;
  config.peer_count = peers;
  config.seed = seed;
  config.overlay = kind;
  core::GroupCastMiddleware middleware(config);

  const auto dist = metrics::degree_distribution(middleware.graph());
  std::printf("\n%s (%zu peers, seed=%llu)\n", title, peers,
              static_cast<unsigned long long>(seed));
  std::printf("  degree -> peer count (log-log slope %.2f)\n",
              dist.log_log_slope());
  for (const auto& [degree, count] : dist.items()) {
    std::printf("  %6zu %8zu\n", degree, count);
  }
  std::printf("  clustering coefficient: %.4f\n",
              middleware.graph().clustering_coefficient());
  std::printf("  avg overlay hop distance (sampled): %.2f\n",
              middleware.mutable_graph().average_hop_distance(
                  middleware.rng(), 300));
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  const std::size_t peers =
      groupcast::metrics::bench_scale() >= 2.0 ? 5000 : 2500;
  report("Figure 7: GroupCast overlay degree distribution",
         groupcast::core::OverlayKind::kGroupCast, peers, 77);
  report("Figure 8: random power-law (PLOD, alpha=1.8) degree distribution",
         groupcast::core::OverlayKind::kRandomPowerLaw, peers, 77);
  return 0;
}
