// Figures 9 and 10: average true latency from each peer to its overlay
// neighbours, for a 1000-peer GroupCast overlay (Fig 9) vs. a 1000-peer
// random power-law overlay (Fig 10).
//
// Expected shape: GroupCast neighbours are far closer on the physical
// network (the utility function's distance preference), with a residual
// set of long links owned by the powerful "core" peers; the random
// overlay's per-peer averages sit near the population-wide mean distance.
#include <cstdio>

#include "core/middleware.h"
#include "metrics/graph_stats.h"

#include "trace/cli.h"

namespace {

void report(const char* title, groupcast::core::OverlayKind kind,
            std::uint64_t seed) {
  using namespace groupcast;
  core::MiddlewareConfig config;
  config.peer_count = 1000;
  config.seed = seed;
  config.overlay = kind;
  core::GroupCastMiddleware middleware(config);

  const auto summary = metrics::neighbor_distance_summary(
      middleware.population(), middleware.graph());
  std::printf("\n%s\n", title);
  std::printf("  per-peer avg distance to neighbours (ms):\n");
  std::printf("  mean=%.1f  median=%.1f  p10=%.1f  p90=%.1f  max=%.1f\n",
              summary.mean(), summary.median(), summary.percentile(0.10),
              summary.percentile(0.90), summary.max());

  // Histogram over 50ms bins — the visual content of the scatter plots.
  std::vector<std::size_t> bins(16, 0);
  for (const double d : summary.values()) {
    const auto bin =
        std::min<std::size_t>(bins.size() - 1,
                              static_cast<std::size_t>(d / 50.0));
    ++bins[bin];
  }
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (bins[b] == 0) continue;
    std::printf("  %4zu-%4zu ms: %4zu peers\n", b * 50, b * 50 + 50, bins[b]);
  }

  // Long links concentrated at powerful peers?  Mean distance of the
  // top-5%-capacity peers vs the rest.
  const auto per_peer = metrics::per_peer_neighbor_distance(
      middleware.population(), middleware.graph());
  double strong = 0, weak = 0;
  std::size_t n_strong = 0, n_weak = 0;
  for (overlay::PeerId p = 0; p < middleware.population().size(); ++p) {
    if (per_peer[p] < 0) continue;
    if (middleware.population().info(p).capacity >= 1000.0) {
      strong += per_peer[p];
      ++n_strong;
    } else {
      weak += per_peer[p];
      ++n_weak;
    }
  }
  std::printf("  mean over >=1000x peers: %.1f ms (n=%zu); others: %.1f ms\n",
              n_strong ? strong / n_strong : 0.0, n_strong,
              n_weak ? weak / n_weak : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  std::printf("Figures 9-10: average distance to overlay neighbours "
              "(1000 peers)\n");
  report("Figure 9: GroupCast overlay",
         groupcast::core::OverlayKind::kGroupCast, 909);
  report("Figure 10: random power-law overlay",
         groupcast::core::OverlayKind::kRandomPowerLaw, 909);
  return 0;
}
