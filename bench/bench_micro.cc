// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// utility evaluation, weighted sampling, the event queue, Dijkstra routing
// construction, the bootstrap join, and SSA announcement.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baselines/chord.h"
#include "core/advertisement.h"
#include "core/middleware.h"
#include "core/utility.h"
#include "core/wire.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "trace/cli.h"
#include "util/rng.h"

namespace {

using namespace groupcast;

void BM_UtilityEvaluation(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<core::Candidate> list;
  for (int i = 0; i < state.range(0); ++i) {
    list.push_back(core::Candidate{rng.uniform(1.0, 1000.0),
                                   rng.uniform(1.0, 400.0)});
  }
  for (auto _ : state) {
    auto prefs = core::selection_preferences(0.5, list);
    benchmark::DoNotOptimize(prefs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UtilityEvaluation)->Arg(8)->Arg(64)->Arg(1024);

void BM_WeightedSample(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<double> weights;
  for (int i = 0; i < state.range(0); ++i) weights.push_back(rng.uniform());
  for (auto _ : state) {
    auto picks = core::weighted_sample_without_replacement(weights, 8, rng);
    benchmark::DoNotOptimize(picks);
  }
}
BENCHMARK(BM_WeightedSample)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < state.range(0); ++i) {
      simulator.schedule(sim::SimTime::millis(rng.uniform(0.0, 1000.0)),
                         [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void BM_RoutingConstruction(benchmark::State& state) {
  util::Rng rng(4);
  net::TransitStubConfig config;
  config.stub_domains_per_transit_router =
      static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::generate_transit_stub(config, rng);
  for (auto _ : state) {
    net::IpRouting routing(topo);
    benchmark::DoNotOptimize(routing.distance_ms(0, 1));
  }
  state.counters["routers"] = static_cast<double>(topo.router_count());
}
BENCHMARK(BM_RoutingConstruction)->Arg(2)->Arg(4);

void BM_BootstrapJoinOverlay(benchmark::State& state) {
  // Cost of building a whole GroupCast overlay of N peers.
  for (auto _ : state) {
    core::MiddlewareConfig config;
    config.peer_count = static_cast<std::size_t>(state.range(0));
    config.seed = 5;
    core::GroupCastMiddleware middleware(config);
    benchmark::DoNotOptimize(middleware.graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BootstrapJoinOverlay)->Unit(benchmark::kMillisecond)->Arg(500);

void BM_SsaAnnouncement(benchmark::State& state) {
  core::MiddlewareConfig config;
  config.peer_count = static_cast<std::size_t>(state.range(0));
  config.seed = 6;
  core::GroupCastMiddleware middleware(config);
  core::AdvertisementEngine engine(middleware.simulator(),
                                   middleware.population(),
                                   middleware.graph(),
                                   config.advertisement, middleware.rng());
  for (auto _ : state) {
    auto adv = engine.announce(0);
    benchmark::DoNotOptimize(adv.messages);
  }
}
BENCHMARK(BM_SsaAnnouncement)->Unit(benchmark::kMillisecond)->Arg(1000);

void BM_WireRoundTrip(benchmark::State& state) {
  const core::MessageBody body = core::DataMsg{7, 42, 0xABCDEF};
  for (auto _ : state) {
    const auto bytes = core::encode_message(body);
    auto decoded = core::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_ChordRoute(benchmark::State& state) {
  core::MiddlewareConfig config;
  config.peer_count = static_cast<std::size_t>(state.range(0));
  config.seed = 7;
  core::GroupCastMiddleware middleware(config);
  baselines::ChordRing ring(middleware.population());
  util::Rng rng(8);
  for (auto _ : state) {
    const auto from = static_cast<overlay::PeerId>(
        rng.uniform_index(config.peer_count));
    auto path = ring.route(from, rng());
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_ChordRoute)->Arg(1000);

}  // namespace

// Custom main: google-benchmark rejects flags it does not know, so
// --trace_out=<path> is peeled off argv before Initialize sees it.
int main(int argc, char** argv) {
  std::string trace_path;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kPrefix = "--trace_out=";
    if (arg.rfind(kPrefix, 0) == 0) {
      trace_path = arg.substr(std::string(kPrefix).size());
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  const groupcast::trace::CliTracing tracing(trace_path);

  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
