// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// utility evaluation, weighted sampling, the event queue, Dijkstra routing
// construction, the bootstrap join, and SSA announcement.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "json_report.h"

#include "baselines/chord.h"
#include "core/advertisement.h"
#include "core/middleware.h"
#include "core/node.h"
#include "core/transport.h"
#include "core/utility.h"
#include "core/wire.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/shard_set.h"
#include "sim/simulator.h"
#include "trace/cli.h"
#include "trace/counters.h"
#include "util/rng.h"

namespace {

using namespace groupcast;

void BM_UtilityEvaluation(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<core::Candidate> list;
  for (int i = 0; i < state.range(0); ++i) {
    list.push_back(core::Candidate{rng.uniform(1.0, 1000.0),
                                   rng.uniform(1.0, 400.0)});
  }
  for (auto _ : state) {
    auto prefs = core::selection_preferences(0.5, list);
    benchmark::DoNotOptimize(prefs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UtilityEvaluation)->Arg(8)->Arg(64)->Arg(1024);

void BM_WeightedSample(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<double> weights;
  for (int i = 0; i < state.range(0); ++i) weights.push_back(rng.uniform());
  for (auto _ : state) {
    auto picks = core::weighted_sample_without_replacement(weights, 8, rng);
    benchmark::DoNotOptimize(picks);
  }
}
BENCHMARK(BM_WeightedSample)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < state.range(0); ++i) {
      simulator.schedule(sim::SimTime::millis(rng.uniform(0.0, 1000.0)),
                         [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void BM_RoutingConstruction(benchmark::State& state) {
  util::Rng rng(4);
  net::TransitStubConfig config;
  config.stub_domains_per_transit_router =
      static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::generate_transit_stub(config, rng);
  for (auto _ : state) {
    net::IpRouting routing(topo);
    benchmark::DoNotOptimize(routing.distance_ms(0, 1));
  }
  state.counters["routers"] = static_cast<double>(topo.router_count());
}
BENCHMARK(BM_RoutingConstruction)->Arg(2)->Arg(4);

void BM_BootstrapJoinOverlay(benchmark::State& state) {
  // Cost of building a whole GroupCast overlay of N peers.
  for (auto _ : state) {
    core::MiddlewareConfig config;
    config.peer_count = static_cast<std::size_t>(state.range(0));
    config.seed = 5;
    core::GroupCastMiddleware middleware(config);
    benchmark::DoNotOptimize(middleware.graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BootstrapJoinOverlay)->Unit(benchmark::kMillisecond)->Arg(500);

void BM_SsaAnnouncement(benchmark::State& state) {
  core::MiddlewareConfig config;
  config.peer_count = static_cast<std::size_t>(state.range(0));
  config.seed = 6;
  core::GroupCastMiddleware middleware(config);
  core::AdvertisementEngine engine(middleware.simulator(),
                                   middleware.population(),
                                   middleware.graph(),
                                   config.advertisement, middleware.rng());
  for (auto _ : state) {
    auto adv = engine.announce(0);
    benchmark::DoNotOptimize(adv.messages);
  }
}
BENCHMARK(BM_SsaAnnouncement)->Unit(benchmark::kMillisecond)->Arg(1000);

void BM_WireRoundTrip(benchmark::State& state) {
  const core::MessageBody body = core::DataMsg{7, 42, 0xABCDEF};
  for (auto _ : state) {
    const auto bytes = core::encode_message(body);
    auto decoded = core::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_ChordRoute(benchmark::State& state) {
  core::MiddlewareConfig config;
  config.peer_count = static_cast<std::size_t>(state.range(0));
  config.seed = 7;
  core::GroupCastMiddleware middleware(config);
  baselines::ChordRing ring(middleware.population());
  util::Rng rng(8);
  for (auto _ : state) {
    const auto from = static_cast<overlay::PeerId>(
        rng.uniform_index(config.peer_count));
    auto path = ring.route(from, rng());
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_ChordRoute)->Arg(1000);

// Fixed event-loop throughput probe behind --json_out: schedules `count`
// events with randomized timestamps (a mix of the closure and the
// fixed-signature timer paths, ~1/16 cancelled) and drains them, wall-clock
// timed.  Deterministic workload, so runs of the same binary measure the
// same thing and scripts/check.sh can compare events/sec across builds.
struct ProbeStats {
  std::size_t fired = 0;
  std::size_t peak_queue_depth = 0;
  double seconds = 0.0;
  double events_per_second = 0.0;
};

ProbeStats probe_event_loop(std::size_t count) {
  util::Rng rng(99);
  sim::Simulator simulator;
  std::uint64_t consumed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const auto when = sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform_index(1000000)));
    if ((i & 1) == 0) {
      const auto handle = simulator.schedule_timer_at(
          when,
          [](void* context, std::uint64_t arg) {
            *static_cast<std::uint64_t*>(context) += arg;
          },
          &consumed, i);
      if ((i & 15) == 0) simulator.cancel(handle);
    } else {
      simulator.schedule_at(when, [] {});
    }
  }
  ProbeStats stats;
  stats.fired = simulator.run();
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.peak_queue_depth = simulator.queue_high_water();
  stats.events_per_second =
      stats.seconds > 0.0 ? static_cast<double>(stats.fired) / stats.seconds
                          : 0.0;
  benchmark::DoNotOptimize(consumed);
  return stats;
}

// Sharded flavour of the probe, active behind --shards=N (N >= 2): the
// same deterministic workload split round-robin across the shard wheels
// of a ShardSet with no cross-shard traffic, so the number isolates the
// kernel's barrier + per-wheel drain cost from Transport merge costs.
struct ShardedProbeStats {
  std::size_t fired = 0;
  double seconds = 0.0;
  double events_per_second = 0.0;
  double events_per_second_per_shard = 0.0;
  double imbalance = 0.0;  // max/min events per shard (1.0 = even)
};

/// No cross-shard traffic: the probe measures the bare kernel.
class NullShardClient : public groupcast::sim::ShardSet::Client {
 public:
  void merge_inbound(std::size_t) override {}
  std::int64_t next_arrival_us(std::size_t) override { return -1; }
  std::size_t deliver_arrivals_at(std::size_t, std::int64_t) override {
    return 0;
  }
};

ShardedProbeStats probe_sharded_event_loop(std::size_t shards,
                                           std::size_t count) {
  util::Rng rng(99);
  sim::ShardSet set(shards, /*lookahead_us=*/1000);
  NullShardClient client;
  set.set_client(&client);
  std::atomic<std::uint64_t> consumed{0};  // timers fire on worker threads
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const auto when = sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform_index(1000000)));
    auto& wheel = set.shard(i % shards);
    if ((i & 1) == 0) {
      const auto handle = wheel.schedule_timer_at(
          when,
          [](void* context, std::uint64_t arg) {
            static_cast<std::atomic<std::uint64_t>*>(context)->fetch_add(
                arg, std::memory_order_relaxed);
          },
          &consumed, i);
      if ((i & 15) == 0) wheel.cancel(handle);
    } else {
      wheel.schedule_at(when, [] {});
    }
  }
  set.run_until(sim::SimTime::seconds(2));
  ShardedProbeStats stats;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.fired = set.events_fired();
  stats.events_per_second =
      stats.seconds > 0.0 ? static_cast<double>(stats.fired) / stats.seconds
                          : 0.0;
  stats.events_per_second_per_shard =
      stats.events_per_second / static_cast<double>(shards);
  const auto per_shard = set.events_per_shard();
  const auto [min_it, max_it] =
      std::minmax_element(per_shard.begin(), per_shard.end());
  stats.imbalance = *min_it > 0 ? static_cast<double>(*max_it) /
                                      static_cast<double>(*min_it)
                                : 0.0;
  benchmark::DoNotOptimize(consumed);
  return stats;
}

// Memory-footprint gauge (kBytesPerPeer): builds a small deterministic
// node-runtime deployment (overlay + transport + one established group
// with active subscribers), lets it settle, then sums the self-reported
// retained state — per-node runtime structures, transport slots, timer
// wheel, overlay adjacency — and divides by the peer count.  Everything
// is measured through explicit memory_bytes() accessors (capacity-based,
// deterministic for a fixed seed), not allocator hooks, so the number is
// stable across runs and platforms of the same pointer width.
struct FootprintStats {
  std::size_t peers = 0;
  std::size_t node_bytes = 0;       // sum of GroupCastNode::memory_bytes()
  std::size_t transport_bytes = 0;  // handler/generation/in-flight slots
  std::size_t timer_bytes = 0;      // simulator wheel + overflow capacity
  std::size_t graph_bytes = 0;      // overlay adjacency arena + spans
  std::size_t bytes_per_peer = 0;   // total / peers
};

FootprintStats probe_memory_footprint() {
  FootprintStats stats;
  core::MiddlewareConfig config;
  config.peer_count = 500;
  config.seed = 11;
  core::GroupCastMiddleware middleware(config);
  auto& simulator = middleware.simulator();
  util::Rng rng = middleware.rng().split();

  core::Transport transport(simulator, middleware.population(),
                            core::TransportOptions{}, rng);
  core::NodeOptions node_options;
  node_options.advertisement = config.advertisement;
  node_options.reliability.enabled = true;
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  nodes.reserve(config.peer_count);
  for (overlay::PeerId p = 0; p < config.peer_count; ++p) {
    nodes.push_back(std::make_unique<core::GroupCastNode>(
        p, transport, middleware.graph(), node_options, rng));
    nodes.back()->start();
  }

  // One group, every 10th peer subscribed, a short speaking round: enough
  // traffic to populate the dedup sets, send buffers and timer wheel the
  // way a steady-state run does.
  constexpr core::GroupId kGroup = 1;
  const overlay::PeerId rendezvous = middleware.pick_rendezvous();
  nodes[rendezvous]->create_group(kGroup);
  simulator.run_until(simulator.now() + sim::SimTime::seconds(4));
  for (overlay::PeerId p = 0; p < config.peer_count; p += 10) {
    if (p != rendezvous) nodes[p]->subscribe(kGroup);
  }
  simulator.run_until(simulator.now() + sim::SimTime::seconds(8));
  for (std::uint64_t payload = 1; payload <= 8; ++payload) {
    nodes[rendezvous]->publish(kGroup, payload);
  }
  simulator.run_until(simulator.now() + sim::SimTime::seconds(4));

  stats.peers = config.peer_count;
  for (const auto& node : nodes) stats.node_bytes += node->memory_bytes();
  stats.transport_bytes = transport.memory_bytes();
  stats.timer_bytes = simulator.memory_bytes();
  stats.graph_bytes = middleware.graph().memory_bytes();
  const std::size_t total = stats.node_bytes + stats.transport_bytes +
                            stats.timer_bytes + stats.graph_bytes;
  stats.bytes_per_peer = total / stats.peers;
  // Export through the counter plane too, so --trace_out captures carry
  // the gauge (no-op when tracing is off).
  trace::counters().incr(trace::kNoNode, trace::CounterId::kBytesPerPeer,
                         stats.bytes_per_peer);
  return stats;
}

void write_micro_json(const std::string& path, std::size_t shards) {
  bench::JsonReport report("micro");
  const auto start = std::chrono::steady_clock::now();
  probe_event_loop(100000);  // warm-up: slab growth, first-touch faults
  std::uint64_t events = 0;
  double best_rate = 0.0;
  for (const std::size_t count : {100000ul, 1000000ul, 2000000ul}) {
    // Two passes per size, keep the faster one: scheduler noise only ever
    // slows a pass down, so best-of is the right throughput estimator.
    auto stats = probe_event_loop(count);
    const auto again = probe_event_loop(count);
    if (again.events_per_second > stats.events_per_second) stats = again;
    events += stats.fired;
    best_rate = std::max(best_rate, stats.events_per_second);
    report.add_cell()
        .integer("scheduled", count)
        .integer("events_fired", stats.fired)
        .integer("peak_queue_depth", stats.peak_queue_depth)
        .number("wall_clock_seconds", stats.seconds)
        .number("events_per_second", stats.events_per_second);
  }
  ShardedProbeStats sharded;
  if (shards > 1) {
    // Sharded-kernel runs only: absent cells/fields keep --shards=1
    // reports byte-identical to pre-shard builds.
    auto stats = probe_sharded_event_loop(shards, 2000000);
    const auto again = probe_sharded_event_loop(shards, 2000000);
    if (again.events_per_second > stats.events_per_second) stats = again;
    sharded = stats;
    report.add_cell()
        .text("probe", "sharded_event_loop")
        .integer("shards", shards)
        .integer("scheduled", 2000000)
        .integer("events_fired", sharded.fired)
        .number("wall_clock_seconds", sharded.seconds)
        .number("events_per_second", sharded.events_per_second)
        .number("events_per_second_per_shard",
                sharded.events_per_second_per_shard)
        .number("shard_imbalance", sharded.imbalance);
  }
  const auto footprint = probe_memory_footprint();
  report.add_cell()
      .text("probe", "memory_footprint")
      .integer("peers", footprint.peers)
      .integer("node_bytes", footprint.node_bytes)
      .integer("transport_bytes", footprint.transport_bytes)
      .integer("timer_bytes", footprint.timer_bytes)
      .integer("graph_bytes", footprint.graph_bytes)
      .integer("bytes_per_peer", footprint.bytes_per_peer);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The smoke gate in scripts/check.sh reads the root events_per_second;
  // best-of-sizes keeps it stable against one slow size on a noisy box.
  report.root()
      .number("wall_clock_seconds", wall_seconds)
      .integer("events_fired", events)
      .number("events_per_second", best_rate)
      .integer("bytes_per_peer", footprint.bytes_per_peer);
  if (shards > 1) {
    report.root()
        .integer("shards", shards)
        .number("events_per_second_per_shard",
                sharded.events_per_second_per_shard)
        .number("shard_imbalance", sharded.imbalance);
  }
  report.write_file(path);
}

}  // namespace

// Custom main: google-benchmark rejects flags it does not know, so
// --trace_out=<path>, --json_out=<path> and --shards=<n> are peeled off
// argv before Initialize sees them.
int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  std::size_t shards = 1;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kTracePrefix = "--trace_out=";
    constexpr const char* kJsonPrefix = "--json_out=";
    constexpr const char* kShardsPrefix = "--shards=";
    if (arg.rfind(kTracePrefix, 0) == 0) {
      trace_path = arg.substr(std::string(kTracePrefix).size());
      continue;
    }
    if (arg.rfind(kJsonPrefix, 0) == 0) {
      json_path = arg.substr(std::string(kJsonPrefix).size());
      continue;
    }
    if (arg.rfind(kShardsPrefix, 0) == 0) {
      shards = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string(kShardsPrefix).size(), nullptr, 10));
      if (shards == 0) {
        std::fprintf(stderr, "%s: --shards must be >= 1\n", argv[0]);
        return 2;
      }
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  // Same thread-confinement rule as the other binaries: a sharded run has
  // no single totally-ordered event stream for the JSONL sink to record.
  if (!trace_path.empty() && shards != 1) {
    std::fprintf(stderr,
                 "%s: --trace_out requires --shards=1 (a sharded run has no "
                 "single totally-ordered event stream to trace).\n",
                 argv[0]);
    return 2;
  }
  const groupcast::trace::CliTracing tracing(trace_path);

  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_micro_json(json_path, shards);
  return 0;
}
