// Runtime bench: the deployable per-node middleware (Transport +
// GroupCastNode) measured in real protocol messages *and wire bytes*.
//
// Unlike the engine-level benches (which count logical messages), this one
// stands up one GroupCastNode per peer and drives the full message-passing
// protocol: group creation, subscriptions, a speaking round, and leaves.
// Byte counts use the canonical wire encoding (core/wire.h).
#include <cstdio>
#include <memory>

#include "core/node.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "util/rng.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

struct Phase {
  const char* name;
  std::size_t messages;
  std::size_t bytes;
};

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  const std::size_t peers = 800;
  const std::size_t subscriber_count = 80;

  // Deployment: underlay + population + overlay + one node per peer.
  util::Rng rng(2026);
  const auto ts = net::scale_config_for_peers(peers);
  const auto underlay = net::generate_transit_stub(ts, rng);
  const net::IpRouting routing(underlay);
  overlay::PopulationConfig pop_config;
  pop_config.peer_count = peers;
  const overlay::PeerPopulation population(routing, pop_config, rng);
  overlay::OverlayGraph graph(peers);
  overlay::HostCacheServer cache(population, overlay::HostCacheOptions{},
                                 rng);
  overlay::GroupCastBootstrap bootstrap(population, graph, cache,
                                        overlay::BootstrapOptions{}, rng);
  for (overlay::PeerId p = 0; p < peers; ++p) bootstrap.join(p);

  sim::Simulator simulator;
  core::Transport transport(simulator, population, core::TransportOptions{},
                            rng);
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  for (overlay::PeerId p = 0; p < peers; ++p) {
    nodes.push_back(std::make_unique<core::GroupCastNode>(
        p, transport, graph, core::NodeOptions{}, rng));
    nodes.back()->start();
  }

  std::vector<Phase> phases;
  auto checkpoint = [&](const char* name, std::size_t& last_m,
                        std::size_t& last_b) {
    phases.push_back(Phase{name, transport.messages_sent() - last_m,
                           transport.bytes_sent() - last_b});
    last_m = transport.messages_sent();
    last_b = transport.bytes_sent();
  };
  std::size_t last_m = 0, last_b = 0;

  // Phase 1: group creation + advertisement.
  const overlay::PeerId rendezvous = 0;
  nodes[rendezvous]->create_group(1);
  simulator.run();
  checkpoint("advertisement", last_m, last_b);

  // Phase 2: subscriptions.
  std::vector<overlay::PeerId> subscribers;
  for (const auto idx : rng.sample_indices(peers, subscriber_count)) {
    const auto p = static_cast<overlay::PeerId>(idx);
    if (p == rendezvous) continue;
    subscribers.push_back(p);
    nodes[p]->subscribe(1);
  }
  simulator.run();
  std::size_t joined = 0;
  for (const auto s : subscribers) {
    if (nodes[s]->is_subscribed(1)) ++joined;
  }
  checkpoint("subscription", last_m, last_b);

  // Phase 3: a speaking round — every subscriber publishes one payload.
  std::size_t deliveries = 0;
  for (const auto s : subscribers) {
    nodes[s]->on_data(
        [&deliveries](core::GroupId, std::uint64_t, overlay::PeerId) {
          ++deliveries;
        });
  }
  std::uint64_t payload = 0;
  for (const auto s : subscribers) {
    if (nodes[s]->is_subscribed(1)) nodes[s]->publish(1, ++payload);
  }
  simulator.run();
  checkpoint("speaking round", last_m, last_b);

  // Phase 4: everyone leaves.
  for (const auto s : subscribers) {
    if (nodes[s]->is_subscribed(1)) nodes[s]->unsubscribe(1);
  }
  simulator.run();
  checkpoint("teardown", last_m, last_b);

  std::printf("Node-runtime cost of one group lifecycle "
              "(%zu peers, %zu subscribers, wire-encoded)\n\n",
              peers, subscribers.size());
  std::printf("%-16s %12s %12s %14s\n", "phase", "messages", "bytes",
              "bytes/peer");
  for (const auto& phase : phases) {
    std::printf("%-16s %12zu %12zu %14.1f\n", phase.name, phase.messages,
                phase.bytes,
                static_cast<double>(phase.bytes) / static_cast<double>(peers));
  }
  std::printf("\nsubscriptions joined: %zu/%zu; payload deliveries: %zu "
              "(expect ~%zu·%zu)\n",
              joined, subscribers.size(), deliveries, joined, joined - 1);
  return 0;
}
