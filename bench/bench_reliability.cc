// Extension bench: failure resilience with backup-parent replication
// (Section 6 + [35]) vs. the plain repair path.
//
// For a population of established groups, every interior relay is crashed
// (one at a time, on a fresh copy of the tree) and the two recovery
// strategies are compared:
//   repair   — prune + re-subscribe orphans (ripple search / reverse path)
//   failover — pre-arranged backup parents, one message per subtree
#include <cstdio>

#include "core/middleware.h"
#include "core/replication.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;

  core::MiddlewareConfig config;
  config.peer_count = 1000;
  config.seed = 555;
  core::GroupCastMiddleware middleware(config);

  std::size_t failures = 0;
  std::size_t orphaned_total = 0;
  std::size_t fast_recovered = 0, fast_messages = 0;
  std::size_t slow_recovered = 0, slow_messages = 0;
  double coverage_total = 0.0;

  const int groups = 8;
  for (int g = 0; g < groups; ++g) {
    auto group = middleware.establish_random_group(100);
    core::ReplicatedTree probe(middleware.population(), middleware.graph(),
                               group.advert, group.tree);
    coverage_total += probe.coverage() / groups;

    // Crash every interior relay on fresh copies.
    for (const auto victim : group.tree.nodes()) {
      if (victim == group.tree.root()) continue;
      if (group.tree.children(victim).empty()) continue;
      ++failures;

      // Fast path: replicated failover.
      {
        auto copy = group;
        core::ReplicatedTree replicated(middleware.population(),
                                        middleware.graph(), copy.advert,
                                        copy.tree);
        const auto report = replicated.failover(victim);
        orphaned_total += report.orphaned_subscribers;
        fast_recovered += report.recovered_subscribers;
        fast_messages += report.failover_messages;
      }
      // Slow path: prune + re-subscribe.
      {
        auto copy = group;
        const auto before = copy.stats.subscription_messages();
        const auto report = middleware.repair_after_failure(copy, victim);
        slow_recovered += report.resubscribed;
        slow_messages += copy.stats.subscription_messages() - before;
      }
    }
  }

  std::printf("Extension: backup-parent replication vs repair "
              "(1000 peers, 100 subscribers, %d groups, %zu relay "
              "failures)\n\n",
              groups, failures);
  std::printf("backup coverage: %.0f%% of tree nodes hold a backup "
              "parent\n\n",
              100.0 * coverage_total);
  std::printf("%-22s %14s %14s %16s\n", "strategy", "recovered",
              "of orphaned", "messages spent");
  std::printf("%-22s %14zu %13.1f%% %16zu\n", "failover (replicated)",
              fast_recovered,
              orphaned_total
                  ? 100.0 * static_cast<double>(fast_recovered) /
                        static_cast<double>(orphaned_total)
                  : 0.0,
              fast_messages);
  std::printf("%-22s %14zu %13.1f%% %16zu\n", "repair (re-subscribe)",
              slow_recovered,
              orphaned_total
                  ? 100.0 * static_cast<double>(slow_recovered) /
                        static_cast<double>(orphaned_total)
                  : 0.0,
              slow_messages);
  std::printf("\nFailover recovers the bulk of orphans at ~1 message per "
              "subtree; the repair path\nrecovers everyone but pays "
              "ripple-search traffic (orders of magnitude more\nmessages). "
              "Production use layers both: failover first, repair for the "
              "remainder.\n");
  return 0;
}
