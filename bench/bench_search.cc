// Substrate bench: service lookup cost in unstructured overlays —
// flooding vs random walks vs structured (Chord) routing.
//
// Reproduces the Section 1 motivation quantitatively: "flooding ... results
// in heavy communication overheads, whereas [random walks] may generate
// very long search paths", and shows where the DHT sits.  Two query
// hardnesses: a common resource (capacity >= 1000x, ~5% of peers) and a
// rare one (capacity = 10000x, 0.1% of peers).
#include <cstdio>

#include "baselines/chord.h"
#include "core/middleware.h"
#include "overlay/search.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

void sweep(core::GroupCastMiddleware& middleware,
           const baselines::ChordRing& ring, const char* label,
           double capacity_threshold) {
  const auto& population = middleware.population();
  const overlay::SearchPredicate predicate =
      [&population, capacity_threshold](overlay::PeerId p) {
        return population.info(p).capacity >= capacity_threshold;
      };

  double flood_msgs = 0, flood_lat = 0, flood_hits = 0;
  double walk_msgs = 0, walk_lat = 0, walk_hits = 0;
  double chord_msgs = 0, chord_lat = 0;
  const int trials = 60;
  util::Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    auto origin = static_cast<overlay::PeerId>(
        rng.uniform_index(population.size()));
    while (predicate(origin)) {
      origin = static_cast<overlay::PeerId>(
          rng.uniform_index(population.size()));
    }
    const auto flood = overlay::flood_search(population, middleware.graph(),
                                             origin, 4, predicate);
    flood_msgs += flood.messages;
    flood_lat += flood.latency_ms;
    flood_hits += flood.found ? 1 : 0;

    const auto walk = overlay::random_walk_search(
        population, middleware.graph(), origin, overlay::RandomWalkOptions{},
        predicate, rng);
    walk_msgs += walk.messages;
    walk_lat += walk.latency_ms;
    walk_hits += walk.found ? 1 : 0;

    // Chord: route to a random key owned by a satisfying peer (a DHT would
    // index the resource under a known key).  Cost = hop messages; latency
    // = path latency both ways.
    overlay::PeerId target = origin;
    while (!predicate(target)) {
      target = static_cast<overlay::PeerId>(
          rng.uniform_index(population.size()));
    }
    const auto path = ring.route(origin, ring.id_of(target));
    chord_msgs += static_cast<double>(path.size() - 1) + 1;  // + response
    double lat = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      lat += population.latency_ms(path[i - 1], path[i]);
    }
    chord_lat += 2.0 * lat;
  }

  std::printf("-- %s\n", label);
  std::printf("%-22s %10s %12s %10s\n", "mechanism", "messages",
              "latency ms", "success");
  std::printf("%-22s %10.0f %12.1f %9.0f%%\n", "flood (TTL=4)",
              flood_msgs / trials, flood_lat / flood_hits,
              100.0 * flood_hits / trials);
  std::printf("%-22s %10.0f %12.1f %9.0f%%\n", "random walk (4x64)",
              walk_msgs / trials, walk_hits ? walk_lat / walk_hits : 0.0,
              100.0 * walk_hits / trials);
  std::printf("%-22s %10.0f %12.1f %9.0f%%\n", "Chord route (indexed)",
              chord_msgs / trials, chord_lat / trials, 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;
  core::MiddlewareConfig config;
  config.peer_count = 2000;
  config.seed = 31;
  core::GroupCastMiddleware middleware(config);
  baselines::ChordRing ring(middleware.population());

  std::printf("Lookup-cost comparison on a %zu-peer GroupCast overlay\n\n",
              config.peer_count);
  sweep(middleware, ring, "common resource (capacity >= 1000x, ~5% hold)",
        1000.0);
  sweep(middleware, ring, "rare resource (capacity 10000x, 0.1% hold)",
        10000.0);
  std::printf("\nFlooding pays messages, walks pay latency, the DHT pays "
              "maintenance (not shown);\nGroupCast's SSA sidesteps all "
              "three by pre-placing group state along utility paths.\n");
  return 0;
}
