// Live-streaming workload sweep: chunked playback over the dissemination
// tree under loss, bandwidth caps, multi-source layouts, and a flash
// crowd (docs/EXPERIMENTS.md, "Streaming workloads").
//
// The grid crosses the transport's steady-state loss with the chunk
// reliability rider, then adds per-peer uplink/downlink token-bucket caps
// (net/bandwidth.h), a k-publisher comparison of the shared-tree vs
// per-source-tree layouts, and a flash-crowd cell where a crowd of cold
// peers joins mid-stream against the warm tree.  Reported per point:
// chunk miss ratio with its seed-to-seed stddev, startup delay, rebuffer
// events per viewer, chunks played, and the chunk/NACK counters.
//
// --jobs=N parallelizes over the grid via metrics::run_scenario_grid;
// results are byte-identical for every job count.  --shards=N runs each
// cell on the sharded event kernel (byte-identical at every N >= 2).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "json_report.h"
#include "metrics/experiment.h"
#include "trace/cli.h"
#include "trace/counters.h"

namespace {

using namespace groupcast;

metrics::ScenarioConfig streaming_point(std::size_t peers, double loss,
                                        bool reliable_data) {
  metrics::ScenarioConfig config;
  config.peer_count = peers;
  config.groups = 1;
  config.seed = 9200;
  config.streaming.enabled = true;
  config.streaming.loss_probability = loss;
  config.streaming.reliable_data = reliable_data;
  config.streaming.chunks = 30;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const trace::CliTracing tracing(argc, argv);
  const std::size_t shards = tracing.shards();
  const double scale = metrics::bench_scale();
  // Scale ladder: 400 -> 800 -> 16384 peers; the flash crowd grows with
  // it (ROADMAP: "10k joins in 1s against a warm tree" at the top tier).
  const std::size_t peers = scale >= 4.0 ? 16384 : scale >= 2.0 ? 800 : 400;
  const std::size_t flash_joins =
      scale >= 4.0 ? 10000 : scale >= 2.0 ? 200 : 100;

  struct Cell {
    const char* label;
    double loss;
    bool reliable;
  };
  std::vector<Cell> cells;
  std::vector<metrics::ScenarioConfig> points;
  // Loss x reliability: the raw tree vs the NACK/retransmit data plane.
  for (const bool reliable : {false, true}) {
    for (const double loss : {0.0, 0.05, 0.1}) {
      cells.push_back(Cell{"loss sweep", loss, reliable});
      points.push_back(streaming_point(peers, loss, reliable));
    }
  }
  // Bandwidth-capped cells: every peer's access link is token-bucket
  // paced; the tighter cap stacks queueing delay onto every tree hop.
  for (const double kbps : {20000.0, 5000.0}) {
    cells.push_back(Cell{kbps < 10000.0 ? "caps 5 Mbit/s" : "caps 20 Mbit/s",
                         0.0, true});
    auto config = streaming_point(peers, 0.0, /*reliable_data=*/true);
    config.streaming.uplink_kbps = kbps;
    config.streaming.downlink_kbps = kbps;
    config.streaming.scale_caps_with_capacity = true;
    points.push_back(config);
  }
  // Multi-source: three publishers into one shared tree vs one tree per
  // source, same viewer set subscribed to everything.
  for (const bool per_source : {false, true}) {
    cells.push_back(Cell{per_source ? "3 sources, per-source trees"
                                    : "3 sources, shared tree",
                         0.0, true});
    auto config = streaming_point(peers, 0.0, /*reliable_data=*/true);
    config.streaming.sources.publishers = 3;
    config.streaming.sources.mode =
        per_source ? metrics::MultiSourceOptions::Mode::kPerSourceTrees
                   : metrics::MultiSourceOptions::Mode::kSharedTree;
    points.push_back(config);
  }
  // Flash crowd: cold peers join over one second against the warm tree
  // and are scored on the chunks published after their join instant.
  cells.push_back(Cell{"flash crowd", 0.0, true});
  {
    auto config = streaming_point(peers, 0.0, /*reliable_data=*/true);
    config.streaming.flash_crowd_joins = flash_joins;
    config.streaming.flash_crowd_seconds = 1.0;
    points.push_back(config);
  }

  for (auto& point : points) point.shards = shards;

  metrics::GridOptions options;
  options.jobs = tracing.jobs();
  options.repetitions = scale >= 4.0 ? 1 : 2;
  options.counters = true;
  options.histograms = true;
  const auto start = std::chrono::steady_clock::now();
  const auto results = metrics::run_scenario_grid(points, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!tracing.json_out().empty()) {
    bench::JsonReport report("streaming");
    std::uint64_t events = 0;
    std::uint64_t peak = 0;
    for (const auto& r : results) {
      events += r.events_fired;
      peak = std::max(peak, r.queue_high_water);
    }
    report.root()
        .number("wall_clock_seconds", wall_seconds)
        .integer("events_fired", events)
        .integer("peak_queue_depth", peak)
        .integer("jobs", options.jobs)
        .integer("repetitions", options.repetitions)
        .integer("peers", peers);
    if (shards > 1) report.root().integer("shards", shards);
    for (std::size_t i = 0; i < results.size(); ++i) {
      auto& cell = report.add_cell();
      cell.text("workload", cells[i].label);
      bench::fill_scenario_cell(cell, results[i]);
    }
    report.write_file(tracing.json_out());
  }

  std::printf("Live-streaming workloads on the node runtime "
              "(%zu peers, %zu-viewer group, jobs=%zu, reps=%zu)\n\n",
              peers, points.front().effective_group_size(), options.jobs,
              options.repetitions);
  std::printf("%-28s %-4s %-6s %8s %7s %9s %8s %8s %8s %10s\n", "workload",
              "rel", "loss", "miss", "+/-", "startup", "rebuf",
              "played", "nacks", "retransmit");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& cell = cells[i];
    const auto& c = r.counters;
    std::printf("%-28s %-4s %-6.2f %7.2f%% %6.2f%% %7.0fms %8.2f %8.1f "
                "%8llu %10llu\n",
                cell.label, cell.reliable ? "on" : "off", cell.loss,
                100.0 * r.chunk_miss_ratio,
                100.0 * r.chunk_miss_ratio_stddev, r.startup_delay_ms,
                r.rebuffer_events, r.chunks_played_per_viewer,
                static_cast<unsigned long long>(
                    c.total(trace::CounterId::kNacksSent)),
                static_cast<unsigned long long>(
                    c.total(trace::CounterId::kRetransmits)));
  }
  const auto& flash = results.back();
  std::printf("\nFlash crowd: %zu joins over 1.0 s against the warm tree — "
              "%.1f%% attached, miss %.2f%%, startup %.0f ms\n",
              flash_joins, 100.0 * flash.flash_attach_fraction,
              100.0 * flash.chunk_miss_ratio, flash.startup_delay_ms);
  std::printf("(miss = viewer-eligible chunks not played by their deadline; "
              "startup = join to first played chunk; rebuf = maximal missed "
              "runs per viewer)\n");
  return 0;
}
