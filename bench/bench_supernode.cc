// Extension bench: flat GroupCast vs the two-tier supernode variant
// (Section 6 future work).
//
// Both architectures are built over the same population and serve the
// same style of groups; the bench contrasts efficiency (delay, stress),
// load placement (overload, who relays), and signalling cost.
#include <cstdio>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "metrics/graph_stats.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

void run(core::OverlayKind kind, std::uint64_t seed) {
  core::MiddlewareConfig config;
  config.peer_count = 1500;
  config.seed = seed;
  config.overlay = kind;
  core::GroupCastMiddleware middleware(config);

  double delay = 0, overload = 0, stress = 0, messages = 0;
  std::size_t weak_relays = 0, relays = 0;
  const int groups = 6;
  for (int g = 0; g < groups; ++g) {
    auto group = middleware.establish_random_group(150);
    const auto session = middleware.session(group);
    const auto m = metrics::evaluate_session(middleware.population(), session,
                                             group.advert.rendezvous);
    delay += m.delay_penalty / groups;
    overload += m.overload_index / groups;
    stress += m.node_stress / groups;
    messages += static_cast<double>(group.advert.messages +
                                    group.report.total_messages()) /
                groups;
    for (const auto node : group.tree.nodes()) {
      if (group.tree.children(node).empty()) continue;
      ++relays;
      if (middleware.population().info(node).capacity < 100.0) ++weak_relays;
    }
  }
  std::printf("%-12s %8.2f %10.5f %8.2f %10.0f %14.1f%%",
              core::to_string(kind), delay, overload, stress, messages,
              100.0 * static_cast<double>(weak_relays) /
                  static_cast<double>(relays));
  if (kind == core::OverlayKind::kSupernode) {
    std::printf("   (core tier: %.0f%% of peers)",
                100.0 * middleware.supernode_layout().core_fraction());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  std::printf("Extension: flat vs two-tier supernode architecture "
              "(1500 peers, 150 subscribers, 6 groups)\n");
  std::printf("%-12s %8s %10s %8s %10s %15s\n", "overlay", "delay",
              "overload", "nstress", "setup-msgs", "weak relays");
  run(groupcast::core::OverlayKind::kGroupCast, 31337);
  run(groupcast::core::OverlayKind::kSupernode, 31337);
  std::printf("\nThe supernode tier should eliminate weak relays almost "
              "entirely (leaves never forward\nfor anyone but themselves) "
              "at a modest delay cost for leaf-to-leaf paths.\n");
  return 0;
}
