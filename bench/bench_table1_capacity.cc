// Table 1: capacity distribution of peers.
//
// Paper values (Saroiu et al. measurement study):
//   1x: 20%   10x: 45%   100x: 30%   1000x: 4.9%   10000x: 0.1%
//
// This bench draws a large peer population and reports the sampled shares
// next to the paper's, plus the exact resource level r_i each capacity
// class maps to.
#include <cstdio>

#include "overlay/peer.h"
#include "util/rng.h"

#include "trace/cli.h"

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;

  const std::uint64_t seed = 20070101;
  const std::size_t n = 1'000'000;

  overlay::CapacityDistribution table1;
  util::Rng rng(seed);

  std::vector<std::size_t> counts(table1.level_count(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = table1.sample(rng);
    for (std::size_t k = 0; k < table1.levels().size(); ++k) {
      if (table1.levels()[k] == c) {
        ++counts[k];
        break;
      }
    }
  }

  std::printf("Table 1: capacity distribution of peers (seed=%llu, n=%zu)\n",
              static_cast<unsigned long long>(seed), n);
  std::printf("%10s %12s %12s %14s\n", "level", "paper", "sampled",
              "resource r_i");
  for (std::size_t k = 0; k < table1.level_count(); ++k) {
    std::printf("%9.0fx %11.2f%% %11.2f%% %14.4f\n", table1.levels()[k],
                100.0 * table1.probability_of_level(k),
                100.0 * static_cast<double>(counts[k]) / n,
                table1.resource_level(table1.levels()[k]));
  }
  return 0;
}
