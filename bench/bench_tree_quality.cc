// Tree-quality comparison across the multicast-construction families of
// Section 2.1 (ablation bench, not a numbered paper figure).
//
// The paper claims its decentralized scheme yields spanning trees whose
// quality "is comparable to those built using the other three approaches".
// This bench puts that to the test on one deployment: the same subscriber
// sets are served by
//   * GroupCast (utility-aware overlay + SSA, fully decentralized),
//   * SCRIBE over a stabilized Chord ring (structured-DHT family),
//   * a Narada-style mesh-first shortest-path tree (mesh family),
//   * a centralized degree-bounded greedy tree (global knowledge), and
//   * the unicast star (client/server, Skype's multi-party model),
// and the resulting trees are scored with the paper's own metrics.
#include <cstdio>

#include "baselines/centralized.h"
#include "baselines/narada.h"
#include "baselines/nice.h"
#include "baselines/scribe.h"
#include "core/middleware.h"
#include "metrics/esm_metrics.h"

#include "trace/cli.h"

namespace {

using namespace groupcast;

void report(const char* label, const overlay::PeerPopulation& population,
            const core::SpanningTree& tree, overlay::PeerId source,
            std::size_t setup_messages) {
  const core::GroupSession session(population, tree);
  const auto m = metrics::evaluate_session(population, session, source);
  std::printf("%-22s %8.2f %8.2f %8.2f %10.4f %8zu %10zu\n", label,
              m.delay_penalty, m.link_stress, m.node_stress,
              m.overload_index, m.tree_nodes, setup_messages);
}

}  // namespace

int main(int argc, char** argv) {
  const groupcast::trace::CliTracing tracing(argc, argv);
  using namespace groupcast;

  core::MiddlewareConfig config;
  config.peer_count = 1500;
  config.seed = 2007;
  core::GroupCastMiddleware middleware(config);
  const auto& population = middleware.population();

  std::printf("Tree quality across construction families "
              "(%zu peers, 150 subscribers, 5 groups averaged by row order)\n",
              config.peer_count);
  std::printf("%-22s %8s %8s %8s %10s %8s %10s\n", "scheme", "delay",
              "lstress", "nstress", "overload", "nodes", "setup-msgs");

  baselines::ChordRing ring(population);
  util::Rng rng(42);

  for (int g = 0; g < 5; ++g) {
    // One subscriber set shared by every scheme.
    auto group = middleware.establish_random_group(150);
    const auto rendezvous = group.advert.rendezvous;
    std::vector<overlay::PeerId> members(group.tree.subscribers().begin(),
                                         group.tree.subscribers().end());

    std::printf("--- group %d (rendezvous %u)\n", g, rendezvous);
    report("GroupCast+SSA", population, group.tree, rendezvous,
           group.advert.messages + group.report.total_messages());

    const auto scribe = baselines::build_scribe_tree(
        ring, population, baselines::ChordRing::hash_key(1000 + g), members);
    report("SCRIBE/Chord", population, scribe.tree, scribe.root,
           scribe.join_messages);

    const auto narada = baselines::build_narada_tree(
        population, rendezvous, members, baselines::NaradaOptions{}, rng);
    report("Narada mesh", population, narada.tree, rendezvous,
           narada.refresh_messages_per_round * 10);  // ~10 refresh rounds

    const auto nice = baselines::build_nice_tree(
        population, members, baselines::NiceOptions{}, rng);
    report("NICE clusters", population, nice.tree, nice.root,
           nice.refresh_messages_per_round * 10);

    const auto central = baselines::build_degree_bounded_tree(
        population, rendezvous, members);
    report("centralized greedy", population, central, rendezvous, 0);

    const auto star = baselines::build_unicast_star(rendezvous, members);
    report("unicast star", population, star, rendezvous, 0);
  }

  std::printf("\nNotes: setup messages are advertising+joins (GroupCast), "
              "DHT join hops (SCRIBE),\nand mesh refresh traffic (Narada); "
              "centralized schemes assume free global knowledge.\n");
  return 0;
}
