#include "json_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/advertisement.h"
#include "core/middleware.h"
#include "trace/counters.h"

namespace groupcast::bench {

namespace {

std::string quote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonObject& JsonObject::number(const std::string& key, double value) {
  char buf[40];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  fields_.push_back(Field{key, buf});
  return *this;
}

JsonObject& JsonObject::integer(const std::string& key,
                                std::uint64_t value) {
  fields_.push_back(Field{key, std::to_string(value)});
  return *this;
}

JsonObject& JsonObject::text(const std::string& key,
                             const std::string& value) {
  fields_.push_back(Field{key, quote(value)});
  return *this;
}

JsonObject& JsonObject::boolean(const std::string& key, bool value) {
  fields_.push_back(Field{key, value ? "true" : "false"});
  return *this;
}

JsonObject& JsonObject::raw(const std::string& key, std::string literal) {
  fields_.push_back(Field{key, std::move(literal)});
  return *this;
}

void JsonObject::render(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out += "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += pad;
    out += "  ";
    out += quote(fields_[i].key);
    out += ": ";
    out += fields_[i].literal;
    if (i + 1 < fields_.size()) out += ",";
    out += "\n";
  }
  out += pad;
  out += "}";
}

void JsonObject::render_fields(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const auto& field : fields_) {
    out += pad;
    out += quote(field.key);
    out += ": ";
    out += field.literal;
    out += ",\n";
  }
}

JsonReport::JsonReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

JsonObject& JsonReport::add_cell() {
  cells_.emplace_back();
  return cells_.back();
}

std::string JsonReport::render() const {
  std::string out = "{\n  \"bench\": " + quote(name_) + ",\n";
  root_.render_fields(out, 2);
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out += "    ";
    cells_[i].render(out, 4);
    if (i + 1 < cells_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool JsonReport::write_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "json_report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = render();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  std::fclose(file);
  if (!ok) {
    std::fprintf(stderr, "json_report: short write to %s\n", path.c_str());
  }
  return ok;
}

void fill_scenario_cell(JsonObject& cell,
                        const metrics::ScenarioResult& r) {
  cell.integer("peers", r.config.peer_count)
      .text("overlay", core::to_string(r.config.overlay))
      .text("scheme", core::to_string(r.config.scheme))
      .integer("groups", r.config.groups)
      .integer("seed", r.config.seed)
      .number("advertisement_messages", r.advertisement_messages)
      .number("subscription_messages", r.subscription_messages)
      .number("receiving_rate", r.receiving_rate)
      .number("subscription_success_rate", r.subscription_success_rate)
      .number("lookup_latency_ms", r.lookup_latency_ms)
      .number("delay_penalty", r.delay_penalty)
      .number("link_stress", r.link_stress)
      .number("node_stress", r.node_stress)
      .number("overload_index", r.overload_index)
      .integer("events_fired", r.events_fired)
      .integer("queue_high_water", r.queue_high_water);
  if (r.config.recovery.enabled) {
    cell.number("loss_probability", r.config.recovery.loss_probability)
        .number("crash_fraction", r.config.recovery.crash_fraction)
        .number("graceful_fraction", r.config.recovery.graceful_fraction)
        .boolean("reliable_data", r.config.recovery.reliable_data)
        .number("delivery_ratio", r.delivery_ratio)
        .number("delivery_ratio_stddev", r.delivery_ratio_stddev)
        .number("reattached_fraction", r.reattached_fraction)
        .number("reattached_fraction_stddev", r.reattached_fraction_stddev)
        .number("mean_orphan_epochs", r.mean_orphan_epochs)
        .number("epochs_to_converge", r.epochs_to_converge)
        .number("invariant_violations", r.invariant_violations)
        .integer("control_retries",
                 r.counters.total(trace::CounterId::kControlRetries))
        .integer("control_giveups",
                 r.counters.total(trace::CounterId::kControlGiveups))
        .integer("orphans_recovered",
                 r.counters.total(trace::CounterId::kOrphansRecovered))
        .integer("nacks_sent",
                 r.counters.total(trace::CounterId::kNacksSent))
        .integer("retransmits",
                 r.counters.total(trace::CounterId::kRetransmits))
        .integer("dups_suppressed",
                 r.counters.total(trace::CounterId::kDupsSuppressed))
        .integer("send_buffer_high_water",
                 r.counters.total(trace::CounterId::kSendBufferHighWater));
    if (r.config.recovery.flow_control || r.config.recovery.adaptive) {
      // Self-tuning transport cells only: absent fields keep the legacy
      // cells byte-identical to reports from before these flags existed.
      cell.boolean("flow_control", r.config.recovery.flow_control)
          .boolean("adaptive", r.config.recovery.adaptive)
          .integer("flow_blocked",
                   r.counters.total(trace::CounterId::kFlowBlocked))
          .integer("flow_throttles",
                   r.counters.total(trace::CounterId::kFlowThrottles));
    }
    if (r.config.recovery.replication) {
      // Replicated-rendezvous cells only, same byte-identity rule.
      cell.integer("replicas", r.config.recovery.replicas)
          .number("lease_seconds", r.config.recovery.lease_seconds)
          .number("partition_seconds", r.config.recovery.partition_seconds)
          .number("lease_handoffs", r.lease_handoffs)
          .number("epoch_conflicts", r.epoch_conflicts)
          .integer("lease_renewals",
                   r.counters.total(trace::CounterId::kLeaseRenewals))
          .integer("backup_attaches",
                   r.counters.total(trace::CounterId::kBackupAttaches));
      if (r.config.recovery.partition_seconds > 0.0) {
        cell.number("partition_majority_delivery",
                    r.partition_majority_delivery)
            .number("partition_minority_delivery",
                    r.partition_minority_delivery);
      }
    }
  }
  if (r.config.streaming.enabled) {
    // Streaming-harness cells only: absent fields keep every other
    // report byte-identical to pre-streaming builds.
    const auto& str = r.config.streaming;
    cell.number("loss_probability", str.loss_probability)
        .boolean("reliable_data", str.reliable_data)
        .integer("chunk_publishers", str.sources.publishers)
        .text("multi_source_mode",
              str.sources.mode == metrics::MultiSourceOptions::Mode::
                                      kPerSourceTrees
                  ? "per-source"
                  : "shared")
        .integer("chunks_per_publisher", str.chunks)
        .integer("chunk_bytes", str.chunk_bytes)
        .number("chunk_deadline_seconds", str.deadline_seconds)
        .number("uplink_kbps", str.uplink_kbps)
        .number("downlink_kbps", str.downlink_kbps)
        .number("chunk_miss_ratio", r.chunk_miss_ratio)
        .number("chunk_miss_ratio_stddev", r.chunk_miss_ratio_stddev)
        .number("startup_delay_ms", r.startup_delay_ms)
        .number("rebuffer_events", r.rebuffer_events)
        .number("chunks_played_per_viewer", r.chunks_played_per_viewer)
        .integer("chunks_published",
                 r.counters.total(trace::CounterId::kChunksPublished))
        .integer("chunks_delivered",
                 r.counters.total(trace::CounterId::kChunksDelivered))
        .integer("chunks_late",
                 r.counters.total(trace::CounterId::kChunksLate))
        .integer("nacks_sent",
                 r.counters.total(trace::CounterId::kNacksSent))
        .integer("retransmits",
                 r.counters.total(trace::CounterId::kRetransmits));
    if (str.flash_crowd_joins > 0) {
      cell.integer("flash_crowd_joins", str.flash_crowd_joins)
          .number("flash_crowd_seconds", str.flash_crowd_seconds)
          .number("flash_attach_fraction", r.flash_attach_fraction);
    }
  }
  if (r.config.shards > 1 && !r.events_per_shard.empty()) {
    // Sharded-kernel cells only (absent fields keep --shards=1 reports
    // byte-identical to pre-shard builds).  The imbalance ratio is
    // max/min events per shard — 1.0 is a perfectly even split.
    std::uint64_t min_events = r.events_per_shard.front();
    std::uint64_t max_events = r.events_per_shard.front();
    for (const auto events : r.events_per_shard) {
      min_events = std::min(min_events, events);
      max_events = std::max(max_events, events);
    }
    cell.integer("shards", r.config.shards)
        .integer("events_per_shard_min", min_events)
        .integer("events_per_shard_max", max_events)
        .number("shard_imbalance",
                min_events > 0 ? static_cast<double>(max_events) /
                                     static_cast<double>(min_events)
                               : 0.0);
  }
  fill_histogram_fields(cell, r.histograms);
  fill_timeline_field(cell, r.timeline);
}

void fill_histogram_fields(JsonObject& cell,
                           const trace::HistogramSnapshot& histograms) {
  for (std::size_t i = 0; i < trace::kHistogramIds; ++i) {
    const auto id = static_cast<trace::HistogramId>(i);
    const auto& h = histograms.of(id);
    if (h.count == 0) continue;
    const std::string prefix = trace::to_string(id);
    cell.integer(prefix + "_count", h.count)
        .number(prefix + "_mean", h.mean())
        .integer(prefix + "_p50", h.percentile(0.50))
        .integer(prefix + "_p99", h.percentile(0.99))
        .integer(prefix + "_max", h.max);
  }
}

void fill_timeline_field(JsonObject& cell,
                         const std::vector<trace::FlightFrame>& timeline) {
  if (timeline.empty()) return;
  // The headline recovery series; the full counter set stays available
  // through --trace_out (kTimelineFrame events).
  static constexpr trace::CounterId kSeries[] = {
      trace::CounterId::kMessagesSent,   trace::CounterId::kMessagesDropped,
      trace::CounterId::kNacksSent,      trace::CounterId::kRetransmits,
      trace::CounterId::kOrphansRecovered};
  std::string out = "[\n";
  for (std::size_t f = 0; f < timeline.size(); ++f) {
    const auto& frame = timeline[f];
    JsonObject row;
    row.integer("t_us", static_cast<std::uint64_t>(frame.t_us));
    row.integer("deliveries",
                frame.samples[static_cast<std::size_t>(
                    trace::HistogramId::kEndToEndDelayUs)]);
    for (const auto id : kSeries) {
      row.integer(trace::to_string(id),
                  frame.counters[static_cast<std::size_t>(id)]);
    }
    out += "        ";
    row.render(out, 8);
    if (f + 1 < timeline.size()) out += ",";
    out += "\n";
  }
  out += "      ]";
  cell.raw("timeline", std::move(out));
}

}  // namespace groupcast::bench
