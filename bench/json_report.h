// Machine-readable bench reports (BENCH_<name>.json).
//
// Every sweep bench accepts --json_out=<path> and, when given, writes a
// small JSON document next to its human-readable table: top-level run
// metadata (bench name, wall-clock, total events fired, peak event-queue
// depth) plus a "cells" array with one flat object per grid cell.  The
// format is deliberately minimal — insertion-ordered flat objects of
// numbers and strings — so that scripts/check.sh can diff a fresh run
// against a checked-in baseline with nothing fancier than cmake's
// string(JSON).  See docs/PERFORMANCE.md for the field catalogue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/experiment.h"

namespace groupcast::bench {

/// Flat JSON object with insertion-ordered fields.  Values are rendered
/// at insertion time (doubles via round-trippable %.17g; non-finite
/// doubles become null); duplicate keys are the caller's bug and are
/// emitted as-is.
class JsonObject {
 public:
  JsonObject& number(const std::string& key, double value);
  JsonObject& integer(const std::string& key, std::uint64_t value);
  JsonObject& text(const std::string& key, const std::string& value);
  JsonObject& boolean(const std::string& key, bool value);
  /// Splices a pre-rendered JSON literal (nested array / object) under
  /// `key`; the caller is responsible for its validity.
  JsonObject& raw(const std::string& key, std::string literal);

  /// Appends this object to `out`, indented by `indent` spaces.
  void render(std::string& out, int indent) const;

  /// Appends only the "key": value lines (one per line, `indent` spaces
  /// each, every line comma-terminated) — used to splice the root fields
  /// into the report's top-level object.
  void render_fields(std::string& out, int indent) const;

  bool empty() const { return fields_.empty(); }

 private:
  struct Field {
    std::string key;
    std::string literal;  // pre-rendered JSON value
  };
  std::vector<Field> fields_;
};

/// One BENCH_<name>.json document: { "bench": name, <root fields>,
/// "cells": [ ... ] }.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  /// Top-level scalars (wall_clock_seconds, events_fired, ...).
  JsonObject& root() { return root_; }

  /// Appends an empty per-cell object and returns it for filling.
  JsonObject& add_cell();

  std::string render() const;

  /// Writes render() to `path`.  Returns false (and reports to stderr)
  /// when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::string name_;
  JsonObject root_;
  std::vector<JsonObject> cells_;
};

/// The standard per-scenario cell: scenario shape (peers, overlay,
/// scheme, groups, seed), the paper metrics, the robustness metrics when
/// the recovery harness ran, and the event-loop workload columns.
void fill_scenario_cell(JsonObject& cell, const metrics::ScenarioResult& r);

/// Appends the sim-time histogram summaries (count / mean / p50 / p99 /
/// max per non-empty histogram) to `cell`; no-op when no samples were
/// collected.
void fill_histogram_fields(JsonObject& cell,
                           const trace::HistogramSnapshot& histograms);

/// Appends the flight-recorder time series as a nested "timeline" array:
/// one object per frame with sim time, cumulative deliveries (end-to-end
/// histogram samples) and the headline recovery counters.  No-op when
/// the timeline is empty.
void fill_timeline_field(JsonObject& cell,
                         const std::vector<trace::FlightFrame>& timeline);

}  // namespace groupcast::bench
