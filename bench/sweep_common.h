// Shared driver for the Figure 11–17 benches: the overlay-size sweep and
// the {overlay} × {announcement scheme} grid of the paper's Section 4.
//
// Default sweep sizes are reduced so that `for b in build/bench/*; do $b;
// done` completes in minutes; set GROUPCAST_BENCH_SCALE=2 to add the 8k/16k
// points and =4 for the paper's full 32k sweep (plus more repetitions).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "json_report.h"
#include "metrics/experiment.h"
#include "trace/cli.h"
#include "trace/counters.h"

namespace groupcast::bench {

struct SweepPlan {
  std::vector<std::size_t> sizes;
  std::size_t groups = 4;
  std::size_t repetitions = 1;  // distinct topologies (seeds)
  /// Grid worker threads (benches fill this from --jobs); 1 = sequential,
  /// 0 = all hardware threads.  Any value produces identical results.
  std::size_t jobs = 1;
};

inline SweepPlan default_sweep_plan() {
  const double scale = metrics::bench_scale();
  SweepPlan plan;
  plan.sizes = {1000, 2000, 4000};
  if (scale >= 2.0) {
    plan.sizes.push_back(8000);
    plan.sizes.push_back(16000);
    plan.groups = 8;
    plan.repetitions = 3;
  }
  if (scale >= 4.0) {
    plan.sizes.push_back(32000);
    plan.groups = 10;
    plan.repetitions = 10;
  }
  return plan;
}

struct Combo {
  core::OverlayKind overlay;
  core::AnnouncementScheme scheme;
  const char* label;
};

/// The paper's four overlay x scheme combinations, in its plotting order.
inline std::vector<Combo> all_combos() {
  return {
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kSsaUtility,
       "GroupCast + SSA"},
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kNssa,
       "GroupCast + NSSA"},
      {core::OverlayKind::kRandomPowerLaw,
       core::AnnouncementScheme::kSsaUtility, "random-PL + SSA"},
      {core::OverlayKind::kRandomPowerLaw, core::AnnouncementScheme::kNssa,
       "random-PL + NSSA"},
  };
}

/// SSA-only pair (Figures 12 and 13 compare the two overlays under SSA).
inline std::vector<Combo> ssa_combos() {
  return {
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kSsaUtility,
       "GroupCast"},
      {core::OverlayKind::kRandomPowerLaw,
       core::AnnouncementScheme::kSsaUtility, "random-PL"},
  };
}

inline metrics::ScenarioConfig point_config(std::size_t peer_count,
                                            const Combo& combo,
                                            const SweepPlan& plan,
                                            std::uint64_t seed = 1000) {
  metrics::ScenarioConfig config;
  config.peer_count = peer_count;
  config.overlay = combo.overlay;
  config.scheme = combo.scheme;
  config.groups = plan.groups;
  config.seed = seed;
  return config;
}

inline metrics::ScenarioResult run_point(std::size_t peer_count,
                                         const Combo& combo,
                                         const SweepPlan& plan,
                                         std::uint64_t seed = 1000) {
  return metrics::run_scenario_averaged(point_config(peer_count, combo, plan, seed),
                                        plan.repetitions, plan.jobs);
}

/// Runs the whole sizes x combos grid (every repetition of every point) on
/// plan.jobs workers and returns the averaged results in row-major input
/// order: result of (sizes[i], combos[j]) at index i * combos.size() + j.
/// Parallelism spans the entire grid, so the pool stays busy even when
/// one large point dominates; output is byte-identical to running each
/// point sequentially through run_point.
inline std::vector<metrics::ScenarioResult> run_sweep_grid(
    const SweepPlan& plan, const std::vector<Combo>& combos,
    std::uint64_t seed = 1000) {
  std::vector<metrics::ScenarioConfig> points;
  points.reserve(plan.sizes.size() * combos.size());
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      points.push_back(point_config(n, combo, plan, seed));
    }
  }
  metrics::GridOptions options;
  options.jobs = plan.jobs;
  options.repetitions = plan.repetitions;
  options.counters = trace::counters().enabled();
  auto results = metrics::run_scenario_grid(points, options);
  // Under --trace_out the CLI guard exports the ambient registry on exit;
  // fold the per-run counters back so that export matches the sequential
  // harness (no-op when counters are disabled).
  for (const auto& r : results) trace::counters().merge(r.counters);
  return results;
}

/// Writes the BENCH_<name>.json report for a sweep grid: run totals in
/// the root (wall-clock, events fired, peak queue depth) and one cell per
/// (size, combo) grid point.  A no-op when `path` is empty.
inline void write_sweep_json(const std::string& path, const char* bench_name,
                             const std::vector<Combo>& combos,
                             const std::vector<metrics::ScenarioResult>& results,
                             double wall_seconds, std::size_t jobs) {
  if (path.empty()) return;
  JsonReport report(bench_name);
  std::uint64_t events = 0;
  std::uint64_t peak = 0;
  for (const auto& r : results) {
    events += r.events_fired;
    peak = std::max(peak, r.queue_high_water);
  }
  report.root()
      .number("wall_clock_seconds", wall_seconds)
      .integer("events_fired", events)
      .integer("peak_queue_depth", peak)
      .integer("jobs", jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& cell = report.add_cell();
    cell.text("combo", combos[i % combos.size()].label);
    fill_scenario_cell(cell, results[i]);
  }
  report.write_file(path);
}

/// run_sweep_grid plus the --json_out hook: when `tracing` carries a
/// --json_out path, the grid is wall-clocked and written out as
/// BENCH_<name>.json via write_sweep_json.
inline std::vector<metrics::ScenarioResult> run_sweep_grid_reported(
    const trace::CliTracing& tracing, const char* bench_name,
    const SweepPlan& plan, const std::vector<Combo>& combos,
    std::uint64_t seed = 1000) {
  const auto start = std::chrono::steady_clock::now();
  auto results = run_sweep_grid(plan, combos, seed);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  write_sweep_json(tracing.json_out(), bench_name, combos, results,
                   wall_seconds, plan.jobs);
  return results;
}

inline void print_sweep_header(const char* title, const SweepPlan& plan) {
  std::printf("%s\n", title);
  std::printf("(groups/overlay=%zu, topologies=%zu, jobs=%zu; "
              "GROUPCAST_BENCH_SCALE for the full paper sweep)\n",
              plan.groups, plan.repetitions, plan.jobs);
}

}  // namespace groupcast::bench
