// Shared driver for the Figure 11–17 benches: the overlay-size sweep and
// the {overlay} × {announcement scheme} grid of the paper's Section 4.
//
// Default sweep sizes are reduced so that `for b in build/bench/*; do $b;
// done` completes in minutes; set GROUPCAST_BENCH_SCALE=2 to add the 8k/16k
// points and =4 for the paper's full 32k sweep (plus more repetitions).
#pragma once

#include <cstdio>
#include <vector>

#include "metrics/experiment.h"
#include "trace/counters.h"

namespace groupcast::bench {

struct SweepPlan {
  std::vector<std::size_t> sizes;
  std::size_t groups = 4;
  std::size_t repetitions = 1;  // distinct topologies (seeds)
  /// Grid worker threads (benches fill this from --jobs); 1 = sequential,
  /// 0 = all hardware threads.  Any value produces identical results.
  std::size_t jobs = 1;
};

inline SweepPlan default_sweep_plan() {
  const double scale = metrics::bench_scale();
  SweepPlan plan;
  plan.sizes = {1000, 2000, 4000};
  if (scale >= 2.0) {
    plan.sizes.push_back(8000);
    plan.sizes.push_back(16000);
    plan.groups = 8;
    plan.repetitions = 3;
  }
  if (scale >= 4.0) {
    plan.sizes.push_back(32000);
    plan.groups = 10;
    plan.repetitions = 10;
  }
  return plan;
}

struct Combo {
  core::OverlayKind overlay;
  core::AnnouncementScheme scheme;
  const char* label;
};

/// The paper's four overlay x scheme combinations, in its plotting order.
inline std::vector<Combo> all_combos() {
  return {
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kSsaUtility,
       "GroupCast + SSA"},
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kNssa,
       "GroupCast + NSSA"},
      {core::OverlayKind::kRandomPowerLaw,
       core::AnnouncementScheme::kSsaUtility, "random-PL + SSA"},
      {core::OverlayKind::kRandomPowerLaw, core::AnnouncementScheme::kNssa,
       "random-PL + NSSA"},
  };
}

/// SSA-only pair (Figures 12 and 13 compare the two overlays under SSA).
inline std::vector<Combo> ssa_combos() {
  return {
      {core::OverlayKind::kGroupCast, core::AnnouncementScheme::kSsaUtility,
       "GroupCast"},
      {core::OverlayKind::kRandomPowerLaw,
       core::AnnouncementScheme::kSsaUtility, "random-PL"},
  };
}

inline metrics::ScenarioConfig point_config(std::size_t peer_count,
                                            const Combo& combo,
                                            const SweepPlan& plan,
                                            std::uint64_t seed = 1000) {
  metrics::ScenarioConfig config;
  config.peer_count = peer_count;
  config.overlay = combo.overlay;
  config.scheme = combo.scheme;
  config.groups = plan.groups;
  config.seed = seed;
  return config;
}

inline metrics::ScenarioResult run_point(std::size_t peer_count,
                                         const Combo& combo,
                                         const SweepPlan& plan,
                                         std::uint64_t seed = 1000) {
  return metrics::run_scenario_averaged(point_config(peer_count, combo, plan, seed),
                                        plan.repetitions, plan.jobs);
}

/// Runs the whole sizes x combos grid (every repetition of every point) on
/// plan.jobs workers and returns the averaged results in row-major input
/// order: result of (sizes[i], combos[j]) at index i * combos.size() + j.
/// Parallelism spans the entire grid, so the pool stays busy even when
/// one large point dominates; output is byte-identical to running each
/// point sequentially through run_point.
inline std::vector<metrics::ScenarioResult> run_sweep_grid(
    const SweepPlan& plan, const std::vector<Combo>& combos,
    std::uint64_t seed = 1000) {
  std::vector<metrics::ScenarioConfig> points;
  points.reserve(plan.sizes.size() * combos.size());
  for (const std::size_t n : plan.sizes) {
    for (const auto& combo : combos) {
      points.push_back(point_config(n, combo, plan, seed));
    }
  }
  metrics::GridOptions options;
  options.jobs = plan.jobs;
  options.repetitions = plan.repetitions;
  options.counters = trace::counters().enabled();
  auto results = metrics::run_scenario_grid(points, options);
  // Under --trace_out the CLI guard exports the ambient registry on exit;
  // fold the per-run counters back so that export matches the sequential
  // harness (no-op when counters are disabled).
  for (const auto& r : results) trace::counters().merge(r.counters);
  return results;
}

inline void print_sweep_header(const char* title, const SweepPlan& plan) {
  std::printf("%s\n", title);
  std::printf("(groups/overlay=%zu, topologies=%zu, jobs=%zu; "
              "GROUPCAST_BENCH_SCALE for the full paper sweep)\n",
              plan.groups, plan.repetitions, plan.jobs);
}

}  // namespace groupcast::bench
