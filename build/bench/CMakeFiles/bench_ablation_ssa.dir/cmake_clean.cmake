file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ssa.dir/bench_ablation_ssa.cc.o"
  "CMakeFiles/bench_ablation_ssa.dir/bench_ablation_ssa.cc.o.d"
  "bench_ablation_ssa"
  "bench_ablation_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
