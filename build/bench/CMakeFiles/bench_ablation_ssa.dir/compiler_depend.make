# Empty compiler generated dependencies file for bench_ablation_ssa.
# This may be replaced when dependencies are built.
