# Empty dependencies file for bench_ablation_underlay.
# This may be replaced when dependencies are built.
