file(REMOVE_RECURSE
  "CMakeFiles/bench_delivery_ratio.dir/bench_delivery_ratio.cc.o"
  "CMakeFiles/bench_delivery_ratio.dir/bench_delivery_ratio.cc.o.d"
  "bench_delivery_ratio"
  "bench_delivery_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delivery_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
