# Empty dependencies file for bench_delivery_ratio.
# This may be replaced when dependencies are built.
