file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_delay_penalty.dir/bench_fig14_delay_penalty.cc.o"
  "CMakeFiles/bench_fig14_delay_penalty.dir/bench_fig14_delay_penalty.cc.o.d"
  "bench_fig14_delay_penalty"
  "bench_fig14_delay_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_delay_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
