# Empty compiler generated dependencies file for bench_fig14_delay_penalty.
# This may be replaced when dependencies are built.
