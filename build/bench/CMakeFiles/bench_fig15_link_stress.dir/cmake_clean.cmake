file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_link_stress.dir/bench_fig15_link_stress.cc.o"
  "CMakeFiles/bench_fig15_link_stress.dir/bench_fig15_link_stress.cc.o.d"
  "bench_fig15_link_stress"
  "bench_fig15_link_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_link_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
