# Empty dependencies file for bench_fig15_link_stress.
# This may be replaced when dependencies are built.
