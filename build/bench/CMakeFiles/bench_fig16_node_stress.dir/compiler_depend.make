# Empty compiler generated dependencies file for bench_fig16_node_stress.
# This may be replaced when dependencies are built.
