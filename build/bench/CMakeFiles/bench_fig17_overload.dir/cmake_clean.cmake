file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_overload.dir/bench_fig17_overload.cc.o"
  "CMakeFiles/bench_fig17_overload.dir/bench_fig17_overload.cc.o.d"
  "bench_fig17_overload"
  "bench_fig17_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
