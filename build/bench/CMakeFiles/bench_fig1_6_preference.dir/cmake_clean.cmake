file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_6_preference.dir/bench_fig1_6_preference.cc.o"
  "CMakeFiles/bench_fig1_6_preference.dir/bench_fig1_6_preference.cc.o.d"
  "bench_fig1_6_preference"
  "bench_fig1_6_preference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_6_preference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
