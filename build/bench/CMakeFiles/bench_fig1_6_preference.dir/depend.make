# Empty dependencies file for bench_fig1_6_preference.
# This may be replaced when dependencies are built.
