file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_degree.dir/bench_fig7_8_degree.cc.o"
  "CMakeFiles/bench_fig7_8_degree.dir/bench_fig7_8_degree.cc.o.d"
  "bench_fig7_8_degree"
  "bench_fig7_8_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
