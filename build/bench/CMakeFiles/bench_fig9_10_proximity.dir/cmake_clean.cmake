file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_proximity.dir/bench_fig9_10_proximity.cc.o"
  "CMakeFiles/bench_fig9_10_proximity.dir/bench_fig9_10_proximity.cc.o.d"
  "bench_fig9_10_proximity"
  "bench_fig9_10_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
