
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_node_runtime.cc" "bench/CMakeFiles/bench_node_runtime.dir/bench_node_runtime.cc.o" "gcc" "bench/CMakeFiles/bench_node_runtime.dir/bench_node_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/groupcast_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/groupcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/groupcast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/groupcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coords/CMakeFiles/groupcast_coords.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/groupcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/groupcast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/groupcast_utility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
