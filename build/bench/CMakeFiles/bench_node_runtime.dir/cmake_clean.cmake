file(REMOVE_RECURSE
  "CMakeFiles/bench_node_runtime.dir/bench_node_runtime.cc.o"
  "CMakeFiles/bench_node_runtime.dir/bench_node_runtime.cc.o.d"
  "bench_node_runtime"
  "bench_node_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
