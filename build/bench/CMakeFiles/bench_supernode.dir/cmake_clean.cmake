file(REMOVE_RECURSE
  "CMakeFiles/bench_supernode.dir/bench_supernode.cc.o"
  "CMakeFiles/bench_supernode.dir/bench_supernode.cc.o.d"
  "bench_supernode"
  "bench_supernode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supernode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
