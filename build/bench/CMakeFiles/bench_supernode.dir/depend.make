# Empty dependencies file for bench_supernode.
# This may be replaced when dependencies are built.
