# Empty dependencies file for bench_table1_capacity.
# This may be replaced when dependencies are built.
