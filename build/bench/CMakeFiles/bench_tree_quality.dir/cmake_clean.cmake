file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_quality.dir/bench_tree_quality.cc.o"
  "CMakeFiles/bench_tree_quality.dir/bench_tree_quality.cc.o.d"
  "bench_tree_quality"
  "bench_tree_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
