file(REMOVE_RECURSE
  "CMakeFiles/conference.dir/conference.cc.o"
  "CMakeFiles/conference.dir/conference.cc.o.d"
  "conference"
  "conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
