file(REMOVE_RECURSE
  "CMakeFiles/game_lobby.dir/game_lobby.cc.o"
  "CMakeFiles/game_lobby.dir/game_lobby.cc.o.d"
  "game_lobby"
  "game_lobby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_lobby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
