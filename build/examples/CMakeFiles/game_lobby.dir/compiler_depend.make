# Empty compiler generated dependencies file for game_lobby.
# This may be replaced when dependencies are built.
