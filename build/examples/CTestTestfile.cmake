# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conference "/root/repo/build/examples/conference")
set_tests_properties(example_conference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_game_lobby "/root/repo/build/examples/game_lobby")
set_tests_properties(example_game_lobby PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_churn_study "/root/repo/build/examples/churn_study")
set_tests_properties(example_churn_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_driver "/root/repo/build/examples/sim_driver" "--peers=300" "--groups=2" "--csv")
set_tests_properties(example_sim_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
