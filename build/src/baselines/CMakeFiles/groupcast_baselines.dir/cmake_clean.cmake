file(REMOVE_RECURSE
  "CMakeFiles/groupcast_baselines.dir/centralized.cc.o"
  "CMakeFiles/groupcast_baselines.dir/centralized.cc.o.d"
  "CMakeFiles/groupcast_baselines.dir/chord.cc.o"
  "CMakeFiles/groupcast_baselines.dir/chord.cc.o.d"
  "CMakeFiles/groupcast_baselines.dir/narada.cc.o"
  "CMakeFiles/groupcast_baselines.dir/narada.cc.o.d"
  "CMakeFiles/groupcast_baselines.dir/nice.cc.o"
  "CMakeFiles/groupcast_baselines.dir/nice.cc.o.d"
  "CMakeFiles/groupcast_baselines.dir/scribe.cc.o"
  "CMakeFiles/groupcast_baselines.dir/scribe.cc.o.d"
  "libgroupcast_baselines.a"
  "libgroupcast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
