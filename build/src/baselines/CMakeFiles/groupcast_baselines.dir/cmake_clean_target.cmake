file(REMOVE_RECURSE
  "libgroupcast_baselines.a"
)
