# Empty dependencies file for groupcast_baselines.
# This may be replaced when dependencies are built.
