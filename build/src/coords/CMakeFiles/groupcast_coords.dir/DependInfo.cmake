
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coords/coord.cc" "src/coords/CMakeFiles/groupcast_coords.dir/coord.cc.o" "gcc" "src/coords/CMakeFiles/groupcast_coords.dir/coord.cc.o.d"
  "/root/repo/src/coords/gnp.cc" "src/coords/CMakeFiles/groupcast_coords.dir/gnp.cc.o" "gcc" "src/coords/CMakeFiles/groupcast_coords.dir/gnp.cc.o.d"
  "/root/repo/src/coords/nelder_mead.cc" "src/coords/CMakeFiles/groupcast_coords.dir/nelder_mead.cc.o" "gcc" "src/coords/CMakeFiles/groupcast_coords.dir/nelder_mead.cc.o.d"
  "/root/repo/src/coords/vivaldi.cc" "src/coords/CMakeFiles/groupcast_coords.dir/vivaldi.cc.o" "gcc" "src/coords/CMakeFiles/groupcast_coords.dir/vivaldi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/groupcast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
