file(REMOVE_RECURSE
  "CMakeFiles/groupcast_coords.dir/coord.cc.o"
  "CMakeFiles/groupcast_coords.dir/coord.cc.o.d"
  "CMakeFiles/groupcast_coords.dir/gnp.cc.o"
  "CMakeFiles/groupcast_coords.dir/gnp.cc.o.d"
  "CMakeFiles/groupcast_coords.dir/nelder_mead.cc.o"
  "CMakeFiles/groupcast_coords.dir/nelder_mead.cc.o.d"
  "CMakeFiles/groupcast_coords.dir/vivaldi.cc.o"
  "CMakeFiles/groupcast_coords.dir/vivaldi.cc.o.d"
  "libgroupcast_coords.a"
  "libgroupcast_coords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_coords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
