file(REMOVE_RECURSE
  "libgroupcast_coords.a"
)
