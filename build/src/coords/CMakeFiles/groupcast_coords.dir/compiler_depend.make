# Empty compiler generated dependencies file for groupcast_coords.
# This may be replaced when dependencies are built.
