
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advertisement.cc" "src/core/CMakeFiles/groupcast_core.dir/advertisement.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/advertisement.cc.o.d"
  "/root/repo/src/core/group_session.cc" "src/core/CMakeFiles/groupcast_core.dir/group_session.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/group_session.cc.o.d"
  "/root/repo/src/core/middleware.cc" "src/core/CMakeFiles/groupcast_core.dir/middleware.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/middleware.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/groupcast_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/node.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/groupcast_core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/replication.cc.o.d"
  "/root/repo/src/core/spanning_tree.cc" "src/core/CMakeFiles/groupcast_core.dir/spanning_tree.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/spanning_tree.cc.o.d"
  "/root/repo/src/core/subscription.cc" "src/core/CMakeFiles/groupcast_core.dir/subscription.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/subscription.cc.o.d"
  "/root/repo/src/core/transport.cc" "src/core/CMakeFiles/groupcast_core.dir/transport.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/transport.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/groupcast_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/groupcast_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/groupcast_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/groupcast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/groupcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/groupcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coords/CMakeFiles/groupcast_coords.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/groupcast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
