file(REMOVE_RECURSE
  "CMakeFiles/groupcast_core.dir/advertisement.cc.o"
  "CMakeFiles/groupcast_core.dir/advertisement.cc.o.d"
  "CMakeFiles/groupcast_core.dir/group_session.cc.o"
  "CMakeFiles/groupcast_core.dir/group_session.cc.o.d"
  "CMakeFiles/groupcast_core.dir/middleware.cc.o"
  "CMakeFiles/groupcast_core.dir/middleware.cc.o.d"
  "CMakeFiles/groupcast_core.dir/node.cc.o"
  "CMakeFiles/groupcast_core.dir/node.cc.o.d"
  "CMakeFiles/groupcast_core.dir/replication.cc.o"
  "CMakeFiles/groupcast_core.dir/replication.cc.o.d"
  "CMakeFiles/groupcast_core.dir/spanning_tree.cc.o"
  "CMakeFiles/groupcast_core.dir/spanning_tree.cc.o.d"
  "CMakeFiles/groupcast_core.dir/subscription.cc.o"
  "CMakeFiles/groupcast_core.dir/subscription.cc.o.d"
  "CMakeFiles/groupcast_core.dir/transport.cc.o"
  "CMakeFiles/groupcast_core.dir/transport.cc.o.d"
  "CMakeFiles/groupcast_core.dir/wire.cc.o"
  "CMakeFiles/groupcast_core.dir/wire.cc.o.d"
  "libgroupcast_core.a"
  "libgroupcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
