file(REMOVE_RECURSE
  "libgroupcast_core.a"
)
