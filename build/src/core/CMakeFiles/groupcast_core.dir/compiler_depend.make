# Empty compiler generated dependencies file for groupcast_core.
# This may be replaced when dependencies are built.
