file(REMOVE_RECURSE
  "CMakeFiles/groupcast_utility.dir/utility.cc.o"
  "CMakeFiles/groupcast_utility.dir/utility.cc.o.d"
  "libgroupcast_utility.a"
  "libgroupcast_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
