file(REMOVE_RECURSE
  "libgroupcast_utility.a"
)
