# Empty dependencies file for groupcast_utility.
# This may be replaced when dependencies are built.
