file(REMOVE_RECURSE
  "CMakeFiles/groupcast_metrics.dir/esm_metrics.cc.o"
  "CMakeFiles/groupcast_metrics.dir/esm_metrics.cc.o.d"
  "CMakeFiles/groupcast_metrics.dir/experiment.cc.o"
  "CMakeFiles/groupcast_metrics.dir/experiment.cc.o.d"
  "CMakeFiles/groupcast_metrics.dir/graph_stats.cc.o"
  "CMakeFiles/groupcast_metrics.dir/graph_stats.cc.o.d"
  "libgroupcast_metrics.a"
  "libgroupcast_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
