file(REMOVE_RECURSE
  "libgroupcast_metrics.a"
)
