# Empty dependencies file for groupcast_metrics.
# This may be replaced when dependencies are built.
