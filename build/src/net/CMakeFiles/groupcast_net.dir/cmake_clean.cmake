file(REMOVE_RECURSE
  "CMakeFiles/groupcast_net.dir/multicast.cc.o"
  "CMakeFiles/groupcast_net.dir/multicast.cc.o.d"
  "CMakeFiles/groupcast_net.dir/routing.cc.o"
  "CMakeFiles/groupcast_net.dir/routing.cc.o.d"
  "CMakeFiles/groupcast_net.dir/topology.cc.o"
  "CMakeFiles/groupcast_net.dir/topology.cc.o.d"
  "libgroupcast_net.a"
  "libgroupcast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
