file(REMOVE_RECURSE
  "libgroupcast_net.a"
)
