# Empty compiler generated dependencies file for groupcast_net.
# This may be replaced when dependencies are built.
