
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/bootstrap.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/bootstrap.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/bootstrap.cc.o.d"
  "/root/repo/src/overlay/churn.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/churn.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/churn.cc.o.d"
  "/root/repo/src/overlay/graph.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/graph.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/graph.cc.o.d"
  "/root/repo/src/overlay/host_cache.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/host_cache.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/host_cache.cc.o.d"
  "/root/repo/src/overlay/maintenance.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/maintenance.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/maintenance.cc.o.d"
  "/root/repo/src/overlay/peer.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/peer.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/peer.cc.o.d"
  "/root/repo/src/overlay/plod.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/plod.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/plod.cc.o.d"
  "/root/repo/src/overlay/population.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/population.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/population.cc.o.d"
  "/root/repo/src/overlay/search.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/search.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/search.cc.o.d"
  "/root/repo/src/overlay/supernode.cc" "src/overlay/CMakeFiles/groupcast_overlay.dir/supernode.cc.o" "gcc" "src/overlay/CMakeFiles/groupcast_overlay.dir/supernode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/groupcast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/groupcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coords/CMakeFiles/groupcast_coords.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/groupcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/groupcast_utility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
