file(REMOVE_RECURSE
  "CMakeFiles/groupcast_overlay.dir/bootstrap.cc.o"
  "CMakeFiles/groupcast_overlay.dir/bootstrap.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/churn.cc.o"
  "CMakeFiles/groupcast_overlay.dir/churn.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/graph.cc.o"
  "CMakeFiles/groupcast_overlay.dir/graph.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/host_cache.cc.o"
  "CMakeFiles/groupcast_overlay.dir/host_cache.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/maintenance.cc.o"
  "CMakeFiles/groupcast_overlay.dir/maintenance.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/peer.cc.o"
  "CMakeFiles/groupcast_overlay.dir/peer.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/plod.cc.o"
  "CMakeFiles/groupcast_overlay.dir/plod.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/population.cc.o"
  "CMakeFiles/groupcast_overlay.dir/population.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/search.cc.o"
  "CMakeFiles/groupcast_overlay.dir/search.cc.o.d"
  "CMakeFiles/groupcast_overlay.dir/supernode.cc.o"
  "CMakeFiles/groupcast_overlay.dir/supernode.cc.o.d"
  "libgroupcast_overlay.a"
  "libgroupcast_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
