file(REMOVE_RECURSE
  "libgroupcast_overlay.a"
)
