# Empty compiler generated dependencies file for groupcast_overlay.
# This may be replaced when dependencies are built.
