file(REMOVE_RECURSE
  "CMakeFiles/groupcast_sim.dir/simulator.cc.o"
  "CMakeFiles/groupcast_sim.dir/simulator.cc.o.d"
  "libgroupcast_sim.a"
  "libgroupcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
