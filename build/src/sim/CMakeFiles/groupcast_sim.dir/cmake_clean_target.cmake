file(REMOVE_RECURSE
  "libgroupcast_sim.a"
)
