# Empty compiler generated dependencies file for groupcast_sim.
# This may be replaced when dependencies are built.
