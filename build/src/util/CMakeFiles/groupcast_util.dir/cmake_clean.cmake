file(REMOVE_RECURSE
  "CMakeFiles/groupcast_util.dir/distributions.cc.o"
  "CMakeFiles/groupcast_util.dir/distributions.cc.o.d"
  "CMakeFiles/groupcast_util.dir/flags.cc.o"
  "CMakeFiles/groupcast_util.dir/flags.cc.o.d"
  "CMakeFiles/groupcast_util.dir/rng.cc.o"
  "CMakeFiles/groupcast_util.dir/rng.cc.o.d"
  "CMakeFiles/groupcast_util.dir/stats.cc.o"
  "CMakeFiles/groupcast_util.dir/stats.cc.o.d"
  "libgroupcast_util.a"
  "libgroupcast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupcast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
