file(REMOVE_RECURSE
  "libgroupcast_util.a"
)
