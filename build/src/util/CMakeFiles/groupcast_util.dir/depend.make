# Empty dependencies file for groupcast_util.
# This may be replaced when dependencies are built.
