
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advertisement_sweep_test.cc" "tests/CMakeFiles/groupcast_tests.dir/advertisement_sweep_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/advertisement_sweep_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/groupcast_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/config_matrix_test.cc" "tests/CMakeFiles/groupcast_tests.dir/config_matrix_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/config_matrix_test.cc.o.d"
  "/root/repo/tests/coordinate_systems_test.cc" "tests/CMakeFiles/groupcast_tests.dir/coordinate_systems_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/coordinate_systems_test.cc.o.d"
  "/root/repo/tests/coords_test.cc" "tests/CMakeFiles/groupcast_tests.dir/coords_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/coords_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/groupcast_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/lossy_session_test.cc" "tests/CMakeFiles/groupcast_tests.dir/lossy_session_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/lossy_session_test.cc.o.d"
  "/root/repo/tests/membership_test.cc" "tests/CMakeFiles/groupcast_tests.dir/membership_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/membership_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/groupcast_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/middleware_test.cc" "tests/CMakeFiles/groupcast_tests.dir/middleware_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/middleware_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/groupcast_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/nice_test.cc" "tests/CMakeFiles/groupcast_tests.dir/nice_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/nice_test.cc.o.d"
  "/root/repo/tests/node_test.cc" "tests/CMakeFiles/groupcast_tests.dir/node_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/node_test.cc.o.d"
  "/root/repo/tests/overlay_test.cc" "tests/CMakeFiles/groupcast_tests.dir/overlay_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/overlay_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/groupcast_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/groupcast_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/regression_test.cc" "tests/CMakeFiles/groupcast_tests.dir/regression_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/regression_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/groupcast_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/groupcast_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/groupcast_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/groupcast_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/supernode_test.cc" "tests/CMakeFiles/groupcast_tests.dir/supernode_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/supernode_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/groupcast_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/utility_test.cc" "tests/CMakeFiles/groupcast_tests.dir/utility_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/utility_test.cc.o.d"
  "/root/repo/tests/waxman_test.cc" "tests/CMakeFiles/groupcast_tests.dir/waxman_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/waxman_test.cc.o.d"
  "/root/repo/tests/wire_test.cc" "tests/CMakeFiles/groupcast_tests.dir/wire_test.cc.o" "gcc" "tests/CMakeFiles/groupcast_tests.dir/wire_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/groupcast_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/groupcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/groupcast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/groupcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coords/CMakeFiles/groupcast_coords.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/groupcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/groupcast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/groupcast_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/groupcast_utility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
