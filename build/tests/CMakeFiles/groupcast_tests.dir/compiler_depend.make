# Empty compiler generated dependencies file for groupcast_tests.
# This may be replaced when dependencies are built.
