// Churn study: overlay resilience under peer arrivals, departures and
// crashes, with the epoch-based maintenance protocol repairing links.
//
// The paper's motivation for building on *unstructured* overlays is their
// resilience to churn (Section 1).  This example drives a 600-peer overlay
// through an hour of simulated churn (exponential arrivals and session
// lengths, 30% ungraceful failures), runs the heartbeat/epoch maintenance
// protocol, and reports connectivity and repair statistics before and
// after.
#include <cstdio>

#include "core/middleware.h"
#include "overlay/churn.h"
#include "overlay/maintenance.h"

int main() {
  using namespace groupcast;

  core::MiddlewareConfig config;
  config.peer_count = 600;
  config.seed = 99;
  config.overlay = core::OverlayKind::kGroupCast;
  core::GroupCastMiddleware middleware(config);

  const auto before = middleware.graph().connectivity();
  std::printf("initial overlay: %zu edges, connected=%s\n",
              middleware.graph().edge_count(),
              before.connected ? "yes" : "no");

  // Churn: half the population departs/rejoins over the hour with mean
  // session of 8 minutes; 30% of departures are crashes.
  overlay::ChurnOptions churn_options;
  churn_options.mean_interarrival = sim::SimTime::seconds(4.0);
  churn_options.mean_session = sim::SimTime::seconds(480.0);
  churn_options.failure_fraction = 0.3;

  // Rotate a window of peers: leave 300 members stable, churn the rest.
  std::vector<overlay::PeerId> churners;
  for (overlay::PeerId p = 300; p < 600; ++p) {
    middleware.bootstrap().leave(p);  // re-enter through the churn model
    churners.push_back(p);
  }

  overlay::ChurnModel churn(middleware.simulator(), middleware.bootstrap(),
                            churn_options, middleware.rng());
  churn.start(churners);

  overlay::MaintenanceOptions maintenance_options;
  maintenance_options.heartbeat_interval = sim::SimTime::seconds(15.0);
  maintenance_options.epoch = sim::SimTime::seconds(60.0);
  overlay::MaintenanceProtocol maintenance(
      middleware.simulator(), middleware.population(),
      middleware.mutable_graph(), middleware.bootstrap(),
      maintenance_options);
  const auto horizon = sim::SimTime::seconds(3600.0);
  maintenance.start(horizon);

  middleware.simulator().run_until(horizon);

  const auto& cs = churn.stats();
  const auto& ms = maintenance.stats();
  std::printf("churn hour: %zu joins, %zu graceful leaves, %zu crashes\n",
              cs.joins, cs.graceful_leaves, cs.failures);
  std::printf("maintenance: %zu epochs, %zu heartbeats, %zu dead links "
              "removed, %zu links repaired (final epoch %.0fs)\n",
              ms.epochs, ms.heartbeat_messages, ms.dead_links_removed,
              ms.links_repaired,
              maintenance.current_epoch_length().as_seconds());

  // Connectivity over the members that are currently joined.
  std::size_t members = 0, isolated = 0;
  for (overlay::PeerId p = 0; p < 600; ++p) {
    if (!middleware.bootstrap().is_joined(p)) continue;
    ++members;
    if (middleware.graph().degree(p) == 0) ++isolated;
  }
  std::printf("after churn: %zu members, %zu isolated, %zu edges\n", members,
              isolated, middleware.graph().edge_count());

  // A group still works after the storm.  Subscribers are drawn from the
  // peers that are actually members now.
  std::vector<overlay::PeerId> alive;
  for (overlay::PeerId p = 0; p < 600; ++p) {
    if (middleware.bootstrap().is_joined(p)) alive.push_back(p);
  }
  std::vector<overlay::PeerId> subscribers;
  for (const auto idx : middleware.rng().sample_indices(alive.size(), 40)) {
    subscribers.push_back(alive[idx]);
  }
  const auto rendezvous = middleware.pick_rendezvous();
  auto group = middleware.establish_group(rendezvous, subscribers);
  std::printf("post-churn group: %.0f%% subscription success, tree depth "
              "%zu\n",
              100.0 * group.report.success_rate(), group.tree.max_depth());
  return 0;
}
