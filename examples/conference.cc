// Conference: a multi-party real-time conference on GroupCast.
//
// Models the paper's motivating scenario (Skype-style conferencing beyond
// 6 participants): a moderator starts a conference, participants subscribe
// through the middleware, and *every* participant speaks — group
// communication, not single-source multicast.  For each speaker the
// example measures mouth-to-ear delay to all listeners and the forwarding
// load placed on relay peers, then contrasts the same conference run
// naively (full-mesh unicast, what Skype's early releases did).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"

int main() {
  using namespace groupcast;

  core::MiddlewareConfig config;
  config.peer_count = 800;
  config.seed = 42;
  config.overlay = core::OverlayKind::kGroupCast;
  core::GroupCastMiddleware middleware(config);

  // A 24-party conference: moderator plus 23 participants.
  const std::size_t parties = 24;
  const auto moderator = middleware.pick_rendezvous();
  std::vector<overlay::PeerId> participants;
  for (const auto idx :
       middleware.rng().sample_indices(config.peer_count, parties * 2)) {
    const auto peer = static_cast<overlay::PeerId>(idx);
    if (peer != moderator && participants.size() + 1 < parties) {
      participants.push_back(peer);
    }
  }
  std::printf("conference: moderator %u + %zu participants over %zu peers\n",
              moderator, participants.size(), config.peer_count);

  auto group = middleware.establish_group(moderator, participants);
  std::printf("setup: %.0f%% joins succeeded, tree %zu nodes / depth %zu, "
              "%zu signalling messages\n",
              100.0 * group.report.success_rate(), group.tree.node_count(),
              group.tree.max_depth(),
              group.advert.messages + group.report.total_messages());

  // Every participant speaks once; collect mouth-to-ear latencies.
  const auto session = middleware.session(group);
  double worst = 0.0, total = 0.0;
  std::size_t n = 0;
  std::size_t total_copies = 0;
  for (const auto speaker : participants) {
    if (!group.tree.contains(speaker)) continue;
    const auto r = session.disseminate(speaker);
    for (const auto& [listener, delay] : r.subscriber_delay_ms) {
      total += delay;
      worst = std::max(worst, delay);
      ++n;
    }
    total_copies += r.payload_messages;
  }
  std::printf("speaking round: avg mouth-to-ear %.1f ms, worst %.1f ms\n",
              total / static_cast<double>(n), worst);

  // Per-speaker uplink cost on the tree vs the full mesh Skype used.
  const double tree_copies_per_speaker =
      static_cast<double>(total_copies) /
      static_cast<double>(participants.size());
  std::printf("uplink: tree forwards %.1f copies per spoken packet "
              "network-wide;\n        full-mesh unicast would need %zu "
              "uplink copies *from every speaker*\n",
              tree_copies_per_speaker, parties - 1);

  // Who carries the load?  Show the capacity classes of the relays.
  std::size_t weak_relays = 0, strong_relays = 0;
  for (const auto node : group.tree.nodes()) {
    if (group.tree.children(node).empty()) continue;
    if (middleware.population().info(node).capacity <= 10.0) {
      ++weak_relays;
    } else {
      ++strong_relays;
    }
  }
  std::printf("relays: %zu high-capacity vs %zu weak — the utility function "
              "steers forwarding onto capable peers\n",
              strong_relays, weak_relays);
  return 0;
}
