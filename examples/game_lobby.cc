// Game lobby: many concurrent communication groups over one overlay.
//
// A multiplayer-game style workload (another of the paper's motivating
// applications): one 1200-peer overlay hosts 12 independent match lobbies,
// each with its own rendezvous point, spanning tree, and chat/state
// traffic.  The example shows that groups share the overlay without
// sharing trees, and compares aggregate load between SSA and NSSA
// announcements on the same deployment.
#include <cstdio>
#include <vector>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"

namespace {

struct LobbyRun {
  std::size_t signalling_messages = 0;
  double avg_delay_ms = 0.0;
  double overload = 0.0;
  std::size_t lobbies = 0;
};

LobbyRun run_lobbies(groupcast::core::GroupCastMiddleware& middleware,
                     std::size_t lobby_count, std::size_t lobby_size) {
  using namespace groupcast;
  LobbyRun out;
  out.lobbies = lobby_count;
  for (std::size_t l = 0; l < lobby_count; ++l) {
    auto group = middleware.establish_random_group(lobby_size);
    out.signalling_messages +=
        group.advert.messages + group.report.total_messages();
    const auto session = middleware.session(group);
    const auto esm = metrics::evaluate_session(
        middleware.population(), session, group.advert.rendezvous);
    out.avg_delay_ms += esm.esm_avg_delay_ms / lobby_count;
    out.overload += esm.overload_index / lobby_count;
  }
  return out;
}

}  // namespace

int main() {
  using namespace groupcast;

  for (const auto scheme : {core::AnnouncementScheme::kSsaUtility,
                            core::AnnouncementScheme::kNssa}) {
    core::MiddlewareConfig config;
    config.peer_count = 1200;
    config.seed = 1234;
    config.overlay = core::OverlayKind::kGroupCast;
    config.advertisement.scheme = scheme;
    core::GroupCastMiddleware middleware(config);

    const auto run = run_lobbies(middleware, 12, 30);
    std::printf("[%s] %zu lobbies x 30 players on a %zu-peer overlay\n",
                core::to_string(scheme), run.lobbies, config.peer_count);
    std::printf("  total signalling: %zu messages (%.1f per lobby)\n",
                run.signalling_messages,
                static_cast<double>(run.signalling_messages) / run.lobbies);
    std::printf("  avg in-lobby delay: %.1f ms, overload index %.4f\n\n",
                run.avg_delay_ms, run.overload);
  }
  std::printf("SSA keeps lobby setup cheap; the same overlay serves all "
              "lobbies concurrently.\n");
  return 0;
}
