// Quickstart: bring up a GroupCast deployment, establish one communication
// group, and multicast a payload through it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"

int main() {
  using namespace groupcast;

  // 1. Configure a 500-peer deployment on a transit-stub underlay.
  core::MiddlewareConfig config;
  config.peer_count = 500;
  config.seed = 7;
  config.overlay = core::OverlayKind::kGroupCast;

  std::printf("Building a %zu-peer GroupCast deployment...\n",
              config.peer_count);
  core::GroupCastMiddleware middleware(config);

  const auto connectivity = middleware.graph().connectivity();
  std::printf("overlay: %zu edges, connected=%s\n",
              middleware.graph().edge_count(),
              connectivity.connected ? "yes" : "no");

  // 2. Pick a rendezvous point with a capability-seeking random walk and
  //    subscribe 50 random peers.
  const auto rendezvous = middleware.pick_rendezvous();
  std::printf("rendezvous peer %u (capacity %.0fx)\n", rendezvous,
              middleware.population().info(rendezvous).capacity);

  std::vector<overlay::PeerId> subscribers;
  for (const auto idx : middleware.rng().sample_indices(config.peer_count, 50)) {
    if (static_cast<overlay::PeerId>(idx) != rendezvous) {
      subscribers.push_back(static_cast<overlay::PeerId>(idx));
    }
  }
  auto group = middleware.establish_group(rendezvous, subscribers);
  std::printf("advertisement reached %.1f%% of peers with %zu messages\n",
              100.0 * group.advert.receiving_rate(), group.advert.messages);
  std::printf("subscriptions: %.1f%% success, avg lookup %.1f ms\n",
              100.0 * group.report.success_rate(),
              group.report.average_response_time_ms());
  std::printf("spanning tree: %zu nodes (%zu subscribers), depth %zu\n",
              group.tree.node_count(), group.tree.subscriber_count(),
              group.tree.max_depth());

  // 3. Send a payload from the rendezvous point and evaluate the session.
  const auto session = middleware.session(group);
  const auto esm =
      metrics::evaluate_session(middleware.population(), session, rendezvous);
  std::printf("payload dissemination:\n");
  std::printf("  avg delay %.1f ms (IP multicast %.1f ms) -> penalty %.2f\n",
              esm.esm_avg_delay_ms, esm.ip_avg_delay_ms, esm.delay_penalty);
  std::printf("  link stress %.2f, node stress %.2f, overload index %.4f\n",
              esm.link_stress, esm.node_stress, esm.overload_index);
  return 0;
}
