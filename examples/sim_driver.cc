// sim_driver — the command-line experiment driver.
//
// Runs a configurable GroupCast scenario and prints either a human
// summary or a CSV row, so parameter sweeps can be scripted without
// writing C++:
//
//   ./sim_driver --peers=4000 --overlay=groupcast --scheme=ssa
//                --groups=10 --group-size=400 --seed=1 --csv
//
// With --trace_out=<path> the run also writes a JSONL protocol trace
// (see docs/OBSERVABILITY.md) that tools/trace_report summarizes.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "metrics/experiment.h"
#include "trace/sink.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace {

using namespace groupcast;

core::OverlayKind parse_overlay(const std::string& name) {
  if (name == "groupcast") return core::OverlayKind::kGroupCast;
  if (name == "random" || name == "plod") {
    return core::OverlayKind::kRandomPowerLaw;
  }
  if (name == "supernode") return core::OverlayKind::kSupernode;
  std::fprintf(stderr, "unknown overlay '%s' (groupcast|random|supernode)\n",
               name.c_str());
  std::exit(2);
}

core::AnnouncementScheme parse_scheme(const std::string& name) {
  if (name == "ssa") return core::AnnouncementScheme::kSsaUtility;
  if (name == "ssa-random") return core::AnnouncementScheme::kSsaRandom;
  if (name == "nssa") return core::AnnouncementScheme::kNssa;
  std::fprintf(stderr, "unknown scheme '%s' (ssa|ssa-random|nssa)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.declare("peers", "overlay size", "1000");
  flags.declare("overlay", "groupcast | random | supernode", "groupcast");
  flags.declare("scheme", "ssa | ssa-random | nssa", "ssa");
  flags.declare("groups", "communication groups to establish", "10");
  flags.declare("group-size", "subscribers per group (0 = peers/10)", "0");
  flags.declare("seed", "base RNG seed", "1");
  flags.declare("topologies", "independent repetitions (seed, seed+1, ...)",
                "1");
  flags.declare("jobs",
                "worker threads for the repetitions (0 = all hardware "
                "threads); results are identical for any value",
                "1");
  flags.declare("fraction", "SSA forwarding fraction", "0.35");
  flags.declare("ttl", "advertisement TTL", "8");
  flags.declare("ripple-ttl", "subscription ripple-search TTL", "2");
  flags.declare("csv", "emit one CSV row instead of the summary", "false");
  flags.declare("csv-header", "print the CSV header line and exit", "false");
  flags.declare("trace_out", "write a JSONL protocol trace to this path", "");
  flags.declare("recovery",
                "run the node-runtime churn/recovery harness instead of the "
                "engine pipeline",
                "false");
  flags.declare("loss", "recovery: per-message loss probability", "0");
  flags.declare("crash", "recovery: fraction of subscribers crashed", "0");
  flags.declare("graceful", "recovery: fraction leaving gracefully", "0");
  flags.declare("reliable",
                "recovery: NACK/retransmit reliability on tree edges",
                "false");
  flags.declare("flow-control",
                "recovery: sender-side flow control on reliable edges "
                "(requires --reliable)",
                "false");
  flags.declare("window",
                "recovery: sender window per reliable edge, in sequences",
                "32");
  flags.declare("adaptive",
                "recovery: adaptive failure detection and NACK cadence",
                "false");
  flags.declare("replicas",
                "recovery: rendezvous replica-set size; > 0 enables leased "
                "leadership and quorum handoff",
                "0");
  flags.declare("lease-ms",
                "recovery: lease renewal interval in milliseconds "
                "(requires --replicas)",
                "500");
  flags.declare("partition",
                "recovery: cut the rendezvous-side subtree off for this "
                "many seconds mid-run (requires --replicas)",
                "0");
  flags.declare("shards",
                "recovery/streaming: worker shards for the event kernel "
                "(1 = the classic single wheel; >= 2 runs router-sharded, "
                "byte-identical at every shard count >= 2)",
                "1");
  flags.declare("streaming",
                "run the live-streaming workload harness instead of the "
                "engine pipeline (--loss/--reliable/--flow-control/"
                "--adaptive ride along)",
                "false");
  flags.declare("chunks", "streaming: chunks per publisher", "50");
  flags.declare("chunk-interval-ms", "streaming: publisher cadence", "100");
  flags.declare("chunk-bytes", "streaming: simulated chunk size", "16384");
  flags.declare("chunk-deadline-ms",
                "streaming: playback deadline after each chunk's publish "
                "instant",
                "2000");
  flags.declare("uplink-kbps",
                "streaming: per-peer uplink cap in kbit/s (0 = uncapped)",
                "0");
  flags.declare("downlink-kbps",
                "streaming: per-peer downlink cap in kbit/s (0 = uncapped)",
                "0");
  flags.declare("cap-capacity",
                "streaming: scale both caps by each peer's capacity class",
                "false");
  flags.declare("publishers", "streaming: concurrent sources (streams)",
                "1");
  flags.declare("multi-source",
                "streaming: tree layout for k publishers "
                "(shared | per-source)",
                "shared");
  flags.declare("flash-joins",
                "streaming: peers joining mid-stream against the warm tree",
                "0");
  flags.declare("flash-seconds",
                "streaming: window the flash joins spread over", "1");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.help(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help(argv[0]).c_str());
    return 0;
  }
  if (flags.get_bool("csv-header")) {
    std::printf("peers,overlay,scheme,groups,group_size,seed,topologies,"
                "adv_messages,sub_messages,receiving_rate,success_rate,"
                "lookup_ms,delay_penalty,link_stress,node_stress,"
                "overload_index\n");
    return 0;
  }

  metrics::ScenarioConfig config;
  config.peer_count = static_cast<std::size_t>(flags.get_int("peers"));
  config.overlay = parse_overlay(flags.get_string("overlay"));
  config.scheme = parse_scheme(flags.get_string("scheme"));
  config.groups = static_cast<std::size_t>(flags.get_int("groups"));
  config.group_size = static_cast<std::size_t>(flags.get_int("group-size"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.forward_fraction = flags.get_double("fraction");
  config.advertisement_ttl = static_cast<std::size_t>(flags.get_int("ttl"));
  config.ripple_ttl = static_cast<std::size_t>(flags.get_int("ripple-ttl"));
  config.recovery.enabled = flags.get_bool("recovery");
  config.recovery.loss_probability = flags.get_double("loss");
  config.recovery.crash_fraction = flags.get_double("crash");
  config.recovery.graceful_fraction = flags.get_double("graceful");
  config.recovery.reliable_data = flags.get_bool("reliable");
  config.recovery.flow_control = flags.get_bool("flow-control");
  config.recovery.flow_window =
      static_cast<std::size_t>(flags.get_int("window"));
  config.recovery.adaptive = flags.get_bool("adaptive");
  const auto replicas =
      static_cast<std::size_t>(std::max<std::int64_t>(0,
                                                      flags.get_int("replicas")));
  config.recovery.replication = replicas > 0;
  if (replicas > 0) config.recovery.replicas = replicas;
  config.recovery.lease_seconds = flags.get_double("lease-ms") / 1000.0;
  config.recovery.partition_seconds = flags.get_double("partition");
  config.streaming.enabled = flags.get_bool("streaming");
  if (config.recovery.enabled && config.streaming.enabled) {
    std::fprintf(stderr,
                 "sim_driver: --recovery and --streaming are mutually "
                 "exclusive harnesses\n");
    return 2;
  }
  if (config.streaming.enabled) {
    // The node-runtime riders migrate over: the streaming harness shares
    // the loss / reliability / flow-control / adaptive knobs.
    config.streaming.loss_probability = config.recovery.loss_probability;
    config.streaming.reliable_data = config.recovery.reliable_data;
    config.streaming.flow_control = config.recovery.flow_control;
    config.streaming.adaptive = config.recovery.adaptive;
    config.streaming.chunks =
        static_cast<std::size_t>(flags.get_int("chunks"));
    config.streaming.chunk_interval_seconds =
        flags.get_double("chunk-interval-ms") / 1000.0;
    config.streaming.chunk_bytes =
        static_cast<std::size_t>(flags.get_int("chunk-bytes"));
    config.streaming.deadline_seconds =
        flags.get_double("chunk-deadline-ms") / 1000.0;
    config.streaming.uplink_kbps = flags.get_double("uplink-kbps");
    config.streaming.downlink_kbps = flags.get_double("downlink-kbps");
    config.streaming.scale_caps_with_capacity =
        flags.get_bool("cap-capacity");
    config.streaming.sources.publishers =
        static_cast<std::size_t>(flags.get_int("publishers"));
    const std::string layout = flags.get_string("multi-source");
    if (layout == "shared") {
      config.streaming.sources.mode =
          metrics::MultiSourceOptions::Mode::kSharedTree;
    } else if (layout == "per-source") {
      config.streaming.sources.mode =
          metrics::MultiSourceOptions::Mode::kPerSourceTrees;
    } else {
      std::fprintf(stderr,
                   "sim_driver: unknown --multi-source '%s' "
                   "(shared | per-source)\n",
                   layout.c_str());
      return 2;
    }
    config.streaming.flash_crowd_joins =
        static_cast<std::size_t>(flags.get_int("flash-joins"));
    config.streaming.flash_crowd_seconds = flags.get_double("flash-seconds");
  } else {
    // Streaming-only flags without --streaming would be silently ignored;
    // refuse loudly so a sweep never mistakes the clean run for results.
    const char* stray = nullptr;
    if (flags.get_int("chunks") != 50) stray = "--chunks";
    if (flags.get_double("chunk-interval-ms") != 100.0) {
      stray = "--chunk-interval-ms";
    }
    if (flags.get_int("chunk-bytes") != 16384) stray = "--chunk-bytes";
    if (flags.get_double("chunk-deadline-ms") != 2000.0) {
      stray = "--chunk-deadline-ms";
    }
    if (flags.get_double("uplink-kbps") != 0.0) stray = "--uplink-kbps";
    if (flags.get_double("downlink-kbps") != 0.0) stray = "--downlink-kbps";
    if (flags.get_bool("cap-capacity")) stray = "--cap-capacity";
    if (flags.get_int("publishers") != 1) stray = "--publishers";
    if (flags.get_string("multi-source") != "shared") {
      stray = "--multi-source";
    }
    if (flags.get_int("flash-joins") != 0) stray = "--flash-joins";
    if (flags.get_double("flash-seconds") != 1.0) stray = "--flash-seconds";
    if (stray != nullptr) {
      std::fprintf(stderr,
                   "sim_driver: %s only takes effect with --streaming (the "
                   "other pipelines would silently ignore it)\n",
                   stray);
      return 2;
    }
  }
  if (!config.recovery.enabled) {
    // Node-runtime flags without --recovery (or --streaming for the
    // shared riders) would be silently ignored — the engine pipeline has
    // no loss, churn, or reliable data path; refuse loudly so a sweep
    // never mistakes the clean run for results.
    const char* stray = nullptr;
    if (!config.streaming.enabled) {
      if (config.recovery.loss_probability != 0.0) stray = "--loss";
      if (config.recovery.reliable_data) stray = "--reliable";
      if (config.recovery.flow_control) stray = "--flow-control";
      if (config.recovery.adaptive) stray = "--adaptive";
    }
    if (config.recovery.crash_fraction != 0.0) stray = "--crash";
    if (config.recovery.graceful_fraction != 0.0) stray = "--graceful";
    if (config.recovery.replication) stray = "--replicas";
    if (config.recovery.partition_seconds != 0.0) stray = "--partition";
    if (stray != nullptr) {
      std::fprintf(stderr,
                   "sim_driver: %s only takes effect with --recovery%s\n",
                   stray,
                   config.streaming.enabled
                       ? ""
                       : " or --streaming (the engine pipeline would "
                         "silently ignore it)");
      return 2;
    }
  }
  if (config.recovery.flow_control && !config.recovery.reliable_data) {
    std::fprintf(stderr,
                 "sim_driver: --flow-control requires --reliable (the "
                 "window rides on the reliable sequence space)\n");
    return 2;
  }
  if (config.recovery.partition_seconds != 0.0 &&
      !config.recovery.replication) {
    std::fprintf(stderr,
                 "sim_driver: --partition requires --replicas (without a "
                 "replica set the minority side has no rendezvous to fail "
                 "over to)\n");
    return 2;
  }
  if (config.recovery.replication && config.recovery.lease_seconds <= 0.0) {
    std::fprintf(stderr,
                 "sim_driver: --lease-ms must be positive when --replicas "
                 "is set\n");
    return 2;
  }
  const std::int64_t shards_raw = flags.get_int("shards");
  if (shards_raw < 1 ||
      static_cast<std::size_t>(shards_raw) > config.peer_count) {
    std::fprintf(stderr,
                 "sim_driver: --shards must be between 1 and --peers "
                 "(got %lld for %zu peers)\n",
                 static_cast<long long>(shards_raw), config.peer_count);
    return 2;
  }
  config.shards = static_cast<std::size_t>(shards_raw);
  if (config.shards > 1 && !config.recovery.enabled &&
      !config.streaming.enabled) {
    std::fprintf(stderr,
                 "sim_driver: --shards only takes effect with --recovery "
                 "or --streaming (the engine pipeline runs on the single "
                 "wheel)\n");
    return 2;
  }
  const auto topologies =
      static_cast<std::size_t>(flags.get_int("topologies"));
  const auto jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("jobs")));

  const std::string trace_path = flags.get_string("trace_out");
  if (!trace_path.empty() && config.shards > 1) {
    // A JSONL trace is one thread's totally-ordered event stream; a
    // sharded run fires events on several workers at once and has no
    // such stream to record.  Refuse loudly (mirrors the --jobs rule).
    std::fprintf(stderr,
                 "sim_driver: --trace_out requires --shards=1 (a sharded "
                 "run has no single totally-ordered event stream to "
                 "trace)\n");
    return 2;
  }
  if (!trace_path.empty() && jobs != 1) {
    // A JSONL trace records one run's event stream through the calling
    // thread's sink; worker-pool repetitions run against isolated
    // registries and would silently contribute nothing.  Refuse instead.
    std::fprintf(stderr,
                 "sim_driver: --trace_out requires --jobs=1 (worker-pool "
                 "runs bypass the calling thread's trace sink)\n");
    return 2;
  }
  std::unique_ptr<trace::ScopedSink> tracing;
  if (!trace_path.empty()) {
    tracing = std::make_unique<trace::ScopedSink>(
        std::make_unique<trace::JsonlFileSink>(trace_path));
    trace::counters().enable(config.peer_count);
    trace::histograms().enable();
    trace::flight_recorder().enable();
  }

  const auto r = metrics::run_scenario_averaged(config, topologies, jobs);

  std::size_t trace_events = 0;
  if (tracing != nullptr) {
    trace::emit_counter_snapshot();
    trace::emit_histogram_snapshot();
    trace::emit_timeline();
    trace_events =
        static_cast<trace::JsonlFileSink*>(tracing->get())->recorded();
    tracing.reset();  // flush + close before reporting
    trace::counters().disable();
    trace::histograms().disable();
    trace::flight_recorder().disable();
  }

  if (flags.get_bool("csv")) {
    std::printf("%zu,%s,%s,%zu,%zu,%llu,%zu,%.1f,%.1f,%.4f,%.4f,%.2f,%.4f,"
                "%.4f,%.4f,%.6f\n",
                config.peer_count, core::to_string(config.overlay),
                core::to_string(config.scheme), config.groups,
                config.effective_group_size(),
                static_cast<unsigned long long>(config.seed), topologies,
                r.advertisement_messages, r.subscription_messages,
                r.receiving_rate, r.subscription_success_rate,
                r.lookup_latency_ms, r.delay_penalty, r.link_stress,
                r.node_stress, r.overload_index);
    return 0;
  }

  std::printf("GroupCast scenario: %zu peers, %s overlay, %s, %zu groups x "
              "%zu subscribers, %zu topologies (seed %llu)\n",
              config.peer_count, core::to_string(config.overlay),
              core::to_string(config.scheme), config.groups,
              config.effective_group_size(), topologies,
              static_cast<unsigned long long>(config.seed));
  std::printf("  messages/group: %.0f advertisement + %.0f subscription\n",
              r.advertisement_messages, r.subscription_messages);
  std::printf("  receiving rate %.1f%%, subscription success %.1f%%, "
              "lookup %.1f ms\n",
              100.0 * r.receiving_rate,
              100.0 * r.subscription_success_rate, r.lookup_latency_ms);
  std::printf("  delay penalty %.2f, link stress %.2f, node stress %.2f, "
              "overload %.5f\n",
              r.delay_penalty, r.link_stress, r.node_stress,
              r.overload_index);
  std::printf("  per-group stddev: delay %.2f, link %.2f, overload %.5f, "
              "lookup %.1f ms\n",
              r.delay_penalty_group_stddev, r.link_stress_group_stddev,
              r.overload_index_group_stddev,
              r.lookup_latency_group_stddev);
  std::printf("  avg tree: %.0f nodes, depth %.1f\n", r.avg_tree_nodes,
              r.avg_tree_depth);
  if (config.recovery.enabled) {
    std::printf("  recovery: delivery %.1f%%, reattached %.1f%%, orphan "
                "%.2f epochs, converged in %.1f, violations %.0f\n",
                100.0 * r.delivery_ratio, 100.0 * r.reattached_fraction,
                r.mean_orphan_epochs, r.epochs_to_converge,
                r.invariant_violations);
    if (config.recovery.replication) {
      std::printf("  replication: handoffs %.1f, epoch conflicts %.1f\n",
                  r.lease_handoffs, r.epoch_conflicts);
      if (config.recovery.partition_seconds > 0.0) {
        std::printf("  partition: majority delivery %.1f%%, minority "
                    "delivery %.1f%%\n",
                    100.0 * r.partition_majority_delivery,
                    100.0 * r.partition_minority_delivery);
      }
    }
  }
  if (config.streaming.enabled) {
    std::printf("  streaming: miss %.2f%% (stddev %.2f%%), startup %.0f ms, "
                "rebuffers %.2f, played %.1f chunks/viewer\n",
                100.0 * r.chunk_miss_ratio,
                100.0 * r.chunk_miss_ratio_stddev, r.startup_delay_ms,
                r.rebuffer_events, r.chunks_played_per_viewer);
    if (config.streaming.flash_crowd_joins > 0) {
      std::printf("  flash crowd: %zu joins over %.1f s, %.1f%% attached\n",
                  config.streaming.flash_crowd_joins,
                  config.streaming.flash_crowd_seconds,
                  100.0 * r.flash_attach_fraction);
    }
  }
  if (!trace_path.empty()) {
    std::printf("  trace: %s (%zu events)\n", trace_path.c_str(),
                trace_events);
  }
  return 0;
}
