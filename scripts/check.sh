#!/usr/bin/env bash
# Pre-merge verification: runs the same stages CI fans out across its
# matrix (.github/workflows/ci.yml), in sequence, via scripts/stages.sh:
#
#  1. asan:  ASan/UBSan build with -Werror + the full ctest suite.
#  2. tsan:  TSan build running the experiment-harness, tracing, recovery
#            and data-plane tests (everything that crosses the
#            run_scenario_grid worker pool).
#  3. fault: the churn-recovery sweep (bench_churn_recovery --jobs=4)
#            under ASan, exercising crashes, partitions, burst loss and
#            the NACK/retransmit data plane end to end.
#  4. perf:  a Release build of bench_micro measures event-loop throughput
#            (--json_out) and scripts/perf_gate.cmake fails the run if
#            events/sec regressed >25% against bench/baselines/.
#  4b. trace: observability smoke — a seeded recovery capture piped
#            through every trace_report mode (summary / histograms /
#            timeline / message), failing on missing markers.
#  4c. streaming: the live-streaming sweep (bench_streaming) byte-compared
#            across --jobs, plus a pinned miss-ratio / flash-crowd
#            acceptance run at 5% loss with the reliable data plane.
#  5. lint:  clang-format --dry-run --Werror plus clang-tidy on src/core —
#            skipped with a notice when the binaries are not installed
#            (CI always runs them).
#
# Usage: scripts/check.sh [asan-build-dir] [tsan-build-dir] [perf-build-dir]
#        (defaults: build-asan, build-tsan, build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
stages="${repo_root}/scripts/stages.sh"
build_dir="${1:-${repo_root}/build-asan}"
tsan_build_dir="${2:-${repo_root}/build-tsan}"
perf_build_dir="${3:-${repo_root}/build-perf}"

# Fail loudly up front instead of letting a stage silently no-op: every
# stage's own binaries are guarded by require_binary inside stages.sh,
# and the stage runner itself must exist and be executable here.
if [[ ! -x "${stages}" ]]; then
  echo "check.sh: stage runner missing or not executable: ${stages}" >&2
  exit 1
fi

"${stages}" asan "${build_dir}"
"${stages}" tsan "${tsan_build_dir}"
"${stages}" fault "${build_dir}"
"${stages}" perf "${perf_build_dir}"
"${stages}" trace "${perf_build_dir}"
"${stages}" streaming "${perf_build_dir}"

if command -v clang-format > /dev/null; then
  "${stages}" lint-format
else
  echo "check.sh: clang-format not installed, skipping format gate"
fi
if command -v clang-tidy > /dev/null; then
  "${stages}" lint-tidy
else
  echo "check.sh: clang-tidy not installed, skipping static analysis"
fi

echo "check.sh: all stages passed"
