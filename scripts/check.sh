#!/usr/bin/env bash
# Pre-merge verification, two stages:
#
#  1. ASan/UBSan: configure a dedicated build tree with -Wall -Wextra
#     (always on via the top-level CMakeLists) plus AddressSanitizer +
#     UBSan, build everything, and run the full ctest suite.  Warnings
#     are promoted to errors so new code stays clean.
#  2. TSan: a second build tree with ThreadSanitizer, running the
#     experiment-harness and tracing tests (the code that spawns the
#     run_scenario_grid worker pool) to prove the parallel runner is
#     race-free.
#  3. Fault injection: the churn-recovery sweep (bench_churn_recovery
#     --jobs=4) under ASan, exercising crashes, partitions, and burst
#     loss end to end; the recovery tests already ran in both suites.
#  4. Perf smoke: a Release build of bench_micro measures event-loop
#     throughput (--json_out) and scripts/perf_gate.cmake fails the run
#     if events/sec regressed >25% against the checked-in baseline in
#     bench/baselines/.
#
# Usage: scripts/check.sh [asan-build-dir] [tsan-build-dir] [perf-build-dir]
#        (defaults: build-asan, build-tsan, build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
tsan_build_dir="${2:-${repo_root}/build-tsan}"
perf_build_dir="${3:-${repo_root}/build-perf}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPCAST_ASAN=ON \
  -DCMAKE_CXX_FLAGS=-Werror

cmake --build "${build_dir}" -j "${jobs}"

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "check.sh: all tests passed under ASan/UBSan"

cmake -B "${tsan_build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPCAST_TSAN=ON \
  -DCMAKE_CXX_FLAGS=-Werror

cmake --build "${tsan_build_dir}" -j "${jobs}" --target groupcast_tests

# The grid/averaged runners and the tracing facilities are the only code
# that touches threads; their tests run every parallel path (jobs > 1).
# Recovery runs go through the same pool, so its determinism/acceptance
# tests ride along here too.
ctest --test-dir "${tsan_build_dir}" --output-on-failure -j "${jobs}" \
  -R 'Experiment|ExperimentGrid|Counter|Tracer|Trace|Recovery|FaultPlan|FaultInjector|ReliableExchange'

echo "check.sh: parallel-runner tests clean under TSan"

# Fault-injection stage: drive the full recovery sweep (deterministic
# crashes + loss grid, 4 grid workers) under the ASan build.
cmake --build "${build_dir}" -j "${jobs}" --target bench_churn_recovery
"${build_dir}/bench/bench_churn_recovery" --jobs=4 > /dev/null

echo "check.sh: churn-recovery sweep clean under ASan (--jobs=4)"

# Perf-smoke stage: sanitizer trees are useless for timing, so bench_micro
# gets its own Release tree.  The google-benchmark suite itself is skipped
# (filter matches nothing) — the gated number is the deterministic
# event-loop probe behind --json_out.
cmake -B "${perf_build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${perf_build_dir}" -j "${jobs}" --target bench_micro
perf_json="${perf_build_dir}/BENCH_micro.json"
"${perf_build_dir}/bench/bench_micro" '--benchmark_filter=^$' \
  --json_out="${perf_json}" > /dev/null
cmake -DBASELINE="${repo_root}/bench/baselines/micro_baseline.json" \
  -DCURRENT="${perf_json}" -DMAX_REGRESSION_PERCENT=25 \
  -P "${repo_root}/scripts/perf_gate.cmake"

echo "check.sh: perf smoke within budget (bench_micro events/sec)"
