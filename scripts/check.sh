#!/usr/bin/env bash
# Pre-merge verification: configure a dedicated build tree with
# -Wall -Wextra (always on via the top-level CMakeLists) plus
# AddressSanitizer + UBSan, build everything, and run the full ctest
# suite.  Warnings are promoted to errors so new code stays clean.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPCAST_ASAN=ON \
  -DCMAKE_CXX_FLAGS=-Werror

cmake --build "${build_dir}" -j "${jobs}"

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "check.sh: all tests passed under ASan/UBSan"
