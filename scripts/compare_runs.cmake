# End-to-end determinism check for the parallel experiment harness:
# runs sim_driver twice with identical scenario flags — once sequential
# (--jobs=1), once on a worker pool (--jobs=4) — and fails unless the two
# CSV outputs are byte-identical.
#
# Invoked by ctest (see tools/CMakeLists.txt):
#   cmake -DSIM_DRIVER=<path-to-sim_driver> -P scripts/compare_runs.cmake
if(NOT DEFINED SIM_DRIVER)
  message(FATAL_ERROR "pass -DSIM_DRIVER=<path to the sim_driver binary>")
endif()

set(scenario --peers=300 --groups=2 --seed=11 --topologies=3 --csv)

execute_process(COMMAND ${SIM_DRIVER} ${scenario} --jobs=1
                OUTPUT_VARIABLE sequential_out
                RESULT_VARIABLE sequential_rc)
if(NOT sequential_rc EQUAL 0)
  message(FATAL_ERROR "sequential run failed (exit ${sequential_rc})")
endif()

execute_process(COMMAND ${SIM_DRIVER} ${scenario} --jobs=4
                OUTPUT_VARIABLE parallel_out
                RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed (exit ${parallel_rc})")
endif()

if(NOT sequential_out STREQUAL parallel_out)
  message(FATAL_ERROR "parallel run diverged from sequential run:\n"
                      "--jobs=1: ${sequential_out}"
                      "--jobs=4: ${parallel_out}")
endif()

message(STATUS "--jobs=4 output is byte-identical to --jobs=1")
