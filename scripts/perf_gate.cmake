# Perf-smoke gate: compares a fresh BENCH_micro.json against the
# checked-in baseline and fails when event-loop throughput regressed by
# more than the allowed percentage.
#
# Usage:
#   cmake -DBASELINE=bench/baselines/micro_baseline.json \
#         -DCURRENT=build-perf/BENCH_micro.json \
#         -DMAX_REGRESSION_PERCENT=25 \
#         [-DMEMORY_BASELINE=bench/baselines/memory_baseline.json \
#          -DMAX_MEMORY_REGRESSION_PERCENT=10] \
#         -P scripts/perf_gate.cmake
#
# Both files are bench_micro --json_out output; the gated number is the
# root "events_per_second" (best-of-sizes, see docs/PERFORMANCE.md).
# Comparison is integer events/sec — plenty of resolution at 10^6/s.
#
# With MEMORY_BASELINE set, the root "bytes_per_peer" gauge is gated too.
# Unlike throughput it is fully deterministic (capacity-based accounting
# at a fixed seed), so the allowed drift only covers intentional container
# tuning, not machine noise — keep it tight.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

foreach(var BASELINE CURRENT MAX_REGRESSION_PERCENT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "perf_gate: -D${var}=... is required")
  endif()
endforeach()

file(READ "${BASELINE}" baseline_json)
file(READ "${CURRENT}" current_json)
string(JSON baseline_rate GET "${baseline_json}" events_per_second)
string(JSON current_rate GET "${current_json}" events_per_second)

# Truncate to integers for math(EXPR); rates sit around 10^6 so the lost
# fraction is noise.
string(REGEX REPLACE "\\..*$" "" baseline_int "${baseline_rate}")
string(REGEX REPLACE "\\..*$" "" current_int "${current_rate}")
if(NOT baseline_int MATCHES "^[0-9]+$" OR NOT current_int MATCHES "^[0-9]+$")
  message(FATAL_ERROR
    "perf_gate: non-numeric events_per_second "
    "(baseline '${baseline_rate}', current '${current_rate}')")
endif()

math(EXPR floor_rate
  "(${baseline_int} * (100 - ${MAX_REGRESSION_PERCENT})) / 100")

if(current_int LESS floor_rate)
  message(FATAL_ERROR
    "perf_gate: event-loop throughput regressed more than "
    "${MAX_REGRESSION_PERCENT}%: ${current_int} events/s vs baseline "
    "${baseline_int} (floor ${floor_rate}).  If the slowdown is "
    "intentional, re-baseline bench/baselines/micro_baseline.json from a "
    "quiet machine and explain the change in the commit.")
endif()

message(STATUS
  "perf_gate: ${current_int} events/s vs baseline ${baseline_int} "
  "(floor ${floor_rate}) - ok")

if(DEFINED MEMORY_BASELINE)
  if(NOT DEFINED MAX_MEMORY_REGRESSION_PERCENT)
    message(FATAL_ERROR
      "perf_gate: MEMORY_BASELINE requires -DMAX_MEMORY_REGRESSION_PERCENT=...")
  endif()
  file(READ "${MEMORY_BASELINE}" memory_json)
  string(JSON baseline_bytes GET "${memory_json}" bytes_per_peer)
  string(JSON current_bytes GET "${current_json}" bytes_per_peer)
  if(NOT baseline_bytes MATCHES "^[0-9]+$" OR NOT current_bytes MATCHES "^[0-9]+$")
    message(FATAL_ERROR
      "perf_gate: non-numeric bytes_per_peer "
      "(baseline '${baseline_bytes}', current '${current_bytes}')")
  endif()
  math(EXPR ceiling_bytes
    "(${baseline_bytes} * (100 + ${MAX_MEMORY_REGRESSION_PERCENT})) / 100")
  if(current_bytes GREATER ceiling_bytes)
    message(FATAL_ERROR
      "perf_gate: per-peer memory regressed more than "
      "${MAX_MEMORY_REGRESSION_PERCENT}%: ${current_bytes} bytes/peer vs "
      "baseline ${baseline_bytes} (ceiling ${ceiling_bytes}).  If the new "
      "state is intentional, re-baseline "
      "bench/baselines/memory_baseline.json and explain the growth in the "
      "commit.")
  endif()
  message(STATUS
    "perf_gate: ${current_bytes} bytes/peer vs baseline ${baseline_bytes} "
    "(ceiling ${ceiling_bytes}) - ok")
endif()
