#!/usr/bin/env bash
# Shared verification stages for scripts/check.sh and .github/workflows/ci.yml.
#
# Each stage is a function; the dispatcher at the bottom lets both the local
# pre-merge script and the CI matrix invoke exactly the same logic:
#
#   scripts/stages.sh asan  [build-dir]   # ASan/UBSan build + full ctest
#   scripts/stages.sh tsan  [build-dir]   # TSan build + parallel-runner tests
#   scripts/stages.sh fault [build-dir]   # churn-recovery sweep under ASan
#   scripts/stages.sh perf  [build-dir]   # Release perf smoke vs baseline
#   scripts/stages.sh scale [build-dir]   # Release 100k-peer churn cell,
#                                         # sharded, byte-compared across
#                                         # shard counts
#   scripts/stages.sh trace [build-dir]   # observability smoke: capture a
#                                         # recovery trace, run every
#                                         # trace_report mode
#   scripts/stages.sh streaming [build-dir]  # Release streaming sweep,
#                                         # --jobs byte-compared, pinned
#                                         # miss-ratio / flash acceptance
#   scripts/stages.sh nightly-scale [build-dir]  # 100k peers, shards 2/4/8
#   scripts/stages.sh nightly-tsan  [build-dir]  # full ctest under TSan
#   scripts/stages.sh nightly-bench [build-dir]  # scale-4 sweeps + perf gate
#   scripts/stages.sh lint-format         # clang-format --dry-run --Werror
#   scripts/stages.sh lint-tidy [build-dir]  # clang-tidy over src/core
#
# Sanitizer trees default to build-asan / build-tsan / build-perf /
# build-tidy next to the repo root.  Every stage is independent; check.sh
# chains them, CI fans them out across matrix jobs.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Every stage invokes its binaries through this guard: a missing or
# non-executable stage binary must fail the stage loudly instead of
# slipping through (a stale build dir once let check.sh report success
# with nothing actually run).
require_binary() {
  local binary
  for binary in "$@"; do
    if [[ ! -x "${binary}" ]]; then
      echo "stages.sh: required binary missing or not executable:" \
        "${binary} (wrong build dir, or the build target failed?)" >&2
      exit 1
    fi
  done
}

# ASan/UBSan: configure with -Wall -Wextra (always on via the top-level
# CMakeLists) plus AddressSanitizer + UBSan, build everything, run the
# full ctest suite.  Warnings are promoted to errors so new code stays
# clean.
stage_asan() {
  local build_dir="${1:-${repo_root}/build-asan}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPCAST_ASAN=ON \
    -DCMAKE_CXX_FLAGS=-Werror
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --no-tests=error \
    --output-on-failure -j "${jobs}"
  echo "stages.sh: all tests passed under ASan/UBSan"
}

# TSan: the grid/averaged runners and the tracing facilities are the only
# code that touches threads; their tests run every parallel path
# (jobs > 1).  Recovery and data-plane runs go through the same pool, so
# their determinism/acceptance tests ride along here too.
stage_tsan() {
  local build_dir="${1:-${repo_root}/build-tsan}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPCAST_TSAN=ON \
    -DCMAKE_CXX_FLAGS=-Werror
  cmake --build "${build_dir}" -j "${jobs}" --target groupcast_tests
  ctest --test-dir "${build_dir}" --no-tests=error \
    --output-on-failure -j "${jobs}" \
    -R 'Experiment|ExperimentGrid|Counter|Tracer|Trace|Recovery|FaultPlan|FaultInjector|ReliableExchange|DataPlane|Histogram|FlightRecorder|GridDeterminism|Provenance|ShardSet|ShardDeterminism|Streaming'
  echo "stages.sh: parallel-runner tests clean under TSan"
}

# Fault injection: drive the full recovery sweep (deterministic crashes +
# loss grid, both data-plane variants, partition-heal cells, 4 grid
# workers) under the ASan build from stage_asan, then a pinned
# partition-heal run: a 30 s RP-side partition with a 3-replica quorum
# must keep BOTH sides delivering (majority via lease handoff, minority
# via the caretaker rendezvous) and the heal must merge the divergent
# epoch logs without conflicts.  The runs are deterministic, so the
# ratios are pinned exactly.
stage_fault() {
  local build_dir="${1:-${repo_root}/build-asan}"
  cmake --build "${build_dir}" -j "${jobs}" \
    --target bench_churn_recovery sim_driver
  require_binary "${build_dir}/bench/bench_churn_recovery" \
    "${build_dir}/examples/sim_driver"
  "${build_dir}/bench/bench_churn_recovery" --jobs=4 \
    --json_out="${build_dir}/BENCH_churn_recovery.json" > /dev/null
  local partition_out
  partition_out="$("${build_dir}/examples/sim_driver" --peers=300 \
    --groups=1 --seed=1 --recovery=true --crash=0.1 --replicas=3 \
    --partition=30)"
  grep -q "partition: majority delivery 100.0%, minority delivery 100.0%" \
    <<< "${partition_out}"
  grep -q "epoch conflicts 0.0" <<< "${partition_out}"
  grep -q "violations 0" <<< "${partition_out}"
  echo "stages.sh: churn-recovery sweep + partition-heal sweep clean under" \
    "ASan (--jobs=4; both partition sides pinned at 100% delivery)"
}

# Perf smoke: sanitizer trees are useless for timing, so bench_micro gets
# its own Release tree.  The google-benchmark suite itself is skipped
# (filter matches nothing) — the gated number is the deterministic
# event-loop probe behind --json_out, compared against the checked-in
# baseline by scripts/perf_gate.cmake.  The churn-recovery sweep also
# runs here at Release speed so its JSON (including the slow-child /
# flow-control cells) lands in the perf-smoke artifact upload.
stage_perf() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" \
    --target bench_micro bench_churn_recovery
  require_binary "${build_dir}/bench/bench_micro" \
    "${build_dir}/bench/bench_churn_recovery"
  local perf_json="${build_dir}/BENCH_micro.json"
  "${build_dir}/bench/bench_micro" '--benchmark_filter=^$' \
    --json_out="${perf_json}" > /dev/null
  cmake -DBASELINE="${repo_root}/bench/baselines/micro_baseline.json" \
    -DCURRENT="${perf_json}" -DMAX_REGRESSION_PERCENT=25 \
    -DMEMORY_BASELINE="${repo_root}/bench/baselines/memory_baseline.json" \
    -DMAX_MEMORY_REGRESSION_PERCENT=10 \
    -P "${repo_root}/scripts/perf_gate.cmake"
  "${build_dir}/bench/bench_churn_recovery" --jobs=4 \
    --json_out="${build_dir}/BENCH_churn_recovery.json" > /dev/null
  echo "stages.sh: perf smoke within budget (bench_micro events/sec)"
}

# Scale smoke: the sharded event kernel at six figures of peers.  One
# 100k-peer churn cell through the recovery harness at --shards=2 and
# --shards=4; the runs must finish (that alone was out of reach for the
# single wheel's per-peer footprint before the memory diet) and their
# stdout must be byte-identical — the summary deliberately omits the
# shard count, so a straight diff proves the determinism contract at
# scale (docs/PERFORMANCE.md, "Sharded execution & memory budget").
stage_scale() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" --target sim_driver
  require_binary "${build_dir}/examples/sim_driver"
  local out2="${build_dir}/scale_smoke_shards2.txt"
  local out4="${build_dir}/scale_smoke_shards4.txt"
  "${build_dir}/examples/sim_driver" --peers=100000 --groups=1 --seed=1 \
    --recovery=true --crash=0.15 --shards=2 > "${out2}"
  "${build_dir}/examples/sim_driver" --peers=100000 --groups=1 --seed=1 \
    --recovery=true --crash=0.15 --shards=4 > "${out4}"
  diff "${out2}" "${out4}"
  grep -q "violations 0" "${out2}"
  echo "stages.sh: 100k-peer scale smoke clean (shards 2 and 4" \
    "byte-identical)"
}

# Observability smoke: capture a seeded recovery trace with sim_driver,
# then run every trace_report mode over it and fail on empty output.
# The report bundle (trace + all four reports) is left in the build dir
# so CI can upload it as an artifact.
stage_trace() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" --target sim_driver trace_report
  require_binary "${build_dir}/examples/sim_driver" \
    "${build_dir}/tools/trace_report"
  local trace="${build_dir}/trace_smoke_recovery.jsonl"
  "${build_dir}/examples/sim_driver" --peers=300 --groups=1 --seed=11 \
    --recovery=true --loss=0.2 --crash=0.15 --reliable=true \
    --trace_out="${trace}" > /dev/null
  local report="${build_dir}/trace_smoke_report.txt"
  : > "${report}"
  local mode
  for mode in "" "--histograms=true" "--timeline=true" "--message=auto"; do
    echo "==== trace_report ${mode:-summary}" >> "${report}"
    # shellcheck disable=SC2086  # mode is intentionally word-split
    "${build_dir}/tools/trace_report" ${mode} "${trace}" >> "${report}"
  done
  grep -q "critical path" "${report}"
  grep -q "edge_delay_us" "${report}"
  grep -q "flight-recorder timeline" "${report}"
  echo "stages.sh: trace smoke clean (report: ${report})"
}

# Streaming workloads: the live-streaming sweep (loss x reliability,
# bandwidth-capped, multi-source, flash-crowd cells) at Release speed,
# byte-compared between --jobs=1 and --jobs=4 (the summary's jobs= token
# is the only allowed difference), then a pinned acceptance run: at 5%
# loss with the reliable data plane and 20 Mbit/s caps, the chunk miss
# ratio must stay under 5% and the whole 50-peer flash crowd must attach.
# The run is deterministic, so the ratios are pinned exactly.
stage_streaming() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" \
    --target bench_streaming sim_driver
  require_binary "${build_dir}/bench/bench_streaming" \
    "${build_dir}/examples/sim_driver"
  local out1="${build_dir}/streaming_jobs1.txt"
  local out4="${build_dir}/streaming_jobs4.txt"
  "${build_dir}/bench/bench_streaming" --jobs=1 > "${out1}"
  "${build_dir}/bench/bench_streaming" --jobs=4 \
    --json_out="${build_dir}/BENCH_streaming.json" > "${out4}"
  diff <(sed 's/jobs=[0-9]*/jobs=N/' "${out1}") \
    <(sed 's/jobs=[0-9]*/jobs=N/' "${out4}")
  local streaming_out
  streaming_out="$("${build_dir}/examples/sim_driver" --peers=300 \
    --groups=1 --seed=1 --streaming --loss=0.05 --reliable \
    --flash-joins=50 --uplink-kbps=20000 --downlink-kbps=20000)"
  grep -q "streaming: miss 2.23%" <<< "${streaming_out}"
  grep -q "flash crowd: 50 joins over 1.0 s, 100.0% attached" \
    <<< "${streaming_out}"
  echo "stages.sh: streaming sweep clean (--jobs byte-identical; miss" \
    "ratio pinned under 5% at 5% loss; flash crowd fully attached)"
}

# Nightly scale: the 100k-peer churn cell across shards 2, 4, AND 8 —
# the pre-merge scale stage stops at two counts; the nightly proves the
# full ladder stays byte-identical.
stage_nightly_scale() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" --target sim_driver
  require_binary "${build_dir}/examples/sim_driver"
  local shard_count out ref=""
  for shard_count in 2 4 8; do
    out="${build_dir}/nightly_scale_shards${shard_count}.txt"
    "${build_dir}/examples/sim_driver" --peers=100000 --groups=1 --seed=1 \
      --recovery=true --crash=0.15 --shards="${shard_count}" > "${out}"
    if [[ -n "${ref}" ]]; then diff "${ref}" "${out}"; fi
    ref="${out}"
  done
  grep -q "violations 0" "${ref}"
  echo "stages.sh: nightly 100k-peer scale ladder clean (shards 2/4/8" \
    "byte-identical)"
}

# Nightly TSan: the FULL ctest suite under ThreadSanitizer.  The
# pre-merge tsan stage filters to the parallel-runner subset for latency;
# the nightly pays for everything.
stage_nightly_tsan() {
  local build_dir="${1:-${repo_root}/build-tsan}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPCAST_TSAN=ON \
    -DCMAKE_CXX_FLAGS=-Werror
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --no-tests=error \
    --output-on-failure -j "${jobs}"
  echo "stages.sh: full test suite clean under TSan"
}

# Nightly bench: the recovery and streaming sweeps at
# GROUPCAST_BENCH_SCALE=4 (8k+ peers, the wall-clock-bounded scale
# probes), plus the bench_micro perf gate against bench/baselines/ via
# scripts/perf_gate.cmake — the same floor as pre-merge, re-checked at
# nightly cadence so slow drift cannot hide between PRs.
stage_nightly_bench() {
  local build_dir="${1:-${repo_root}/build-perf}"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}" \
    --target bench_micro bench_churn_recovery bench_streaming
  require_binary "${build_dir}/bench/bench_micro" \
    "${build_dir}/bench/bench_churn_recovery" \
    "${build_dir}/bench/bench_streaming"
  local perf_json="${build_dir}/BENCH_micro.json"
  "${build_dir}/bench/bench_micro" '--benchmark_filter=^$' \
    --json_out="${perf_json}" > /dev/null
  cmake -DBASELINE="${repo_root}/bench/baselines/micro_baseline.json" \
    -DCURRENT="${perf_json}" -DMAX_REGRESSION_PERCENT=25 \
    -DMEMORY_BASELINE="${repo_root}/bench/baselines/memory_baseline.json" \
    -DMAX_MEMORY_REGRESSION_PERCENT=10 \
    -P "${repo_root}/scripts/perf_gate.cmake"
  GROUPCAST_BENCH_SCALE=4 "${build_dir}/bench/bench_churn_recovery" \
    --jobs=0 --json_out="${build_dir}/BENCH_churn_recovery_scale4.json" \
    > /dev/null
  GROUPCAST_BENCH_SCALE=4 "${build_dir}/bench/bench_streaming" \
    --jobs=0 --json_out="${build_dir}/BENCH_streaming_scale4.json" \
    > /dev/null
  echo "stages.sh: nightly bench sweeps clean (perf gate + scale-4" \
    "recovery and streaming JSONs)"
}

# Formatting gate: every tracked C++ file must match .clang-format
# byte-for-byte.  --dry-run --Werror reports (and fails on) any diff
# without rewriting files.
stage_lint_format() {
  cd "${repo_root}"
  git ls-files 'src/**/*.h' 'src/**/*.cc' 'bench/**/*.h' 'bench/**/*.cc' \
    'tests/**/*.h' 'tests/**/*.cc' 'tools/**/*.cc' |
    xargs clang-format --dry-run --Werror
  echo "stages.sh: clang-format clean"
}

# Static analysis on the protocol core, the event loop, and the tracing
# layer.  Only bugprone-* and performance-* findings are promoted to
# errors (the rest of the .clang-tidy checks report but do not gate) —
# see .clang-tidy for the check set.
stage_lint_tidy() {
  local build_dir="${1:-${repo_root}/build-tidy}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git -C "${repo_root}" ls-files 'src/core/*.cc' 'src/sim/*.cc' \
    'src/trace/*.cc' |
    sed "s|^|${repo_root}/|" |
    xargs clang-tidy -p "${build_dir}" \
      --warnings-as-errors='bugprone-*,performance-*'
  echo "stages.sh: clang-tidy clean on src/core, src/sim, src/trace"
}

usage() {
  echo "usage: scripts/stages.sh {asan|tsan|fault|perf|scale|trace|streaming|nightly-scale|nightly-tsan|nightly-bench|lint-format|lint-tidy} [build-dir]" >&2
  exit 2
}

[[ $# -ge 1 ]] || usage
stage="$1"
shift
case "${stage}" in
  asan) stage_asan "$@" ;;
  tsan) stage_tsan "$@" ;;
  fault) stage_fault "$@" ;;
  perf) stage_perf "$@" ;;
  scale) stage_scale "$@" ;;
  trace) stage_trace "$@" ;;
  streaming) stage_streaming "$@" ;;
  nightly-scale) stage_nightly_scale "$@" ;;
  nightly-tsan) stage_nightly_tsan "$@" ;;
  nightly-bench) stage_nightly_bench "$@" ;;
  lint-format) stage_lint_format "$@" ;;
  lint-tidy) stage_lint_tidy "$@" ;;
  *) usage ;;
esac
