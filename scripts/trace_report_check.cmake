# Golden end-to-end check for the observability pipeline: a seeded
# recovery run of sim_driver writes a JSONL trace (twice — the two
# captures must be byte-identical), then every trace_report mode runs
# over it and its output is checked for the markers the mode must
# produce (histogram summaries, timeline frames, a reconstructed
# dissemination path).
#
# Invoked by ctest (see tools/CMakeLists.txt):
#   cmake -DSIM_DRIVER=<sim_driver> -DTRACE_REPORT=<trace_report>
#         -DWORK_DIR=<scratch dir> -P scripts/trace_report_check.cmake
foreach(var SIM_DRIVER TRACE_REPORT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

set(scenario --peers=300 --groups=1 --seed=11 --recovery=true --loss=0.2
    --crash=0.15 --reliable=true)
set(trace_a ${WORK_DIR}/trace_golden_a.jsonl)
set(trace_b ${WORK_DIR}/trace_golden_b.jsonl)

foreach(trace ${trace_a} ${trace_b})
  execute_process(COMMAND ${SIM_DRIVER} ${scenario} --trace_out=${trace}
                  OUTPUT_VARIABLE run_out RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "recovery capture failed (exit ${run_rc})")
  endif()
endforeach()

# The capture itself must be deterministic before the reports can be.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${trace_a} ${trace_b} RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR "two identical captures produced different traces")
endif()

# --trace_out with a worker pool must be refused, not silently dropped.
execute_process(COMMAND ${SIM_DRIVER} ${scenario} --jobs=4
                --trace_out=${WORK_DIR}/trace_golden_reject.jsonl
                OUTPUT_VARIABLE reject_out ERROR_VARIABLE reject_err
                RESULT_VARIABLE reject_rc)
if(reject_rc EQUAL 0)
  message(FATAL_ERROR "--trace_out with --jobs=4 was accepted; it must "
                      "error out")
endif()

# mode -> flags -> substrings that must appear in stdout.
function(check_report label expected)
  execute_process(COMMAND ${TRACE_REPORT} ${ARGN} ${trace_a}
                  OUTPUT_VARIABLE report_out RESULT_VARIABLE report_rc)
  if(NOT report_rc EQUAL 0)
    message(FATAL_ERROR "trace_report ${label} failed (exit ${report_rc})")
  endif()
  foreach(marker ${expected})
    if(NOT report_out MATCHES "${marker}")
      message(FATAL_ERROR "trace_report ${label} output lacks "
                          "'${marker}':\n${report_out}")
    endif()
  endforeach()
  message(STATUS "trace_report ${label}: ok")
endfunction()

check_report(summary "per-phase breakdown;counters")
check_report(histograms
             "sim-time histograms;edge_delay_us;hop_count;end_to_end_delay_us"
             --histograms=true)
check_report(timeline "flight-recorder timeline;messages_sent;frames"
             --timeline=true)
check_report(message "dissemination;published by node;per-hop breakdown;critical path"
             --message=auto)

message(STATUS "trace_report golden check passed")
