#include "baselines/centralized.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/require.h"

namespace groupcast::baselines {

core::SpanningTree build_unicast_star(
    overlay::PeerId source, const std::vector<overlay::PeerId>& members) {
  core::SpanningTree tree(source);
  for (const auto m : members) {
    if (m == source) {
      tree.mark_subscriber(m);
      continue;
    }
    tree.attach(m, source);
    tree.mark_subscriber(m);
  }
  return tree;
}

core::SpanningTree build_degree_bounded_tree(
    const overlay::PeerPopulation& population, overlay::PeerId source,
    const std::vector<overlay::PeerId>& members,
    const DegreeBoundedOptions& options) {
  GC_REQUIRE(options.min_degree >= 1);
  GC_REQUIRE(options.max_degree >= options.min_degree);

  const auto bound = [&](overlay::PeerId p) {
    const double raw =
        options.base * std::pow(population.info(p).capacity, options.exponent);
    return std::clamp(static_cast<std::size_t>(std::ceil(raw)),
                      options.min_degree, options.max_degree);
  };

  core::SpanningTree tree(source);
  std::unordered_map<overlay::PeerId, std::size_t> degree;  // tree degree

  std::vector<overlay::PeerId> outside;
  std::unordered_set<overlay::PeerId> seen{source};
  for (const auto m : members) {
    if (seen.insert(m).second) outside.push_back(m);
  }

  std::vector<overlay::PeerId> inside{source};
  while (!outside.empty()) {
    // Cheapest (outside member, inside node with spare degree) pair.
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_out = 0;
    overlay::PeerId best_in = overlay::kNoPeer;
    for (std::size_t o = 0; o < outside.size(); ++o) {
      for (const auto in : inside) {
        if (degree[in] >= bound(in)) continue;
        const double cost = population.latency_ms(outside[o], in);
        if (cost < best_cost) {
          best_cost = cost;
          best_out = o;
          best_in = in;
        }
      }
    }
    // All inside nodes saturated: relax by attaching to the least-loaded
    // inside node (the greedy bound is a soft constraint, as in practice).
    if (best_in == overlay::kNoPeer) {
      best_in = inside.front();
      for (const auto in : inside) {
        if (degree[in] < degree[best_in]) best_in = in;
      }
      best_out = 0;
    }
    const auto joining = outside[best_out];
    tree.attach(joining, best_in);
    ++degree[best_in];
    ++degree[joining];
    inside.push_back(joining);
    outside.erase(outside.begin() + static_cast<std::ptrdiff_t>(best_out));
  }
  for (const auto m : members) tree.mark_subscriber(m);
  return tree;
}

}  // namespace groupcast::baselines
