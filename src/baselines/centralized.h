// Centralized reference trees.
//
// Section 3.2 notes that with global topology and utility knowledge "we
// could have used one of the several optimization techniques for
// constructing utility-aware spanning trees" — infeasible in a real P2P
// system, but a useful quality reference in simulation.  Two references:
//
//  * unicast star  — the source unicasts to every member separately; this
//    is the paper's client/server "spanning tree of height 1" and what
//    early Skype did for multi-party calls (its scalability wall motivates
//    the whole system);
//  * degree-bounded greedy tree — grow the tree from the source, always
//    attaching the cheapest (lowest-latency) outside member to an on-tree
//    node with spare capacity-derived degree.  A strong centralized
//    heuristic for the delay/degree-constrained spanning tree problem.
#pragma once

#include "core/spanning_tree.h"
#include "overlay/population.h"

namespace groupcast::baselines {

/// Star: every member is a direct child of the source.
core::SpanningTree build_unicast_star(
    overlay::PeerId source, const std::vector<overlay::PeerId>& members);

struct DegreeBoundedOptions {
  /// Degree bound of a node: clamp(ceil(base * capacity^exponent), min, max)
  /// — the same shape the GroupCast bootstrap uses, so the two are
  /// capacity-fair.
  double base = 1.6;
  double exponent = 0.32;
  std::size_t min_degree = 2;
  std::size_t max_degree = 48;
};

/// Greedy centralized degree-bounded minimum-latency spanning tree.
core::SpanningTree build_degree_bounded_tree(
    const overlay::PeerPopulation& population, overlay::PeerId source,
    const std::vector<overlay::PeerId>& members,
    const DegreeBoundedOptions& options = {});

}  // namespace groupcast::baselines
