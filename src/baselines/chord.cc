#include "baselines/chord.h"

#include <algorithm>

#include "util/require.h"
#include "util/rng.h"

namespace groupcast::baselines {

std::uint64_t ChordRing::hash_key(std::uint64_t raw) {
  // One splitmix64 step: a high-quality 64-bit mixer.
  std::uint64_t state = raw;
  return util::splitmix64(state);
}

ChordRing::ChordRing(const overlay::PeerPopulation& population)
    : population_(&population) {
  const std::size_t n = population.size();
  GC_REQUIRE(n >= 2);
  id_.resize(n);
  ring_.reserve(n);
  for (overlay::PeerId p = 0; p < n; ++p) {
    // Salt the peer id so node ids are unrelated to join order.
    id_[p] = hash_key(0x517cc1b727220a95ULL ^ p);
    ring_.emplace_back(id_[p], p);
  }
  std::sort(ring_.begin(), ring_.end());
  // 64-bit hashes over < 2^32 peers collide with negligible probability,
  // but a collision would corrupt routing silently — check.
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    GC_ENSURE_MSG(ring_[i].first != ring_[i - 1].first,
                  "chord id collision");
  }

  // Finger tables: finger[k] = successor(id + 2^k).
  finger_.resize(n);
  for (overlay::PeerId p = 0; p < n; ++p) {
    finger_[p].reserve(kBits);
    for (std::size_t k = 0; k < kBits; ++k) {
      const std::uint64_t target = id_[p] + (std::uint64_t{1} << k);
      finger_[p].push_back(successor_of(target));
    }
  }
}

std::uint64_t ChordRing::id_of(overlay::PeerId peer) const {
  GC_REQUIRE(peer < id_.size());
  return id_[peer];
}

overlay::PeerId ChordRing::successor_of(std::uint64_t key) const {
  // First ring entry with hash >= key, wrapping to the front.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

const std::vector<overlay::PeerId>& ChordRing::fingers(
    overlay::PeerId peer) const {
  GC_REQUIRE(peer < finger_.size());
  return finger_[peer];
}

bool ChordRing::in_interval(std::uint64_t x, std::uint64_t a,
                            std::uint64_t b) {
  // (a, b] on the ring, modular.
  if (a < b) return x > a && x <= b;
  if (a > b) return x > a || x <= b;
  return true;  // a == b: the whole ring
}

std::vector<overlay::PeerId> ChordRing::route(overlay::PeerId from,
                                              std::uint64_t key) const {
  GC_REQUIRE(from < id_.size());
  const overlay::PeerId owner = successor_of(key);
  std::vector<overlay::PeerId> path{from};
  overlay::PeerId at = from;
  while (at != owner) {
    // Closest preceding finger: the largest finger strictly between the
    // current node and the key.  If none helps, jump to the owner (the
    // successor step of the Chord protocol).
    overlay::PeerId next = owner;
    const auto& f = finger_[at];
    for (std::size_t k = kBits; k-- > 0;) {
      const overlay::PeerId candidate = f[k];
      if (candidate == at || candidate == owner) continue;
      if (in_interval(id_[candidate], id_[at], key)) {
        next = candidate;
        break;
      }
    }
    at = next;
    path.push_back(at);
    GC_ENSURE_MSG(path.size() <= id_.size() + 1, "chord routing loop");
  }
  return path;
}

}  // namespace groupcast::baselines
