// A Chord-style structured overlay (DHT substrate for the SCRIBE baseline).
//
// Section 2.1 of the paper contrasts GroupCast with DHT-based multicast
// systems (SCRIBE [11], CAN-multicast [23]) that rely on deterministic
// key-based routing.  This class models a *stabilized* Chord ring: node
// identifiers are hashes of the peer ids, and finger tables are computed
// from the global ring — i.e. the best case for the DHT, before any churn
// is charged against it.  Routing walks real peers, so hop latencies come
// from the same underlay as every other scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/population.h"

namespace groupcast::baselines {

class ChordRing {
 public:
  static constexpr std::size_t kBits = 64;

  explicit ChordRing(const overlay::PeerPopulation& population);

  std::size_t size() const { return ring_.size(); }

  /// The node identifier (hash) of a peer.
  std::uint64_t id_of(overlay::PeerId peer) const;

  /// The peer owning `key`: the first node clockwise from the key.
  overlay::PeerId successor_of(std::uint64_t key) const;

  /// The finger table of a peer: finger[k] = successor(id + 2^k).
  const std::vector<overlay::PeerId>& fingers(overlay::PeerId peer) const;

  /// Greedy Chord routing from `from` towards `key`.  Returns the full
  /// node path, ending at successor_of(key).  O(log n) hops w.h.p.
  std::vector<overlay::PeerId> route(overlay::PeerId from,
                                     std::uint64_t key) const;

  /// Consistent hash for group names (so SCRIBE keys and node ids share
  /// the identifier space).
  static std::uint64_t hash_key(std::uint64_t raw);

 private:
  /// True iff `x` lies in the half-open ring interval (a, b].
  static bool in_interval(std::uint64_t x, std::uint64_t a, std::uint64_t b);

  const overlay::PeerPopulation* population_;
  std::vector<std::pair<std::uint64_t, overlay::PeerId>> ring_;  // sorted
  std::vector<std::uint64_t> id_;                     // peer -> hash
  std::vector<std::vector<overlay::PeerId>> finger_;  // peer -> fingers
};

}  // namespace groupcast::baselines
