#include "baselines/narada.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/require.h"

namespace groupcast::baselines {

NaradaResult build_narada_tree(const overlay::PeerPopulation& population,
                               overlay::PeerId source,
                               const std::vector<overlay::PeerId>& members,
                               const NaradaOptions& options, util::Rng& rng) {
  GC_REQUIRE(options.near_links >= 1);

  // Distinct participant list, source first.
  std::vector<overlay::PeerId> participants{source};
  std::unordered_set<overlay::PeerId> seen{source};
  for (const auto m : members) {
    if (seen.insert(m).second) participants.push_back(m);
  }
  const std::size_t n = participants.size();
  NaradaResult result{core::SpanningTree(source), source, 0, 0};
  if (n == 1) return result;

  // Index map and mesh adjacency (by participant index).
  std::unordered_map<overlay::PeerId, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index.emplace(participants[i], i);
  std::vector<std::unordered_set<std::size_t>> mesh(n);
  auto link = [&mesh, &result](std::size_t a, std::size_t b) {
    if (a == b) return;
    if (mesh[a].insert(b).second) {
      mesh[b].insert(a);
      ++result.mesh_links;
    }
  };

  // Each member links to its nearest fellow members (Narada members probe
  // each other and keep low-latency links) plus random robustness links.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> others;
    others.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    const std::size_t near = std::min(options.near_links, others.size());
    std::partial_sort(
        others.begin(), others.begin() + static_cast<std::ptrdiff_t>(near),
        others.end(), [&](std::size_t a, std::size_t b) {
          return population.latency_ms(participants[i], participants[a]) <
                 population.latency_ms(participants[i], participants[b]);
        });
    for (std::size_t k = 0; k < near; ++k) link(i, others[k]);
    for (std::size_t k = 0; k < options.random_links; ++k) {
      link(i, rng.uniform_index(n));
    }
  }
  result.refresh_messages_per_round = 2 * result.mesh_links;

  // Shortest-path tree over the mesh from the source (Dijkstra, latency
  // weights) — the "well-known distributed algorithms" step.
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, n);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[0] = 0.0;
  heap.emplace(0.0, 0);
  while (!heap.empty()) {
    const auto [d, at] = heap.top();
    heap.pop();
    if (d > dist[at]) continue;
    for (const auto nbr : mesh[at]) {
      const double cand =
          d + population.latency_ms(participants[at], participants[nbr]);
      if (cand < dist[nbr]) {
        dist[nbr] = cand;
        parent[nbr] = at;
        heap.emplace(cand, nbr);
      }
    }
  }

  // The mesh is connected w.h.p. (near + random links); if a member ended
  // up unreachable, attach it directly to the source — Narada would have
  // repaired the partition with its refresh protocol.
  // Attach in BFS order so parents precede children.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&dist](std::size_t a, std::size_t b) {
              return dist[a] < dist[b];
            });
  for (const auto i : order) {
    if (i == 0) continue;
    if (parent[i] == n) {
      result.tree.attach(participants[i], source);
    } else {
      result.tree.attach(participants[i], participants[parent[i]]);
    }
  }
  for (const auto m : members) result.tree.mark_subscriber(m);
  return result;
}

}  // namespace groupcast::baselines
