// Narada-style mesh-first multicast tree (Chu, Rao & Zhang, SIGMETRICS'00).
//
// The two-step baseline of Section 2.1: group members first build a
// well-connected *mesh* among themselves (each member keeps links to its
// closest peers plus random links for robustness), then the multicast tree
// is the shortest-path tree over that mesh rooted at the source.  The mesh
// requires continuous pairwise refresh traffic — the scalability cost the
// paper holds against this family of systems — which is reported as an
// estimated per-round message count.
#pragma once

#include "core/spanning_tree.h"
#include "overlay/population.h"
#include "util/rng.h"

namespace groupcast::baselines {

struct NaradaOptions {
  /// Links each member keeps to its nearest fellow members.
  std::size_t near_links = 3;
  /// Additional random links for mesh robustness.
  std::size_t random_links = 1;
};

struct NaradaResult {
  core::SpanningTree tree;
  overlay::PeerId source;
  std::size_t mesh_links = 0;
  /// Messages one refresh round costs: each member exchanges state with
  /// every mesh neighbour (the O(n^2)-ish overhead Narada is known for;
  /// with the full member-state exchanges it is per-pair, here the link
  /// count is reported and the bench scales it by refresh rate).
  std::size_t refresh_messages_per_round = 0;
};

/// Builds the mesh over {source} ∪ members and returns the latency
/// shortest-path tree rooted at `source`.
NaradaResult build_narada_tree(const overlay::PeerPopulation& population,
                               overlay::PeerId source,
                               const std::vector<overlay::PeerId>& members,
                               const NaradaOptions& options, util::Rng& rng);

}  // namespace groupcast::baselines
