#include "baselines/nice.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/require.h"

namespace groupcast::baselines {

namespace {

using Cluster = std::vector<overlay::PeerId>;

/// Greedy geometric clustering: repeatedly seed a cluster with an
/// unassigned member and fill it with its nearest unassigned members
/// until it holds `target` peers.  NICE's join protocol converges to
/// latency-compact clusters of this kind.
std::vector<Cluster> cluster_layer(const overlay::PeerPopulation& population,
                                   std::vector<overlay::PeerId> members,
                                   std::size_t k, util::Rng& rng) {
  const std::size_t target = 2 * k;  // middle of the [k, 3k-1] band
  rng.shuffle(members);
  std::vector<Cluster> clusters;
  std::vector<char> taken(members.size(), 0);
  for (std::size_t seed = 0; seed < members.size(); ++seed) {
    if (taken[seed]) continue;
    Cluster cluster{members[seed]};
    taken[seed] = 1;
    // Fill with nearest unassigned members.
    while (cluster.size() < target) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t pick = members.size();
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (taken[j]) continue;
        const double d =
            population.latency_ms(cluster.front(), members[j]);
        if (d < best) {
          best = d;
          pick = j;
        }
      }
      if (pick == members.size()) break;
      taken[pick] = 1;
      cluster.push_back(members[pick]);
    }
    clusters.push_back(std::move(cluster));
  }
  // NICE merges undersized trailing clusters into their nearest sibling.
  if (clusters.size() >= 2 && clusters.back().size() < k) {
    auto leftovers = std::move(clusters.back());
    clusters.pop_back();
    for (const auto member : leftovers) {
      std::size_t best_cluster = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const double d =
            population.latency_ms(member, clusters[c].front());
        if (d < best) {
          best = d;
          best_cluster = c;
        }
      }
      clusters[best_cluster].push_back(member);
    }
  }
  return clusters;
}

/// The cluster leader is its latency centre: the member minimizing the
/// maximum distance to its cluster mates.
overlay::PeerId elect_leader(const overlay::PeerPopulation& population,
                             const Cluster& cluster) {
  GC_REQUIRE(!cluster.empty());
  overlay::PeerId leader = cluster.front();
  double best = std::numeric_limits<double>::infinity();
  for (const auto candidate : cluster) {
    double worst = 0.0;
    for (const auto other : cluster) {
      worst = std::max(worst, population.latency_ms(candidate, other));
    }
    if (worst < best) {
      best = worst;
      leader = candidate;
    }
  }
  return leader;
}

}  // namespace

NiceResult build_nice_tree(const overlay::PeerPopulation& population,
                           const std::vector<overlay::PeerId>& members,
                           const NiceOptions& options, util::Rng& rng) {
  GC_REQUIRE(options.cluster_degree >= 2);
  // Distinct member list.
  std::vector<overlay::PeerId> layer;
  std::unordered_set<overlay::PeerId> seen;
  for (const auto m : members) {
    if (seen.insert(m).second) layer.push_back(m);
  }
  GC_REQUIRE_MSG(!layer.empty(), "NICE needs at least one member");

  // parent[x] assigned as layers are built; leaders carry upwards.
  std::unordered_map<overlay::PeerId, overlay::PeerId> parent;
  NiceResult result{core::SpanningTree(layer.front()), layer.front(), 0, 0,
                    0};

  while (layer.size() > 1) {
    ++result.layers;
    const auto clusters =
        cluster_layer(population, layer, options.cluster_degree, rng);
    result.clusters += clusters.size();
    std::vector<overlay::PeerId> next_layer;
    for (const auto& cluster : clusters) {
      result.refresh_messages_per_round +=
          cluster.size() * (cluster.size() - 1);  // all-pairs heartbeats
      const auto leader = elect_leader(population, cluster);
      next_layer.push_back(leader);
      for (const auto member : cluster) {
        if (member != leader) parent[member] = leader;
      }
    }
    layer = std::move(next_layer);
  }

  // The last remaining leader roots the hierarchy.
  const auto root = layer.front();
  result.root = root;
  result.tree = core::SpanningTree(root);
  // Attach top-down: repeatedly add nodes whose parent is on the tree.
  std::vector<std::pair<overlay::PeerId, overlay::PeerId>> edges(
      parent.begin(), parent.end());
  std::size_t attached = 1, guard = 0;
  while (attached < seen.size()) {
    bool progress = false;
    for (const auto& [child, up] : edges) {
      if (result.tree.contains(child) || !result.tree.contains(up)) continue;
      result.tree.attach(child, up);
      ++attached;
      progress = true;
    }
    GC_ENSURE_MSG(progress, "NICE hierarchy is not a tree");
    GC_ENSURE(++guard <= seen.size());
  }
  for (const auto m : seen) result.tree.mark_subscriber(m);
  return result;
}

}  // namespace groupcast::baselines
