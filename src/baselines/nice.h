// NICE-style hierarchical cluster multicast (Banerjee, Bhattacharjee &
// Kommareddy, SIGCOMM 2002).
//
// The first family in the paper's Section 2.1 taxonomy: "participants of a
// multicast group explicitly choose their parents ... from a list of
// candidate nodes.  Examples of such systems include NICE, Overcast, and
// Yoid."  NICE arranges members into layers of size-bounded clusters:
//
//   * layer 0 contains every member, partitioned into clusters of size
//     [k, 3k-1]; each cluster elects its latency-centre as *leader*;
//   * layer i+1 contains exactly the layer-i leaders, clustered again,
//     until a single top cluster remains;
//   * the control/data topology connects every member to its cluster
//     leader, yielding O(log n) tree depth and O(k) fan-out per leader.
//
// This implementation performs the clustering with the same information a
// running NICE deployment converges to (pairwise member latencies) and
// emits a core::SpanningTree for the metrics pipeline.
#pragma once

#include "core/spanning_tree.h"
#include "overlay/population.h"
#include "util/rng.h"

namespace groupcast::baselines {

struct NiceOptions {
  /// Cluster size parameter k: clusters hold between k and 3k-1 members.
  std::size_t cluster_degree = 3;
};

struct NiceResult {
  core::SpanningTree tree;
  overlay::PeerId root;        // leader of the top cluster
  std::size_t layers = 0;      // hierarchy height
  std::size_t clusters = 0;    // total clusters over all layers
  /// Per-round control cost: every member heartbeats its cluster mates
  /// (NICE's O(k) per-member maintenance).
  std::size_t refresh_messages_per_round = 0;
};

/// Builds the NICE hierarchy over `members` and returns the implied
/// data-delivery tree (members attach to their layer-0 leader, leaders to
/// their layer-1 leader, and so on).
NiceResult build_nice_tree(const overlay::PeerPopulation& population,
                           const std::vector<overlay::PeerId>& members,
                           const NiceOptions& options, util::Rng& rng);

}  // namespace groupcast::baselines
