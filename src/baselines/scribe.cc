#include "baselines/scribe.h"

#include "util/require.h"

namespace groupcast::baselines {

ScribeResult build_scribe_tree(
    const ChordRing& ring, const overlay::PeerPopulation& population,
    std::uint64_t group_key,
    const std::vector<overlay::PeerId>& subscribers) {
  const overlay::PeerId root = ring.successor_of(group_key);
  ScribeResult result{core::SpanningTree(root), root, 0, 0.0};

  for (const auto subscriber : subscribers) {
    if (!result.tree.contains(subscriber)) {
      // Route towards the key; the path (reversed) is the forwarding path.
      const auto path = ring.route(subscriber, group_key);
      GC_ENSURE(!path.empty() && path.front() == subscriber);
      GC_ENSURE(path.back() == root);
      // Find the first node already on the tree; the join stops there.
      std::size_t stop = path.size() - 1;
      for (std::size_t i = 0; i < path.size(); ++i) {
        result.join_messages += i == 0 ? 0 : 1;
        if (i > 0) {
          result.total_join_latency_ms +=
              population.latency_ms(path[i - 1], path[i]);
        }
        if (result.tree.contains(path[i])) {
          stop = i;
          break;
        }
      }
      // Attach the walked prefix, top-down: path[stop] is on the tree.
      for (std::size_t i = stop; i-- > 0;) {
        result.tree.attach(path[i], path[i + 1]);
      }
    }
    result.tree.mark_subscriber(subscriber);
  }
  return result;
}

}  // namespace groupcast::baselines
