// SCRIBE-style multicast tree over the Chord ring.
//
// The DHT-based baseline of Section 2.1: "the multicast source is mapped to
// a well-known node serving as the rendezvous point.  Subscribers use the
// identifier of the rendezvous point as the keyword in their subscribing
// requests ... the reverse of this [routing] path would be used for
// forwarding the multicast payloads down from the multicast source."
//
// Every subscriber routes a JOIN towards the group key; each hop becomes a
// forwarder and the join stops at the first node already on the tree —
// exactly the SCRIBE algorithm.  The resulting core::SpanningTree feeds the
// same GroupSession / metrics pipeline as GroupCast trees, so tree quality
// is directly comparable.
#pragma once

#include "baselines/chord.h"
#include "core/spanning_tree.h"

namespace groupcast::baselines {

struct ScribeResult {
  core::SpanningTree tree;
  overlay::PeerId root;              // successor of the group key
  std::size_t join_messages = 0;     // one per routing hop walked
  double total_join_latency_ms = 0;  // summed hop latencies of all joins
};

/// Builds the SCRIBE tree for `group_key` with the given subscribers.
ScribeResult build_scribe_tree(const ChordRing& ring,
                               const overlay::PeerPopulation& population,
                               std::uint64_t group_key,
                               const std::vector<overlay::PeerId>& subscribers);

}  // namespace groupcast::baselines
