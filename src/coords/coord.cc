#include "coords/coord.h"

#include <cmath>

namespace groupcast::coords {

double Coord::distance_to(const Coord& other) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < kDims; ++i) {
    const double d = v_[i] - other.v_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double Coord::magnitude() const {
  double acc = 0.0;
  for (double x : v_) acc += x * x;
  return std::sqrt(acc);
}

Coord& Coord::operator+=(const Coord& other) {
  for (std::size_t i = 0; i < kDims; ++i) v_[i] += other.v_[i];
  return *this;
}

Coord& Coord::operator-=(const Coord& other) {
  for (std::size_t i = 0; i < kDims; ++i) v_[i] -= other.v_[i];
  return *this;
}

Coord& Coord::operator*=(double k) {
  for (auto& x : v_) x *= k;
  return *this;
}

std::ostream& operator<<(std::ostream& os, const Coord& c) {
  os << '(';
  for (std::size_t i = 0; i < kDims; ++i) {
    if (i) os << ", ";
    os << c[i];
  }
  return os << ')';
}

}  // namespace groupcast::coords
