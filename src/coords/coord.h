// Euclidean network coordinates.
//
// GroupCast peers carry a network coordinate in their identification tuple
// <IP, port, coordinate, capacity> (Section 3.3) and estimate inter-peer
// latency from coordinate distance.  The paper cites GNP [1] and
// Vivaldi [15]; both embed hosts into a low-dimensional Euclidean space.
#pragma once

#include <array>
#include <cstddef>
#include <ostream>

namespace groupcast::coords {

/// Dimensionality of the embedding space.  GNP's evaluation found 5–7
/// dimensions sufficient for Internet latencies; we use 5.
inline constexpr std::size_t kDims = 5;

/// A point in the embedding space, in "milliseconds" units so that
/// Euclidean distance approximates one-way latency directly.
class Coord {
 public:
  constexpr Coord() : v_{} {}
  explicit Coord(const std::array<double, kDims>& v) : v_(v) {}

  double& operator[](std::size_t i) { return v_[i]; }
  double operator[](std::size_t i) const { return v_[i]; }

  /// Euclidean distance to another coordinate (estimated latency, ms).
  double distance_to(const Coord& other) const;

  /// Euclidean norm.
  double magnitude() const;

  Coord& operator+=(const Coord& other);
  Coord& operator-=(const Coord& other);
  Coord& operator*=(double k);
  friend Coord operator+(Coord a, const Coord& b) { return a += b; }
  friend Coord operator-(Coord a, const Coord& b) { return a -= b; }
  friend Coord operator*(Coord a, double k) { return a *= k; }

  friend bool operator==(const Coord&, const Coord&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Coord& c);

 private:
  std::array<double, kDims> v_;
};

}  // namespace groupcast::coords
