#include "coords/gnp.h"

#include <algorithm>
#include <cmath>

#include "coords/nelder_mead.h"
#include "util/require.h"

namespace groupcast::coords {

namespace {

double noisy(double value, double noise, util::Rng& rng) {
  if (noise <= 0.0) return value;
  return value * rng.uniform(1.0 - noise, 1.0 + noise);
}

/// Relative-error objective GNP minimizes: sum of ((est-real)/real)^2.
double relative_error_sq(double estimated, double measured) {
  if (measured <= 0.0) return estimated * estimated;
  const double e = (estimated - measured) / measured;
  return e * e;
}

}  // namespace

GnpEmbedding::GnpEmbedding(std::size_t host_count, const LatencyOracle& oracle,
                           util::Rng& rng, const GnpOptions& options) {
  GC_REQUIRE(host_count >= 2);
  const std::size_t n_landmarks = std::min(options.landmarks, host_count);
  GC_REQUIRE(n_landmarks >= 2);

  // Landmark selection: uniform sample.  (GNP found random landmark picks
  // within a few percent of optimized picks.)
  landmarks_ = rng.sample_indices(host_count, n_landmarks);

  // Measured landmark-to-landmark latencies.
  std::vector<std::vector<double>> lm_dist(n_landmarks,
                                           std::vector<double>(n_landmarks));
  for (std::size_t i = 0; i < n_landmarks; ++i) {
    for (std::size_t j = i + 1; j < n_landmarks; ++j) {
      const double d =
          noisy(oracle(landmarks_[i], landmarks_[j]),
                options.measurement_noise, rng);
      lm_dist[i][j] = lm_dist[j][i] = d;
    }
  }

  // Phase 1: joint landmark embedding by spring relaxation.  Each landmark
  // starts at a random point; every round moves each landmark along the
  // summed error gradient of its springs.  This converges to the same local
  // minima the Simplex search finds for the joint objective and is far
  // cheaper in the joint (landmarks × dims) space.
  std::vector<Coord> lm(n_landmarks);
  for (auto& c : lm) {
    for (std::size_t d = 0; d < kDims; ++d) c[d] = rng.uniform(-200.0, 200.0);
  }
  for (std::size_t round = 0; round < options.landmark_iterations; ++round) {
    // Step size decays so the system settles.
    const double step =
        0.25 * (1.0 - static_cast<double>(round) /
                          static_cast<double>(options.landmark_iterations));
    for (std::size_t i = 0; i < n_landmarks; ++i) {
      Coord force;
      for (std::size_t j = 0; j < n_landmarks; ++j) {
        if (i == j) continue;
        const double est = lm[i].distance_to(lm[j]);
        const double target = lm_dist[i][j];
        if (est < 1e-9) {
          // Coincident points: push apart along a pseudo-random axis.
          Coord jitter;
          jitter[(i + j) % kDims] = 1.0;
          force += jitter * target;
          continue;
        }
        // Spring: positive error (too far) pulls together.
        const double err = target - est;
        Coord direction = lm[i] - lm[j];
        direction *= (1.0 / est);
        force += direction * err;
      }
      lm[i] += force * step;
    }
  }

  // Phase 2: every host (landmarks keep their phase-1 coordinates) solves
  // its coordinate against the landmarks with Nelder–Mead.
  coords_.resize(host_count);
  for (std::size_t i = 0; i < n_landmarks; ++i) {
    coords_[landmarks_[i]] = lm[i];
  }
  std::vector<char> is_landmark(host_count, 0);
  for (const auto l : landmarks_) is_landmark[l] = 1;

  NelderMeadOptions nm;
  nm.max_iterations = options.host_nm_iterations;
  nm.initial_step = 40.0;
  for (std::size_t host = 0; host < host_count; ++host) {
    if (is_landmark[host]) continue;
    std::vector<double> probes(n_landmarks);
    for (std::size_t j = 0; j < n_landmarks; ++j) {
      probes[j] =
          noisy(oracle(host, landmarks_[j]), options.measurement_noise, rng);
    }
    const auto objective = [&](const std::vector<double>& x) {
      double total = 0.0;
      for (std::size_t j = 0; j < n_landmarks; ++j) {
        double acc = 0.0;
        for (std::size_t d = 0; d < kDims; ++d) {
          const double diff = x[d] - lm[j][d];
          acc += diff * diff;
        }
        total += relative_error_sq(std::sqrt(acc), probes[j]);
      }
      return total;
    };
    // Start at the closest landmark's coordinate — a good initial guess.
    std::size_t nearest = 0;
    for (std::size_t j = 1; j < n_landmarks; ++j) {
      if (probes[j] < probes[nearest]) nearest = j;
    }
    std::vector<double> start(kDims);
    for (std::size_t d = 0; d < kDims; ++d) start[d] = lm[nearest][d];
    const auto result = nelder_mead(objective, std::move(start), nm);
    Coord c;
    for (std::size_t d = 0; d < kDims; ++d) c[d] = result.x[d];
    coords_[host] = c;
  }
}

double GnpEmbedding::median_relative_error(const LatencyOracle& oracle,
                                           util::Rng& rng,
                                           std::size_t sample_pairs) const {
  GC_REQUIRE(coords_.size() >= 2);
  std::vector<double> errors;
  errors.reserve(sample_pairs);
  for (std::size_t s = 0; s < sample_pairs; ++s) {
    const auto a = rng.uniform_index(coords_.size());
    auto b = rng.uniform_index(coords_.size());
    if (a == b) continue;
    const double real = oracle(a, b);
    if (real <= 0.0) continue;
    const double est = coords_[a].distance_to(coords_[b]);
    errors.push_back(std::abs(est - real) / real);
  }
  if (errors.empty()) return 0.0;
  std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                   errors.end());
  return errors[errors.size() / 2];
}

}  // namespace groupcast::coords
