// GNP (Global Network Positioning) coordinate assignment.
//
// The paper assigns each peer a network coordinate "using the algorithm
// of [1]" (GNP).  GNP works in two phases:
//   1. a small set of landmark hosts measure pairwise latencies and solve a
//      joint embedding minimizing relative error;
//   2. every other host measures its latency to the landmarks and solves
//      its own coordinate against the fixed landmark coordinates with the
//      Simplex Downhill (Nelder–Mead) method.
//
// The latency oracle abstracts "measuring": in the simulation it returns
// the underlay's true shortest-path latency (optionally with measurement
// noise), which is exactly the information real probes would gather.
#pragma once

#include <functional>
#include <vector>

#include "coords/coord.h"
#include "util/rng.h"

namespace groupcast::coords {

/// Returns the measured latency (ms) between host `a` and host `b`.
using LatencyOracle = std::function<double(std::size_t, std::size_t)>;

struct GnpOptions {
  std::size_t landmarks = 8;
  /// Multiplicative measurement noise: each probe is scaled by a factor
  /// drawn uniformly from [1-noise, 1+noise].  0 disables noise.
  double measurement_noise = 0.0;
  std::size_t landmark_iterations = 2000;  // spring relaxation rounds
  std::size_t host_nm_iterations = 300;    // Nelder–Mead budget per host
};

/// Embedding of `host_count` hosts.
class GnpEmbedding {
 public:
  /// Runs the full two-phase GNP procedure.
  /// @param host_count total number of hosts to embed (>= landmarks)
  /// @param oracle latency measurements; must be symmetric and non-negative
  GnpEmbedding(std::size_t host_count, const LatencyOracle& oracle,
               util::Rng& rng, const GnpOptions& options = {});

  const Coord& coordinate(std::size_t host) const { return coords_.at(host); }
  const std::vector<Coord>& coordinates() const { return coords_; }
  const std::vector<std::size_t>& landmark_hosts() const {
    return landmarks_;
  }

  /// Median relative error |est - real| / real over sampled host pairs —
  /// the standard GNP accuracy figure; useful for tests and diagnostics.
  double median_relative_error(const LatencyOracle& oracle, util::Rng& rng,
                               std::size_t sample_pairs = 2000) const;

 private:
  std::vector<Coord> coords_;
  std::vector<std::size_t> landmarks_;
};

}  // namespace groupcast::coords
