#include "coords/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace groupcast::coords {

namespace {

std::vector<double> centroid_excluding_worst(
    const std::vector<std::vector<double>>& simplex, std::size_t worst) {
  const std::size_t dims = simplex.front().size();
  std::vector<double> c(dims, 0.0);
  for (std::size_t i = 0; i < simplex.size(); ++i) {
    if (i == worst) continue;
    for (std::size_t d = 0; d < dims; ++d) c[d] += simplex[i][d];
  }
  const double k = 1.0 / static_cast<double>(simplex.size() - 1);
  for (auto& x : c) x *= k;
  return c;
}

std::vector<double> affine(const std::vector<double>& origin,
                           const std::vector<double>& towards, double t) {
  std::vector<double> out(origin.size());
  for (std::size_t d = 0; d < origin.size(); ++d) {
    out[d] = origin[d] + t * (towards[d] - origin[d]);
  }
  return out;
}

}  // namespace

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, const NelderMeadOptions& options) {
  GC_REQUIRE(!start.empty());
  GC_REQUIRE(options.initial_step > 0.0);
  const std::size_t dims = start.size();

  // Initial simplex: the start point plus one vertex offset per axis.
  std::vector<std::vector<double>> simplex;
  simplex.reserve(dims + 1);
  simplex.push_back(start);
  for (std::size_t d = 0; d < dims; ++d) {
    auto v = start;
    v[d] += options.initial_step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i) values[i] = f(simplex[i]);

  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Identify best, worst, second-worst.
    std::size_t best = 0, worst = 0, second = 0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      if (values[i] < values[best]) best = i;
      if (values[i] > values[worst]) worst = i;
    }
    second = best;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != worst && values[i] > values[second]) second = i;
    }

    if (std::abs(values[worst] - values[best]) < options.tolerance) break;

    const auto center = centroid_excluding_worst(simplex, worst);
    const auto reflected =
        affine(center, simplex[worst], -options.reflection);
    const double reflected_value = f(reflected);

    if (reflected_value < values[best]) {
      const auto expanded = affine(center, simplex[worst],
                                   -options.reflection * options.expansion);
      const double expanded_value = f(expanded);
      if (expanded_value < reflected_value) {
        simplex[worst] = expanded;
        values[worst] = expanded_value;
      } else {
        simplex[worst] = reflected;
        values[worst] = reflected_value;
      }
    } else if (reflected_value < values[second]) {
      simplex[worst] = reflected;
      values[worst] = reflected_value;
    } else {
      const auto contracted =
          affine(center, simplex[worst], options.contraction);
      const double contracted_value = f(contracted);
      if (contracted_value < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = contracted_value;
      } else {
        // Shrink the whole simplex towards the best vertex.
        for (std::size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          simplex[i] = affine(simplex[best], simplex[i], options.shrink);
          values[i] = f(simplex[i]);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) best = i;
  }
  return NelderMeadResult{simplex[best], values[best], iter};
}

}  // namespace groupcast::coords
