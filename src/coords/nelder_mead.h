// Nelder–Mead downhill-simplex minimizer.
//
// GNP [1] computes each host's coordinate by minimizing the latency
// embedding error with the Simplex Downhill method; this is that method,
// kept generic over std::vector<double> so tests can exercise it on known
// analytic functions.
#pragma once

#include <functional>
#include <vector>

namespace groupcast::coords {

struct NelderMeadOptions {
  std::size_t max_iterations = 400;
  double initial_step = 50.0;   // simplex spread around the starting point
  double tolerance = 1e-6;      // stop when the simplex f-spread drops below
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
};

/// Minimizes `f` starting from `start`.
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace groupcast::coords
