#include "coords/vivaldi.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace groupcast::coords {

VivaldiModel::VivaldiModel(std::size_t node_count, util::Rng& rng,
                           const VivaldiOptions& options)
    : nodes_(node_count), options_(options), jitter_(rng.split()) {
  GC_REQUIRE(node_count >= 2);
  for (auto& n : nodes_) {
    n.error = options.initial_error;
    // Small random spread breaks the all-at-origin symmetry.
    for (std::size_t d = 0; d < kDims; ++d) n.coord[d] = rng.uniform(-1, 1);
  }
}

void VivaldiModel::observe(std::size_t i, std::size_t j, double rtt_ms) {
  GC_REQUIRE(i < nodes_.size() && j < nodes_.size());
  GC_REQUIRE(i != j);
  GC_REQUIRE(rtt_ms >= 0.0);
  VivaldiNode& self = nodes_[i];
  const VivaldiNode& other = nodes_[j];

  const double est = self.coord.distance_to(other.coord);
  const double err = est - rtt_ms;

  // Confidence-weighted sample weight.
  const double denom = self.error + other.error;
  const double w = denom > 0.0 ? self.error / denom : 0.5;

  // Update local error estimate (EWMA of relative sample error).
  const double rel = rtt_ms > 0.0 ? std::abs(err) / rtt_ms : std::abs(err);
  const double alpha = options_.ce * w;
  self.error = std::clamp(rel * alpha + self.error * (1.0 - alpha), 0.0, 10.0);

  // Move along the unit vector away from (or towards) the neighbour.
  Coord direction = self.coord - other.coord;
  const double mag = direction.magnitude();
  if (mag < 1e-9) {
    // Coincident: pick a random direction.
    for (std::size_t d = 0; d < kDims; ++d) {
      direction[d] = jitter_.uniform(-1.0, 1.0);
    }
    const double m2 = direction.magnitude();
    direction *= m2 > 0 ? 1.0 / m2 : 0.0;
  } else {
    direction *= 1.0 / mag;
  }
  const double delta = options_.cc * w;
  self.coord += direction * (-err * delta);
}

}  // namespace groupcast::coords
