// Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM 2004).
//
// The paper lists Vivaldi alongside GNP as a way to obtain peer coordinates.
// Vivaldi needs no landmarks: each node refines its own coordinate from
// ordinary RTT samples using a spring model with an adaptive timestep
// weighted by both endpoints' confidence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "coords/coord.h"
#include "util/rng.h"

namespace groupcast::coords {

struct VivaldiOptions {
  double cc = 0.25;  // timestep constant
  double ce = 0.25;  // error-adaptation constant
  double initial_error = 1.0;
};

/// State of one Vivaldi node.
struct VivaldiNode {
  Coord coord;
  double error = 1.0;  // local confidence estimate in [0, ~1]
};

/// A population of Vivaldi nodes updated from pairwise RTT samples.
class VivaldiModel {
 public:
  VivaldiModel(std::size_t node_count, util::Rng& rng,
               const VivaldiOptions& options = {});

  std::size_t size() const { return nodes_.size(); }
  const VivaldiNode& node(std::size_t i) const { return nodes_.at(i); }
  const Coord& coordinate(std::size_t i) const { return nodes_.at(i).coord; }

  /// Applies one RTT observation measured from `i` to `j`, moving node `i`
  /// (the standard Vivaldi asymmetric update).
  void observe(std::size_t i, std::size_t j, double rtt_ms);

  /// Runs `rounds` rounds in which every node samples a random other node
  /// through `oracle` (true latency).  Convenience for simulations.
  template <typename Oracle>
  void run_rounds(std::size_t rounds, Oracle&& oracle, util::Rng& rng) {
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        std::size_t j = rng.uniform_index(nodes_.size());
        if (j == i) j = (j + 1) % nodes_.size();
        observe(i, j, oracle(i, j));
      }
    }
  }

  /// Median relative error over random sampled pairs.
  template <typename Oracle>
  double median_relative_error(Oracle&& oracle, util::Rng& rng,
                               std::size_t samples = 2000) const;

 private:
  std::vector<VivaldiNode> nodes_;
  VivaldiOptions options_;
  util::Rng jitter_;
};

template <typename Oracle>
double VivaldiModel::median_relative_error(Oracle&& oracle, util::Rng& rng,
                                           std::size_t samples) const {
  std::vector<double> errors;
  errors.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto a = rng.uniform_index(nodes_.size());
    const auto b = rng.uniform_index(nodes_.size());
    if (a == b) continue;
    const double real = oracle(a, b);
    if (real <= 0.0) continue;
    const double est = nodes_[a].coord.distance_to(nodes_[b].coord);
    errors.push_back(std::abs(est - real) / real);
  }
  if (errors.empty()) return 0.0;
  std::sort(errors.begin(), errors.end());
  return errors[errors.size() / 2];
}

}  // namespace groupcast::coords
