#include "core/advertisement.h"

#include <algorithm>
#include <cmath>

#include "core/utility.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

const char* to_string(AnnouncementScheme scheme) {
  switch (scheme) {
    case AnnouncementScheme::kNssa:
      return "NSSA";
    case AnnouncementScheme::kSsaRandom:
      return "SSA-random";
    case AnnouncementScheme::kSsaUtility:
      return "SSA";
  }
  return "?";
}

double AdvertisementState::receiving_rate() const {
  if (parent.empty()) return 0.0;
  std::size_t received_count = 0;
  for (const auto p : parent) {
    if (p != overlay::kNoPeer) ++received_count;
  }
  return static_cast<double>(received_count) /
         static_cast<double>(parent.size());
}

AdvertisementEngine::AdvertisementEngine(
    sim::Simulator& simulator, const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph, AdvertisementOptions options,
    util::Rng& rng)
    : simulator_(&simulator),
      population_(&population),
      graph_(&graph),
      options_(options),
      rng_(rng.split()),
      resource_level_(population.size(), 0.5),
      resource_level_known_(population.size(), 0),
      neighbor_cache_(population.size()) {
  GC_REQUIRE(options_.forward_fraction > 0.0 &&
             options_.forward_fraction <= 1.0);
  GC_REQUIRE(options_.ttl >= 1);
}

std::vector<overlay::PeerId> AdvertisementEngine::select_targets(
    overlay::PeerId from, const std::vector<overlay::PeerId>& neighbors,
    overlay::PeerId exclude) {
  std::vector<overlay::PeerId> pool;
  pool.reserve(neighbors.size());
  for (const auto n : neighbors) {
    if (n != exclude) pool.push_back(n);
  }
  if (pool.empty()) return pool;
  if (options_.scheme == AnnouncementScheme::kNssa) return pool;

  const auto want = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.forward_fraction *
                       static_cast<double>(pool.size()))));
  if (want >= pool.size()) return pool;

  if (options_.scheme == AnnouncementScheme::kSsaRandom) {
    const auto idx = rng_.sample_indices(pool.size(), want);
    std::vector<overlay::PeerId> out;
    out.reserve(want);
    for (const auto i : idx) out.push_back(pool[i]);
    return out;
  }

  // kSsaUtility: weights proportional to the utility values of the
  // neighbours as seen by the forwarding peer.
  if (!resource_level_known_[from]) {
    resource_level_[from] = clamp_resource_level(
        options_.pinned_resource_level >= 0.0
            ? options_.pinned_resource_level
            : population_->sampled_resource_level(
                  from, options_.resource_sample, rng_));
    resource_level_known_[from] = 1;
  }
  std::vector<Candidate> candidates;
  candidates.reserve(pool.size());
  for (const auto n : pool) {
    candidates.push_back(Candidate{population_->info(n).capacity,
                                   population_->coord_distance_ms(from, n)});
  }
  const auto prefs = selection_preferences(resource_level_[from], candidates);
  const auto idx = weighted_sample_without_replacement(prefs, want, rng_);
  std::vector<overlay::PeerId> out;
  out.reserve(idx.size());
  for (const auto i : idx) out.push_back(pool[i]);
  return out;
}

std::vector<overlay::PeerId> AdvertisementEngine::select_targets_cached(
    overlay::PeerId from, overlay::PeerId exclude) {
  NeighborCacheEntry& entry = neighbor_cache_[from];
  const auto generation = graph_->neighbor_generation(from);
  if (!entry.valid || entry.generation != generation) {
    entry.valid = true;
    entry.candidates_valid = false;
    entry.generation = generation;
    entry.neighbors = graph_->neighbors(from);
    entry.candidates.clear();
  }

  std::vector<overlay::PeerId> pool;
  pool.reserve(entry.neighbors.size());
  for (const auto n : entry.neighbors) {
    if (n != exclude) pool.push_back(n);
  }
  if (pool.empty()) return pool;
  if (options_.scheme == AnnouncementScheme::kNssa) return pool;

  const auto want = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.forward_fraction *
                       static_cast<double>(pool.size()))));
  if (want >= pool.size()) return pool;

  if (options_.scheme == AnnouncementScheme::kSsaRandom) {
    const auto idx = rng_.sample_indices(pool.size(), want);
    std::vector<overlay::PeerId> out;
    out.reserve(want);
    for (const auto i : idx) out.push_back(pool[i]);
    return out;
  }

  // kSsaUtility.  The resource-level memo goes first, exactly as in
  // select_targets, so the RNG stream stays aligned with the uncached
  // path; the candidate rows below draw no RNG.
  if (!resource_level_known_[from]) {
    resource_level_[from] = clamp_resource_level(
        options_.pinned_resource_level >= 0.0
            ? options_.pinned_resource_level
            : population_->sampled_resource_level(
                  from, options_.resource_sample, rng_));
    resource_level_known_[from] = 1;
  }
  if (!entry.candidates_valid) {
    trace::counters().incr(from, trace::CounterId::kUtilityCacheMisses);
    entry.candidates.reserve(entry.neighbors.size());
    for (const auto n : entry.neighbors) {
      entry.candidates.push_back(
          Candidate{population_->info(n).capacity,
                    population_->coord_distance_ms(from, n)});
    }
    entry.candidates_valid = true;
  } else {
    trace::counters().incr(from, trace::CounterId::kUtilityCacheHits);
  }
  // Pool-aligned rows: skip the excluded neighbour in lockstep, giving
  // the exact vector select_targets would have built.
  std::vector<Candidate> candidates;
  candidates.reserve(pool.size());
  for (std::size_t i = 0; i < entry.neighbors.size(); ++i) {
    if (entry.neighbors[i] != exclude) {
      candidates.push_back(entry.candidates[i]);
    }
  }
  const auto prefs = selection_preferences(resource_level_[from], candidates);
  const auto idx = weighted_sample_without_replacement(prefs, want, rng_);
  std::vector<overlay::PeerId> out;
  out.reserve(idx.size());
  for (const auto i : idx) out.push_back(pool[i]);
  return out;
}

AdvertisementState AdvertisementEngine::announce(overlay::PeerId rendezvous,
                                                 MessageStats* stats) {
  GC_REQUIRE(rendezvous < population_->size());
  trace::ScopedTimer announce_timer(trace::TimerId::kAnnounce);

  AdvertisementState state;
  state.rendezvous = rendezvous;
  state.scheme = options_.scheme;
  state.parent.assign(population_->size(), overlay::kNoPeer);
  state.arrival.assign(population_->size(), sim::SimTime::zero());

  // Recursive sender closure: forwards an advertisement copy from `from`
  // to each selected neighbour; receipt handling is scheduled at the true
  // unicast latency.
  struct Context {
    AdvertisementEngine* engine;
    AdvertisementState* state;
    MessageStats* stats;
    trace::Tracer* tracer;          // hoisted: keeps the hot path to one
    trace::CounterRegistry* counters;  // null-check / one-branch each
  };
  auto context = std::make_shared<Context>(Context{
      this, &state, stats, &trace::tracer(), &trace::counters()});

  // `handle` processes one delivered advertisement copy.
  std::function<void(overlay::PeerId, overlay::PeerId, std::size_t)> handle =
      [context, &handle](overlay::PeerId at, overlay::PeerId from,
                         std::size_t ttl) {
        AdvertisementState& st = *context->state;
        const auto now_us = context->engine->simulator_->now().as_micros();
        if (st.parent[at] != overlay::kNoPeer) {  // duplicate: drop
          context->counters->incr(at, trace::CounterId::kMessagesDropped);
          context->tracer->emit(
              now_us, trace::EventKind::kMessageDropped, at, from,
              static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
          return;
        }
        st.parent[at] = from;
        st.arrival[at] = context->engine->simulator_->now();
        context->counters->incr(at, trace::CounterId::kMessagesReceived);
        if (ttl == 0) return;
        const auto targets =
            context->engine->select_targets_cached(at, from);
        for (const auto to : targets) {
          ++st.messages;
          if (context->stats != nullptr) {
            context->stats->count(MessageKind::kAdvertisement);
          }
          context->counters->incr(at, trace::CounterId::kMessagesSent);
          context->counters->incr(at, trace::CounterId::kAdvertsForwarded);
          context->tracer->emit(now_us, trace::EventKind::kAdvertForwarded,
                                at, to, ttl);
          const auto latency = sim::SimTime::millis(
              context->engine->population_->latency_ms(at, to));
          context->engine->simulator_->schedule(
              latency, [&handle, to, at, ttl] { handle(to, at, ttl - 1); });
        }
      };

  // Kick off from the rendezvous point (parent[rp] = rp marks receipt).
  simulator_->schedule(sim::SimTime::zero(), [&handle, rendezvous, this] {
    handle(rendezvous, rendezvous, options_.ttl);
  });
  simulator_->run();
  return state;
}

}  // namespace groupcast::core
