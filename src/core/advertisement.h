// Service announcement: SSA and NSSA (Sections 2.2 and 3.2).
//
// A rendezvous point advertises a communication group through the overlay.
// Three schemes are implemented:
//
//  * kNssa        — Non-Selective Service Announcement: DVMRP/Scattercast
//                   style flooding.  Each peer forwards the advertisement to
//                   *all* neighbours (except the sender) on first receipt;
//                   the full path travels inside the message for loop
//                   suppression, as Scattercast does.
//  * kSsaRandom   — the basic framework's SSA: forward to a random
//                   pre-specified fraction of neighbours.
//  * kSsaUtility  — GroupCast's SSA: the forwarding subset is drawn with
//                   probability proportional to the neighbours' utility
//                   values (Section 3.2), so high-utility links form the
//                   eventual spanning tree.
//
// The announcement runs event-driven on the simulator: every transmission
// is delivered after the true unicast latency of the link, so arrival
// times and the resulting reverse paths reflect the physical network.
#pragma once

#include <vector>

#include "core/message.h"
#include "core/utility.h"
#include "overlay/graph.h"
#include "overlay/population.h"
#include "sim/simulator.h"

namespace groupcast::core {

enum class AnnouncementScheme { kNssa, kSsaRandom, kSsaUtility };

const char* to_string(AnnouncementScheme scheme);

struct AdvertisementOptions {
  AnnouncementScheme scheme = AnnouncementScheme::kSsaUtility;
  /// Fraction of neighbours an SSA forwarder selects (ceil, at least 1).
  double forward_fraction = 0.35;
  /// Initial TTL of the advertisement.
  std::size_t ttl = 8;
  /// Sample size for each forwarder's resource-level estimate.
  std::size_t resource_sample = 32;

  /// Ablation hook: when >= 0, forwarders use this fixed resource level
  /// instead of sampling (see BootstrapOptions::pinned_resource_level).
  double pinned_resource_level = -1.0;
};

/// Outcome of one announcement: who received it, from whom, and when.
struct AdvertisementState {
  overlay::PeerId rendezvous = overlay::kNoPeer;
  AnnouncementScheme scheme = AnnouncementScheme::kSsaUtility;
  /// parent[p]: neighbour the first advertisement copy arrived from;
  /// kNoPeer if p never received it.  parent[rendezvous] == rendezvous.
  std::vector<overlay::PeerId> parent;
  /// arrival[p]: simulated arrival time of the first copy (valid only if
  /// parent[p] != kNoPeer).
  std::vector<sim::SimTime> arrival;
  /// Advertisement transmissions (every copy sent, duplicates included).
  std::size_t messages = 0;

  bool received(overlay::PeerId p) const {
    return parent.at(p) != overlay::kNoPeer;
  }
  /// Fraction of overlay peers the advertisement reached (Figure 12's
  /// "receiving rate").  `population` = total peer count.
  double receiving_rate() const;
};

class AdvertisementEngine {
 public:
  AdvertisementEngine(sim::Simulator& simulator,
                      const overlay::PeerPopulation& population,
                      const overlay::OverlayGraph& graph,
                      AdvertisementOptions options, util::Rng& rng);

  /// Runs one full announcement from `rendezvous` to quiescence.
  /// Advertisement message counts are also added to `stats` if non-null.
  AdvertisementState announce(overlay::PeerId rendezvous,
                              MessageStats* stats = nullptr);

  const AdvertisementOptions& options() const { return options_; }

 private:
  /// Picks the forwarding subset for `from` out of `neighbors`
  /// (excluding `exclude`), per the configured scheme.
  std::vector<overlay::PeerId> select_targets(
      overlay::PeerId from, const std::vector<overlay::PeerId>& neighbors,
      overlay::PeerId exclude);

  /// Cached variant used by announce(): Nbr(from) and (for kSsaUtility)
  /// its Eq. 1-5 Candidate rows are memoized per forwarder, revalidated
  /// against the graph's neighbour generation.  Bit-identical to
  /// select_targets over graph_->neighbors(from): the cache stores the
  /// computed rows, draws no RNG while filling, and any neighbour
  /// add/remove invalidates it — see docs/PERFORMANCE.md.
  std::vector<overlay::PeerId> select_targets_cached(overlay::PeerId from,
                                                     overlay::PeerId exclude);

  /// Per-forwarder memo of select_targets_cached.  `candidates[i]` is the
  /// capacity/distance row of `neighbors[i]`; rows are filled lazily on
  /// the first kSsaUtility selection (kUtilityCacheMisses) and reused
  /// until the generation moves (kUtilityCacheHits).
  struct NeighborCacheEntry {
    bool valid = false;
    bool candidates_valid = false;
    std::uint64_t generation = 0;
    std::vector<overlay::PeerId> neighbors;
    std::vector<Candidate> candidates;
  };

  sim::Simulator* simulator_;
  const overlay::PeerPopulation* population_;
  const overlay::OverlayGraph* graph_;
  AdvertisementOptions options_;
  util::Rng rng_;
  /// Cached resource-level estimate per peer (lazily sampled).
  std::vector<double> resource_level_;
  std::vector<char> resource_level_known_;
  std::vector<NeighborCacheEntry> neighbor_cache_;
};

}  // namespace groupcast::core
