#include "core/fault_injection.h"

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

FaultInjector::FaultInjector(sim::FaultPlan plan, Transport& transport)
    : plan_(std::move(plan)), transport_(&transport) {
  plan_.validate();
  window_sets_.reserve(plan_.partitions.size());
  for (const auto& window : plan_.partitions) {
    WindowSets sets;
    for (const auto n : window.side_a) {
      sets.side_a.insert(static_cast<overlay::PeerId>(n));
    }
    for (const auto n : window.side_b) {
      sets.side_b.insert(static_cast<overlay::PeerId>(n));
    }
    window_sets_.push_back(std::move(sets));
  }
  transport_->set_fault_filter(this);
}

FaultInjector::~FaultInjector() { transport_->set_fault_filter(nullptr); }

void FaultInjector::arm(CrashHook on_crash) {
  GC_REQUIRE_MSG(!armed_, "fault plan already armed");
  armed_ = true;
  if (transport_->sharded()) {
    // Each crash fires on the victim's own shard (the only thread allowed
    // to touch the victim's node state) and is pre-declared to the
    // transport so in-flight suppression needs no cross-shard reads.
    // crashed_ is appended from several workers; the mutex keeps the
    // bookkeeping safe and crashed() exposes it sorted.
    for (const auto& crash : plan_.crashes) {
      const auto victim = static_cast<overlay::PeerId>(crash.node);
      transport_->declare_crash(victim, crash.at);
      transport_->simulator_for(victim).schedule_at(
          crash.at, [this, victim, on_crash] {
            {
              const std::lock_guard<std::mutex> lock(crashed_mu_);
              crashed_.push_back(victim);
            }
            if (on_crash) on_crash(victim);
          });
    }
    return;
  }
  auto& simulator = transport_->simulator();
  for (const auto& crash : plan_.crashes) {
    const auto victim = static_cast<overlay::PeerId>(crash.node);
    simulator.schedule_at(crash.at, [this, victim, on_crash] {
      crashed_.push_back(victim);
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kFaultInjected, victim,
                           overlay::kNoPeer, 0);
      if (on_crash) on_crash(victim);
    });
  }
  // Window edges are traced so recovery timelines can be read off the
  // event stream; the filter itself needs no scheduling.
  for (const auto& window : plan_.partitions) {
    simulator.schedule_at(window.begin, [this] {
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kFaultInjected,
                           trace::kNoNode, trace::kNoNode, 1);
    });
    simulator.schedule_at(window.end, [this] {
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kFaultInjected,
                           trace::kNoNode, trace::kNoNode, 2);
    });
  }
  for (const auto& burst : plan_.bursts) {
    simulator.schedule_at(burst.begin, [this] {
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kFaultInjected,
                           trace::kNoNode, trace::kNoNode, 3);
    });
    simulator.schedule_at(burst.end, [this] {
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kFaultInjected,
                           trace::kNoNode, trace::kNoNode, 4);
    });
  }
}

bool FaultInjector::blocked(overlay::PeerId from, overlay::PeerId to,
                            sim::SimTime now) const {
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const auto& window = plan_.partitions[i];
    if (now < window.begin || now >= window.end) continue;
    const auto& sets = window_sets_[i];
    if ((sets.side_a.count(from) && sets.side_b.count(to)) ||
        (sets.side_a.count(to) && sets.side_b.count(from))) {
      return true;
    }
  }
  return false;
}

double FaultInjector::extra_loss(sim::SimTime now) const {
  return sim::burst_loss(plan_, now);
}

}  // namespace groupcast::core
