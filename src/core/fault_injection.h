// Deterministic fault injection for node-runtime experiments.
//
// A FaultInjector binds a sim::FaultPlan to a live deployment: it arms the
// plan's crash events on the simulator (invoking a crash hook that stops
// the victim node) and implements the Transport's FaultFilter so partition
// windows and burst-loss intervals act on every send.  All decisions are
// pure functions of the plan and the simulation clock, so a given
// (seed, plan) pair always yields the identical fault sequence.
#pragma once

#include <algorithm>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/transport.h"
#include "sim/fault_plan.h"

namespace groupcast::core {

class FaultInjector final : public FaultFilter {
 public:
  /// Called when a scheduled crash fires; must make the victim ungraceful
  /// (typically GroupCastNode::stop + Transport::unregister).
  using CrashHook = std::function<void(overlay::PeerId)>;

  /// Validates the plan and installs itself as `transport`'s fault
  /// filter.  The injector must outlive the transport's use of it; the
  /// destructor uninstalls the filter.
  FaultInjector(sim::FaultPlan plan, Transport& transport);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every crash of the plan on the simulator.  Call once,
  /// before running; `on_crash` fires at each crash instant.
  void arm(CrashHook on_crash);

  /// Peers crashed by the plan so far.  In sharded mode crashes land from
  /// several worker threads, so the list is sorted by peer id before it
  /// is returned (call only while the shard workers are parked); in
  /// single-wheel mode it is in firing order, as before.
  const std::vector<overlay::PeerId>& crashed() const {
    if (transport_->sharded()) {
      std::sort(crashed_.begin(), crashed_.end());
    }
    return crashed_;
  }

  const sim::FaultPlan& plan() const { return plan_; }

  // FaultFilter:
  bool blocked(overlay::PeerId from, overlay::PeerId to,
               sim::SimTime now) const override;
  double extra_loss(sim::SimTime now) const override;

 private:
  sim::FaultPlan plan_;
  Transport* transport_;
  /// Per-window membership sets, precomputed for O(1) send-time checks.
  struct WindowSets {
    std::unordered_set<overlay::PeerId> side_a;
    std::unordered_set<overlay::PeerId> side_b;
  };
  std::vector<WindowSets> window_sets_;
  mutable std::vector<overlay::PeerId> crashed_;
  std::mutex crashed_mu_;
  bool armed_ = false;
};

}  // namespace groupcast::core
