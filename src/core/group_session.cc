#include "core/group_session.h"

#include <algorithm>
#include <queue>

#include "util/require.h"

namespace groupcast::core {

GroupSession::GroupSession(const overlay::PeerPopulation& population,
                           const SpanningTree& tree)
    : population_(&population), tree_(&tree) {}

DisseminationResult GroupSession::disseminate(overlay::PeerId source) const {
  GC_REQUIRE_MSG(tree_->contains(source), "source must be on the tree");
  DisseminationResult result;
  result.source = source;

  const auto& routing = population_->routing();

  // BFS over the undirected tree starting at the source; each traversed
  // edge is one payload copy.
  struct Visit {
    overlay::PeerId peer;
    overlay::PeerId from;
    double delay_ms;
  };
  std::queue<Visit> frontier;
  frontier.push(Visit{source, source, 0.0});
  std::unordered_map<overlay::PeerId, char> seen;
  seen.emplace(source, 1);

  double delay_total = 0.0;
  std::size_t subscriber_count = 0;

  while (!frontier.empty()) {
    const Visit visit = frontier.front();
    frontier.pop();

    if (tree_->is_subscriber(visit.peer) && visit.peer != source) {
      result.subscriber_delay_ms.emplace(visit.peer, visit.delay_ms);
      delay_total += visit.delay_ms;
      result.max_delay_ms = std::max(result.max_delay_ms, visit.delay_ms);
      ++subscriber_count;
    }

    // Tree neighbours: parent plus children.
    std::vector<overlay::PeerId> tree_neighbors = tree_->children(visit.peer);
    if (visit.peer != tree_->root()) {
      tree_neighbors.push_back(tree_->parent(visit.peer));
    }
    std::size_t fanout = 0;
    for (const auto next : tree_neighbors) {
      if (next == visit.from && next != visit.peer) continue;
      if (seen.contains(next)) continue;
      seen.emplace(next, 1);
      ++fanout;
      ++result.payload_messages;

      // Account the IP footprint of this overlay hop.
      const auto& a = population_->info(visit.peer);
      const auto& b = population_->info(next);
      ++result.access_link_load[visit.peer];
      ++result.access_link_load[next];
      result.ip_messages += 2;  // both access links
      routing.for_each_path_link(a.router, b.router, [&result](net::LinkId l) {
        ++result.router_link_load[l];
        ++result.ip_messages;
      });

      frontier.push(Visit{next, visit.peer,
                          visit.delay_ms +
                              population_->latency_ms(visit.peer, next)});
    }
    if (fanout > 0) result.forward_fanout.emplace(visit.peer, fanout);
  }

  result.average_delay_ms =
      subscriber_count == 0
          ? 0.0
          : delay_total / static_cast<double>(subscriber_count);
  return result;
}

GroupSession::LossyResult GroupSession::disseminate_lossy(
    overlay::PeerId source, const LossyOptions& options,
    util::Rng& rng) const {
  GC_REQUIRE_MSG(tree_->contains(source), "source must be on the tree");
  GC_REQUIRE(options.stream_units > 0.0);
  LossyResult result;
  for (const auto s : tree_->subscribers()) {
    if (s != source) ++result.subscribers_total;
  }

  struct Visit {
    overlay::PeerId peer;
    overlay::PeerId from;
  };
  std::queue<Visit> frontier;
  frontier.push(Visit{source, source});
  std::unordered_map<overlay::PeerId, char> seen;
  seen.emplace(source, 1);

  while (!frontier.empty()) {
    const Visit visit = frontier.front();
    frontier.pop();
    if (tree_->is_subscriber(visit.peer) && visit.peer != source) {
      ++result.subscribers_reached;
    }
    std::vector<overlay::PeerId> tree_neighbors = tree_->children(visit.peer);
    if (visit.peer != tree_->root()) {
      tree_neighbors.push_back(tree_->parent(visit.peer));
    }
    // Fan-out this relay must sustain for the current payload.
    std::size_t fanout = 0;
    for (const auto next : tree_neighbors) {
      if (next != visit.from && !seen.contains(next)) ++fanout;
    }
    if (fanout == 0) continue;
    const double sustainable =
        population_->info(visit.peer).capacity / options.stream_units;
    const double forward_probability =
        sustainable >= static_cast<double>(fanout)
            ? 1.0
            : sustainable / static_cast<double>(fanout);
    for (const auto next : tree_neighbors) {
      if (next == visit.from || seen.contains(next)) continue;
      seen.emplace(next, 1);  // the edge is consumed either way
      if (!rng.chance(forward_probability)) {
        ++result.copies_dropped;
        // The whole subtree behind the dropped copy misses this payload.
        continue;
      }
      frontier.push(Visit{next, visit.peer});
    }
  }
  return result;
}

GroupSession::IpMulticastBaseline GroupSession::ip_multicast_baseline(
    overlay::PeerId source) const {
  GC_REQUIRE_MSG(tree_->contains(source), "source must be on the tree");
  IpMulticastBaseline baseline;

  std::vector<net::RouterId> receiver_routers;
  std::size_t receiver_count = 0;
  for (const auto s : tree_->subscribers()) {
    if (s == source) continue;
    receiver_routers.push_back(population_->info(s).router);
    ++receiver_count;
  }
  if (receiver_count == 0) return baseline;

  const net::IpMulticastTree mc(population_->routing(),
                                population_->info(source).router,
                                receiver_routers);

  // Router-level delay plus both access latencies, averaged per receiver.
  double total = 0.0;
  for (const auto s : tree_->subscribers()) {
    if (s == source) continue;
    total += population_->info(source).access_latency_ms +
             mc.delay_ms_to(population_->info(s).router) +
             population_->info(s).access_latency_ms;
  }
  baseline.average_delay_ms = total / static_cast<double>(receiver_count);

  // IP messages: one per tree link, one per receiver access link, one for
  // the source's uplink.
  baseline.ip_messages = mc.link_message_count() + receiver_count + 1;
  return baseline;
}

}  // namespace groupcast::core
