// Group-communication session: payload dissemination over the spanning tree
// and the raw measurements behind Figures 14–17.
//
// A payload injected by any tree node propagates to every other tree node
// along tree edges (each participant may initiate messages — group
// communication, not single-source multicast).  For the ESM evaluation the
// source is the rendezvous/content node, matching the paper's Section 4.3.
#pragma once

#include <unordered_map>

#include "core/spanning_tree.h"
#include "net/multicast.h"
#include "overlay/population.h"
#include "util/rng.h"

namespace groupcast::core {

/// Result of disseminating one payload from a source tree node.
struct DisseminationResult {
  overlay::PeerId source = overlay::kNoPeer;

  /// Overlay (end-to-end) delay to every *subscriber*, ms.
  std::unordered_map<overlay::PeerId, double> subscriber_delay_ms;
  double average_delay_ms = 0.0;
  double max_delay_ms = 0.0;

  /// Payload copies sent (== tree edges traversed).
  std::size_t payload_messages = 0;

  /// Load per physical router link (link id -> copies carried).
  std::unordered_map<net::LinkId, std::size_t> router_link_load;
  /// Copies crossing each peer's access link (forwarding load).
  std::unordered_map<overlay::PeerId, std::size_t> access_link_load;
  /// Total IP-level messages: every physical link traversal, access links
  /// included.  Numerator of the link-stress ratio.
  std::size_t ip_messages = 0;

  /// Children fan-out per non-leaf node w.r.t. the dissemination
  /// orientation (node -> copies it forwards).
  std::unordered_map<overlay::PeerId, std::size_t> forward_fanout;
};

class GroupSession {
 public:
  GroupSession(const overlay::PeerPopulation& population,
               const SpanningTree& tree);

  /// Propagates one payload from `source` (must be on the tree).
  DisseminationResult disseminate(overlay::PeerId source) const;

  /// Capacity-constrained dissemination.
  ///
  /// Section 3.1 observes that a "mismatch between the packet-forwarding
  /// workloads and the capacities of peers introduces bottlenecks in the
  /// communication overlay and may result in high packet losses".  This
  /// model makes that concrete: a relay whose tree fan-out f exceeds its
  /// sustainable fan-out c = capacity / stream_units forwards each copy
  /// with probability c / f (fair bandwidth sharing); a dropped copy cuts
  /// off the whole subtree behind it for this payload.
  struct LossyOptions {
    /// Capacity units one payload stream consumes per forwarded copy
    /// (capacity is in 64 kbps units; a 64 kbps audio stream = 1).
    double stream_units = 1.0;
  };
  struct LossyResult {
    std::size_t subscribers_reached = 0;
    std::size_t subscribers_total = 0;   // excluding the source
    std::size_t copies_dropped = 0;
    double delivery_ratio() const {
      return subscribers_total == 0
                 ? 1.0
                 : static_cast<double>(subscribers_reached) /
                       static_cast<double>(subscribers_total);
    }
  };
  LossyResult disseminate_lossy(overlay::PeerId source,
                                const LossyOptions& options,
                                util::Rng& rng) const;

  /// The IP-multicast baseline for the same subscriber set and source:
  /// a router-level shortest-path tree plus one access-link copy per
  /// subscriber (and one for the source's own uplink).
  struct IpMulticastBaseline {
    double average_delay_ms = 0.0;
    std::size_t ip_messages = 0;
  };
  IpMulticastBaseline ip_multicast_baseline(overlay::PeerId source) const;

  const SpanningTree& tree() const { return *tree_; }

 private:
  const overlay::PeerPopulation* population_;
  const SpanningTree* tree_;
};

}  // namespace groupcast::core
