#include "core/invariants.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace groupcast::core {

namespace {

const GroupCastNode* at(const std::vector<const GroupCastNode*>& nodes,
                        overlay::PeerId peer) {
  return peer < nodes.size() ? nodes[peer] : nullptr;
}

bool alive(const std::vector<const GroupCastNode*>& nodes,
           overlay::PeerId peer) {
  const auto* node = at(nodes, peer);
  return node != nullptr && node->running();
}

std::string describe(const char* what, overlay::PeerId a,
                     overlay::PeerId b) {
  std::ostringstream os;
  os << what << " (peer " << a;
  if (b != overlay::kNoPeer) os << " -> " << b;
  os << ")";
  return os.str();
}

}  // namespace

InvariantReport check_tree_invariants(
    const std::vector<const GroupCastNode*>& nodes, GroupId group,
    overlay::PeerId rendezvous,
    const std::vector<overlay::PeerId>& expected_subscribers) {
  InvariantReport report;
  const auto violation = [&report](std::string text) {
    report.violations.push_back(std::move(text));
  };

  // --- local-view symmetry + no edges to departed peers -----------------
  for (overlay::PeerId p = 0; p < nodes.size(); ++p) {
    const auto* node = at(nodes, p);
    if (node == nullptr || !node->running()) continue;
    const bool member = node->on_tree(group);
    if (member) ++report.tree_nodes;
    if (member) {
      const auto parent = node->tree_parent(group);
      if (parent != p) {
        if (!alive(nodes, parent)) {
          violation(describe("parent is a departed peer", p, parent));
        } else if (!nodes[parent]->on_tree(group)) {
          violation(describe("parent is off the tree", p, parent));
        } else {
          const auto kids = nodes[parent]->tree_children(group);
          if (std::find(kids.begin(), kids.end(), p) == kids.end()) {
            violation(describe("parent does not list child", parent, p));
          }
        }
      }
    }
    for (const auto child : node->tree_children(group)) {
      if (!alive(nodes, child)) {
        violation(describe("child edge to departed peer", p, child));
        continue;
      }
      if (!nodes[child]->on_tree(group)) {
        // Transient while the child's join ack is in flight; after a
        // convergence window it means an inconsistent edge.
        violation(describe("child is off the tree", p, child));
      } else if (nodes[child]->tree_parent(group) != p) {
        violation(describe("child points at another parent", p, child));
      }
    }
  }

  // --- acyclicity of parent links --------------------------------------
  {
    // 0 = unvisited, 1 = on the current walk, 2 = proven acyclic.
    std::vector<std::uint8_t> mark(nodes.size(), 0);
    for (overlay::PeerId p = 0; p < nodes.size(); ++p) {
      if (!alive(nodes, p) || !nodes[p]->on_tree(group)) continue;
      if (mark[p] != 0) continue;
      std::vector<overlay::PeerId> walk;
      auto cursor = p;
      while (true) {
        if (mark[cursor] == 1) {
          violation(describe("cycle through parent links", cursor,
                             overlay::kNoPeer));
          break;
        }
        if (mark[cursor] == 2) break;
        mark[cursor] = 1;
        walk.push_back(cursor);
        if (!alive(nodes, cursor) || !nodes[cursor]->on_tree(group)) break;
        const auto parent = nodes[cursor]->tree_parent(group);
        if (parent == cursor || parent == overlay::kNoPeer) break;
        if (!alive(nodes, parent)) break;  // reported above
        cursor = parent;
      }
      for (const auto seen : walk) mark[seen] = 2;
    }
  }

  // --- reachability of expected subscribers from the rendezvous ---------
  std::unordered_set<overlay::PeerId> reachable;
  if (alive(nodes, rendezvous) && nodes[rendezvous]->on_tree(group)) {
    std::deque<overlay::PeerId> frontier{rendezvous};
    reachable.insert(rendezvous);
    while (!frontier.empty()) {
      const auto head = frontier.front();
      frontier.pop_front();
      for (const auto child : nodes[head]->tree_children(group)) {
        if (!alive(nodes, child) || !nodes[child]->on_tree(group)) continue;
        if (reachable.insert(child).second) frontier.push_back(child);
      }
    }
  }
  for (const auto subscriber : expected_subscribers) {
    if (!alive(nodes, subscriber)) continue;  // crashed: nothing expected
    if (reachable.count(subscriber)) {
      ++report.reachable_subscribers;
    } else {
      ++report.stranded_subscribers;
      violation(describe("subscriber unreachable from rendezvous",
                         subscriber, rendezvous));
    }
  }
  return report;
}

ReplicationInvariantReport check_replication_invariants(
    const std::vector<const GroupCastNode*>& nodes, GroupId group,
    const std::vector<std::vector<overlay::PeerId>>& sides) {
  ReplicationInvariantReport report;
  const auto violation = [&report](std::string text) {
    report.violations.push_back(std::move(text));
  };
  const bool healed = sides.empty();

  std::vector<overlay::PeerId> members;
  for (overlay::PeerId p = 0; p < nodes.size(); ++p) {
    if (!alive(nodes, p) || !nodes[p]->replication_member(group)) continue;
    members.push_back(p);
    report.max_epoch = std::max(report.max_epoch, nodes[p]->lease_epoch(group));
  }

  // --- at most one leaseholder per partition side -----------------------
  const auto side_of = [&sides](overlay::PeerId p) -> std::size_t {
    for (std::size_t s = 0; s < sides.size(); ++s) {
      if (std::find(sides[s].begin(), sides[s].end(), p) != sides[s].end()) {
        return s;
      }
    }
    return sides.size();  // not listed: shared bucket
  };
  std::vector<overlay::PeerId> holder_of_side(sides.size() + 1,
                                              overlay::kNoPeer);
  for (const auto p : members) {
    if (!nodes[p]->is_leaseholder(group)) continue;
    ++report.leaseholders;
    auto& holder = holder_of_side[side_of(p)];
    if (holder != overlay::kNoPeer) {
      violation(describe(healed ? "two leaseholders after heal"
                                : "two leaseholders on one partition side",
                         holder, p));
    }
    holder = p;
  }

  // --- healed network: one agreed (epoch, leader), identical logs -------
  if (healed && !members.empty()) {
    const auto reference = members.front();
    const auto ref_epoch = nodes[reference]->lease_epoch(group);
    const auto ref_leader = nodes[reference]->lease_leader(group);
    const auto ref_log = nodes[reference]->lease_log(group);
    for (const auto p : members) {
      if (nodes[p]->lease_epoch(group) != ref_epoch ||
          nodes[p]->lease_leader(group) != ref_leader) {
        violation(describe("members disagree on (epoch, leader) after heal",
                           reference, p));
      }
      if (nodes[p]->lease_log(group) != ref_log) {
        violation(describe("lease logs diverge after heal", reference, p));
      }
    }
  }

  // --- union of logs: every epoch has exactly one leader ----------------
  std::unordered_map<std::uint32_t, overlay::PeerId> union_log;
  std::unordered_set<std::uint32_t> conflicted;
  for (const auto p : members) {
    for (const auto& record : nodes[p]->lease_log(group)) {
      const auto [it, inserted] = union_log.emplace(record.epoch,
                                                    record.leader);
      if (!inserted && it->second != record.leader &&
          conflicted.insert(record.epoch).second) {
        violation(describe("epoch committed under two leaders", it->second,
                           record.leader));
      }
    }
  }
  report.union_records = union_log.size();
  report.conflicting_records = conflicted.size();
  return report;
}

}  // namespace groupcast::core
