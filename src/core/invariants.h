// Structural invariants of a deployed dissemination tree.
//
// The fault-injection harness asserts these after every convergence
// window: whatever crashes, partitions, and losses were injected, the
// surviving nodes' *local* views must still compose into a sane global
// tree.  Checked over the node runtime (each GroupCastNode only exposes
// its own state — the checker is the omniscient observer, the protocol
// never is):
//   * parent/child symmetry — a node's parent lists it as a child, and
//     every listed child points back;
//   * no edges to departed peers — neither parents nor children may
//     reference a stopped node;
//   * acyclicity — parent links never loop;
//   * reachability — every expected subscriber still running is connected
//     to the rendezvous point through tree edges.
#pragma once

#include <string>
#include <vector>

#include "core/node.h"

namespace groupcast::core {

struct InvariantReport {
  /// Human-readable descriptions of every violated invariant.
  std::vector<std::string> violations;
  /// Running nodes currently on the tree.
  std::size_t tree_nodes = 0;
  /// Expected subscribers alive and reachable from the rendezvous point.
  std::size_t reachable_subscribers = 0;
  /// Expected subscribers alive but cut off (each also a violation).
  std::size_t stranded_subscribers = 0;

  bool ok() const { return violations.empty(); }
};

/// Checks the invariants of `group`'s tree over a deployment.  `nodes` is
/// indexed by PeerId (null entries = peer never deployed); stopped nodes
/// count as departed.  `expected_subscribers` lists the peers that ought
/// to be receiving the group (crashed ones are skipped).
InvariantReport check_tree_invariants(
    const std::vector<const GroupCastNode*>& nodes, GroupId group,
    overlay::PeerId rendezvous,
    const std::vector<overlay::PeerId>& expected_subscribers = {});

struct ReplicationInvariantReport {
  std::vector<std::string> violations;
  /// Live replication members currently claiming the group lease.
  std::size_t leaseholders = 0;
  /// Highest committed epoch among live members.
  std::uint32_t max_epoch = 0;
  /// Distinct epochs across the union of live members' lease logs.
  std::size_t union_records = 0;
  /// Epochs whose records name different leaders on different members.
  std::size_t conflicting_records = 0;

  bool ok() const { return violations.empty(); }
};

/// RP-consistency of `group`'s rendezvous replica set
/// (docs/ROBUSTNESS.md, "Rendezvous replication & quorum handoff").
///
/// `sides` partitions the live members for the mid-partition check: at
/// most one leaseholder may exist *per side* (each inner vector lists the
/// peers of one side; members absent from every side are grouped
/// together).  Pass no sides for the healed-network check, which is
/// stricter: at most one leaseholder overall, every live member on the
/// same (epoch, leader), identical lease logs, and no epoch claimed by
/// two leaders anywhere in the union of logs — i.e. the heal merged the
/// divergent histories without duplicating or losing an epoch.
ReplicationInvariantReport check_replication_invariants(
    const std::vector<const GroupCastNode*>& nodes, GroupId group,
    const std::vector<std::vector<overlay::PeerId>>& sides = {});

}  // namespace groupcast::core
