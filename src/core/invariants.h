// Structural invariants of a deployed dissemination tree.
//
// The fault-injection harness asserts these after every convergence
// window: whatever crashes, partitions, and losses were injected, the
// surviving nodes' *local* views must still compose into a sane global
// tree.  Checked over the node runtime (each GroupCastNode only exposes
// its own state — the checker is the omniscient observer, the protocol
// never is):
//   * parent/child symmetry — a node's parent lists it as a child, and
//     every listed child points back;
//   * no edges to departed peers — neither parents nor children may
//     reference a stopped node;
//   * acyclicity — parent links never loop;
//   * reachability — every expected subscriber still running is connected
//     to the rendezvous point through tree edges.
#pragma once

#include <string>
#include <vector>

#include "core/node.h"

namespace groupcast::core {

struct InvariantReport {
  /// Human-readable descriptions of every violated invariant.
  std::vector<std::string> violations;
  /// Running nodes currently on the tree.
  std::size_t tree_nodes = 0;
  /// Expected subscribers alive and reachable from the rendezvous point.
  std::size_t reachable_subscribers = 0;
  /// Expected subscribers alive but cut off (each also a violation).
  std::size_t stranded_subscribers = 0;

  bool ok() const { return violations.empty(); }
};

/// Checks the invariants of `group`'s tree over a deployment.  `nodes` is
/// indexed by PeerId (null entries = peer never deployed); stopped nodes
/// count as departed.  `expected_subscribers` lists the peers that ought
/// to be receiving the group (crashed ones are skipped).
InvariantReport check_tree_invariants(
    const std::vector<const GroupCastNode*>& nodes, GroupId group,
    overlay::PeerId rendezvous,
    const std::vector<overlay::PeerId>& expected_subscribers = {});

}  // namespace groupcast::core
