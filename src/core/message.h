// Message taxonomy and cost accounting for the GroupCast protocols.
//
// Figure 11 of the paper compares "advertising and subscription messages"
// across schemes; this collector gives every protocol component a single
// place to report transmissions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace groupcast::core {

enum class MessageKind : std::uint8_t {
  kAdvertisement = 0,   // SSA or NSSA propagation
  kRippleSearch,        // TTL-bounded subscription lookup
  kRippleResponse,      // lookup hit travelling back
  kSubscribeJoin,       // join travelling up the reverse advert path
  kSubscribeAck,        // confirmation from the attach point
  kPayload,             // group-communication payload on a tree edge
  kMaintenance,         // tree-edge heartbeats + recovery notifications
  kCount_,
};

inline constexpr std::size_t kMessageKinds =
    static_cast<std::size_t>(MessageKind::kCount_);

/// Plain counters, one per message kind.
class MessageStats {
 public:
  void count(MessageKind kind, std::size_t n = 1) {
    counts_[static_cast<std::size_t>(kind)] += n;
  }
  std::size_t of(MessageKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::size_t advertisement_messages() const {
    return of(MessageKind::kAdvertisement);
  }
  std::size_t subscription_messages() const {
    return of(MessageKind::kRippleSearch) + of(MessageKind::kRippleResponse) +
           of(MessageKind::kSubscribeJoin) + of(MessageKind::kSubscribeAck);
  }
  std::size_t total() const {
    std::size_t sum = 0;
    for (const auto c : counts_) sum += c;
    return sum;
  }
  MessageStats& operator+=(const MessageStats& other) {
    for (std::size_t i = 0; i < kMessageKinds; ++i) {
      counts_[i] += other.counts_[i];
    }
    return *this;
  }

 private:
  std::array<std::size_t, kMessageKinds> counts_{};
};

}  // namespace groupcast::core
