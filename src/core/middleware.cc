#include "core/middleware.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

const char* to_string(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kGroupCast:
      return "GroupCast";
    case OverlayKind::kRandomPowerLaw:
      return "random-power-law";
    case OverlayKind::kSupernode:
      return "supernode";
  }
  return "?";
}

GroupCastMiddleware::GroupCastMiddleware(const MiddlewareConfig& config)
    // Stream 0 of the seed, not the raw seed: every deployment owns an
    // explicit RNG stream, so a harness laddering seeds (seed, seed+1, ...)
    // or any other Rng(seed) user cannot collide with the deployment's
    // generator state.
    : config_(config), rng_(util::Rng::for_stream(config.seed, 0)) {
  GC_REQUIRE(config_.peer_count >= 2);

  switch (config_.underlay_model) {
    case UnderlayModel::kTransitStub: {
      const auto ts_config = net::scale_config_for_peers(
          config_.peer_count, config_.peers_per_router);
      underlay_ = std::make_shared<const net::UnderlayTopology>(
          net::generate_transit_stub(ts_config, rng_));
      break;
    }
    case UnderlayModel::kWaxman: {
      net::WaxmanConfig waxman;
      waxman.routers = static_cast<std::uint32_t>(std::max<std::size_t>(
          48, config_.peer_count / config_.peers_per_router));
      underlay_ = std::make_shared<const net::UnderlayTopology>(
          net::generate_waxman(waxman, rng_));
      break;
    }
  }
  routing_ = std::make_shared<const net::IpRouting>(*underlay_);

  auto pop_config = config_.population;
  pop_config.peer_count = config_.peer_count;
  population_ = std::make_shared<const overlay::PeerPopulation>(
      *routing_, pop_config, rng_);

  graph_ = std::make_unique<overlay::OverlayGraph>(config_.peer_count);
  host_cache_ = std::make_unique<overlay::HostCacheServer>(
      *population_, config_.host_cache, rng_);
  bootstrap_ = std::make_unique<overlay::GroupCastBootstrap>(
      *population_, *graph_, *host_cache_, config_.bootstrap, rng_);

  trace::tracer().emit(
      0, trace::EventKind::kPhaseBegin, trace::kNoNode, trace::kNoNode,
      static_cast<std::uint64_t>(trace::Phase::kBootstrap));
  build_overlay();
  repair_edges_ = ensure_connected();
}

GroupCastMiddleware::GroupCastMiddleware(
    std::shared_ptr<const DeploymentSnapshot> snapshot)
    : config_(snapshot->config),
      rng_(snapshot->rng),
      underlay_(snapshot->underlay),
      routing_(snapshot->routing),
      population_(snapshot->population),
      graph_(std::make_unique<overlay::OverlayGraph>(*snapshot->graph)),
      host_cache_(
          std::make_unique<overlay::HostCacheServer>(*snapshot->host_cache)),
      supernode_layout_(snapshot->supernode_layout),
      repair_edges_(snapshot->repair_edges) {
  bootstrap_ = std::make_unique<overlay::GroupCastBootstrap>(
      *snapshot->bootstrap, *graph_, *host_cache_);
  // Replay the recorded construction-phase instrumentation, so a forked
  // run's counters and trace are byte-identical to a freshly-constructed
  // run's.  Both calls are no-ops while counting / tracing is off.
  trace::counters().merge(snapshot->counters);
  auto& tracer = trace::tracer();
  if (tracer.enabled()) {
    for (const auto& event : snapshot->events) tracer.emit(event);
  }
}

namespace {

/// Captures every trace event emitted while installed (make_snapshot's
/// recorder); unbounded on purpose — construction emits one event per
/// join plus a handful of phase markers.
class RecordingSink final : public trace::TraceSink {
 public:
  void record(const trace::TraceEvent& event) override {
    events_.push_back(event);
  }
  void flush() override {}
  std::vector<trace::TraceEvent> take() { return std::move(events_); }

 private:
  std::vector<trace::TraceEvent> events_;
};

/// Save/restore sink installer.  ScopedSink is not used here because it
/// insists on owning its sink and discards the previously-installed one;
/// make_snapshot must hand the caller's sink back afterwards.
class SinkSwap {
 public:
  explicit SinkSwap(trace::TraceSink* replacement)
      : previous_(trace::tracer().sink()) {
    trace::tracer().set_sink(replacement);
  }
  ~SinkSwap() { trace::tracer().set_sink(previous_); }
  SinkSwap(const SinkSwap&) = delete;
  SinkSwap& operator=(const SinkSwap&) = delete;

 private:
  trace::TraceSink* previous_;
};

}  // namespace

std::shared_ptr<const DeploymentSnapshot> GroupCastMiddleware::make_snapshot(
    const MiddlewareConfig& config) {
  auto snapshot = std::make_shared<DeploymentSnapshot>();
  trace::CounterRegistry recorded_counters;
  recorded_counters.enable(config.peer_count);
  RecordingSink recorder;
  {
    // The donor builds under a private registry + sink: the recording is
    // complete even when the caller's instrumentation is disabled, and
    // nothing is emitted twice into an enabled caller's.
    trace::ScopedCounterRegistry counter_guard(recorded_counters);
    SinkSwap sink_guard(&recorder);
    GroupCastMiddleware donor(config);
    snapshot->config = donor.config_;
    snapshot->underlay = donor.underlay_;
    snapshot->routing = donor.routing_;
    snapshot->population = donor.population_;
    snapshot->graph = std::move(donor.graph_);
    snapshot->host_cache = std::move(donor.host_cache_);
    snapshot->bootstrap = std::move(donor.bootstrap_);
    snapshot->supernode_layout = std::move(donor.supernode_layout_);
    snapshot->rng = donor.rng_;
    snapshot->repair_edges = donor.repair_edges_;
  }
  snapshot->counters = recorded_counters.snapshot();
  snapshot->events = recorder.take();
  return snapshot;
}

void GroupCastMiddleware::build_overlay() {
  switch (config_.overlay) {
    case OverlayKind::kGroupCast: {
      // Peers join one at a time in random order, as in the paper's
      // Section 4.1 arrival process.  (Arrival *spacing* does not affect
      // the resulting topology when no departures are scheduled, so the
      // joins are executed directly rather than through the simulator.)
      std::vector<overlay::PeerId> order(config_.peer_count);
      std::iota(order.begin(), order.end(), 0);
      rng_.shuffle(order);
      for (const auto peer : order) bootstrap_->join(peer);
      break;
    }
    case OverlayKind::kRandomPowerLaw: {
      overlay::generate_plod(*graph_, config_.plod, rng_);
      // PLOD peers are still registered so host-cache-based lookups and
      // maintenance work identically on both overlays.
      for (overlay::PeerId p = 0; p < config_.peer_count; ++p) {
        host_cache_->register_peer(p);
      }
      break;
    }
    case OverlayKind::kSupernode: {
      supernode_layout_ = overlay::build_supernode_overlay(
          *population_, *graph_, *host_cache_, config_.supernode, rng_);
      break;
    }
  }
  // The join storm leaves doubling slop and relocation garbage in the
  // adjacency arena; the overlay is long-lived from here, so pack it.
  graph_->compact();
}

std::size_t GroupCastMiddleware::ensure_connected() {
  // Components of the undirected view.
  const std::size_t n = graph_->peer_count();
  std::vector<std::int32_t> component(n, -1);
  std::int32_t n_components = 0;
  std::vector<std::size_t> component_size;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    const std::int32_t c = n_components++;
    component_size.push_back(0);
    std::queue<overlay::PeerId> frontier;
    frontier.push(static_cast<overlay::PeerId>(start));
    component[start] = c;
    while (!frontier.empty()) {
      const auto at = frontier.front();
      frontier.pop();
      ++component_size[static_cast<std::size_t>(c)];
      for (const auto nbr : graph_->neighbors(at)) {
        if (component[nbr] < 0) {
          component[nbr] = c;
          frontier.push(nbr);
        }
      }
    }
  }
  if (n_components <= 1) return 0;

  // Attach every secondary component to the giant one: its most capable
  // member links to a random giant-component member (out edge + back edge).
  const auto giant = static_cast<std::int32_t>(
      std::max_element(component_size.begin(), component_size.end()) -
      component_size.begin());
  std::vector<overlay::PeerId> giant_members;
  for (std::size_t p = 0; p < n; ++p) {
    if (component[p] == giant) {
      giant_members.push_back(static_cast<overlay::PeerId>(p));
    }
  }
  std::vector<overlay::PeerId> best(static_cast<std::size_t>(n_components),
                                    overlay::kNoPeer);
  for (std::size_t p = 0; p < n; ++p) {
    auto& b = best[static_cast<std::size_t>(component[p])];
    if (b == overlay::kNoPeer ||
        population_->info(static_cast<overlay::PeerId>(p)).capacity >
            population_->info(b).capacity) {
      b = static_cast<overlay::PeerId>(p);
    }
  }
  std::size_t repairs = 0;
  for (std::int32_t c = 0; c < n_components; ++c) {
    if (c == giant) continue;
    const auto from = best[static_cast<std::size_t>(c)];
    const auto to = giant_members[rng_.uniform_index(giant_members.size())];
    graph_->add_edge(from, to);
    graph_->add_edge(to, from);
    ++repairs;
  }
  return repairs;
}

overlay::PeerId GroupCastMiddleware::pick_rendezvous() {
  // Random walk: start at a connected peer, remember the most capable
  // peer visited.  Isolated peers (departed, or not yet joined) cannot
  // serve as rendezvous points.
  auto at = static_cast<overlay::PeerId>(
      rng_.uniform_index(population_->size()));
  for (std::size_t attempt = 0;
       graph_->degree(at) == 0 && attempt < population_->size(); ++attempt) {
    at = static_cast<overlay::PeerId>(rng_.uniform_index(population_->size()));
  }
  GC_REQUIRE_MSG(graph_->degree(at) > 0,
                 "no connected peers to host a rendezvous point");
  overlay::PeerId best = at;
  for (std::size_t step = 0; step < config_.rendezvous_walk_length; ++step) {
    const auto nbrs = graph_->neighbors(at);
    if (nbrs.empty()) break;
    at = nbrs[rng_.uniform_index(nbrs.size())];
    if (population_->info(at).capacity > population_->info(best).capacity) {
      best = at;
    }
  }
  return best;
}

GroupHandle GroupCastMiddleware::establish_group(
    overlay::PeerId rendezvous,
    const std::vector<overlay::PeerId>& subscribers) {
  GC_REQUIRE(rendezvous < population_->size());

  trace::tracer().emit(
      simulator_.now().as_micros(), trace::EventKind::kPhaseBegin,
      rendezvous, trace::kNoNode,
      static_cast<std::uint64_t>(trace::Phase::kAdvertisement));
  AdvertisementEngine advertiser(simulator_, *population_, *graph_,
                                 config_.advertisement, rng_);
  GroupHandle group(AdvertisementState{}, SpanningTree(rendezvous));
  group.advert = advertiser.announce(rendezvous, &group.stats);

  SubscriptionProtocol subscription(*population_, *graph_,
                                    config_.subscription);
  group.report = subscription.subscribe_all(group.advert, subscribers,
                                            group.tree, &group.stats);
  trace::tracer().emit(
      simulator_.now().as_micros(), trace::EventKind::kPhaseBegin,
      rendezvous, trace::kNoNode,
      static_cast<std::uint64_t>(trace::Phase::kSteadyState));
  return group;
}

SubscriptionOutcome GroupCastMiddleware::add_subscriber(
    GroupHandle& group, overlay::PeerId peer) {
  GC_REQUIRE(peer < population_->size());
  SubscriptionProtocol protocol(*population_, *graph_, config_.subscription);
  const auto outcome =
      protocol.subscribe(group.advert, peer, group.tree, &group.stats);
  group.report.outcomes.push_back(outcome);
  return outcome;
}

std::size_t GroupCastMiddleware::remove_subscriber(GroupHandle& group,
                                                   overlay::PeerId peer) {
  group.tree.unmark_subscriber(peer);
  // Collapse the now-useless relay chain: repeatedly prune leaf relays.
  std::size_t pruned = 0;
  overlay::PeerId at = peer;
  while (at != group.tree.root() && group.tree.children(at).empty() &&
         !group.tree.is_subscriber(at)) {
    const auto up = group.tree.parent(at);
    pruned += group.tree.prune(at);
    at = up;
  }
  return pruned;
}

GroupCastMiddleware::RepairReport GroupCastMiddleware::repair_after_failure(
    GroupHandle& group, overlay::PeerId failed) {
  GC_REQUIRE_MSG(group.tree.contains(failed), "peer is not on the tree");
  GC_REQUIRE_MSG(failed != group.tree.root(),
                 "rendezvous failure needs a new group");
  RepairReport report;

  // Who loses connectivity?
  auto orphans = group.tree.subtree_subscribers(failed);
  if (group.tree.is_subscriber(failed)) {
    // The crashed peer itself is gone for good, not an orphan to re-add.
    orphans.erase(std::find(orphans.begin(), orphans.end(), failed));
  }
  report.orphaned_subscribers = orphans.size();
  report.pruned_nodes = group.tree.prune(failed);
  trace::counters().incr(failed, trace::CounterId::kTreeRepairs);
  trace::tracer().emit(0, trace::EventKind::kTreeRepair, failed,
                       trace::kNoNode, report.pruned_nodes);

  // Invalidate advertisement paths that pass through the failed peer:
  // peers holding such a path would try to join through a corpse.
  // valid[p]: 1 = chain reaches the rendezvous without `failed`,
  // -1 = broken, 0 = unknown.
  std::vector<std::int8_t> valid(population_->size(), 0);
  valid[group.advert.rendezvous] = 1;
  valid[failed] = -1;
  for (overlay::PeerId p = 0; p < population_->size(); ++p) {
    if (!group.advert.received(p) || valid[p] != 0) continue;
    std::vector<overlay::PeerId> chain;
    overlay::PeerId at = p;
    while (valid[at] == 0) {
      chain.push_back(at);
      at = group.advert.parent.at(at);
    }
    const std::int8_t verdict = valid[at];
    for (const auto c : chain) valid[c] = verdict;
  }
  for (overlay::PeerId p = 0; p < population_->size(); ++p) {
    if (valid[p] == -1) group.advert.parent[p] = overlay::kNoPeer;
  }

  // Orphans re-subscribe through the normal protocol.
  SubscriptionProtocol protocol(*population_, *graph_, config_.subscription);
  for (const auto orphan : orphans) {
    const auto outcome =
        protocol.subscribe(group.advert, orphan, group.tree, &group.stats);
    group.report.outcomes.push_back(outcome);
    if (outcome.success) ++report.resubscribed;
  }
  return report;
}

GroupHandle GroupCastMiddleware::establish_random_group(
    std::size_t group_size) {
  GC_REQUIRE(group_size >= 1);
  GC_REQUIRE(group_size <= population_->size());
  const auto rendezvous = pick_rendezvous();
  std::vector<overlay::PeerId> subscribers;
  subscribers.reserve(group_size);
  const auto picks = rng_.sample_indices(population_->size(), group_size);
  for (const auto p : picks) {
    const auto peer = static_cast<overlay::PeerId>(p);
    if (peer != rendezvous) subscribers.push_back(peer);
  }
  return establish_group(rendezvous, subscribers);
}

}  // namespace groupcast::core
