// GroupCastMiddleware — the public façade of the library.
//
// One object owns a complete simulated deployment: the IP underlay, the
// peer population with GNP coordinates and Table 1 capacities, the overlay
// (GroupCast utility-aware or the random power-law baseline), and the
// protocol engines.  Applications (see examples/) use it as:
//
//   core::MiddlewareConfig config;
//   config.peer_count = 2000;
//   core::GroupCastMiddleware middleware(config);
//   auto rendezvous = middleware.pick_rendezvous();
//   auto group = middleware.establish_group(rendezvous, subscribers);
//   auto session = middleware.session(group);
//   auto result = session.disseminate(rendezvous);
#pragma once

#include <memory>
#include <vector>

#include "core/advertisement.h"
#include "core/group_session.h"
#include "core/subscription.h"
#include "overlay/bootstrap.h"
#include "overlay/plod.h"
#include "overlay/supernode.h"
#include "trace/counters.h"
#include "trace/event.h"

namespace groupcast::core {

/// Overlay architectures the middleware can stand up:
///  * kGroupCast       — the paper's flat utility-aware overlay;
///  * kRandomPowerLaw  — the PLOD baseline;
///  * kSupernode       — the two-tier variant of Section 6 (future work).
enum class OverlayKind { kGroupCast, kRandomPowerLaw, kSupernode };

const char* to_string(OverlayKind kind);

/// IP underlay model: GT-ITM transit-stub (the paper's) or Waxman
/// (the ablation alternative).
enum class UnderlayModel { kTransitStub, kWaxman };

struct MiddlewareConfig {
  std::size_t peer_count = 1000;
  std::uint64_t seed = 1;
  OverlayKind overlay = OverlayKind::kGroupCast;
  UnderlayModel underlay_model = UnderlayModel::kTransitStub;

  /// Underlay sizing: roughly one stub router per this many peers.
  std::size_t peers_per_router = 24;

  overlay::PopulationConfig population;     // peer_count is overridden
  overlay::HostCacheOptions host_cache;
  overlay::BootstrapOptions bootstrap;
  overlay::PlodOptions plod;
  overlay::SupernodeOptions supernode;
  AdvertisementOptions advertisement;
  SubscriptionOptions subscription;

  /// Random-walk length used by pick_rendezvous().
  std::size_t rendezvous_walk_length = 20;
};

/// A fully-constructed deployment frozen right after bootstrap.
///
/// Building the world — underlay generation, the GNP embedding, and
/// peer_count bootstrap joins — dominates the wall clock of parameter
/// sweeps whose cells share a MiddlewareConfig.  make_snapshot() pays
/// that cost once; the forking constructor then stamps out independent
/// GroupCastMiddleware instances that are bit-identical to a fresh
/// construction: same RNG stream positions (middleware, bootstrap, host
/// cache), same overlay graph, and the same construction-phase counters
/// and trace events (recorded here and replayed into the forking run's
/// registry/sink).  See docs/PERFORMANCE.md.
///
/// Create with GroupCastMiddleware::make_snapshot(); treat as opaque and
/// share via shared_ptr<const ...> — forks only read it.
struct DeploymentSnapshot {
  MiddlewareConfig config;
  std::shared_ptr<const net::UnderlayTopology> underlay;
  std::shared_ptr<const net::IpRouting> routing;
  std::shared_ptr<const overlay::PeerPopulation> population;
  std::unique_ptr<const overlay::OverlayGraph> graph;
  std::unique_ptr<const overlay::HostCacheServer> host_cache;
  std::unique_ptr<const overlay::GroupCastBootstrap> bootstrap;
  overlay::SupernodeLayout supernode_layout;
  /// Post-construction state of the deployment's generator stream.
  util::Rng rng{0};
  std::size_t repair_edges = 0;
  /// Counters and trace events construction emitted, replayed per fork.
  trace::CounterSnapshot counters;
  std::vector<trace::TraceEvent> events;
};

/// One established communication group.
struct GroupHandle {
  AdvertisementState advert;
  SpanningTree tree;
  SubscriptionReport report;
  MessageStats stats;

  GroupHandle(AdvertisementState a, SpanningTree t)
      : advert(std::move(a)), tree(std::move(t)) {}
};

class GroupCastMiddleware {
 public:
  explicit GroupCastMiddleware(const MiddlewareConfig& config);

  /// Forks a snapshot: shares the immutable underlay / routing /
  /// population, copies the mutable overlay graph, host cache and
  /// bootstrap protocol state, restores the post-construction RNG
  /// streams, and replays the recorded construction-phase counters and
  /// trace events into the calling thread's registry / sink.  The result
  /// is indistinguishable from `GroupCastMiddleware(snapshot->config)`.
  explicit GroupCastMiddleware(
      std::shared_ptr<const DeploymentSnapshot> snapshot);

  /// Builds a deployment for `config` once and freezes it for forking.
  /// Construction runs under a private counter registry and trace sink so
  /// the recording never leaks into (or reads from) the caller's; the
  /// captured instrumentation replays per fork instead.
  static std::shared_ptr<const DeploymentSnapshot> make_snapshot(
      const MiddlewareConfig& config);

  // Non-copyable (owns large immutable state); movable is unnecessary.
  GroupCastMiddleware(const GroupCastMiddleware&) = delete;
  GroupCastMiddleware& operator=(const GroupCastMiddleware&) = delete;

  const MiddlewareConfig& config() const { return config_; }
  const net::UnderlayTopology& underlay() const { return *underlay_; }
  const net::IpRouting& routing() const { return *routing_; }
  const overlay::PeerPopulation& population() const { return *population_; }
  const overlay::OverlayGraph& graph() const { return *graph_; }
  overlay::OverlayGraph& mutable_graph() { return *graph_; }
  overlay::GroupCastBootstrap& bootstrap() { return *bootstrap_; }
  overlay::HostCacheServer& host_cache() { return *host_cache_; }
  sim::Simulator& simulator() { return simulator_; }
  util::Rng& rng() { return rng_; }

  /// Selects a rendezvous point with a random walk over the overlay,
  /// returning the most capable peer visited (Section 2.2, Step 1).
  overlay::PeerId pick_rendezvous();

  /// Runs the full announcement + subscription pipeline for one group.
  GroupHandle establish_group(overlay::PeerId rendezvous,
                              const std::vector<overlay::PeerId>& subscribers);

  /// Convenience: random rendezvous (via walk) + `group_size` random
  /// distinct subscribers.
  GroupHandle establish_random_group(std::size_t group_size);

  /// A dissemination session over an established group's tree.  The handle
  /// must outlive the session.
  GroupSession session(const GroupHandle& group) const {
    return GroupSession(*population_, group.tree);
  }

  /// Subscribes one more peer to an established group (late join).
  SubscriptionOutcome add_subscriber(GroupHandle& group,
                                     overlay::PeerId peer);

  /// Removes a subscriber.  A leaf leaves the tree (and pure-relay chains
  /// above it collapse); an interior subscriber stays on as a relay.
  /// Returns the number of tree nodes pruned.
  std::size_t remove_subscriber(GroupHandle& group, overlay::PeerId peer);

  struct RepairReport {
    std::size_t pruned_nodes = 0;       // subtree size of the failed relay
    std::size_t orphaned_subscribers = 0;
    std::size_t resubscribed = 0;       // orphans back on the tree
  };

  /// Handles the crash of a tree node: its subtree is cut off, the stale
  /// advertisement paths through it are invalidated, and every orphaned
  /// subscriber re-runs the subscription protocol (reverse path if its
  /// advert chain is still valid, ripple search otherwise).
  RepairReport repair_after_failure(GroupHandle& group,
                                    overlay::PeerId failed);

  /// Number of repair edges the constructor had to add to make the overlay
  /// connected (0 in the common case; see DESIGN.md).
  std::size_t connectivity_repair_edges() const { return repair_edges_; }

  /// Tier assignment; only populated for OverlayKind::kSupernode.
  const overlay::SupernodeLayout& supernode_layout() const {
    return supernode_layout_;
  }

 private:
  void build_overlay();
  std::size_t ensure_connected();

  MiddlewareConfig config_;
  util::Rng rng_;
  sim::Simulator simulator_;
  // Immutable after construction and therefore shared between forks of a
  // DeploymentSnapshot; mutable structures below stay per-instance.
  std::shared_ptr<const net::UnderlayTopology> underlay_;
  std::shared_ptr<const net::IpRouting> routing_;
  std::shared_ptr<const overlay::PeerPopulation> population_;
  std::unique_ptr<overlay::OverlayGraph> graph_;
  std::unique_ptr<overlay::HostCacheServer> host_cache_;
  std::unique_ptr<overlay::GroupCastBootstrap> bootstrap_;
  overlay::SupernodeLayout supernode_layout_;
  std::size_t repair_edges_ = 0;
};

}  // namespace groupcast::core
