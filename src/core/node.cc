#include "core/node.h"

#include <algorithm>
#include <cmath>

#include "core/replication.h"
#include "core/utility.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

namespace {
/// Dedup key for payloads: origin in the high bits, id in the low bits.
std::uint64_t payload_key(overlay::PeerId origin, std::uint64_t id) {
  return (static_cast<std::uint64_t>(origin) << 40) ^ id;
}

/// Dedup key for ripple queries: one slot per (origin, search round), so
/// a re-search by the same origin is not swallowed as a duplicate.
std::uint64_t query_key(overlay::PeerId origin, std::uint32_t round) {
  return (static_cast<std::uint64_t>(origin) << 32) | round;
}

void erase_value(std::vector<overlay::PeerId>& v, overlay::PeerId value) {
  const auto it = std::find(v.begin(), v.end(), value);
  if (it != v.end()) v.erase(it);
}

/// Adaptive failure detection (docs/ROBUSTNESS.md, "Flow control &
/// adaptive detection"): the per-window false-positive budget the miss
/// threshold is derived against, and the widest window the estimator may
/// open (bounds worst-case failure-detection latency).
constexpr double kFalsePositiveTarget = 1e-4;
constexpr std::size_t kMaxAdaptiveMisses = 12;
}  // namespace

GroupCastNode::GroupCastNode(overlay::PeerId self, Transport& transport,
                             const overlay::OverlayGraph& graph,
                             NodeOptions options, util::Rng& rng)
    : self_(self),
      transport_(&transport),
      graph_(&graph),
      options_(options),
      rng_(rng.split()),
      exchange_(transport.simulator_for(self), self, options.retry, rng_) {
  GC_REQUIRE(self < transport.population().size());
  GC_REQUIRE(options_.ripple_ttl >= 1);
  GC_REQUIRE(options_.missed_heartbeats_to_fail >= 1);
  GC_REQUIRE(options_.heartbeat_interval >= sim::SimTime::zero());
  if (options_.reliability.enabled) {
    GC_REQUIRE(options_.reliability.nack_delay > sim::SimTime::zero());
    GC_REQUIRE(options_.reliability.nack_retry_delay > sim::SimTime::zero());
    GC_REQUIRE(options_.reliability.probe_delay > sim::SimTime::zero());
    GC_REQUIRE_MSG(options_.reliability.nack_jitter >= 0.0 &&
                       options_.reliability.nack_jitter <= 1.0,
                   "reliability.nack_jitter must be in [0, 1]");
    GC_REQUIRE_MSG(options_.reliability.max_nack_rounds >= 1,
                   "reliability.max_nack_rounds must be >= 1");
    GC_REQUIRE_MSG(options_.reliability.max_probe_rounds >= 1,
                   "reliability.max_probe_rounds must be >= 1");
    GC_REQUIRE(options_.reliability.send_buffer_cap >= 1);
    GC_REQUIRE_MSG(options_.reliability.ack_every >= 1,
                   "reliability.ack_every must be >= 1");
    if (options_.reliability.flow_control) {
      GC_REQUIRE_MSG(options_.reliability.window >= 1,
                     "reliability.window must be >= 1");
      GC_REQUIRE_MSG(
          options_.reliability.window <= options_.reliability.send_buffer_cap,
          "reliability.window must fit within send_buffer_cap");
    }
  }
  if (options_.replication.enabled) {
    GC_REQUIRE_MSG(options_.replication.replicas >= 1,
                   "replication.replicas must be >= 1");
    GC_REQUIRE_MSG(options_.replication.lease_interval > sim::SimTime::zero(),
                   "replication.lease_interval must be positive");
    GC_REQUIRE_MSG(
        options_.replication.lease_duration >
            options_.replication.lease_interval,
        "replication.lease_duration must exceed the renewal interval");
    // The quorum-round exchange is constructed only behind the flag: its
    // construction splits rng_, which would shift every downstream draw of
    // a replication-off run.  Retries pace at the lease interval and stop
    // by the lease duration — a round still open then has lost its quorum.
    RetryPolicy lease_retry;
    lease_retry.base_timeout = options_.replication.lease_interval;
    lease_retry.max_timeout = options_.replication.lease_duration;
    repl_exchange_.emplace(transport.simulator_for(self), self, lease_retry, rng_);
  }
}

GroupCastNode::~GroupCastNode() {
  if (running_) stop();
}

void GroupCastNode::start() {
  GC_REQUIRE_MSG(!running_, "node already started");
  transport_->register_node(self_,
                            [this](const Envelope& e) { handle(e); });
  running_ = true;
}

void GroupCastNode::stop() { detach(DetachMode::kGraceful); }

void GroupCastNode::crash() { detach(DetachMode::kCrash); }

void GroupCastNode::detach(DetachMode mode) {
  GC_REQUIRE_MSG(running_, "node not running");
  transport_->unregister_node(self_, mode);
  exchange_.cancel_all();
  if (repl_exchange_) repl_exchange_->cancel_all();
  auto& simulator = transport_->simulator_for(self_);
  for (auto& [group, state] : groups_) {
    state.exchange = ReliableExchange::kNoToken;
    state.repl.round = ReliableExchange::kNoToken;
    // A departed node's edge timers must not fire into a dead runtime.
    for (auto& [peer, tx] : state.tx_edges) simulator.cancel(tx.probe_timer);
    for (auto& [peer, rx] : state.rx_edges) simulator.cancel(rx.nack_timer);
  }
  // A departed node stops probing: cancel the shared tick instead of
  // letting it fire into a dead runtime.
  transport_->simulator_for(self_).cancel(heartbeat_timer_);
  for (const auto group : heartbeat_groups_) {
    groups_[group].heartbeat_scheduled = false;
  }
  heartbeat_groups_.clear();
  transport_->simulator_for(self_).cancel(repl_timer_);
  for (const auto group : repl_groups_) {
    groups_[group].repl.tick_scheduled = false;
  }
  repl_groups_.clear();
  running_ = false;
}

sim::SimTime GroupCastNode::now() const {
  return transport_->simulator_for(self_).now();
}

double GroupCastNode::resource_level() {
  if (!cached_resource_level_) {
    cached_resource_level_ = clamp_resource_level(
        options_.advertisement.pinned_resource_level >= 0.0
            ? options_.advertisement.pinned_resource_level
            : transport_->population().sampled_resource_level(
                  self_, options_.advertisement.resource_sample, rng_));
  }
  return *cached_resource_level_;
}

std::vector<overlay::PeerId> GroupCastNode::select_forward_targets(
    overlay::PeerId exclude) {
  // Memoized per (exclude, neighbour generation): repeated forwarding
  // decisions between topology changes reuse the filtered pool and the
  // Eq. 1-5 preference vector instead of re-deriving Nbr(self) and the
  // normalizations each hop.  The cached vectors are the ones the uncached
  // path would compute, and no RNG is drawn while filling the cache, so
  // selections stay bit-identical.
  const std::uint64_t generation = graph_->neighbor_generation(self_);
  SelectionCacheEntry* entry = nullptr;
  for (auto& candidate : selection_cache_) {
    if (candidate.exclude == exclude) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    selection_cache_.emplace_back();
    entry = &selection_cache_.back();
    entry->exclude = exclude;
    entry->generation = generation + 1;  // any value != generation
  }
  if (entry->generation != generation) {
    trace::counters().incr(self_, trace::CounterId::kUtilityCacheMisses);
    entry->generation = generation;
    entry->pool.clear();
    entry->prefs.clear();
    for (const auto n : graph_->neighbors(self_)) {
      if (n != exclude) entry->pool.push_back(n);
    }
  } else {
    trace::counters().incr(self_, trace::CounterId::kUtilityCacheHits);
  }
  const auto& pool = entry->pool;
  if (pool.empty()) return pool;
  const auto& adv = options_.advertisement;
  if (adv.scheme == AnnouncementScheme::kNssa) return pool;

  const auto want = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             adv.forward_fraction * static_cast<double>(pool.size()))));
  if (want >= pool.size()) return pool;

  if (adv.scheme == AnnouncementScheme::kSsaRandom) {
    const auto idx = rng_.sample_indices(pool.size(), want);
    std::vector<overlay::PeerId> out;
    for (const auto i : idx) out.push_back(pool[i]);
    return out;
  }
  if (entry->prefs.empty()) {
    // Lazily computed on the first utility selection at this generation —
    // after the want >= pool.size() early-outs, exactly where the uncached
    // path first touched resource_level() (whose first call may draw RNG).
    const auto& population = transport_->population();
    std::vector<Candidate> candidates;
    candidates.reserve(pool.size());
    for (const auto n : pool) {
      candidates.push_back(Candidate{population.info(n).capacity,
                                     population.coord_distance_ms(self_, n)});
    }
    entry->prefs = selection_preferences(resource_level(), candidates);
  }
  const auto idx = weighted_sample_without_replacement(entry->prefs, want, rng_);
  std::vector<overlay::PeerId> out;
  for (const auto i : idx) out.push_back(pool[i]);
  return out;
}

// ------------------------------------------------------------- public API

void GroupCastNode::create_group(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  GC_REQUIRE_MSG(!state.has_advert, "group already created or advertised");
  state.rendezvous = self_;
  state.advert_parent = self_;
  state.has_advert = true;
  state.on_tree = true;
  state.subscribed = true;
  state.tree_parent = self_;
  state.depth = 0;
  for (const auto target : select_forward_targets(self_)) {
    transport_->send(
        self_, target,
        AdvertiseMsg{group, self_,
                     static_cast<std::uint32_t>(
                         options_.advertisement.ttl - 1)});
  }
  // The creator starts as leaseholder of epoch 1 and majority-acks the
  // group's creation (the epoch-1 advert write) before the lease cycle
  // takes over renewals.
  if (ensure_repl_member(group, self_)) {
    auto& repl = state_of(group).repl;
    repl.leaseholder = true;
    start_repl_round(group, /*handoff=*/false, repl.epoch);
  }
}

void GroupCastNode::subscribe(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  if (state.on_tree) {
    state.subscribed = true;
    if (subscribe_callback_) subscribe_callback_(group, true);
    return;
  }
  state.subscribed = true;  // desired; effective once on the tree
  trace::counters().incr(self_, trace::CounterId::kSubscribeAttempts);
  if (state.exchange != ReliableExchange::kNoToken) {
    return;  // a relay-chain ladder is already climbing; ride it
  }
  start_ladder(group);
}

void GroupCastNode::unsubscribe(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  GC_REQUIRE_MSG(state.subscribed, "not subscribed to this group");
  state.subscribed = false;
  if (state.exchange != ReliableExchange::kNoToken) {
    exchange_.cancel(state.exchange);
    state.exchange = ReliableExchange::kNoToken;
    state.search_pending = false;
    state.recovering = false;
  }
  if (!state.on_tree) return;
  if (!state.children.empty() || state.tree_parent == self_) {
    return;  // relay (or root): keep forwarding for the children
  }
  transport_->send(self_, state.tree_parent, LeaveMsg{group, self_});
  drop_edge_state(state, state.tree_parent);
  state.on_tree = false;
  state.tree_parent = overlay::kNoPeer;
  state.depth = kUnknownDepth;
}

void GroupCastNode::publish(GroupId group, std::uint64_t payload_id) {
  GC_REQUIRE(running_);
  const auto it = groups_.find(group);
  GC_REQUIRE_MSG(it != groups_.end() && it->second.on_tree,
                 "publish requires tree membership");
  auto& state = it->second;
  state.seen_payloads.insert(payload_key(self_, payload_id));
  trace::tracer().emit(now().as_micros(), trace::EventKind::kPayloadPublished,
                       self_, trace::kNoNode,
                       trace::pack_provenance(self_, payload_id, 0));
  BufferedPayload payload;
  payload.origin = self_;
  payload.payload_id = payload_id;
  payload.hops = 1;
  if (state.tree_parent != self_ &&
      state.tree_parent != overlay::kNoPeer) {
    send_data(group, state, state.tree_parent, payload);
  }
  for (const auto child : state.children) {
    send_data(group, state, child, payload);
  }
}

void GroupCastNode::publish_chunk(GroupId group, std::uint32_t stream,
                                  std::uint32_t chunk_id,
                                  sim::SimTime deadline,
                                  std::uint32_t payload_bytes) {
  GC_REQUIRE(running_);
  GC_REQUIRE_MSG(stream < (1u << 31), "stream id must fit in 31 bits");
  const auto it = groups_.find(group);
  GC_REQUIRE_MSG(it != groups_.end() && it->second.on_tree,
                 "publish requires tree membership");
  auto& state = it->second;
  BufferedPayload payload;
  payload.origin = self_;
  payload.payload_id = chunk_payload_id(stream, chunk_id);
  payload.hops = 1;
  payload.chunk = true;
  payload.deadline_us = deadline.as_micros();
  payload.chunk_bytes = payload_bytes;
  state.seen_payloads.insert(payload_key(self_, payload.payload_id));
  trace::counters().incr(self_, trace::CounterId::kChunksPublished);
  trace::tracer().emit(now().as_micros(), trace::EventKind::kPayloadPublished,
                       self_, trace::kNoNode,
                       trace::pack_provenance(self_, payload.payload_id, 0));
  if (state.tree_parent != self_ &&
      state.tree_parent != overlay::kNoPeer) {
    send_data(group, state, state.tree_parent, payload);
  }
  for (const auto child : state.children) {
    send_data(group, state, child, payload);
  }
}

// ------------------------------------------------------------ inspection

bool GroupCastNode::has_advertisement(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.has_advert;
}

bool GroupCastNode::is_subscribed(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.subscribed &&
         it->second.on_tree;
}

bool GroupCastNode::on_tree(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.on_tree;
}

overlay::PeerId GroupCastNode::tree_parent(GroupId group) const {
  const auto it = groups_.find(group);
  GC_REQUIRE(it != groups_.end() && it->second.on_tree);
  return it->second.tree_parent;
}

std::vector<overlay::PeerId> GroupCastNode::tree_children(
    GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return it->second.children;
}

std::uint32_t GroupCastNode::tree_depth(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.on_tree ? it->second.depth
                                                   : kUnknownDepth;
}

bool GroupCastNode::exchange_pending(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() &&
         it->second.exchange != ReliableExchange::kNoToken;
}

std::size_t GroupCastNode::send_buffer_depth(GroupId group,
                                             overlay::PeerId peer) const {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return 0;
  const auto it = git->second.tx_edges.find(peer);
  return it != git->second.tx_edges.end() ? it->second.buffer.size() : 0;
}

std::size_t GroupCastNode::pending_depth(GroupId group,
                                         overlay::PeerId peer) const {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return 0;
  const auto it = git->second.tx_edges.find(peer);
  return it != git->second.tx_edges.end() ? it->second.pending.size() : 0;
}

std::size_t GroupCastNode::effective_heartbeat_misses(GroupId group) const {
  const auto it = groups_.find(group);
  if (!options_.adaptive || it == groups_.end()) {
    return options_.missed_heartbeats_to_fail;
  }
  return adaptive_miss_threshold(it->second.hb_miss_ewma,
                                 options_.missed_heartbeats_to_fail);
}

std::size_t GroupCastNode::adaptive_miss_threshold(double miss_ewma,
                                                   std::size_t floor_misses) {
  const std::size_t cap = std::max(floor_misses, kMaxAdaptiveMisses);
  if (miss_ewma <= 0.0) return floor_misses;
  if (miss_ewma >= 1.0) return cap;
  // docs/ROBUSTNESS.md false-positive math: k consecutive misses are a
  // false positive with probability miss^k, so the smallest k with
  // miss^k <= target keeps the spurious-recovery rate under budget.
  const double need =
      std::log(kFalsePositiveTarget) / std::log(miss_ewma);
  if (need >= static_cast<double>(cap)) return cap;
  const auto k = static_cast<std::size_t>(std::ceil(need));
  return std::min(std::max(k, floor_misses), cap);
}

std::uint64_t GroupCastNode::expected_seq(GroupId group,
                                          overlay::PeerId peer) const {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return 0;
  const auto it = git->second.rx_edges.find(peer);
  return it != git->second.rx_edges.end() ? it->second.expected : 0;
}

bool GroupCastNode::replication_member(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.repl.member;
}

bool GroupCastNode::is_leaseholder(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.repl.leaseholder;
}

std::uint32_t GroupCastNode::lease_epoch(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() ? it->second.repl.epoch : 0;
}

overlay::PeerId GroupCastNode::lease_leader(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() ? it->second.repl.leader : overlay::kNoPeer;
}

std::vector<LeaseRecord> GroupCastNode::lease_log(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() ? it->second.repl.log
                             : std::vector<LeaseRecord>{};
}

overlay::PeerId GroupCastNode::backup_parent(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() ? it->second.backup_parent : overlay::kNoPeer;
}

std::size_t GroupCastNode::memory_bytes() const {
  // Node- and map-based containers pay roughly three pointers of
  // book-keeping per entry on mainstream allocators; hash sets amortize
  // to about one pointer per bucket plus a node per element.
  constexpr std::size_t kPerEntry = 3 * sizeof(void*);
  std::size_t bytes = sizeof(*this);
  for (const auto& [group, state] : groups_) {
    bytes += kPerEntry + sizeof(GroupId) + sizeof(GroupState);
    bytes += state.children.capacity() * sizeof(overlay::PeerId);
    bytes += state.pending_acks.capacity() * sizeof(overlay::PeerId);
    bytes += state.seen_payloads.memory_bytes();
    bytes += state.seen_queries.memory_bytes();
    bytes += state.child_last_seen.bucket_count() * sizeof(void*) +
             state.child_last_seen.size() *
                 (sizeof(overlay::PeerId) + sizeof(sim::SimTime) + kPerEntry);
    for (const auto& [peer, tx] : state.tx_edges) {
      bytes += kPerEntry + sizeof(overlay::PeerId) + sizeof(EdgeTx);
      bytes += tx.buffer.size() * sizeof(BufferedPayload);
      bytes += tx.pending.size() * sizeof(BufferedPayload);
    }
    for (const auto& [peer, rx] : state.rx_edges) {
      bytes += kPerEntry + sizeof(overlay::PeerId) + sizeof(EdgeRx);
      bytes += rx.stash.size() * (sizeof(BufferedPayload) + kPerEntry);
    }
    bytes += state.repl.members.capacity() * sizeof(overlay::PeerId);
    bytes += state.repl.round_acked.capacity() * sizeof(overlay::PeerId);
    bytes += state.repl.log.capacity() * sizeof(LeaseRecord);
  }
  return bytes;
}

// ----------------------------------------------------------- retry ladder

bool GroupCastNode::attach_allowed(const GroupState& state,
                                   overlay::PeerId target,
                                   std::uint32_t target_depth) const {
  if (target == self_ || target == state.avoid) return false;
  if (state.attach_depth_limit == kUnknownDepth) return true;
  // Guarded orphan: strict descendants carry a (possibly stale) depth of
  // at least ours + 1, so any target at our old depth or above the old
  // position is provably outside our own subtree.
  return target_depth != kUnknownDepth &&
         target_depth <= state.attach_depth_limit;
}

void GroupCastNode::start_ladder(GroupId group) {
  auto& state = state_of(group);
  state.ladder_attempts = 0;
  state.search_pending = false;
  const bool advert_rung_ok = state.has_advert &&
                              state.advert_parent != self_ &&
                              state.advert_parent != overlay::kNoPeer &&
                              state.advert_parent != state.avoid;
  // Rung 0 (replication only): the backup parent precomputed by our old
  // parent — its own parent, so provably outside our subtree — is tried
  // before the regular ladder; a live backup re-adopts the orphan within
  // one round trip.
  const bool backup_rung_ok =
      options_.replication.enabled && state.recovering &&
      state.backup_parent != overlay::kNoPeer &&
      state.backup_parent != self_ && state.backup_parent != state.avoid;
  state.rung = backup_rung_ok   ? Rung::kBackup
               : advert_rung_ok ? Rung::kAdvertParent
                                : Rung::kRipple;
  run_rung(group);
}

void GroupCastNode::run_rung(GroupId group) {
  auto& state = state_of(group);
  const auto give_up = [this, group] {
    state_of(group).exchange = ReliableExchange::kNoToken;
    advance_rung(group);
  };
  switch (state.rung) {
    case Rung::kBackup:
      state.exchange = exchange_.begin(
          [this, group](std::size_t) {
            auto& st = state_of(group);
            ++st.ladder_attempts;
            transport_->send(self_, st.backup_parent, JoinMsg{group, self_});
          },
          give_up);
      break;
    case Rung::kAdvertParent:
      state.exchange = exchange_.begin(
          [this, group](std::size_t) {
            auto& st = state_of(group);
            ++st.ladder_attempts;
            transport_->send(self_, st.advert_parent, JoinMsg{group, self_});
          },
          give_up);
      break;
    case Rung::kRipple:
      state.exchange = exchange_.begin(
          [this, group](std::size_t attempt) {
            auto& st = state_of(group);
            ++st.ladder_attempts;
            st.search_pending = true;
            ++st.search_round;
            // Widen the scope on every retry: a lost hit or a too-small
            // radius both look like a timeout.
            const auto ttl = static_cast<std::uint32_t>(
                options_.ripple_ttl + attempt);
            std::size_t queries = 0;
            for (const auto n : graph_->neighbors(self_)) {
              if (n == st.avoid) continue;
              transport_->send(
                  self_, n,
                  RippleQueryMsg{group, self_, ttl, st.search_round});
              ++queries;
            }
            trace::counters().incr(self_,
                                   trace::CounterId::kRippleSearches);
            trace::tracer().emit(now().as_micros(),
                                 trace::EventKind::kRippleSearch, self_,
                                 overlay::kNoPeer, queries);
          },
          give_up);
      break;
    case Rung::kRendezvous:
      state.exchange = exchange_.begin(
          [this, group](std::size_t attempt) {
            auto& st = state_of(group);
            ++st.ladder_attempts;
            // The rendezvous first; its deterministic replicas take over
            // on later attempts (covers a crashed rendezvous point).
            std::vector<overlay::PeerId> targets;
            if (st.rendezvous != self_ && st.rendezvous != st.avoid) {
              targets.push_back(st.rendezvous);
            }
            const auto population = transport_->population().size();
            const std::size_t replica_count =
                std::min(options_.rendezvous_replicas,
                         population > 0 ? population - 1 : 0);
            // With replication on, skip replicas that have departed so the
            // round-robin lands on a live (possibly acting-root) member;
            // the filter stays off otherwise to preserve the legacy
            // target order.
            LivenessFilter alive;
            if (options_.replication.enabled) {
              alive = [this](overlay::PeerId p) {
                return transport_->is_registered(p);
              };
            }
            for (const auto replica :
                 rendezvous_replicas(group, st.rendezvous, population,
                                     replica_count, alive)) {
              if (replica != self_ && replica != st.avoid) {
                targets.push_back(replica);
              }
            }
            if (targets.empty()) return;  // nothing to try; timeout advances
            const auto target = targets[attempt % targets.size()];
            transport_->send(self_, target, JoinMsg{group, self_});
          },
          give_up);
      break;
  }
}

void GroupCastNode::advance_rung(GroupId group) {
  auto& state = state_of(group);
  if (state.on_tree) return;  // attached while the give-up was in flight
  if (!options_.escalation) {
    terminal_failure(group);
    return;
  }
  switch (state.rung) {
    case Rung::kBackup: {
      // The backup was dead too: fall through to the regular first rung.
      const bool advert_rung_ok = state.has_advert &&
                                  state.advert_parent != self_ &&
                                  state.advert_parent != overlay::kNoPeer &&
                                  state.advert_parent != state.avoid;
      state.rung = advert_rung_ok ? Rung::kAdvertParent : Rung::kRipple;
      run_rung(group);
      return;
    }
    case Rung::kAdvertParent:
      state.rung = Rung::kRipple;
      run_rung(group);
      return;
    case Rung::kRipple:
      if (state.rendezvous != overlay::kNoPeer &&
          state.rendezvous != self_) {
        state.rung = Rung::kRendezvous;
        run_rung(group);
        return;
      }
      terminal_failure(group);
      return;
    case Rung::kRendezvous:
      terminal_failure(group);
      return;
  }
}

void GroupCastNode::terminal_failure(GroupId group) {
  auto& state = state_of(group);
  state.exchange = ReliableExchange::kNoToken;
  state.search_pending = false;
  // The tree position dissolves either way below: no reliable edge of
  // this group survives it (children are told to re-attach, and a later
  // re-attach starts fresh incarnations via the join handshake).
  {
    auto& simulator = transport_->simulator_for(self_);
    for (auto& [peer, tx] : state.tx_edges) simulator.cancel(tx.probe_timer);
    for (auto& [peer, rx] : state.rx_edges) simulator.cancel(rx.nack_timer);
    state.tx_edges.clear();
    state.rx_edges.clear();
    state.blocked_edges = 0;  // every parked payload died with its edge
  }
  if (!state.children.empty() && !state.dissolved_once) {
    // Dissolve the tree position: the children re-attach on their own,
    // and as a now-childless node we get one unguarded retry of the
    // whole ladder before reporting failure.
    for (const auto child : state.children) {
      transport_->send(self_, child, ParentLostMsg{group});
    }
    state.children.clear();
    state.child_last_seen.clear();
    state.pending_acks.clear();
    state.dissolved_once = true;
    state.attach_depth_limit = kUnknownDepth;
    start_ladder(group);
    return;
  }
  if (!state.children.empty()) {
    for (const auto child : state.children) {
      transport_->send(self_, child, ParentLostMsg{group});
    }
    state.children.clear();
    state.child_last_seen.clear();
    state.pending_acks.clear();
  }
  state.recovering = false;
  state.on_tree = false;
  state.tree_parent = overlay::kNoPeer;
  state.depth = kUnknownDepth;
  state.attach_depth_limit = kUnknownDepth;
  trace::tracer().emit(now().as_micros(),
                       trace::EventKind::kSubscriptionAttempt, self_,
                       overlay::kNoPeer, 0);
  const bool was_subscribed = state.subscribed;
  state.subscribed = false;
  if (was_subscribed && subscribe_callback_) {
    subscribe_callback_(group, false);
  }
}

void GroupCastNode::complete_attach(GroupId group, overlay::PeerId parent,
                                    std::uint32_t parent_depth,
                                    overlay::PeerId backup) {
  auto& state = state_of(group);
  if (state.exchange != ReliableExchange::kNoToken) {
    exchange_.settle(state.exchange);
    state.exchange = ReliableExchange::kNoToken;
  }
  if (options_.replication.enabled && state.recovering &&
      state.rung == Rung::kBackup) {
    trace::counters().incr(self_, trace::CounterId::kBackupAttaches);
  }
  state.backup_parent = options_.replication.enabled && backup != self_
                            ? backup
                            : overlay::kNoPeer;
  state.on_tree = true;
  state.search_pending = false;
  state.tree_parent = parent;
  state.depth =
      parent_depth == kUnknownDepth ? kUnknownDepth : parent_depth + 1;
  state.avoid = overlay::kNoPeer;
  state.attach_depth_limit = kUnknownDepth;
  state.dissolved_once = false;
  state.parent_last_ack = now();
  // A new parent means a new path: the failure-detector estimate learned
  // on the old edge no longer describes this one.
  state.hb_miss_ewma = 0.0;
  state.hb_probe_outstanding = false;
  // Reattach re-sync, child side: whatever edge state a previous
  // incarnation of this parent link left behind is stale now.  The
  // parent's JoinAck is chased by its SeqSync (per-pair FIFO), which
  // seeds the fresh inbound edge; our outbound edge re-forms lazily on
  // the first payload we send up.
  drop_edge_state(state, parent);
  trace::tracer().emit(now().as_micros(), trace::EventKind::kTreeEdgeAdded,
                       self_, parent);
  trace::counters().incr(self_, trace::CounterId::kTreeEdges);
  if (state.recovering) {
    state.recovering = false;
    trace::counters().incr(self_, trace::CounterId::kOrphansRecovered);
    trace::tracer().emit(now().as_micros(),
                         trace::EventKind::kOrphanRecovered, self_, parent,
                         state.ladder_attempts);
  }
  // Children whose joins we accepted before being attached ourselves get
  // their deferred acks now, carrying our freshly-known depth.
  for (const auto child : state.pending_acks) {
    transport_->send(self_, child,
                     JoinAckMsg{group, state.depth, offered_backup(state)});
    if (options_.reliability.enabled) {
      // The deferred ack completes the join handshake: give the child a
      // fresh edge incarnation so its expected sequence starts in sync.
      drop_edge_state(state, child);
      reset_tx_edge(group, state, child);
    }
  }
  // Children retained through recovery get an unsolicited depth refresh so
  // descendant depths (the orphan cycle guard's input) converge within one
  // round instead of one heartbeat interval per tree level.
  if (state.depth != kUnknownDepth) {
    for (const auto child : state.children) {
      if (std::find(state.pending_acks.begin(), state.pending_acks.end(),
                    child) != state.pending_acks.end()) {
        continue;  // its JoinAck above already carries the depth
      }
      transport_->send(
          self_, child,
          HeartbeatAckMsg{group, state.depth, offered_backup(state)});
    }
  }
  state.pending_acks.clear();
  if (state.subscribed) {
    trace::counters().incr(self_, trace::CounterId::kSubscribeSuccesses);
    trace::tracer().emit(now().as_micros(),
                         trace::EventKind::kSubscriptionAttempt, self_,
                         parent, 1);
    if (subscribe_callback_) subscribe_callback_(group, true);
  }
  maybe_schedule_heartbeat(group);
}

// ------------------------------------------- heartbeats / failure detection

void GroupCastNode::maybe_schedule_heartbeat(GroupId group) {
  if (options_.heartbeat_interval <= sim::SimTime::zero()) return;
  if (!running_) return;
  auto& state = state_of(group);
  if (state.heartbeat_scheduled) return;
  const bool child_role = state.on_tree && state.tree_parent != self_ &&
                          state.tree_parent != overlay::kNoPeer;
  const bool parent_role = !state.children.empty();
  if (!child_role && !parent_role) return;
  state.heartbeat_scheduled = true;
  heartbeat_groups_.insert(std::upper_bound(heartbeat_groups_.begin(),
                                            heartbeat_groups_.end(), group),
                           group);
  // All enrolled groups share one cancellable wheel timer per node; a
  // group enrolling between ticks joins the next one (its liveness
  // deadlines are timestamp-based, so an early first service is safe).
  auto& simulator = transport_->simulator_for(self_);
  if (!simulator.timer_pending(heartbeat_timer_)) {
    heartbeat_timer_ = simulator.schedule_timer(options_.heartbeat_interval,
                                                &heartbeat_thunk, this);
  }
}

void GroupCastNode::heartbeat_thunk(void* context, std::uint64_t) {
  static_cast<GroupCastNode*>(context)->node_heartbeat_tick();
}

void GroupCastNode::node_heartbeat_tick() {
  if (!running_) return;
  // Swap the enrolment list into a reused scratch buffer (no per-tick
  // allocation): heartbeat_tick re-enrols groups that still hold a tree
  // role, which re-arms the timer for the next round.
  heartbeat_scratch_.clear();
  heartbeat_scratch_.swap(heartbeat_groups_);
  if (heartbeat_scratch_.size() > 1) {
    trace::counters().incr(self_, trace::CounterId::kTimersCoalesced,
                           heartbeat_scratch_.size() - 1);
  }
  for (const auto group : heartbeat_scratch_) {
    if (!running_) break;
    heartbeat_tick(group);
  }
}

void GroupCastNode::heartbeat_tick(GroupId group) {
  auto& state = state_of(group);
  state.heartbeat_scheduled = false;
  if (!running_) return;
  const auto t = now();
  const auto interval = options_.heartbeat_interval;
  if (state.on_tree && state.tree_parent != self_ &&
      state.tree_parent != overlay::kNoPeer) {
    if (options_.adaptive && state.hb_probe_outstanding) {
      // One miss sample per probed interval: did the previous heartbeat's
      // ack make it back before this tick?
      ewma_update(state.hb_miss_ewma,
                  state.parent_last_ack >= state.last_hb_probe ? 0.0 : 1.0);
      state.hb_probe_outstanding = false;
      trace::histograms().record(
          trace::HistogramId::kEstimatedLoss,
          static_cast<std::uint64_t>(
              std::llround(state.hb_miss_ewma * 1000.0)));
    }
    const std::size_t misses =
        options_.adaptive
            ? adaptive_miss_threshold(state.hb_miss_ewma,
                                      options_.missed_heartbeats_to_fail)
            : options_.missed_heartbeats_to_fail;
    const auto deadline = interval * static_cast<std::int64_t>(misses);
    if (t - state.parent_last_ack > deadline) {
      begin_recovery(group, state.tree_parent);
    } else {
      transport_->send(self_, state.tree_parent, HeartbeatMsg{group});
      trace::counters().incr(self_, trace::CounterId::kHeartbeats);
      if (options_.adaptive) {
        state.last_hb_probe = t;
        state.hb_probe_outstanding = true;
      }
    }
  }
  if (!state.children.empty()) {
    // Prune children that went silent: one interval of slack beyond the
    // parent-side deadline so a child is never pruned before it would
    // have declared us dead.  Under adaptive detection a child may widen
    // its own deadline up to kMaxAdaptiveMisses, so the slack must cover
    // the widest window any child could be using.
    const std::size_t child_misses =
        options_.adaptive
            ? std::max(options_.missed_heartbeats_to_fail,
                       kMaxAdaptiveMisses)
            : options_.missed_heartbeats_to_fail;
    const auto child_deadline =
        interval * static_cast<std::int64_t>(child_misses + 1);
    std::vector<overlay::PeerId> ghosts;
    for (const auto child : state.children) {
      const auto it = state.child_last_seen.find(child);
      const auto last = it != state.child_last_seen.end()
                            ? it->second
                            : sim::SimTime::zero();
      if (t - last > child_deadline) ghosts.push_back(child);
    }
    for (const auto ghost : ghosts) {
      erase_value(state.children, ghost);
      erase_value(state.pending_acks, ghost);
      state.child_last_seen.erase(ghost);
      drop_edge_state(state, ghost);
    }
    // A pure relay whose last child was pruned folds back off the tree.
    if (!ghosts.empty() && !state.subscribed && state.on_tree &&
        state.children.empty() && state.tree_parent != self_) {
      transport_->send(self_, state.tree_parent, LeaveMsg{group, self_});
      drop_edge_state(state, state.tree_parent);
      state.on_tree = false;
      state.tree_parent = overlay::kNoPeer;
      state.depth = kUnknownDepth;
    }
  }
  maybe_schedule_heartbeat(group);
}

void GroupCastNode::begin_recovery(GroupId group,
                                   overlay::PeerId dead_parent) {
  auto& state = state_of(group);
  if (!state.on_tree) return;
  state.on_tree = false;
  state.tree_parent = overlay::kNoPeer;
  // Only a subtree root with live descendants needs the cycle guard; a
  // childless orphan cannot be anyone's ancestor.
  state.attach_depth_limit =
      state.children.empty() && state.pending_acks.empty() ? kUnknownDepth
                                                           : state.depth;
  state.depth = kUnknownDepth;
  state.avoid = dead_parent;
  state.recovering = true;
  // Both directions of the dead parent's edge are gone; edges to retained
  // children stay live (their buffers cover losses during the recovery).
  drop_edge_state(state, dead_parent);
  if (state.exchange != ReliableExchange::kNoToken) {
    exchange_.cancel(state.exchange);
    state.exchange = ReliableExchange::kNoToken;
  }
  start_ladder(group);
}

// -------------------------------------------------------------- handlers

void GroupCastNode::handle(const Envelope& envelope) {
  std::visit(
      [this, &envelope](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          handle_advertise(envelope, msg);
        } else if constexpr (std::is_same_v<T, JoinMsg>) {
          handle_join(envelope, msg);
        } else if constexpr (std::is_same_v<T, JoinAckMsg>) {
          handle_join_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, RippleQueryMsg>) {
          handle_ripple_query(envelope, msg);
        } else if constexpr (std::is_same_v<T, RippleHitMsg>) {
          handle_ripple_hit(envelope, msg);
        } else if constexpr (std::is_same_v<T, DataMsg>) {
          handle_data(envelope, msg);
        } else if constexpr (std::is_same_v<T, ChunkMsg>) {
          handle_chunk(envelope, msg);
        } else if constexpr (std::is_same_v<T, LeaveMsg>) {
          handle_leave(envelope, msg);
        } else if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          handle_heartbeat(envelope, msg);
        } else if constexpr (std::is_same_v<T, HeartbeatAckMsg>) {
          handle_heartbeat_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, ParentLostMsg>) {
          handle_parent_lost(envelope, msg);
        } else if constexpr (std::is_same_v<T, ReliableDataMsg>) {
          handle_reliable_data(envelope, msg);
        } else if constexpr (std::is_same_v<T, DataNackMsg>) {
          handle_data_nack(envelope, msg);
        } else if constexpr (std::is_same_v<T, DataAckMsg>) {
          handle_data_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, SeqSyncMsg>) {
          handle_seq_sync(envelope, msg);
        } else if constexpr (std::is_same_v<T, FlowControlMsg>) {
          handle_flow_control(envelope, msg);
        } else if constexpr (std::is_same_v<T, LeaseMsg>) {
          handle_lease(envelope, msg);
        } else if constexpr (std::is_same_v<T, LeaseAckMsg>) {
          handle_lease_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, ReplicateMsg>) {
          handle_replicate(envelope, msg);
        } else if constexpr (std::is_same_v<T, ReplicateAckMsg>) {
          handle_replicate_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, HandoffMsg>) {
          handle_handoff(envelope, msg);
        }
      },
      envelope.body);
}

void GroupCastNode::handle_advertise(const Envelope& envelope,
                                     const AdvertiseMsg& msg) {
  auto& state = state_of(msg.group);
  if (state.has_advert) {  // duplicate
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kMessageDropped, self_,
        envelope.from,
        static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
    return;
  }
  state.has_advert = true;
  state.rendezvous = msg.rendezvous;
  state.advert_parent = envelope.from;
  if (msg.ttl == 0) return;
  for (const auto target : select_forward_targets(envelope.from)) {
    transport_->send(self_, target,
                     AdvertiseMsg{msg.group, msg.rendezvous, msg.ttl - 1});
    trace::counters().incr(self_, trace::CounterId::kAdvertsForwarded);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
    trace::tracer().emit(now().as_micros(),
                         trace::EventKind::kAdvertForwarded, self_, target,
                         msg.ttl - 1);
  }
}

void GroupCastNode::handle_join(const Envelope& /*envelope*/,
                                const JoinMsg& msg) {
  auto& state = state_of(msg.group);
  // A join can only be honoured by a peer that can reach the tree.
  if (!state.on_tree && !state.has_advert) return;  // stale join: ignored
  if (msg.child == self_) return;
  if (std::find(state.children.begin(), state.children.end(), msg.child) ==
      state.children.end()) {
    state.children.push_back(msg.child);
  }
  state.child_last_seen[msg.child] = now();
  if (state.on_tree) {
    transport_->send(
        self_, msg.child,
        JoinAckMsg{msg.group, state.depth, offered_backup(state)});
    if (options_.reliability.enabled) {
      // The join handshake is where a (re)attaching child re-syncs its
      // expected sequence: a fresh edge incarnation rides right behind
      // the ack (per-pair FIFO), so the child never NACKs into whatever
      // epoch its previous parent link was on.
      drop_edge_state(state, msg.child);
      reset_tx_edge(msg.group, state, msg.child);
    }
    maybe_schedule_heartbeat(msg.group);
    return;
  }
  // Not attached ourselves yet: defer the ack until our own ladder lands
  // (the ack must carry a real depth), becoming a relay on the way.
  if (std::find(state.pending_acks.begin(), state.pending_acks.end(),
                msg.child) == state.pending_acks.end()) {
    state.pending_acks.push_back(msg.child);
  }
  if (state.exchange == ReliableExchange::kNoToken) start_ladder(msg.group);
}

void GroupCastNode::handle_join_ack(const Envelope& envelope,
                                    const JoinAckMsg& msg) {
  auto& state = state_of(msg.group);
  if (state.on_tree) {
    if (envelope.from != state.tree_parent) {
      // A slower rung answered after we attached elsewhere: retract so the
      // acker does not keep us in its child list.
      transport_->send(self_, envelope.from, LeaveMsg{msg.group, self_});
    }
    return;
  }
  if (!attach_allowed(state, envelope.from, msg.depth)) {
    // Possibly our own (stale-depth) descendant; refuse and retract.  The
    // open exchange keeps retrying toward safer attach points.
    transport_->send(self_, envelope.from, LeaveMsg{msg.group, self_});
    return;
  }
  complete_attach(msg.group, envelope.from, msg.depth, msg.backup);
}

void GroupCastNode::handle_ripple_query(const Envelope& envelope,
                                        const RippleQueryMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.seen_queries.insert(query_key(msg.origin, msg.round))) {
    return;  // duplicate within this search round
  }
  if (state.has_advert || state.on_tree) {
    transport_->send(
        self_, msg.origin,
        RippleHitMsg{msg.group, self_,
                     state.on_tree ? state.depth : kUnknownDepth});
    return;
  }
  if (msg.ttl <= 1) return;
  for (const auto n : graph_->neighbors(self_)) {
    if (n == envelope.from || n == msg.origin) continue;
    transport_->send(
        self_, n,
        RippleQueryMsg{msg.group, msg.origin, msg.ttl - 1, msg.round});
  }
}

void GroupCastNode::handle_ripple_hit(const Envelope& /*envelope*/,
                                      const RippleHitMsg& msg) {
  auto& state = state_of(msg.group);
  if (state.on_tree) return;
  if (!state.search_pending) return;  // already joining via earlier hit
  if (!attach_allowed(state, msg.holder, msg.depth)) {
    return;  // keep waiting: a safe holder may still answer
  }
  state.search_pending = false;
  transport_->send(self_, msg.holder, JoinMsg{msg.group, self_});
}

void GroupCastNode::handle_data(const Envelope& envelope,
                                const DataMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree) return;
  BufferedPayload payload;
  payload.origin = msg.origin;
  payload.payload_id = msg.payload_id;
  payload.hops = msg.hops;
  deliver_payload(msg.group, state, envelope.from, payload);
}

void GroupCastNode::handle_chunk(const Envelope& envelope,
                                 const ChunkMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree) return;
  BufferedPayload payload;
  payload.seq = msg.seq;
  payload.origin = msg.origin;
  payload.payload_id = chunk_payload_id(msg.stream, msg.chunk_id);
  payload.hops = msg.hops;
  payload.chunk = true;
  payload.deadline_us = msg.deadline_us;
  payload.chunk_bytes = msg.payload_bytes;
  if (msg.epoch == 0) {
    // Fire-and-forget chunk (reliability off at the sender): the DataMsg
    // path, with the chunk descriptor riding along.
    deliver_payload(msg.group, state, envelope.from, payload);
    return;
  }
  accept_sequenced(envelope, msg.group, state, msg.epoch, msg.seq, payload);
}

void GroupCastNode::deliver_payload(GroupId group, GroupState& state,
                                    overlay::PeerId via,
                                    const BufferedPayload& payload) {
  if (!state.seen_payloads.insert(
          payload_key(payload.origin, payload.payload_id))) {
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kMessageDropped, self_, via,
        static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
    return;  // duplicate
  }
  trace::histograms().record(trace::HistogramId::kHopCount, payload.hops);
  trace::tracer().emit(
      now().as_micros(), trace::EventKind::kPayloadDelivered, self_, via,
      trace::pack_provenance(payload.origin, payload.payload_id,
                             payload.hops));
  if (state.subscribed) {
    if (payload.chunk) {
      // Chunk delivery metrics are viewer-side: relays forward without
      // judging deadlines.
      const auto now_us = now().as_micros();
      if (now_us <= payload.deadline_us) {
        trace::counters().incr(self_, trace::CounterId::kChunksDelivered);
        trace::histograms().record(
            trace::HistogramId::kChunkSlackUs,
            static_cast<std::uint64_t>(payload.deadline_us - now_us));
      } else {
        trace::counters().incr(self_, trace::CounterId::kChunksLate);
      }
      if (chunk_callback_) {
        chunk_callback_(group,
                        ChunkMsg{group, payload.origin,
                                 chunk_stream(payload.payload_id),
                                 chunk_index(payload.payload_id),
                                 payload.deadline_us, payload.chunk_bytes, 0,
                                 0, payload.hops});
      }
    } else if (data_callback_) {
      data_callback_(group, payload.payload_id, payload.origin);
    }
  }
  // Forward along the tree, away from the sender.
  BufferedPayload forward = payload;
  forward.seq = 0;  // sequences are edge-local; assigned at transmit
  ++forward.hops;
  if (state.tree_parent != self_ && state.tree_parent != via &&
      state.tree_parent != overlay::kNoPeer) {
    send_data(group, state, state.tree_parent, forward);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
  }
  for (const auto child : state.children) {
    if (child == via) continue;
    send_data(group, state, child, forward);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
  }
}

// ------------------------------------------------- reliable data plane

namespace {
std::uint64_t pack_edge(GroupId group, overlay::PeerId peer) {
  return (static_cast<std::uint64_t>(group) << 32) | peer;
}
}  // namespace

sim::SimTime GroupCastNode::jittered(sim::SimTime base, double jitter) {
  const double stretch = 1.0 + jitter * rng_.uniform();
  return sim::SimTime::micros(static_cast<std::int64_t>(
      static_cast<double>(base.as_micros()) * stretch));
}

void GroupCastNode::ewma_update(double& estimate, double sample) {
  constexpr double kEwmaAlpha = 0.125;  // 1/8: roughly an 8-sample memory
  estimate += kEwmaAlpha * (sample - estimate);
}

sim::SimTime GroupCastNode::nack_delay_for(const EdgeRx& rx) const {
  const auto base = options_.reliability.nack_delay;
  if (!options_.adaptive) return base;
  // The higher the measured loss, the more likely a gap is a real hole
  // rather than reordering in flight: shrink the batching delay, floored
  // at a quarter of the configured base.
  const double scale = std::max(0.25, 1.0 - rx.loss_ewma);
  return sim::SimTime::micros(static_cast<std::int64_t>(
      static_cast<double>(base.as_micros()) * scale));
}

sim::SimTime GroupCastNode::nack_retry_for(const EdgeRx& rx) const {
  const auto base = options_.reliability.nack_retry_delay;
  if (!options_.adaptive || rx.repair_ewma_us <= 0.0) return base;
  // Pace retries by the measured repair time (2x covers the NACK plus
  // retransmission round trip): never faster than the first-NACK delay,
  // never slower than the configured retry constant.
  const auto lo =
      std::min(nack_delay_for(rx).as_micros(), base.as_micros());
  const auto scaled = static_cast<std::int64_t>(2.0 * rx.repair_ewma_us);
  return sim::SimTime::micros(std::clamp(scaled, lo, base.as_micros()));
}

MessageBody GroupCastNode::payload_msg(GroupId group, std::uint32_t epoch,
                                       std::uint64_t seq,
                                       const BufferedPayload& payload) const {
  if (payload.chunk) {
    return ChunkMsg{group,
                    payload.origin,
                    chunk_stream(payload.payload_id),
                    chunk_index(payload.payload_id),
                    payload.deadline_us,
                    payload.chunk_bytes,
                    epoch,
                    seq,
                    payload.hops};
  }
  if (epoch == 0) {
    return DataMsg{group, payload.origin, payload.payload_id, payload.hops};
  }
  return ReliableDataMsg{group,        payload.origin, payload.payload_id,
                         epoch,        seq,            payload.hops};
}

void GroupCastNode::send_data(GroupId group, GroupState& state,
                              overlay::PeerId to,
                              const BufferedPayload& payload) {
  if (!options_.reliability.enabled) {
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kPayloadSent, self_, to,
        trace::pack_provenance(payload.origin, payload.payload_id,
                               payload.hops));
    transport_->send(self_, to, payload_msg(group, 0, 0, payload));
    return;
  }
  auto it = state.tx_edges.find(to);
  if (options_.reliability.flow_control && it != state.tx_edges.end()) {
    // Window gate.  A payload parks when the window is full, the peer
    // asked for quiet, or older payloads are already parked (FIFO: a new
    // payload must never overtake a parked one).  A missing edge is
    // trivially open: nothing is in flight yet and window >= 1.
    auto& tx = it->second;
    if (!tx.pending.empty() || tx.peer_throttled ||
        tx.next_seq - tx.cum_acked >= options_.reliability.window) {
      queue_blocked(group, state, to, tx, payload);
      return;
    }
  }
  trace::tracer().emit(now().as_micros(), trace::EventKind::kPayloadSent,
                       self_, to,
                       trace::pack_provenance(payload.origin,
                                              payload.payload_id,
                                              payload.hops));
  if (it == state.tx_edges.end()) {
    // First payload over this directed edge: open the incarnation (the
    // SeqSync rides ahead of the data on the FIFO pair link).
    reset_tx_edge(group, state, to);
    it = state.tx_edges.find(to);
  }
  transmit_now(group, to, it->second, payload);
}

void GroupCastNode::transmit_now(GroupId group, overlay::PeerId to,
                                 EdgeTx& tx,
                                 const BufferedPayload& payload) {
  if (tx.buffer.size() >= options_.reliability.send_buffer_cap) {
    tx.buffer.pop_front();  // oldest unacked copy falls off
  }
  const std::uint64_t seq = tx.next_seq++;
  BufferedPayload entry = payload;
  entry.seq = seq;
  tx.buffer.push_back(entry);
  if (tx.buffer.size() > tx.high_water) {
    // Watermark per directed edge: each edge contributes its own lifetime
    // peak to the counter.  (A node-wide maximum used to swallow a second
    // edge's growth until it beat the first edge's record, so the counter
    // under-reported total retransmit-buffer memory.)
    trace::counters().incr(self_, trace::CounterId::kSendBufferHighWater,
                           tx.buffer.size() - tx.high_water);
    tx.high_water = tx.buffer.size();
  }
  if (options_.reliability.flow_control) {
    trace::histograms().record(trace::HistogramId::kWindowOccupancy,
                               tx.next_seq - tx.cum_acked);
  }
  transport_->send(self_, to, payload_msg(group, tx.epoch, seq, payload));
  maybe_schedule_probe(group, to, tx);
}

void GroupCastNode::queue_blocked(GroupId group, GroupState& state,
                                  overlay::PeerId to, EdgeTx& tx,
                                  const BufferedPayload& payload) {
  if (tx.pending.empty()) {
    if (state.blocked_edges++ == 0) {
      // First blocked edge in the group: the throttle episode starts now.
      state.throttled_since = now();
      signal_upstream(group, state, true);
    }
    // Keep an ack clock running even when everything in flight is already
    // acked (pure peer throttle): the probe's re-announcement solicits the
    // ack — or the resume — that reopens this window.
    maybe_schedule_probe(group, to, tx);
  }
  tx.pending.push_back(payload);
  trace::counters().incr(self_, trace::CounterId::kFlowBlocked);
}

void GroupCastNode::drain_tx(GroupId group, GroupState& state,
                             overlay::PeerId to, EdgeTx& tx) {
  if (!options_.reliability.flow_control || tx.pending.empty()) return;
  bool drained = false;
  while (!tx.pending.empty() && !tx.peer_throttled &&
         tx.next_seq - tx.cum_acked < options_.reliability.window) {
    const BufferedPayload payload = tx.pending.front();
    tx.pending.pop_front();
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kPayloadSent, self_, to,
        trace::pack_provenance(payload.origin, payload.payload_id,
                               payload.hops));
    transmit_now(group, to, tx, payload);
    drained = true;
  }
  if (drained && tx.pending.empty()) {
    if (--state.blocked_edges == 0) {
      trace::histograms().record(
          trace::HistogramId::kThrottleUs,
          static_cast<std::uint64_t>(
              (now() - state.throttled_since).as_micros()));
      signal_upstream(group, state, false);
    }
  }
}

void GroupCastNode::discard_pending(GroupState& state, EdgeTx& tx) {
  if (tx.pending.empty()) return;
  tx.pending.clear();
  // No resume signal and no throttle histogram sample: the edge is being
  // torn down mid-episode; the upstream source recovers via its own probe.
  if (state.blocked_edges > 0) --state.blocked_edges;
}

void GroupCastNode::signal_upstream(GroupId group, GroupState& state,
                                    bool throttled) {
  // The dominant data flow runs root-down, so this node's source is its
  // tree parent.  The root (or an orphan) has no upstream; its publisher
  // observes backpressure through the kFlowBlocked counter instead.
  if (!state.on_tree || state.tree_parent == self_ ||
      state.tree_parent == overlay::kNoPeer) {
    return;
  }
  if (throttled) {
    trace::counters().incr(self_, trace::CounterId::kFlowThrottles);
  }
  transport_->send(self_, state.tree_parent, FlowControlMsg{group, throttled});
}

void GroupCastNode::handle_flow_control(const Envelope& envelope,
                                        const FlowControlMsg& msg) {
  if (!options_.reliability.enabled || !options_.reliability.flow_control) {
    return;
  }
  const auto git = groups_.find(msg.group);
  if (git == groups_.end()) return;
  auto& state = git->second;
  const auto it = state.tx_edges.find(envelope.from);
  if (it == state.tx_edges.end()) return;
  auto& tx = it->second;
  tx.peer_throttled = msg.throttled;
  if (msg.throttled) {
    // While paused, keep the probe alive: its next round doubles as the
    // resume retry in case the peer's release signal gets lost.
    maybe_schedule_probe(msg.group, envelope.from, tx);
  } else {
    drain_tx(msg.group, state, envelope.from, tx);
  }
}

void GroupCastNode::reset_tx_edge(GroupId group, GroupState& state,
                                  overlay::PeerId peer) {
  auto& tx = state.tx_edges[peer];
  transport_->simulator_for(self_).cancel(tx.probe_timer);
  discard_pending(state, tx);
  const std::uint32_t epoch = tx.epoch + 1;
  const std::size_t high_water = tx.high_water;
  tx = EdgeTx{};
  tx.epoch = epoch;
  tx.high_water = high_water;  // lifetime peak, like the epoch
  transport_->send(self_, peer, SeqSyncMsg{group, epoch, 0, 0});
}

void GroupCastNode::drop_edge_state(GroupState& state,
                                    overlay::PeerId peer) {
  auto& simulator = transport_->simulator_for(self_);
  if (const auto it = state.tx_edges.find(peer);
      it != state.tx_edges.end()) {
    // Tombstone, not erase: the epoch counter must survive the teardown
    // so the next incarnation of this directed edge gets a number the
    // receiver has never seen.  (Erasing would restart at epoch 1, and a
    // receiver still synced to the old epoch 1 would silently swallow
    // the restarted sequence space as duplicates.)
    simulator.cancel(it->second.probe_timer);
    discard_pending(state, it->second);
    const std::uint32_t epoch = it->second.epoch;
    const std::size_t high_water = it->second.high_water;
    it->second = EdgeTx{};
    it->second.epoch = epoch;
    it->second.high_water = high_water;  // lifetime peak, like the epoch
  }
  if (const auto it = state.rx_edges.find(peer);
      it != state.rx_edges.end()) {
    simulator.cancel(it->second.nack_timer);
    state.rx_edges.erase(it);
  }
}

void GroupCastNode::maybe_schedule_nack(GroupId group, overlay::PeerId peer,
                                        EdgeRx& rx) {
  auto& simulator = transport_->simulator_for(self_);
  if (simulator.timer_pending(rx.nack_timer)) return;  // one in flight
  rx.nack_timer = simulator.schedule_timer(
      jittered(nack_delay_for(rx), options_.reliability.nack_jitter),
      &nack_thunk, this, pack_edge(group, peer));
}

void GroupCastNode::maybe_schedule_probe(GroupId group,
                                         overlay::PeerId peer, EdgeTx& tx) {
  auto& simulator = transport_->simulator_for(self_);
  if (simulator.timer_pending(tx.probe_timer)) return;
  tx.probe_rounds = 0;
  tx.acked_at_last_probe = tx.cum_acked;
  tx.probe_timer = simulator.schedule_timer(
      jittered(options_.reliability.probe_delay,
               options_.reliability.nack_jitter),
      &probe_thunk, this, pack_edge(group, peer));
}

void GroupCastNode::nack_thunk(void* context, std::uint64_t packed) {
  static_cast<GroupCastNode*>(context)->on_nack_timer(
      static_cast<GroupId>(packed >> 32),
      static_cast<overlay::PeerId>(packed & 0xFFFFFFFFull));
}

void GroupCastNode::probe_thunk(void* context, std::uint64_t packed) {
  static_cast<GroupCastNode*>(context)->on_probe_timer(
      static_cast<GroupId>(packed >> 32),
      static_cast<overlay::PeerId>(packed & 0xFFFFFFFFull));
}

void GroupCastNode::on_nack_timer(GroupId group, overlay::PeerId peer) {
  if (!running_) return;
  const auto git = groups_.find(group);
  if (git == groups_.end()) return;
  auto& state = git->second;
  const auto it = state.rx_edges.find(peer);
  if (it == state.rx_edges.end()) return;
  auto& rx = it->second;
  if (rx.stash.empty() && rx.expected >= rx.tail_next) {
    rx.nack_rounds = 0;  // the gap closed while the timer was pending
    return;
  }
  if (rx.nack_rounds >= options_.reliability.max_nack_rounds) {
    // The sender's buffer no longer holds the gap (or the edge is dead):
    // skip past it instead of deadlocking the in-order pipeline.
    rx.nack_rounds = 0;
    rx.expected =
        rx.stash.empty() ? rx.tail_next : rx.stash.begin()->first;
    drain_rx(group, state, peer, rx);
    return;
  }
  // One batched request: base is the first missing sequence, bit i set
  // when base + i is also missing (parked copies punch holes in the mask).
  const std::uint64_t base = rx.expected;
  std::uint64_t mask = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t seq = base + i;
    if (seq >= rx.tail_next) break;
    if (rx.stash.find(seq) == rx.stash.end()) mask |= (1ull << i);
  }
  if (mask == 0) {
    rx.nack_rounds = 0;
    return;
  }
  transport_->send(self_, peer, DataNackMsg{group, rx.epoch, base, mask});
  trace::counters().incr(self_, trace::CounterId::kNacksSent);
  if (options_.adaptive) {
    trace::histograms().record(
        trace::HistogramId::kEstimatedLoss,
        static_cast<std::uint64_t>(std::llround(rx.loss_ewma * 1000.0)));
  }
  if (rx.nack_rounds == 0) rx.last_nack_at = now();  // repair clock starts
  ++rx.nack_rounds;
  // Re-arm on the (longer) retry cadence: no second NACK for this gap
  // while the requested retransmission is presumed in flight.
  rx.nack_timer = transport_->simulator_for(self_).schedule_timer(
      jittered(nack_retry_for(rx), options_.reliability.nack_jitter),
      &nack_thunk, this, pack_edge(group, peer));
}

void GroupCastNode::on_probe_timer(GroupId group, overlay::PeerId peer) {
  if (!running_) return;
  const auto git = groups_.find(group);
  if (git == groups_.end()) return;
  auto& state = git->second;
  const auto it = state.tx_edges.find(peer);
  if (it == state.tx_edges.end()) return;
  auto& tx = it->second;
  if (options_.reliability.flow_control && tx.peer_throttled) {
    // The peer's resume may have been lost (or the peer died throttled):
    // a full probe interval of silence is permission to retry.  The peer
    // simply re-throttles if it is still congested.
    tx.peer_throttled = false;
    drain_tx(group, state, peer, tx);
  }
  if (tx.buffer.empty() && tx.pending.empty()) {
    tx.probe_rounds = 0;  // everything acked: go quiet
    return;
  }
  if (tx.cum_acked > tx.acked_at_last_probe) {
    tx.probe_rounds = 0;  // the receiver is making progress
  } else {
    ++tx.probe_rounds;
  }
  tx.acked_at_last_probe = tx.cum_acked;
  if (tx.probe_rounds > options_.reliability.max_probe_rounds) {
    // Rounds of silence: the receiver is gone (heartbeats prune the tree
    // edge separately); stop holding its unacked tail.
    tx.buffer.clear();
    discard_pending(state, tx);
    tx.probe_rounds = 0;
    return;
  }
  // Tail-loss detection: re-announce [base, next) so a receiver that lost
  // the tail (or the original SeqSync) sees the gap and NACKs it.  base
  // is the oldest sequence still retransmittable — a receiver adopting
  // this announcement after losing the handshake starts there, not at
  // next_seq, so the buffered backlog is recovered instead of skipped.
  const std::uint64_t base =
      tx.buffer.empty() ? tx.next_seq : tx.buffer.front().seq;
  transport_->send(self_, peer, SeqSyncMsg{group, tx.epoch, base, tx.next_seq});
  tx.probe_timer = transport_->simulator_for(self_).schedule_timer(
      jittered(options_.reliability.probe_delay,
               options_.reliability.nack_jitter),
      &probe_thunk, this, pack_edge(group, peer));
}

void GroupCastNode::drain_rx(GroupId group, GroupState& state,
                             overlay::PeerId from, EdgeRx& rx) {
  while (!rx.stash.empty() && rx.stash.begin()->first == rx.expected) {
    const BufferedPayload parked = rx.stash.begin()->second;
    rx.stash.erase(rx.stash.begin());
    ++rx.expected;
    ++rx.delivered_since_ack;
    deliver_payload(group, state, from, parked);
  }
  if (rx.delivered_since_ack >= options_.reliability.ack_every) {
    rx.delivered_since_ack = 0;
    transport_->send(self_, from, DataAckMsg{group, rx.epoch, rx.expected});
  }
  if (!rx.stash.empty() || rx.expected < rx.tail_next) {
    maybe_schedule_nack(group, from, rx);
  }
}

void GroupCastNode::handle_reliable_data(const Envelope& envelope,
                                         const ReliableDataMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree) return;
  BufferedPayload payload;
  payload.seq = msg.seq;
  payload.origin = msg.origin;
  payload.payload_id = msg.payload_id;
  payload.hops = msg.hops;
  accept_sequenced(envelope, msg.group, state, msg.epoch, msg.seq, payload);
}

void GroupCastNode::accept_sequenced(const Envelope& envelope, GroupId group,
                                     GroupState& state, std::uint32_t epoch,
                                     std::uint64_t seq,
                                     const BufferedPayload& payload) {
  const auto it = state.rx_edges.find(envelope.from);
  if (it == state.rx_edges.end() || !it->second.synced ||
      it->second.epoch != epoch) {
    // No synced incarnation matches (the SeqSync was lost, or this copy
    // belongs to a torn-down incarnation): drop it — the sender's probe
    // re-announces the sync, and resuming mid-stream by guessing the
    // base sequence is exactly the NACK storm the handshake avoids.
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kMessageDropped, self_,
        envelope.from,
        static_cast<std::uint64_t>(trace::DropReason::kStaleEpoch));
    return;
  }
  auto& rx = it->second;
  if (rx.tail_next < seq + 1) rx.tail_next = seq + 1;
  if (seq < rx.expected || rx.stash.count(seq) != 0) {
    // Retransmission raced the original (or a second NACK round): the
    // sequence layer absorbs the duplicate before payload dedup sees it.
    trace::counters().incr(self_, trace::CounterId::kDupsSuppressed);
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now().as_micros(), trace::EventKind::kMessageDropped, self_,
        envelope.from,
        static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
    return;
  }
  if (options_.adaptive) {
    // One loss sample per accepted sequenced arrival: in-order is a hit,
    // a gap means at least one copy ahead of us went missing.
    ewma_update(rx.loss_ewma, seq == rx.expected ? 0.0 : 1.0);
  }
  if (seq == rx.expected) {
    if (rx.nack_rounds > 0) {
      // This in-order arrival closes a NACKed gap: record first-NACK to
      // repair time for the self-tuning transport work.
      const auto repair_us =
          static_cast<std::uint64_t>((now() - rx.last_nack_at).as_micros());
      trace::histograms().record(trace::HistogramId::kNackRepairUs,
                                 repair_us);
      if (options_.adaptive) {
        ewma_update(rx.repair_ewma_us, static_cast<double>(repair_us));
      }
    }
    ++rx.expected;
    ++rx.delivered_since_ack;
    rx.nack_rounds = 0;  // in-order progress
    deliver_payload(group, state, envelope.from, payload);
    drain_rx(group, state, envelope.from, rx);
    return;
  }
  // Gap: park the payload and arm the batched NACK.
  rx.stash.emplace(seq, payload);
  maybe_schedule_nack(group, envelope.from, rx);
}

void GroupCastNode::handle_data_nack(const Envelope& envelope,
                                     const DataNackMsg& msg) {
  auto& state = state_of(msg.group);
  const auto it = state.tx_edges.find(envelope.from);
  if (it == state.tx_edges.end() || it->second.epoch != msg.epoch) {
    return;  // stale incarnation
  }
  auto& tx = it->second;
  // base is an implicit cumulative ack: every sequence below it arrived.
  if (msg.base_seq > tx.cum_acked) tx.cum_acked = msg.base_seq;
  while (!tx.buffer.empty() && tx.buffer.front().seq < tx.cum_acked) {
    tx.buffer.pop_front();
  }
  if (!tx.buffer.empty()) {
    const std::uint64_t front = tx.buffer.front().seq;
    for (std::uint64_t i = 0; i < 64; ++i) {
      if ((msg.missing & (1ull << i)) == 0) continue;
      const std::uint64_t seq = msg.base_seq + i;
      if (seq < front || seq >= tx.next_seq) continue;  // fell off / unsent
      const auto& entry = tx.buffer[static_cast<std::size_t>(seq - front)];
      trace::tracer().emit(
          now().as_micros(), trace::EventKind::kPayloadRetransmit, self_,
          envelope.from,
          trace::pack_provenance(entry.origin, entry.payload_id, entry.hops));
      transport_->send(self_, envelope.from,
                       payload_msg(msg.group, tx.epoch, entry.seq, entry));
      trace::counters().incr(self_, trace::CounterId::kRetransmits);
    }
  }
  // The advanced cumulative ack may have reopened the window; retransmits
  // go first so the receiver's gap is filled before new data lands.
  drain_tx(msg.group, state, envelope.from, tx);
}

void GroupCastNode::handle_data_ack(const Envelope& envelope,
                                    const DataAckMsg& msg) {
  auto& state = state_of(msg.group);
  const auto it = state.tx_edges.find(envelope.from);
  if (it == state.tx_edges.end() || it->second.epoch != msg.epoch) return;
  auto& tx = it->second;
  if (msg.cumulative > tx.cum_acked) tx.cum_acked = msg.cumulative;
  while (!tx.buffer.empty() && tx.buffer.front().seq < tx.cum_acked) {
    tx.buffer.pop_front();
  }
  drain_tx(msg.group, state, envelope.from, tx);  // ack-clocked advancement
}

void GroupCastNode::handle_seq_sync(const Envelope& envelope,
                                    const SeqSyncMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree) return;
  auto& rx = state.rx_edges[envelope.from];
  if (!rx.synced || rx.epoch != msg.epoch) {
    // New incarnation of the inbound edge: adopt its retransmittable
    // window [base, next) wholesale.  This is the receiving half of the
    // reattach re-sync — nothing before base_seq will ever be NACKed,
    // and when the handshake SeqSync itself was lost, aligning to the
    // probe's base (the sender's buffer front) recovers the buffered
    // backlog instead of skipping it.
    transport_->simulator_for(self_).cancel(rx.nack_timer);
    rx = EdgeRx{};
    rx.epoch = msg.epoch;
    rx.synced = true;
    rx.expected = msg.base_seq;
    rx.tail_next = msg.next_seq;
    if (rx.expected < rx.tail_next) {
      maybe_schedule_nack(msg.group, envelope.from, rx);
    }
    return;
  }
  if (msg.base_seq > rx.expected) {
    // The sender can no longer retransmit anything below base: deliver
    // whatever of the stash survives (in order) and give up on the rest —
    // NACKing below base would spin forever.
    while (!rx.stash.empty() && rx.stash.begin()->first < msg.base_seq) {
      const BufferedPayload parked = rx.stash.begin()->second;
      rx.stash.erase(rx.stash.begin());
      ++rx.delivered_since_ack;
      deliver_payload(msg.group, state, envelope.from, parked);
    }
    rx.expected = msg.base_seq;
    rx.nack_rounds = 0;
    drain_rx(msg.group, state, envelope.from, rx);
  }
  if (msg.next_seq > rx.tail_next) rx.tail_next = msg.next_seq;
  if (!rx.stash.empty() || rx.expected < rx.tail_next) {
    maybe_schedule_nack(msg.group, envelope.from, rx);
    return;
  }
  // Caught up: the announcement is the sender's ack-overdue probe, so
  // answer with the cumulative ack that lets it trim and go quiet.
  rx.delivered_since_ack = 0;
  transport_->send(self_, envelope.from,
                   DataAckMsg{msg.group, rx.epoch, rx.expected});
}

void GroupCastNode::handle_leave(const Envelope& /*envelope*/,
                                 const LeaveMsg& msg) {
  auto& state = state_of(msg.group);
  erase_value(state.children, msg.child);
  erase_value(state.pending_acks, msg.child);
  state.child_last_seen.erase(msg.child);
  drop_edge_state(state, msg.child);
  // A pure relay whose last child left can leave too.
  if (!state.subscribed && state.on_tree && state.children.empty() &&
      state.tree_parent != self_) {
    transport_->send(self_, state.tree_parent, LeaveMsg{msg.group, self_});
    drop_edge_state(state, state.tree_parent);
    state.on_tree = false;
    state.tree_parent = overlay::kNoPeer;
    state.depth = kUnknownDepth;
  }
}

void GroupCastNode::handle_heartbeat(const Envelope& envelope,
                                     const HeartbeatMsg& msg) {
  auto& state = state_of(msg.group);
  const bool is_child =
      std::find(state.children.begin(), state.children.end(),
                envelope.from) != state.children.end();
  if (!is_child) {
    // The sender believes we are its parent but we disagree (it was
    // pruned, or we dissolved): tell it to re-attach.
    transport_->send(self_, envelope.from, ParentLostMsg{msg.group});
    return;
  }
  state.child_last_seen[envelope.from] = now();
  // While we recover our own position the depth is unknown; the ack still
  // keeps the child from declaring us dead.
  transport_->send(
      self_, envelope.from,
      HeartbeatAckMsg{msg.group,
                      state.on_tree ? state.depth : kUnknownDepth,
                      offered_backup(state)});
}

void GroupCastNode::handle_heartbeat_ack(const Envelope& envelope,
                                         const HeartbeatAckMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree || envelope.from != state.tree_parent) return;
  state.parent_last_ack = now();
  if (msg.depth != kUnknownDepth) state.depth = msg.depth + 1;
  if (options_.replication.enabled && msg.backup != self_) {
    // The parent's own parent may have changed since the join: every ack
    // refreshes the rung-0 backup.
    state.backup_parent = msg.backup;
  }
}

void GroupCastNode::handle_parent_lost(const Envelope& envelope,
                                       const ParentLostMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree || envelope.from != state.tree_parent) return;
  begin_recovery(msg.group, envelope.from);
}

// -------------------------------------------- rendezvous replication
// docs/ROBUSTNESS.md, "Rendezvous replication & quorum handoff".

bool GroupCastNode::ensure_repl_member(GroupId group,
                                       overlay::PeerId rendezvous) {
  if (!options_.replication.enabled) return false;
  if (rendezvous == overlay::kNoPeer) return false;
  auto& repl = state_of(group).repl;
  if (repl.member) return repl.origin == rendezvous;
  const auto population = transport_->population().size();
  const std::size_t count =
      std::min(options_.replication.replicas,
               population > 0 ? population - 1 : 0);
  // The member set is always derived *unfiltered*: every member — and any
  // subscriber climbing the rendezvous rung — must name the same peers no
  // matter how its liveness view has drifted.
  std::vector<overlay::PeerId> members{rendezvous};
  for (const auto replica :
       rendezvous_replicas(group, rendezvous, population, count)) {
    members.push_back(replica);
  }
  if (std::find(members.begin(), members.end(), self_) == members.end()) {
    return false;
  }
  repl.member = true;
  repl.origin = rendezvous;
  repl.members = std::move(members);
  repl.epoch = 1;
  repl.promised = 1;
  repl.leader = rendezvous;
  repl.log.push_back(LeaseRecord{1, rendezvous});
  repl.last_lease_seen = now();
  maybe_schedule_repl_tick(group);
  return true;
}

overlay::PeerId GroupCastNode::offered_backup(const GroupState& state) const {
  if (!options_.replication.enabled || !state.on_tree) {
    return overlay::kNoPeer;
  }
  if (state.tree_parent == self_ || state.tree_parent == overlay::kNoPeer) {
    return overlay::kNoPeer;  // roots have no grandparent to offer
  }
  return state.tree_parent;
}

void GroupCastNode::maybe_schedule_repl_tick(GroupId group) {
  if (!options_.replication.enabled || !running_) return;
  auto& repl = state_of(group).repl;
  if (!repl.member || repl.tick_scheduled) return;
  repl.tick_scheduled = true;
  repl_groups_.insert(
      std::upper_bound(repl_groups_.begin(), repl_groups_.end(), group),
      group);
  // Same wheel-timer shape as the heartbeat tick: one shared cancellable
  // timer per node, groups enrol for the next round.  The cadence is a
  // fixed lease_interval with no jitter, so renewal traffic is a pure
  // function of the scenario, not of RNG interleaving.
  auto& simulator = transport_->simulator_for(self_);
  if (!simulator.timer_pending(repl_timer_)) {
    repl_timer_ = simulator.schedule_timer(
        options_.replication.lease_interval, &repl_thunk, this);
  }
}

void GroupCastNode::repl_thunk(void* context, std::uint64_t) {
  static_cast<GroupCastNode*>(context)->node_repl_tick();
}

void GroupCastNode::node_repl_tick() {
  if (!running_) return;
  repl_scratch_.clear();
  repl_scratch_.swap(repl_groups_);
  if (repl_scratch_.size() > 1) {
    trace::counters().incr(self_, trace::CounterId::kTimersCoalesced,
                           repl_scratch_.size() - 1);
  }
  for (const auto group : repl_scratch_) {
    if (!running_) break;
    repl_tick(group);
  }
}

void GroupCastNode::repl_tick(GroupId group) {
  auto& repl = state_of(group).repl;
  repl.tick_scheduled = false;
  if (!running_ || !repl.member) return;
  if (repl.leaseholder) {
    if (repl.round == ReliableExchange::kNoToken) {
      start_repl_round(group, /*handoff=*/false, repl.epoch);
    }
  } else if (repl.round == ReliableExchange::kNoToken) {
    // Takeover: member rank staggers the patience window, so the lowest
    // surviving rank proposes first and concurrent proposals are the
    // partition-race exception, not the norm.
    const auto rank = static_cast<std::int64_t>(
        std::find(repl.members.begin(), repl.members.end(), self_) -
        repl.members.begin());
    const auto patience = options_.replication.lease_duration +
                          options_.replication.lease_interval * rank;
    if (now() - repl.last_lease_seen > patience) {
      start_repl_round(group, /*handoff=*/true,
                       std::max(repl.epoch, repl.promised) + 1);
    }
  }
  maybe_schedule_repl_tick(group);
}

void GroupCastNode::start_repl_round(GroupId group, bool handoff,
                                     std::uint32_t epoch) {
  auto& repl = state_of(group).repl;
  GC_REQUIRE(repl.member && repl_exchange_.has_value());
  repl.round_epoch = epoch;
  repl.round_is_handoff = handoff;
  repl.round_started = now();
  repl.round_acked.clear();
  if (handoff) {
    repl.promised = std::max(repl.promised, epoch);
    repl.promised_to = self_;  // our own proposal holds our promise
  }
  repl.round = repl_exchange_->begin(
      [this, group](std::size_t) {
        auto& repl = state_of(group).repl;
        for (const auto member : repl.members) {
          if (member == self_) continue;
          if (repl.round_is_handoff) {
            transport_->send(self_, member,
                             HandoffMsg{group, repl.round_epoch, self_,
                                        repl.origin});
          } else {
            transport_->send(self_, member,
                             LeaseMsg{group, repl.round_epoch, self_,
                                      repl.origin});
          }
        }
      },
      [this, group] {
        // Quorum unreachable.  A renewing leaseholder demotes itself to
        // caretaker: it keeps serving its (minority-side) subtree as tree
        // root but stops claiming the lease, so the majority side can
        // elect without a competing claim surviving the heal.  A takeover
        // candidate simply waits for its next patience window.
        auto& repl = state_of(group).repl;
        repl.round = ReliableExchange::kNoToken;
        if (!repl.round_is_handoff) repl.leaseholder = false;
      });
  maybe_commit_round(group);
}

void GroupCastNode::note_round_ack(GroupId group, overlay::PeerId from,
                                   std::uint32_t acked_epoch) {
  auto& repl = state_of(group).repl;
  if (repl.round == ReliableExchange::kNoToken) return;
  if (acked_epoch != repl.round_epoch) return;
  if (std::find(repl.members.begin(), repl.members.end(), from) ==
      repl.members.end()) {
    return;
  }
  if (std::find(repl.round_acked.begin(), repl.round_acked.end(), from) !=
      repl.round_acked.end()) {
    return;  // a retry broadcast re-collected this member
  }
  repl.round_acked.push_back(from);
  maybe_commit_round(group);
}

void GroupCastNode::maybe_commit_round(GroupId group) {
  auto& repl = state_of(group).repl;
  if (repl.round == ReliableExchange::kNoToken) return;
  const std::size_t majority = repl.members.size() / 2 + 1;
  if (repl.round_acked.size() + 1 < majority) return;  // +1: our own vote
  repl_exchange_->settle(repl.round);
  repl.round = ReliableExchange::kNoToken;
  if (repl.round_is_handoff) {
    commit_handoff(group);
    return;
  }
  trace::counters().incr(self_, trace::CounterId::kLeaseRenewals);
  trace::tracer().emit(now().as_micros(), trace::EventKind::kLeaseRenewed,
                       self_, trace::kNoNode, repl.round_epoch);
  repl.last_lease_seen = now();
}

void GroupCastNode::commit_handoff(GroupId group) {
  auto& state = state_of(group);
  auto& repl = state.repl;
  const auto previous = repl.leader;
  repl.epoch = repl.round_epoch;
  repl.promised = std::max(repl.promised, repl.epoch);
  repl.leader = self_;
  repl.leaseholder = true;
  repl.last_lease_seen = now();
  merge_lease_record(repl, LeaseRecord{repl.epoch, self_});
  trace::counters().incr(self_, trace::CounterId::kLeaseHandoffs);
  trace::histograms().record(
      trace::HistogramId::kHandoffUs,
      static_cast<std::uint64_t>((now() - repl.round_started).as_micros()));
  trace::tracer().emit(now().as_micros(), trace::EventKind::kLeaseHandoff,
                       self_, previous == self_ ? trace::kNoNode : previous,
                       repl.epoch);
  // The new leaseholder becomes the group's acting tree root: its side's
  // orphans re-ladder onto it via the (liveness-filtered) rendezvous rung.
  root_self(group);
  // Push the merged log right away so the quorum converges without
  // waiting for the anti-entropy sweep of the next renewal.
  for (const auto member : repl.members) {
    if (member == self_) continue;
    transport_->send(self_, member,
                     ReplicateMsg{group, repl.epoch, self_, repl.origin,
                                  repl.log});
  }
}

void GroupCastNode::merge_lease_record(ReplState& repl,
                                       const LeaseRecord& record) {
  if (record.epoch == 0 || record.leader == overlay::kNoPeer) return;
  const auto it = std::lower_bound(
      repl.log.begin(), repl.log.end(), record,
      [](const LeaseRecord& a, const LeaseRecord& b) {
        return a.epoch < b.epoch;
      });
  if (it != repl.log.end() && it->epoch == record.epoch) {
    if (it->leader != record.leader) {
      // Two leaders for one epoch cannot both have committed under
      // intersecting majorities; counting (instead of crashing) lets the
      // invariant checker pin the counter at zero.
      trace::counters().incr(self_, trace::CounterId::kEpochConflicts);
    }
    return;
  }
  repl.log.insert(it, record);
}

void GroupCastNode::adopt_epoch(GroupId group, std::uint32_t epoch,
                                overlay::PeerId leader) {
  auto& state = state_of(group);
  auto& repl = state.repl;
  if (epoch < repl.epoch) return;
  if (epoch == repl.epoch) {
    if (leader == repl.leader) {
      if (leader != self_) repl.last_lease_seen = now();
      return;
    }
    trace::counters().incr(self_, trace::CounterId::kEpochConflicts);
    return;
  }
  repl.epoch = epoch;
  repl.promised = std::max(repl.promised, epoch);
  repl.leader = leader;
  merge_lease_record(repl, LeaseRecord{epoch, leader});
  repl.last_lease_seen = now();
  if (leader == self_) return;
  repl.leaseholder = false;
  if (repl.round != ReliableExchange::kNoToken) {
    repl_exchange_->cancel(repl.round);
    repl.round = ReliableExchange::kNoToken;
  }
  // Heal reconciliation, tree half: a superseded acting root folds its
  // whole subtree back under the new leader by re-running the ladder
  // (its depth-0 guard keeps it from attaching below its own
  // descendants).
  if (state.on_tree && state.tree_parent == self_) {
    begin_recovery(group, overlay::kNoPeer);
  }
}

void GroupCastNode::maybe_push_log(GroupId group, overlay::PeerId to,
                                   std::uint32_t peer_head,
                                   std::uint32_t peer_size) {
  auto& repl = state_of(group).repl;
  if (!repl.leaseholder) return;
  const auto head = repl.log.empty() ? 0u : repl.log.back().epoch;
  // Push only to members provably *behind* us; a peer reporting a log we
  // do not dominate converges through its own leader-side push instead
  // (pushing at it would ping-pong forever).
  if (peer_head >= head && peer_size >= repl.log.size()) return;
  transport_->send(self_, to,
                   ReplicateMsg{group, repl.epoch, repl.leader, repl.origin,
                                repl.log});
}

void GroupCastNode::root_self(GroupId group) {
  auto& state = state_of(group);
  if (state.on_tree && state.tree_parent == self_) return;
  if (state.exchange != ReliableExchange::kNoToken) {
    exchange_.cancel(state.exchange);
    state.exchange = ReliableExchange::kNoToken;
  }
  if (state.on_tree && state.tree_parent != overlay::kNoPeer &&
      state.tree_parent != self_) {
    transport_->send(self_, state.tree_parent, LeaveMsg{group, self_});
    drop_edge_state(state, state.tree_parent);
  }
  state.on_tree = true;
  state.search_pending = false;
  state.recovering = false;
  state.tree_parent = self_;
  state.depth = 0;
  state.avoid = overlay::kNoPeer;
  state.attach_depth_limit = kUnknownDepth;
  state.dissolved_once = false;
  state.backup_parent = overlay::kNoPeer;
  // Deferred joiners and retained children learn the new depth root-style.
  for (const auto child : state.pending_acks) {
    transport_->send(self_, child,
                     JoinAckMsg{group, state.depth, offered_backup(state)});
    if (options_.reliability.enabled) {
      drop_edge_state(state, child);
      reset_tx_edge(group, state, child);
    }
  }
  for (const auto child : state.children) {
    if (std::find(state.pending_acks.begin(), state.pending_acks.end(),
                  child) != state.pending_acks.end()) {
      continue;
    }
    transport_->send(
        self_, child,
        HeartbeatAckMsg{group, state.depth, offered_backup(state)});
  }
  state.pending_acks.clear();
  maybe_schedule_heartbeat(group);
}

void GroupCastNode::handle_lease(const Envelope& envelope,
                                 const LeaseMsg& msg) {
  if (!ensure_repl_member(msg.group, msg.rendezvous)) return;
  auto& repl = state_of(msg.group).repl;
  if (msg.epoch < repl.epoch) {
    // A stale leader surfacing across a healed partition: push our log so
    // it adopts the newer epoch and steps down.
    transport_->send(self_, envelope.from,
                     ReplicateMsg{msg.group, repl.epoch, repl.leader,
                                  repl.origin, repl.log});
    return;
  }
  adopt_epoch(msg.group, msg.epoch, msg.leader);
  if (repl.epoch == msg.epoch && repl.leader == msg.leader) {
    const auto head = repl.log.empty() ? 0u : repl.log.back().epoch;
    transport_->send(
        self_, envelope.from,
        LeaseAckMsg{msg.group, msg.epoch, head,
                    static_cast<std::uint32_t>(repl.log.size())});
  }
}

void GroupCastNode::handle_lease_ack(const Envelope& envelope,
                                     const LeaseAckMsg& msg) {
  if (!options_.replication.enabled) return;
  auto& repl = state_of(msg.group).repl;
  if (!repl.member) return;
  note_round_ack(msg.group, envelope.from, msg.epoch);
  maybe_push_log(msg.group, envelope.from, msg.head_epoch, msg.log_size);
}

void GroupCastNode::handle_replicate(const Envelope& envelope,
                                     const ReplicateMsg& msg) {
  if (!ensure_repl_member(msg.group, msg.rendezvous)) return;
  auto& repl = state_of(msg.group).repl;
  if (repl.round != ReliableExchange::kNoToken && repl.round_is_handoff &&
      msg.epoch == repl.round_epoch && msg.leader == self_) {
    // A grant for our open takeover proposal, Paxos prepare-style: it
    // carries the granter's whole log, so by commit time our log holds
    // every record any majority ever committed — no epoch can be lost to
    // the heal.
    for (const auto& record : msg.records) merge_lease_record(repl, record);
    note_round_ack(msg.group, envelope.from, msg.epoch);
    return;
  }
  // Log push from a (possibly newer) leader: union-merge, adopt, report
  // back our log summary so the leader can re-push if we stayed behind.
  // Adoption takes the highest *record* in the push, never the header —
  // a grant's header names the proposed (uncommitted) epoch, and a
  // candidate whose round already closed must not mistake a late grant
  // for a commit of its own failed proposal.
  LeaseRecord newest{0, overlay::kNoPeer};
  for (const auto& record : msg.records) {
    merge_lease_record(repl, record);
    if (record.epoch > newest.epoch) newest = record;
  }
  if (newest.epoch > 0) adopt_epoch(msg.group, newest.epoch, newest.leader);
  const auto head = repl.log.empty() ? 0u : repl.log.back().epoch;
  transport_->send(
      self_, envelope.from,
      ReplicateAckMsg{msg.group, msg.epoch, head,
                      static_cast<std::uint32_t>(repl.log.size())});
}

void GroupCastNode::handle_replicate_ack(const Envelope& envelope,
                                         const ReplicateAckMsg& msg) {
  if (!options_.replication.enabled) return;
  auto& repl = state_of(msg.group).repl;
  if (!repl.member) return;
  note_round_ack(msg.group, envelope.from, msg.epoch);
  maybe_push_log(msg.group, envelope.from, msg.head_epoch, msg.log_size);
}

void GroupCastNode::handle_handoff(const Envelope& envelope,
                                   const HandoffMsg& msg) {
  if (!ensure_repl_member(msg.group, msg.rendezvous)) return;
  if (msg.candidate != envelope.from) return;  // garbled proposal
  auto& repl = state_of(msg.group).repl;
  const bool fresh = msg.epoch > repl.promised && msg.epoch > repl.epoch;
  const bool retry = msg.epoch == repl.promised && msg.epoch > repl.epoch &&
                     repl.promised_to == msg.candidate;
  if (fresh || retry) {
    repl.promised = msg.epoch;
    repl.promised_to = msg.candidate;
    // A higher proposal supersedes our own in-flight one (majorities
    // would overlap; yielding here is what makes the race converge).
    if (repl.round != ReliableExchange::kNoToken && repl.round_is_handoff &&
        repl.round_epoch < msg.epoch) {
      repl_exchange_->cancel(repl.round);
      repl.round = ReliableExchange::kNoToken;
    }
    transport_->send(self_, envelope.from,
                     ReplicateMsg{msg.group, msg.epoch, msg.candidate,
                                  repl.origin, repl.log});
    return;
  }
  // Reject by pushing our committed view: a candidate proposing below an
  // epoch we promised or committed catches up and re-proposes higher.
  transport_->send(self_, envelope.from,
                   ReplicateMsg{msg.group, repl.epoch, repl.leader,
                                repl.origin, repl.log});
}

}  // namespace groupcast::core
