#include "core/node.h"

#include <algorithm>
#include <cmath>

#include "core/utility.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

namespace {
/// Dedup key for payloads: origin in the high bits, id in the low bits.
std::uint64_t payload_key(overlay::PeerId origin, std::uint64_t id) {
  return (static_cast<std::uint64_t>(origin) << 40) ^ id;
}
}  // namespace

GroupCastNode::GroupCastNode(overlay::PeerId self, Transport& transport,
                             const overlay::OverlayGraph& graph,
                             NodeOptions options, util::Rng& rng)
    : self_(self),
      transport_(&transport),
      graph_(&graph),
      options_(options),
      rng_(rng.split()) {
  GC_REQUIRE(self < transport.population().size());
  GC_REQUIRE(options_.ripple_ttl >= 1);
}

GroupCastNode::~GroupCastNode() {
  if (running_) stop();
}

void GroupCastNode::start() {
  GC_REQUIRE_MSG(!running_, "node already started");
  transport_->register_node(self_,
                            [this](const Envelope& e) { handle(e); });
  running_ = true;
}

void GroupCastNode::stop() {
  GC_REQUIRE_MSG(running_, "node not running");
  transport_->unregister_node(self_);
  running_ = false;
}

double GroupCastNode::resource_level() {
  if (!cached_resource_level_) {
    cached_resource_level_ = clamp_resource_level(
        options_.advertisement.pinned_resource_level >= 0.0
            ? options_.advertisement.pinned_resource_level
            : transport_->population().sampled_resource_level(
                  self_, options_.advertisement.resource_sample, rng_));
  }
  return *cached_resource_level_;
}

std::vector<overlay::PeerId> GroupCastNode::select_forward_targets(
    overlay::PeerId exclude) {
  std::vector<overlay::PeerId> pool;
  for (const auto n : graph_->neighbors(self_)) {
    if (n != exclude) pool.push_back(n);
  }
  if (pool.empty()) return pool;
  const auto& adv = options_.advertisement;
  if (adv.scheme == AnnouncementScheme::kNssa) return pool;

  const auto want = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             adv.forward_fraction * static_cast<double>(pool.size()))));
  if (want >= pool.size()) return pool;

  if (adv.scheme == AnnouncementScheme::kSsaRandom) {
    const auto idx = rng_.sample_indices(pool.size(), want);
    std::vector<overlay::PeerId> out;
    for (const auto i : idx) out.push_back(pool[i]);
    return out;
  }
  const auto& population = transport_->population();
  std::vector<Candidate> candidates;
  candidates.reserve(pool.size());
  for (const auto n : pool) {
    candidates.push_back(Candidate{population.info(n).capacity,
                                   population.coord_distance_ms(self_, n)});
  }
  const auto prefs = selection_preferences(resource_level(), candidates);
  const auto idx = weighted_sample_without_replacement(prefs, want, rng_);
  std::vector<overlay::PeerId> out;
  for (const auto i : idx) out.push_back(pool[i]);
  return out;
}

// ------------------------------------------------------------- public API

void GroupCastNode::create_group(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  GC_REQUIRE_MSG(!state.has_advert, "group already created or advertised");
  state.rendezvous = self_;
  state.advert_parent = self_;
  state.has_advert = true;
  state.on_tree = true;
  state.subscribed = true;
  state.tree_parent = self_;
  for (const auto target : select_forward_targets(self_)) {
    transport_->send(
        self_, target,
        AdvertiseMsg{group, self_,
                     static_cast<std::uint32_t>(
                         options_.advertisement.ttl - 1)});
  }
}

void GroupCastNode::subscribe(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  if (state.on_tree) {
    state.subscribed = true;
    if (subscribe_callback_) subscribe_callback_(group, true);
    return;
  }
  state.subscribed = true;  // desired; effective once on the tree
  trace::counters().incr(self_, trace::CounterId::kSubscribeAttempts);
  if (state.has_advert) {
    send_join(group, state.advert_parent);
  } else {
    state.search_pending = true;
    std::size_t queries = 0;
    for (const auto n : graph_->neighbors(self_)) {
      transport_->send(
          self_, n,
          RippleQueryMsg{group, self_,
                         static_cast<std::uint32_t>(options_.ripple_ttl)});
      ++queries;
    }
    trace::counters().incr(self_, trace::CounterId::kRippleSearches);
    trace::tracer().emit(transport_->simulator().now().as_micros(),
                         trace::EventKind::kRippleSearch, self_,
                         overlay::kNoPeer, queries);
  }
  // Give up if nothing confirms the join within the timeout.
  transport_->simulator().schedule(options_.subscribe_timeout,
                                   [this, group] {
    auto& st = state_of(group);
    if (st.subscribed && !st.on_tree) {
      st.subscribed = false;
      st.join_pending = false;
      st.search_pending = false;
      trace::tracer().emit(transport_->simulator().now().as_micros(),
                           trace::EventKind::kSubscriptionAttempt, self_,
                           overlay::kNoPeer, 0);
      if (subscribe_callback_) subscribe_callback_(group, false);
    }
  });
}

void GroupCastNode::send_join(GroupId group, overlay::PeerId attach) {
  auto& state = state_of(group);
  if (state.join_pending) return;
  state.join_pending = true;
  transport_->send(self_, attach, JoinMsg{group, self_});
}

void GroupCastNode::unsubscribe(GroupId group) {
  GC_REQUIRE(running_);
  auto& state = state_of(group);
  GC_REQUIRE_MSG(state.subscribed, "not subscribed to this group");
  state.subscribed = false;
  if (!state.on_tree) return;
  if (!state.children.empty() || state.tree_parent == self_) {
    return;  // relay (or root): keep forwarding for the children
  }
  transport_->send(self_, state.tree_parent, LeaveMsg{group, self_});
  state.on_tree = false;
  state.tree_parent = overlay::kNoPeer;
}

void GroupCastNode::publish(GroupId group, std::uint64_t payload_id) {
  GC_REQUIRE(running_);
  const auto it = groups_.find(group);
  GC_REQUIRE_MSG(it != groups_.end() && it->second.on_tree,
                 "publish requires tree membership");
  auto& state = it->second;
  state.seen_payloads.insert(payload_key(self_, payload_id));
  if (state.tree_parent != self_ &&
      state.tree_parent != overlay::kNoPeer) {
    transport_->send(self_, state.tree_parent,
                     DataMsg{group, self_, payload_id});
  }
  for (const auto child : state.children) {
    transport_->send(self_, child, DataMsg{group, self_, payload_id});
  }
}

// ------------------------------------------------------------ inspection

bool GroupCastNode::has_advertisement(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.has_advert;
}

bool GroupCastNode::is_subscribed(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.subscribed &&
         it->second.on_tree;
}

bool GroupCastNode::on_tree(GroupId group) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.on_tree;
}

overlay::PeerId GroupCastNode::tree_parent(GroupId group) const {
  const auto it = groups_.find(group);
  GC_REQUIRE(it != groups_.end() && it->second.on_tree);
  return it->second.tree_parent;
}

std::vector<overlay::PeerId> GroupCastNode::tree_children(
    GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return it->second.children;
}

// -------------------------------------------------------------- handlers

void GroupCastNode::handle(const Envelope& envelope) {
  std::visit(
      [this, &envelope](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          handle_advertise(envelope, msg);
        } else if constexpr (std::is_same_v<T, JoinMsg>) {
          handle_join(envelope, msg);
        } else if constexpr (std::is_same_v<T, JoinAckMsg>) {
          handle_join_ack(envelope, msg);
        } else if constexpr (std::is_same_v<T, RippleQueryMsg>) {
          handle_ripple_query(envelope, msg);
        } else if constexpr (std::is_same_v<T, RippleHitMsg>) {
          handle_ripple_hit(envelope, msg);
        } else if constexpr (std::is_same_v<T, DataMsg>) {
          handle_data(envelope, msg);
        } else if constexpr (std::is_same_v<T, LeaveMsg>) {
          handle_leave(envelope, msg);
        }
      },
      envelope.body);
}

void GroupCastNode::handle_advertise(const Envelope& envelope,
                                     const AdvertiseMsg& msg) {
  auto& state = state_of(msg.group);
  if (state.has_advert) {  // duplicate
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        transport_->simulator().now().as_micros(),
        trace::EventKind::kMessageDropped, self_, envelope.from,
        static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
    return;
  }
  state.has_advert = true;
  state.rendezvous = msg.rendezvous;
  state.advert_parent = envelope.from;
  if (msg.ttl == 0) return;
  for (const auto target : select_forward_targets(envelope.from)) {
    transport_->send(self_, target,
                     AdvertiseMsg{msg.group, msg.rendezvous, msg.ttl - 1});
    trace::counters().incr(self_, trace::CounterId::kAdvertsForwarded);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
    trace::tracer().emit(transport_->simulator().now().as_micros(),
                         trace::EventKind::kAdvertForwarded, self_, target,
                         msg.ttl - 1);
  }
}

void GroupCastNode::handle_join(const Envelope& /*envelope*/,
                                const JoinMsg& msg) {
  auto& state = state_of(msg.group);
  // A join can only be honoured by a peer that can reach the tree.
  if (!state.on_tree && !state.has_advert) return;  // stale join: ignored
  if (std::find(state.children.begin(), state.children.end(), msg.child) ==
      state.children.end()) {
    state.children.push_back(msg.child);
  }
  transport_->send(self_, msg.child, JoinAckMsg{msg.group});
  if (!state.on_tree) {
    // Become a relay: join upwards along the reverse advertisement path.
    send_join(msg.group, state.advert_parent);
  }
}

void GroupCastNode::handle_join_ack(const Envelope& envelope,
                                    const JoinAckMsg& msg) {
  auto& state = state_of(msg.group);
  if (state.on_tree) return;
  state.on_tree = true;
  state.join_pending = false;
  state.search_pending = false;
  state.tree_parent = envelope.from;
  trace::tracer().emit(transport_->simulator().now().as_micros(),
                       trace::EventKind::kTreeEdgeAdded, self_,
                       envelope.from);
  if (state.subscribed) {
    trace::counters().incr(self_, trace::CounterId::kSubscribeSuccesses);
    trace::tracer().emit(transport_->simulator().now().as_micros(),
                         trace::EventKind::kSubscriptionAttempt, self_,
                         envelope.from, 1);
    if (subscribe_callback_) subscribe_callback_(msg.group, true);
  }
}

void GroupCastNode::handle_ripple_query(const Envelope& envelope,
                                        const RippleQueryMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.seen_queries.insert(msg.origin).second) return;  // duplicate
  if (state.has_advert || state.on_tree) {
    transport_->send(self_, msg.origin, RippleHitMsg{msg.group, self_});
    return;
  }
  if (msg.ttl <= 1) return;
  for (const auto n : graph_->neighbors(self_)) {
    if (n == envelope.from || n == msg.origin) continue;
    transport_->send(self_, n,
                     RippleQueryMsg{msg.group, msg.origin, msg.ttl - 1});
  }
}

void GroupCastNode::handle_ripple_hit(const Envelope& /*envelope*/,
                                      const RippleHitMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.search_pending) return;  // already attached via earlier hit
  state.search_pending = false;
  send_join(msg.group, msg.holder);
}

void GroupCastNode::handle_data(const Envelope& envelope,
                                const DataMsg& msg) {
  auto& state = state_of(msg.group);
  if (!state.on_tree) return;
  if (!state.seen_payloads.insert(payload_key(msg.origin, msg.payload_id))
           .second) {
    trace::counters().incr(self_, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        transport_->simulator().now().as_micros(),
        trace::EventKind::kMessageDropped, self_, envelope.from,
        static_cast<std::uint64_t>(trace::DropReason::kDuplicate));
    return;  // duplicate
  }
  if (state.subscribed && data_callback_) {
    data_callback_(msg.group, msg.payload_id, msg.origin);
  }
  // Forward along the tree, away from the sender.
  if (state.tree_parent != self_ && state.tree_parent != envelope.from &&
      state.tree_parent != overlay::kNoPeer) {
    transport_->send(self_, state.tree_parent, msg);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
  }
  for (const auto child : state.children) {
    if (child == envelope.from) continue;
    transport_->send(self_, child, msg);
    trace::counters().incr(self_, trace::CounterId::kMessagesForwarded);
  }
}

void GroupCastNode::handle_leave(const Envelope& /*envelope*/,
                                 const LeaveMsg& msg) {
  auto& state = state_of(msg.group);
  const auto it =
      std::find(state.children.begin(), state.children.end(), msg.child);
  if (it != state.children.end()) state.children.erase(it);
  // A pure relay whose last child left can leave too.
  if (!state.subscribed && state.on_tree && state.children.empty() &&
      state.tree_parent != self_) {
    transport_->send(self_, state.tree_parent, LeaveMsg{msg.group, self_});
    state.on_tree = false;
    state.tree_parent = overlay::kNoPeer;
  }
}

}  // namespace groupcast::core
