// GroupCastNode — the per-peer middleware runtime.
//
// While AdvertisementEngine / SubscriptionProtocol compute whole-overlay
// outcomes centrally (cheap for the Section 4 parameter sweeps), this class
// is the *deployable* form of the same protocols: every peer runs one
// GroupCastNode, all coordination happens through typed messages over the
// Transport, and no node touches another node's state.  Applications sit
// on top of exactly this API:
//
//   GroupCastNode node(self, transport, graph, options, rng);
//   node.start();
//   node.on_data([](GroupId g, std::uint64_t id, PeerId origin) { ... });
//   node.subscribe(group);
//   node.publish(group, payload_id);
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/advertisement.h"
#include "core/transport.h"
#include "overlay/graph.h"

namespace groupcast::core {

struct NodeOptions {
  /// Scheme + fan-out the node uses when forwarding advertisements.
  AdvertisementOptions advertisement;
  /// TTL of the ripple search used when subscribing without an advert.
  std::size_t ripple_ttl = 2;
  /// How long a subscriber waits for a ripple hit / join ack before giving
  /// up (the app may retry).
  sim::SimTime subscribe_timeout = sim::SimTime::seconds(5.0);
};

class GroupCastNode {
 public:
  using DataCallback =
      std::function<void(GroupId, std::uint64_t payload_id,
                         overlay::PeerId origin)>;
  using SubscribeCallback = std::function<void(GroupId, bool success)>;

  GroupCastNode(overlay::PeerId self, Transport& transport,
                const overlay::OverlayGraph& graph, NodeOptions options,
                util::Rng& rng);
  ~GroupCastNode();

  GroupCastNode(const GroupCastNode&) = delete;
  GroupCastNode& operator=(const GroupCastNode&) = delete;

  /// Attaches to the transport.  Must be called before any other method.
  void start();
  /// Detaches; in-flight messages to this node are dropped.
  void stop();
  bool running() const { return running_; }

  overlay::PeerId id() const { return self_; }

  /// Becomes the rendezvous point of `group` and floods the advertisement.
  void create_group(GroupId group);

  /// Subscribes to `group`: reverse-path join if the advertisement is held,
  /// ripple search otherwise.  Outcome is reported via on_subscribe_result.
  void subscribe(GroupId group);

  /// Leaves the group.  A leaf detaches from its parent; a relay with
  /// children stays on the tree as a pure forwarder.
  void unsubscribe(GroupId group);

  /// Publishes a payload into the group's tree.  Requires being on the
  /// tree (subscribed, or the rendezvous).
  void publish(GroupId group, std::uint64_t payload_id);

  void on_data(DataCallback callback) { data_callback_ = std::move(callback); }
  void on_subscribe_result(SubscribeCallback callback) {
    subscribe_callback_ = std::move(callback);
  }

  // ----------------------------------------------------------- inspection
  bool has_advertisement(GroupId group) const;
  bool is_subscribed(GroupId group) const;
  bool on_tree(GroupId group) const;
  /// Tree parent; self for the rendezvous.  Requires on_tree(group).
  overlay::PeerId tree_parent(GroupId group) const;
  std::vector<overlay::PeerId> tree_children(GroupId group) const;

 private:
  struct GroupState {
    overlay::PeerId rendezvous = overlay::kNoPeer;
    overlay::PeerId advert_parent = overlay::kNoPeer;  // self at rendezvous
    bool has_advert = false;
    bool subscribed = false;
    bool on_tree = false;
    bool join_pending = false;
    bool search_pending = false;
    overlay::PeerId tree_parent = overlay::kNoPeer;
    std::vector<overlay::PeerId> children;
    std::unordered_set<std::uint64_t> seen_payloads;
    std::unordered_set<overlay::PeerId> seen_queries;  // ripple dedup
  };

  void handle(const Envelope& envelope);
  void handle_advertise(const Envelope& envelope, const AdvertiseMsg& msg);
  void handle_join(const Envelope& envelope, const JoinMsg& msg);
  void handle_join_ack(const Envelope& envelope, const JoinAckMsg& msg);
  void handle_ripple_query(const Envelope& envelope,
                           const RippleQueryMsg& msg);
  void handle_ripple_hit(const Envelope& envelope, const RippleHitMsg& msg);
  void handle_data(const Envelope& envelope, const DataMsg& msg);
  void handle_leave(const Envelope& envelope, const LeaveMsg& msg);

  /// Joins the tree by sending a JoinMsg to `attach`; ack completes it.
  void send_join(GroupId group, overlay::PeerId attach);

  /// Forwarding subset for an advertisement, per the configured scheme.
  std::vector<overlay::PeerId> select_forward_targets(
      overlay::PeerId exclude);

  GroupState& state_of(GroupId group) { return groups_[group]; }
  double resource_level();

  overlay::PeerId self_;
  Transport* transport_;
  const overlay::OverlayGraph* graph_;
  NodeOptions options_;
  util::Rng rng_;
  bool running_ = false;
  std::optional<double> cached_resource_level_;
  std::unordered_map<GroupId, GroupState> groups_;
  DataCallback data_callback_;
  SubscribeCallback subscribe_callback_;
};

}  // namespace groupcast::core
