// GroupCastNode — the per-peer middleware runtime.
//
// While AdvertisementEngine / SubscriptionProtocol compute whole-overlay
// outcomes centrally (cheap for the Section 4 parameter sweeps), this class
// is the *deployable* form of the same protocols: every peer runs one
// GroupCastNode, all coordination happens through typed messages over the
// Transport, and no node touches another node's state.  Applications sit
// on top of exactly this API:
//
//   GroupCastNode node(self, transport, graph, options, rng);
//   node.start();
//   node.on_data([](GroupId g, std::uint64_t id, PeerId origin) { ... });
//   node.subscribe(group);
//   node.publish(group, payload_id);
//
// Control-plane reliability (docs/ROBUSTNESS.md): joins and ripple
// searches run through a ReliableExchange retry ladder — join the advert
// parent, escalate to ripple re-search with widening TTL, then to the
// rendezvous point and its deterministic replicas — so a lost JoinAck
// delays a subscription instead of stranding it.  Tree-edge heartbeats
// (off by default; enable via NodeOptions::heartbeat_interval) detect dead
// parents with the paper's two-miss rule and re-run the same ladder to
// re-attach the orphaned subtree, guarded against cycles by attach-point
// depths carried on JoinAck / RippleHit / HeartbeatAck.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/advertisement.h"
#include "core/reliable_exchange.h"
#include "core/transport.h"
#include "overlay/graph.h"
#include "util/flat_set.h"

namespace groupcast::core {

/// Sentinel depth of a node that is not (or not yet) on a tree.
inline constexpr std::uint32_t kUnknownDepth = 0xFFFFFFFFu;

/// Data-plane reliability on tree edges (docs/ROBUSTNESS.md): per-edge
/// sequence numbering with receiver-driven NACK/retransmit, cumulative
/// acks trimming a bounded per-child send buffer, and sender-side
/// tail-loss probes.  Off by default: group data then rides the legacy
/// fire-and-forget DataMsg path, byte-identical to before.
struct DataReliabilityOptions {
  bool enabled = false;
  /// Delay before a detected gap is NACKed; batches a burst of losses
  /// into one request.  Jittered by a uniform factor in [1, 1 + jitter)
  /// drawn from the node's RNG stream (SRM-style desynchronization).
  sim::SimTime nack_delay = sim::SimTime::millis(40);
  /// Wait after a NACK before the same gap may be NACKed again — the
  /// suppression window while a retransmission is presumed in flight.
  sim::SimTime nack_retry_delay = sim::SimTime::millis(250);
  double nack_jitter = 0.5;
  /// NACK rounds without progress before the receiver skips the gap
  /// (the sender's buffer no longer holds it; waiting forever deadlocks).
  std::size_t max_nack_rounds = 8;
  /// Retransmit-buffer bound per directed edge; the oldest unacked entry
  /// falls off when a send would exceed it.
  std::size_t send_buffer_cap = 128;
  /// Cumulative-ack cadence: one ack per this many in-order deliveries.
  std::size_t ack_every = 8;
  /// Ack-overdue probe: how long the sender waits on unacked data before
  /// re-announcing its next sequence (tail-loss detection), and how many
  /// silent rounds before it gives the receiver up and drops the buffer.
  sim::SimTime probe_delay = sim::SimTime::millis(400);
  std::size_t max_probe_rounds = 6;
  /// Ack-clocked flow control (docs/ROBUSTNESS.md, "Flow control &
  /// adaptive detection"): at most `window` unacked sequences in flight
  /// per directed edge; further sends queue at the sender and drain as
  /// cumulative acks advance, and a blocked edge signals its data source
  /// (the tree parent) to pause via FlowControlMsg.  Off by default: the
  /// legacy fire-into-the-buffer behaviour is then byte-identical.
  bool flow_control = false;
  /// Sender window per directed edge, in sequences (>= 1, <= the
  /// retransmit-buffer cap so windowed data never falls off the buffer).
  std::size_t window = 32;
};

/// Rendezvous replication with leased leadership (docs/ROBUSTNESS.md,
/// "Rendezvous replication & quorum handoff").  The rendezvous point and
/// its `rendezvous_replicas` form a fixed member set holding a replicated
/// epoch log of leadership records: the leaseholder renews its lease to a
/// majority over the ReliableExchange retry ladder, a member whose lease
/// view expires takes over with a monotonically higher epoch once a
/// majority grants it, and divergent logs reconcile by epoch union on
/// partition heal.  Also arms rung 0 of the recovery ladder: parents
/// piggyback their own parent on Join/Heartbeat acks so an orphan can try
/// its grandparent before the advert-parent/ripple/rendezvous ladder.
/// Off by default: no timers, no RNG draws, no messages — byte-identical.
struct ReplicationOptions {
  bool enabled = false;
  /// Replica count beside the rendezvous point (member set = 1 + this;
  /// the default gives a 3-member set with majority 2).
  std::size_t replicas = 2;
  /// Leaseholder renewal period; also the stagger unit for takeover
  /// candidates (member rank * interval) so proposals do not collide.
  sim::SimTime lease_interval = sim::SimTime::millis(500);
  /// How long a member tolerates lease silence before proposing a
  /// takeover.  Must exceed the renewal period by enough retry headroom.
  sim::SimTime lease_duration = sim::SimTime::seconds(2.0);
};

struct NodeOptions {
  /// Scheme + fan-out the node uses when forwarding advertisements.
  AdvertisementOptions advertisement;
  /// TTL of the first ripple search; each retry widens it by one hop.
  std::size_t ripple_ttl = 2;
  /// Per-attempt timeout / backoff / attempt budget of every control-plane
  /// exchange (one exchange per ladder rung).
  RetryPolicy retry;
  /// Escalate across ladder rungs (advert parent -> ripple -> rendezvous
  /// + replicas).  Off reproduces the legacy single-strategy behaviour.
  bool escalation = true;
  /// Rendezvous replicas tried when the rendezvous itself is unresponsive.
  std::size_t rendezvous_replicas = 2;
  /// Tree-edge heartbeat period; zero() disables liveness probing (the
  /// default, so `Simulator::run()` still drains in non-churn tests).
  sim::SimTime heartbeat_interval = sim::SimTime::zero();
  /// Heartbeat intervals without an ack before the parent is declared
  /// dead (the paper's two-miss rule).
  std::size_t missed_heartbeats_to_fail = 2;
  /// Adaptive failure detection (docs/ROBUSTNESS.md, "Flow control &
  /// adaptive detection"): derive the heartbeat-miss threshold and the
  /// NACK cadence from online per-edge loss / repair-time EWMAs instead
  /// of the fixed constants above.  `missed_heartbeats_to_fail` becomes
  /// the floor the estimator widens from.  Off by default — detection
  /// then uses exactly the configured constants, byte-identical.
  bool adaptive = false;
  /// NACK/retransmit reliability for group data on tree edges.
  DataReliabilityOptions reliability;
  /// Rendezvous replication: leased leadership with quorum handoff.
  ReplicationOptions replication;
};

/// Internal payload id of a stream chunk: the top bit marks the chunk
/// namespace (so chunk ids never collide with application payload ids),
/// the stream occupies the upper half and the chunk index the lower.
/// Streams are limited to 31 bits.
inline constexpr std::uint64_t chunk_payload_id(std::uint32_t stream,
                                                std::uint32_t chunk_id) {
  return (std::uint64_t{1} << 63) |
         (static_cast<std::uint64_t>(stream) << 32) | chunk_id;
}

inline constexpr std::uint32_t chunk_stream(std::uint64_t payload_id) {
  return static_cast<std::uint32_t>((payload_id >> 32) & 0x7FFFFFFFu);
}

inline constexpr std::uint32_t chunk_index(std::uint64_t payload_id) {
  return static_cast<std::uint32_t>(payload_id);
}

class GroupCastNode {
 public:
  using DataCallback =
      std::function<void(GroupId, std::uint64_t payload_id,
                         overlay::PeerId origin)>;
  /// Chunk delivery: the ChunkMsg carries stream / chunk_id / deadline /
  /// size; epoch and seq are zeroed (sequencing is edge-local transport
  /// detail, not application-visible).  `hops` holds the arrival depth.
  using ChunkCallback = std::function<void(GroupId, const ChunkMsg&)>;
  using SubscribeCallback = std::function<void(GroupId, bool success)>;

  GroupCastNode(overlay::PeerId self, Transport& transport,
                const overlay::OverlayGraph& graph, NodeOptions options,
                util::Rng& rng);
  ~GroupCastNode();

  GroupCastNode(const GroupCastNode&) = delete;
  GroupCastNode& operator=(const GroupCastNode&) = delete;

  /// Attaches to the transport.  Must be called before any other method.
  void start();
  /// Graceful detach: incoming messages stop being delivered, but messages
  /// this node already sent (e.g. a Leave fired just before stopping)
  /// still reach their peers.
  void stop();
  /// Ungraceful detach: in-flight messages to *and from* this node are
  /// dropped — the form of departure a fault plan injects.
  void crash();
  bool running() const { return running_; }

  overlay::PeerId id() const { return self_; }

  /// Becomes the rendezvous point of `group` and floods the advertisement.
  void create_group(GroupId group);

  /// Subscribes to `group`: reverse-path join if the advertisement is held,
  /// ripple search otherwise, with retries and rung escalation.  Outcome is
  /// reported via on_subscribe_result.
  void subscribe(GroupId group);

  /// Leaves the group.  A leaf detaches from its parent; a relay with
  /// children stays on the tree as a pure forwarder.
  void unsubscribe(GroupId group);

  /// Publishes a payload into the group's tree.  Requires being on the
  /// tree (subscribed, or the rendezvous).
  void publish(GroupId group, std::uint64_t payload_id);

  /// Publishes one stream chunk into the group's tree (streaming
  /// workloads).  Same tree-membership requirement as publish().  The
  /// chunk rides the reliable data plane when reliability is enabled and
  /// the fire-and-forget path otherwise; `deadline` is the absolute sim
  /// time after which delivery counts as late, and `payload_bytes` is the
  /// simulated chunk size (drives bandwidth pacing, no bytes carried).
  void publish_chunk(GroupId group, std::uint32_t stream,
                     std::uint32_t chunk_id, sim::SimTime deadline,
                     std::uint32_t payload_bytes);

  void on_data(DataCallback callback) { data_callback_ = std::move(callback); }
  void on_chunk(ChunkCallback callback) {
    chunk_callback_ = std::move(callback);
  }
  void on_subscribe_result(SubscribeCallback callback) {
    subscribe_callback_ = std::move(callback);
  }

  // ----------------------------------------------------------- inspection
  bool has_advertisement(GroupId group) const;
  bool is_subscribed(GroupId group) const;
  bool on_tree(GroupId group) const;
  /// Tree parent; self for the rendezvous.  Requires on_tree(group).
  overlay::PeerId tree_parent(GroupId group) const;
  std::vector<overlay::PeerId> tree_children(GroupId group) const;
  /// Depth on the tree (root = 0); kUnknownDepth when off the tree.
  std::uint32_t tree_depth(GroupId group) const;
  /// True while a subscribe / recovery ladder has an exchange in flight.
  bool exchange_pending(GroupId group) const;
  /// Payload entries currently held for retransmission on the directed
  /// edge to `peer` (0 when reliability is off or no such edge exists).
  std::size_t send_buffer_depth(GroupId group, overlay::PeerId peer) const;
  /// Payloads queued behind a closed flow-control window on the directed
  /// edge to `peer` (always 0 with flow control off).
  std::size_t pending_depth(GroupId group, overlay::PeerId peer) const;
  /// Heartbeat intervals without an ack before this node's parent on
  /// `group` is declared dead right now: the configured constant, or the
  /// adaptive widening derived from the measured miss rate.
  std::size_t effective_heartbeat_misses(GroupId group) const;
  /// The adaptive widening rule (docs/ROBUSTNESS.md): smallest miss count
  /// k with miss_ewma^k <= the false-positive target, clamped to
  /// [floor_misses, 12].  Pure; exposed for tests.
  static std::size_t adaptive_miss_threshold(double miss_ewma,
                                             std::size_t floor_misses);
  /// Sequence the reliable edge from `peer` expects next (0 when none).
  std::uint64_t expected_seq(GroupId group, overlay::PeerId peer) const;
  /// Estimated resident bytes of this node's protocol state: the object
  /// itself plus per-group dynamic state (children, dedup sets, reliable
  /// edge buffers/stashes).  Container book-keeping is approximated with
  /// a fixed per-entry overhead; feeds the bytes_per_peer gauge.
  std::size_t memory_bytes() const;

  // ------------------------------------------- replication inspection
  /// True if this node is in the group's replication member set (the
  /// rendezvous + its deterministic replicas); always false with
  /// ReplicationOptions off or before the node has heard of the group.
  bool replication_member(GroupId group) const;
  /// True while this member holds (believes it holds) the group lease.
  bool is_leaseholder(GroupId group) const;
  /// Highest committed leadership epoch this member knows (0 = none).
  std::uint32_t lease_epoch(GroupId group) const;
  /// Leader of lease_epoch (kNoPeer when none).
  overlay::PeerId lease_leader(GroupId group) const;
  /// Copy of this member's replication log, sorted by epoch.
  std::vector<LeaseRecord> lease_log(GroupId group) const;
  /// Rung-0 backup attach target learned from Join/Heartbeat acks
  /// (kNoPeer when replication is off or none was offered).
  overlay::PeerId backup_parent(GroupId group) const;

 private:
  /// Ladder rungs, tried in order (skipping inapplicable ones).  kBackup
  /// (the precomputed grandparent, ReplicationOptions only) is rung 0 —
  /// one message instead of a search, targeting sub-heartbeat orphan time.
  enum class Rung : std::uint8_t { kBackup, kAdvertParent, kRipple,
                                   kRendezvous };

  /// One payload held for retransmission (EdgeTx) or parked ahead of a
  /// gap (EdgeRx).
  struct BufferedPayload {
    std::uint64_t seq = 0;
    overlay::PeerId origin = overlay::kNoPeer;
    std::uint32_t hops = 0;  // provenance: tree depth of the copy
    std::uint64_t payload_id = 0;
    /// Stream-chunk descriptor: when `chunk` is set, payload_id encodes
    /// chunk_payload_id(stream, chunk_id) and the copy travels as a
    /// ChunkMsg (deadline + size preserved across buffering, parking,
    /// and retransmission).
    bool chunk = false;
    std::int64_t deadline_us = 0;
    std::uint32_t chunk_bytes = 0;
  };

  /// Sender half of one directed reliable edge.  The buffer holds
  /// contiguous sequences [front.seq, next_seq): pushes append next_seq
  /// and pops come off the front (cumulative ack or capacity), so a
  /// NACKed sequence is found by index, not search.
  struct EdgeTx {
    std::uint32_t epoch = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t cum_acked = 0;
    std::deque<BufferedPayload> buffer;
    sim::TimerHandle probe_timer;
    std::size_t probe_rounds = 0;
    std::uint64_t acked_at_last_probe = 0;
    /// Flow control: payloads waiting for window space (seq assigned at
    /// drain time, so wire sequences stay contiguous), and whether the
    /// receiver asked us to pause (its own downstream edge is blocked).
    std::deque<BufferedPayload> pending;
    bool peer_throttled = false;
    /// Lifetime peak of `buffer` on this directed edge; the
    /// kSendBufferHighWater counter mirrors it via delta increments.
    /// Survives tombstoning (like `epoch`), so re-incarnations only add
    /// new peaks beyond the old one.
    std::size_t high_water = 0;
  };

  /// Receiver half of one directed reliable edge.  `synced` flips on the
  /// first SeqSync from the sender; until then sequenced payloads are
  /// dropped (the sender's probe re-announces, so a lost sync only
  /// delays the edge).  `tail_next` is the sender's last announced
  /// next_seq — the evidence that exposes tail loss as a gap.
  struct EdgeRx {
    std::uint32_t epoch = 0;
    bool synced = false;
    std::uint64_t expected = 0;
    std::uint64_t tail_next = 0;
    std::map<std::uint64_t, BufferedPayload> stash;
    sim::TimerHandle nack_timer;
    std::size_t nack_rounds = 0;
    std::size_t delivered_since_ack = 0;
    /// When the current repair round's first NACK went out; feeds the
    /// NACK-to-repair histogram once in-order progress resumes.
    sim::SimTime last_nack_at;
    /// Adaptive detection (NodeOptions::adaptive): EWMA of the per-arrival
    /// gap indicator (1 = arrived out of order, 0 = in order) and of the
    /// measured NACK-to-repair time.  Purely observational when the flag
    /// is off (never updated, never read).
    double loss_ewma = 0.0;
    double repair_ewma_us = 0.0;
  };

  /// Per-member replication state (ReplicationOptions): the fixed member
  /// set, the committed epoch/leader view, the promise floor for takeover
  /// proposals, and the epoch log that reconciles on heal.  Inert (all
  /// defaults, no timers) unless this node is in the member set.
  struct ReplState {
    bool member = false;
    /// The group's original rendezvous point — the seed the member set is
    /// derived from, carried on every replication message so receivers
    /// can verify membership statelessly.
    overlay::PeerId origin = overlay::kNoPeer;
    /// {origin} + rendezvous_replicas(group, origin, ...), in derivation
    /// order; a member's takeover stagger rank is its index here.
    std::vector<overlay::PeerId> members;
    std::uint32_t epoch = 0;     // highest committed epoch known
    std::uint32_t promised = 0;  // highest epoch promised to a candidate
    overlay::PeerId leader = overlay::kNoPeer;
    bool leaseholder = false;
    sim::SimTime last_lease_seen;
    /// Committed leadership records, sorted by epoch (union-merged).
    std::vector<LeaseRecord> log;
    /// One in-flight quorum round (renewal, initial write, or handoff).
    ReliableExchange::Token round = ReliableExchange::kNoToken;
    std::uint32_t round_epoch = 0;
    bool round_is_handoff = false;
    sim::SimTime round_started;
    std::vector<overlay::PeerId> round_acked;  // unique acking members
    bool tick_scheduled = false;  // enrolled in the shared lease tick
    /// Candidate the `promised` epoch was granted to — a lost grant can be
    /// re-issued to the same candidate on retry, never to a rival.
    overlay::PeerId promised_to = overlay::kNoPeer;
  };

  struct GroupState {
    overlay::PeerId rendezvous = overlay::kNoPeer;
    overlay::PeerId advert_parent = overlay::kNoPeer;  // self at rendezvous
    bool has_advert = false;
    bool subscribed = false;
    bool on_tree = false;
    bool search_pending = false;
    overlay::PeerId tree_parent = overlay::kNoPeer;
    std::uint32_t depth = kUnknownDepth;
    std::vector<overlay::PeerId> children;
    // Flat open-addressing dedup tables: one 8-byte slot per entry
    // instead of a heap node each (util/flat_set.h); these grow with
    // every payload seen, so they dominate a long run's per-peer bytes.
    util::FlatSet64 seen_payloads;
    util::FlatSet64 seen_queries;  // origin<<32 | round

    // --- retry ladder (subscribe + orphan recovery share it) ---
    ReliableExchange::Token exchange = ReliableExchange::kNoToken;
    Rung rung = Rung::kAdvertParent;
    std::uint32_t search_round = 0;
    /// A peer the ladder must not target (the parent just declared dead).
    overlay::PeerId avoid = overlay::kNoPeer;
    /// Orphan cycle guard: only attach under peers of depth <= this.
    /// kUnknownDepth (the default) accepts any attach point.
    std::uint32_t attach_depth_limit = kUnknownDepth;
    bool recovering = false;      // ladder re-attaches an orphaned position
    bool dissolved_once = false;  // second terminal give-up is final
    std::size_t ladder_attempts = 0;  // sends since the ladder started
    /// Joins accepted while not yet on the tree; acked after attaching.
    std::vector<overlay::PeerId> pending_acks;

    // --- tree-edge heartbeats ---
    bool heartbeat_scheduled = false;
    sim::SimTime parent_last_ack;
    std::unordered_map<overlay::PeerId, sim::SimTime> child_last_seen;
    /// Adaptive detection: EWMA of per-window heartbeat-ack misses toward
    /// the current parent (sampled each tick a probe was outstanding),
    /// and the probe bookkeeping that feeds it.  Reset on re-attach.
    double hb_miss_ewma = 0.0;
    sim::SimTime last_hb_probe;
    bool hb_probe_outstanding = false;

    // --- flow control ---
    /// Outbound edges of this group whose window is currently closed
    /// (pending queue non-empty); the 0 -> 1 transition throttles the
    /// upstream source, the return to 0 resumes it.
    std::size_t blocked_edges = 0;
    sim::SimTime throttled_since;

    // --- reliable data plane (ordered so teardown is deterministic) ---
    std::map<overlay::PeerId, EdgeTx> tx_edges;
    std::map<overlay::PeerId, EdgeRx> rx_edges;

    // --- rendezvous replication (ReplicationOptions) ---
    ReplState repl;
    /// Rung-0 attach target: this node's grandparent, as last offered on
    /// a Join/Heartbeat ack (kNoPeer with replication off).
    overlay::PeerId backup_parent = overlay::kNoPeer;
  };

  /// Shared teardown behind stop() / crash().
  void detach(DetachMode mode);

  void handle(const Envelope& envelope);
  void handle_advertise(const Envelope& envelope, const AdvertiseMsg& msg);
  void handle_join(const Envelope& envelope, const JoinMsg& msg);
  void handle_join_ack(const Envelope& envelope, const JoinAckMsg& msg);
  void handle_ripple_query(const Envelope& envelope,
                           const RippleQueryMsg& msg);
  void handle_ripple_hit(const Envelope& envelope, const RippleHitMsg& msg);
  void handle_data(const Envelope& envelope, const DataMsg& msg);
  /// Chunk arrival: epoch 0 is the fire-and-forget path (mirrors
  /// handle_data); epoch >= 1 joins the edge's sequenced stream exactly
  /// like ReliableDataMsg (reliable-edge epochs start at 1).
  void handle_chunk(const Envelope& envelope, const ChunkMsg& msg);
  void handle_leave(const Envelope& envelope, const LeaveMsg& msg);
  void handle_heartbeat(const Envelope& envelope, const HeartbeatMsg& msg);
  void handle_heartbeat_ack(const Envelope& envelope,
                            const HeartbeatAckMsg& msg);
  void handle_parent_lost(const Envelope& envelope, const ParentLostMsg& msg);
  void handle_reliable_data(const Envelope& envelope,
                            const ReliableDataMsg& msg);
  void handle_data_nack(const Envelope& envelope, const DataNackMsg& msg);
  void handle_data_ack(const Envelope& envelope, const DataAckMsg& msg);
  void handle_seq_sync(const Envelope& envelope, const SeqSyncMsg& msg);
  void handle_flow_control(const Envelope& envelope,
                           const FlowControlMsg& msg);
  void handle_lease(const Envelope& envelope, const LeaseMsg& msg);
  void handle_lease_ack(const Envelope& envelope, const LeaseAckMsg& msg);
  void handle_replicate(const Envelope& envelope, const ReplicateMsg& msg);
  void handle_replicate_ack(const Envelope& envelope,
                            const ReplicateAckMsg& msg);
  void handle_handoff(const Envelope& envelope, const HandoffMsg& msg);

  // --- reliable data plane ---
  /// Accepted payload (any path): dedup by (origin, id), deliver to the
  /// application, and forward along the tree away from `via`.  `hops` is
  /// the tree depth this copy traversed (provenance + hop histogram).
  void deliver_payload(GroupId group, GroupState& state, overlay::PeerId via,
                       const BufferedPayload& payload);
  /// Epoch/sequence acceptance shared by ReliableDataMsg and sequenced
  /// ChunkMsg arrivals: duplicate suppression, in-order delivery, gap
  /// parking, and NACK scheduling.
  void accept_sequenced(const Envelope& envelope, GroupId group,
                        GroupState& state, std::uint32_t epoch,
                        std::uint64_t seq, const BufferedPayload& payload);
  /// The wire form of one payload copy: ChunkMsg for chunks (epoch 0 =
  /// fire-and-forget), otherwise DataMsg (epoch 0) or ReliableDataMsg.
  MessageBody payload_msg(GroupId group, std::uint32_t epoch,
                          std::uint64_t seq,
                          const BufferedPayload& payload) const;
  /// Sends one payload toward `to`: sequenced + buffered when reliability
  /// is on, the legacy fire-and-forget DataMsg otherwise.  `hops` is the
  /// depth the copy will have on arrival.
  void send_data(GroupId group, GroupState& state, overlay::PeerId to,
                 const BufferedPayload& payload);
  /// (Re)initializes the outbound edge to `peer`: bumps the epoch, resets
  /// the sequence space, drops the buffer, and announces via SeqSync —
  /// the join-handshake half of reattach re-sync.
  void reset_tx_edge(GroupId group, GroupState& state, overlay::PeerId peer);
  /// Drops both directions of the reliable edge to `peer` (edge torn
  /// down: leave, prune, or recovery), cancelling their timers.
  void drop_edge_state(GroupState& state, overlay::PeerId peer);
  /// Arms the batched/jittered NACK timer for the edge from `peer`
  /// unless one is already pending (the suppression rule).
  void maybe_schedule_nack(GroupId group, overlay::PeerId peer, EdgeRx& rx);
  /// Arms the sender-side ack-overdue probe unless already pending.
  void maybe_schedule_probe(GroupId group, overlay::PeerId peer, EdgeTx& tx);
  void on_nack_timer(GroupId group, overlay::PeerId peer);
  void on_probe_timer(GroupId group, overlay::PeerId peer);
  static void nack_thunk(void* context, std::uint64_t packed);
  static void probe_thunk(void* context, std::uint64_t packed);
  /// Drains in-order payloads from the stash after `expected` advanced;
  /// sends the cumulative ack when the cadence is due.
  void drain_rx(GroupId group, GroupState& state, overlay::PeerId from,
                EdgeRx& rx);

  // --- flow control (all no-ops unless reliability.flow_control) ---
  /// Assigns the next sequence, buffers, and transmits one payload on an
  /// open edge (the tail half of send_data, shared with drain_tx).
  void transmit_now(GroupId group, overlay::PeerId to, EdgeTx& tx,
                    const BufferedPayload& payload);
  /// Parks a payload behind a closed window; the edge's first parked
  /// payload may throttle the upstream source.
  void queue_blocked(GroupId group, GroupState& state, overlay::PeerId to,
                     EdgeTx& tx, const BufferedPayload& payload);
  /// Moves parked payloads onto the wire while the window has room; a
  /// fully drained edge may resume the upstream source.
  void drain_tx(GroupId group, GroupState& state, overlay::PeerId to,
                EdgeTx& tx);
  /// Drops an edge's parked payloads without draining them (edge torn
  /// down or given up): fixes the blocked-edge accounting silently.
  void discard_pending(GroupState& state, EdgeTx& tx);
  /// Sends the throttle (or resume) signal to this node's data source —
  /// the tree parent — if it has one.
  void signal_upstream(GroupId group, GroupState& state, bool throttled);

  // --- adaptive failure detection (NodeOptions::adaptive) ---
  /// EWMA update toward `sample` with the fixed alpha.
  static void ewma_update(double& estimate, double sample);
  /// NACK delay / retry cadence for one rx edge: the configured constants,
  /// shortened (delay) or repair-time-paced (retry) when adaptive.
  sim::SimTime nack_delay_for(const EdgeRx& rx) const;
  sim::SimTime nack_retry_for(const EdgeRx& rx) const;
  /// `base` stretched by a uniform factor in [1, 1 + jitter) drawn from
  /// this node's RNG stream (the reliable_exchange jitter idiom).
  sim::SimTime jittered(sim::SimTime base, double jitter);

  // --- retry ladder ---
  /// Starts (or restarts) the ladder at its first applicable rung.
  void start_ladder(GroupId group);
  /// Opens the reliable exchange for the current rung.
  void run_rung(GroupId group);
  /// Current rung exhausted its attempts: next rung or terminal failure.
  void advance_rung(GroupId group);
  void terminal_failure(GroupId group);
  /// True if the ladder may attach under `target` at `target_depth`.
  bool attach_allowed(const GroupState& state, overlay::PeerId target,
                      std::uint32_t target_depth) const;
  /// Successful attach bookkeeping shared by every ack path.  `backup` is
  /// the grandparent the acking parent offered for rung 0 (kNoPeer when
  /// replication is off or the parent is the root).
  void complete_attach(GroupId group, overlay::PeerId parent,
                       std::uint32_t parent_depth,
                       overlay::PeerId backup = overlay::kNoPeer);

  // --- heartbeats / failure detection ---
  /// Enrols `group` in the shared per-node heartbeat tick (arming the
  /// node's single wheel timer if it isn't already pending).
  void maybe_schedule_heartbeat(GroupId group);
  /// The shared tick: services every enrolled group in group-id order.
  /// One cancellable timer per node replaces one closure per group per
  /// interval (ROADMAP: "batch per-node wheels").
  void node_heartbeat_tick();
  static void heartbeat_thunk(void* context, std::uint64_t);
  void heartbeat_tick(GroupId group);
  /// The parent is gone: become an orphan and re-run the ladder.
  void begin_recovery(GroupId group, overlay::PeerId dead_parent);

  // --- rendezvous replication (all no-ops unless replication.enabled) ---
  /// Derives the member set for (`group`, `rendezvous`) and, if this node
  /// belongs to it, initializes its ReplState (baseline epoch-1 record)
  /// and enrols it in the lease tick.  Returns the member flag.
  bool ensure_repl_member(GroupId group, overlay::PeerId rendezvous);
  /// The grandparent this node offers children as a rung-0 backup:
  /// its own tree parent, or kNoPeer when it is the root / replication
  /// is off (a root's child has no live grandparent to fall back on).
  overlay::PeerId offered_backup(const GroupState& state) const;
  /// Enrols `group` in the shared per-node lease tick (heartbeat-wheel
  /// pattern: one cancellable timer services every replicated group).
  void maybe_schedule_repl_tick(GroupId group);
  void node_repl_tick();
  static void repl_thunk(void* context, std::uint64_t);
  void repl_tick(GroupId group);
  /// Opens a quorum round: a lease renewal / initial-write broadcast, or
  /// a takeover proposal for `epoch` (round_is_handoff).
  void start_repl_round(GroupId group, bool handoff, std::uint32_t epoch);
  /// Records one member's ack for the open round; commits on majority.
  void note_round_ack(GroupId group, overlay::PeerId from,
                      std::uint32_t acked_epoch);
  /// Settles the open round once acks (+ self) reach a majority — also
  /// called right after opening, which is what lets a degenerate
  /// one-member set commit on its own vote.
  void maybe_commit_round(GroupId group);
  /// Majority granted the takeover: adopt the epoch, become leaseholder
  /// and acting tree root, append + push the new record.
  void commit_handoff(GroupId group);
  /// Inserts one record into the epoch log (union merge); a mismatched
  /// leader for an existing epoch counts kEpochConflicts and keeps the
  /// incumbent record.
  void merge_lease_record(ReplState& repl, const LeaseRecord& record);
  /// Adopts a higher committed (epoch, leader) view: steps down if this
  /// node was leaseholder, and rejoins the tree under the new structure
  /// if it was the acting root (the heal reconciliation step).
  void adopt_epoch(GroupId group, std::uint32_t epoch,
                   overlay::PeerId leader);
  /// Pushes this member's full log to `to` when `head`/`size` show the
  /// peer has diverged (anti-entropy sweep).
  void maybe_push_log(GroupId group, overlay::PeerId to,
                      std::uint32_t peer_head, std::uint32_t peer_size);
  /// Makes this node the group's acting tree root (leaving any current
  /// parent, refreshing children) — the tree half of a committed handoff.
  void root_self(GroupId group);

  /// Forwarding subset for an advertisement, per the configured scheme.
  std::vector<overlay::PeerId> select_forward_targets(
      overlay::PeerId exclude);

  /// Memoized SSA selection inputs for one `exclude` value: the filtered
  /// neighbour pool and (for kSsaUtility) the Eq. 1-5 preference vector.
  /// Valid while the graph's neighbour generation for this node matches;
  /// neighbour add/remove/churn invalidates by bumping the generation.
  /// Caching the *computed vectors* (not algebraic denominator updates)
  /// keeps the floating-point results and the RNG stream bit-identical
  /// to the uncached path.
  struct SelectionCacheEntry {
    overlay::PeerId exclude = overlay::kNoPeer;
    std::uint64_t generation = 0;
    std::vector<overlay::PeerId> pool;
    std::vector<double> prefs;  // empty for kNssa / kSsaRandom
  };

  GroupState& state_of(GroupId group) { return groups_[group]; }
  double resource_level();
  sim::SimTime now() const;

  overlay::PeerId self_;
  Transport* transport_;
  const overlay::OverlayGraph* graph_;
  NodeOptions options_;
  util::Rng rng_;
  ReliableExchange exchange_;
  bool running_ = false;
  std::optional<double> cached_resource_level_;
  /// Small (typically 1-2 distinct `exclude` values) linear-probe cache.
  std::vector<SelectionCacheEntry> selection_cache_;
  /// Groups enrolled in the shared heartbeat tick, kept in id order so the
  /// tick services them deterministically.
  std::vector<GroupId> heartbeat_groups_;
  /// Reused tick-servicing buffer (swapped with heartbeat_groups_ each
  /// tick so re-enrolment during the tick is safe without allocating).
  std::vector<GroupId> heartbeat_scratch_;
  sim::TimerHandle heartbeat_timer_;
  /// Quorum rounds run on their own exchange so the retry cadence can
  /// follow the lease timing instead of the control-plane policy.
  /// Constructed only with replication enabled — constructing it splits
  /// the node's RNG stream, which must not happen when the flag is off.
  std::optional<ReliableExchange> repl_exchange_;
  /// Groups enrolled in the shared lease tick (heartbeat-wheel pattern).
  std::vector<GroupId> repl_groups_;
  std::vector<GroupId> repl_scratch_;
  sim::TimerHandle repl_timer_;
  std::unordered_map<GroupId, GroupState> groups_;
  DataCallback data_callback_;
  ChunkCallback chunk_callback_;
  SubscribeCallback subscribe_callback_;
};

}  // namespace groupcast::core
