// GroupCastNode — the per-peer middleware runtime.
//
// While AdvertisementEngine / SubscriptionProtocol compute whole-overlay
// outcomes centrally (cheap for the Section 4 parameter sweeps), this class
// is the *deployable* form of the same protocols: every peer runs one
// GroupCastNode, all coordination happens through typed messages over the
// Transport, and no node touches another node's state.  Applications sit
// on top of exactly this API:
//
//   GroupCastNode node(self, transport, graph, options, rng);
//   node.start();
//   node.on_data([](GroupId g, std::uint64_t id, PeerId origin) { ... });
//   node.subscribe(group);
//   node.publish(group, payload_id);
//
// Control-plane reliability (docs/ROBUSTNESS.md): joins and ripple
// searches run through a ReliableExchange retry ladder — join the advert
// parent, escalate to ripple re-search with widening TTL, then to the
// rendezvous point and its deterministic replicas — so a lost JoinAck
// delays a subscription instead of stranding it.  Tree-edge heartbeats
// (off by default; enable via NodeOptions::heartbeat_interval) detect dead
// parents with the paper's two-miss rule and re-run the same ladder to
// re-attach the orphaned subtree, guarded against cycles by attach-point
// depths carried on JoinAck / RippleHit / HeartbeatAck.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/advertisement.h"
#include "core/reliable_exchange.h"
#include "core/transport.h"
#include "overlay/graph.h"

namespace groupcast::core {

/// Sentinel depth of a node that is not (or not yet) on a tree.
inline constexpr std::uint32_t kUnknownDepth = 0xFFFFFFFFu;

struct NodeOptions {
  /// Scheme + fan-out the node uses when forwarding advertisements.
  AdvertisementOptions advertisement;
  /// TTL of the first ripple search; each retry widens it by one hop.
  std::size_t ripple_ttl = 2;
  /// Per-attempt timeout / backoff / attempt budget of every control-plane
  /// exchange (one exchange per ladder rung).
  RetryPolicy retry;
  /// Escalate across ladder rungs (advert parent -> ripple -> rendezvous
  /// + replicas).  Off reproduces the legacy single-strategy behaviour.
  bool escalation = true;
  /// Rendezvous replicas tried when the rendezvous itself is unresponsive.
  std::size_t rendezvous_replicas = 2;
  /// Tree-edge heartbeat period; zero() disables liveness probing (the
  /// default, so `Simulator::run()` still drains in non-churn tests).
  sim::SimTime heartbeat_interval = sim::SimTime::zero();
  /// Heartbeat intervals without an ack before the parent is declared
  /// dead (the paper's two-miss rule).
  std::size_t missed_heartbeats_to_fail = 2;
};

class GroupCastNode {
 public:
  using DataCallback =
      std::function<void(GroupId, std::uint64_t payload_id,
                         overlay::PeerId origin)>;
  using SubscribeCallback = std::function<void(GroupId, bool success)>;

  GroupCastNode(overlay::PeerId self, Transport& transport,
                const overlay::OverlayGraph& graph, NodeOptions options,
                util::Rng& rng);
  ~GroupCastNode();

  GroupCastNode(const GroupCastNode&) = delete;
  GroupCastNode& operator=(const GroupCastNode&) = delete;

  /// Attaches to the transport.  Must be called before any other method.
  void start();
  /// Graceful detach: incoming messages stop being delivered, but messages
  /// this node already sent (e.g. a Leave fired just before stopping)
  /// still reach their peers.
  void stop();
  /// Ungraceful detach: in-flight messages to *and from* this node are
  /// dropped — the form of departure a fault plan injects.
  void crash();
  bool running() const { return running_; }

  overlay::PeerId id() const { return self_; }

  /// Becomes the rendezvous point of `group` and floods the advertisement.
  void create_group(GroupId group);

  /// Subscribes to `group`: reverse-path join if the advertisement is held,
  /// ripple search otherwise, with retries and rung escalation.  Outcome is
  /// reported via on_subscribe_result.
  void subscribe(GroupId group);

  /// Leaves the group.  A leaf detaches from its parent; a relay with
  /// children stays on the tree as a pure forwarder.
  void unsubscribe(GroupId group);

  /// Publishes a payload into the group's tree.  Requires being on the
  /// tree (subscribed, or the rendezvous).
  void publish(GroupId group, std::uint64_t payload_id);

  void on_data(DataCallback callback) { data_callback_ = std::move(callback); }
  void on_subscribe_result(SubscribeCallback callback) {
    subscribe_callback_ = std::move(callback);
  }

  // ----------------------------------------------------------- inspection
  bool has_advertisement(GroupId group) const;
  bool is_subscribed(GroupId group) const;
  bool on_tree(GroupId group) const;
  /// Tree parent; self for the rendezvous.  Requires on_tree(group).
  overlay::PeerId tree_parent(GroupId group) const;
  std::vector<overlay::PeerId> tree_children(GroupId group) const;
  /// Depth on the tree (root = 0); kUnknownDepth when off the tree.
  std::uint32_t tree_depth(GroupId group) const;
  /// True while a subscribe / recovery ladder has an exchange in flight.
  bool exchange_pending(GroupId group) const;

 private:
  /// Ladder rungs, tried in order (skipping inapplicable ones).
  enum class Rung : std::uint8_t { kAdvertParent, kRipple, kRendezvous };

  struct GroupState {
    overlay::PeerId rendezvous = overlay::kNoPeer;
    overlay::PeerId advert_parent = overlay::kNoPeer;  // self at rendezvous
    bool has_advert = false;
    bool subscribed = false;
    bool on_tree = false;
    bool search_pending = false;
    overlay::PeerId tree_parent = overlay::kNoPeer;
    std::uint32_t depth = kUnknownDepth;
    std::vector<overlay::PeerId> children;
    std::unordered_set<std::uint64_t> seen_payloads;
    std::unordered_set<std::uint64_t> seen_queries;  // origin<<32 | round

    // --- retry ladder (subscribe + orphan recovery share it) ---
    ReliableExchange::Token exchange = ReliableExchange::kNoToken;
    Rung rung = Rung::kAdvertParent;
    std::uint32_t search_round = 0;
    /// A peer the ladder must not target (the parent just declared dead).
    overlay::PeerId avoid = overlay::kNoPeer;
    /// Orphan cycle guard: only attach under peers of depth <= this.
    /// kUnknownDepth (the default) accepts any attach point.
    std::uint32_t attach_depth_limit = kUnknownDepth;
    bool recovering = false;      // ladder re-attaches an orphaned position
    bool dissolved_once = false;  // second terminal give-up is final
    std::size_t ladder_attempts = 0;  // sends since the ladder started
    /// Joins accepted while not yet on the tree; acked after attaching.
    std::vector<overlay::PeerId> pending_acks;

    // --- tree-edge heartbeats ---
    bool heartbeat_scheduled = false;
    sim::SimTime parent_last_ack;
    std::unordered_map<overlay::PeerId, sim::SimTime> child_last_seen;
  };

  /// Shared teardown behind stop() / crash().
  void detach(DetachMode mode);

  void handle(const Envelope& envelope);
  void handle_advertise(const Envelope& envelope, const AdvertiseMsg& msg);
  void handle_join(const Envelope& envelope, const JoinMsg& msg);
  void handle_join_ack(const Envelope& envelope, const JoinAckMsg& msg);
  void handle_ripple_query(const Envelope& envelope,
                           const RippleQueryMsg& msg);
  void handle_ripple_hit(const Envelope& envelope, const RippleHitMsg& msg);
  void handle_data(const Envelope& envelope, const DataMsg& msg);
  void handle_leave(const Envelope& envelope, const LeaveMsg& msg);
  void handle_heartbeat(const Envelope& envelope, const HeartbeatMsg& msg);
  void handle_heartbeat_ack(const Envelope& envelope,
                            const HeartbeatAckMsg& msg);
  void handle_parent_lost(const Envelope& envelope, const ParentLostMsg& msg);

  // --- retry ladder ---
  /// Starts (or restarts) the ladder at its first applicable rung.
  void start_ladder(GroupId group);
  /// Opens the reliable exchange for the current rung.
  void run_rung(GroupId group);
  /// Current rung exhausted its attempts: next rung or terminal failure.
  void advance_rung(GroupId group);
  void terminal_failure(GroupId group);
  /// True if the ladder may attach under `target` at `target_depth`.
  bool attach_allowed(const GroupState& state, overlay::PeerId target,
                      std::uint32_t target_depth) const;
  /// Successful attach bookkeeping shared by every ack path.
  void complete_attach(GroupId group, overlay::PeerId parent,
                       std::uint32_t parent_depth);

  // --- heartbeats / failure detection ---
  /// Enrols `group` in the shared per-node heartbeat tick (arming the
  /// node's single wheel timer if it isn't already pending).
  void maybe_schedule_heartbeat(GroupId group);
  /// The shared tick: services every enrolled group in group-id order.
  /// One cancellable timer per node replaces one closure per group per
  /// interval (ROADMAP: "batch per-node wheels").
  void node_heartbeat_tick();
  static void heartbeat_thunk(void* context, std::uint64_t);
  void heartbeat_tick(GroupId group);
  /// The parent is gone: become an orphan and re-run the ladder.
  void begin_recovery(GroupId group, overlay::PeerId dead_parent);

  /// Forwarding subset for an advertisement, per the configured scheme.
  std::vector<overlay::PeerId> select_forward_targets(
      overlay::PeerId exclude);

  /// Memoized SSA selection inputs for one `exclude` value: the filtered
  /// neighbour pool and (for kSsaUtility) the Eq. 1-5 preference vector.
  /// Valid while the graph's neighbour generation for this node matches;
  /// neighbour add/remove/churn invalidates by bumping the generation.
  /// Caching the *computed vectors* (not algebraic denominator updates)
  /// keeps the floating-point results and the RNG stream bit-identical
  /// to the uncached path.
  struct SelectionCacheEntry {
    overlay::PeerId exclude = overlay::kNoPeer;
    std::uint64_t generation = 0;
    std::vector<overlay::PeerId> pool;
    std::vector<double> prefs;  // empty for kNssa / kSsaRandom
  };

  GroupState& state_of(GroupId group) { return groups_[group]; }
  double resource_level();
  sim::SimTime now() const;

  overlay::PeerId self_;
  Transport* transport_;
  const overlay::OverlayGraph* graph_;
  NodeOptions options_;
  util::Rng rng_;
  ReliableExchange exchange_;
  bool running_ = false;
  std::optional<double> cached_resource_level_;
  /// Small (typically 1-2 distinct `exclude` values) linear-probe cache.
  std::vector<SelectionCacheEntry> selection_cache_;
  /// Groups enrolled in the shared heartbeat tick, kept in id order so the
  /// tick services them deterministically.
  std::vector<GroupId> heartbeat_groups_;
  /// Reused tick-servicing buffer (swapped with heartbeat_groups_ each
  /// tick so re-enrolment during the tick is safe without allocating).
  std::vector<GroupId> heartbeat_scratch_;
  sim::TimerHandle heartbeat_timer_;
  std::unordered_map<GroupId, GroupState> groups_;
  DataCallback data_callback_;
  SubscribeCallback subscribe_callback_;
};

}  // namespace groupcast::core
