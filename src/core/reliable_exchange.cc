#include "core/reliable_exchange.h"

#include <algorithm>
#include <cmath>

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

ReliableExchange::ReliableExchange(sim::Simulator& simulator,
                                   overlay::PeerId owner, RetryPolicy policy,
                                   util::Rng& rng)
    : simulator_(&simulator),
      owner_(owner),
      policy_(policy),
      rng_(rng.split()) {
  GC_REQUIRE(policy_.max_attempts >= 1);
  GC_REQUIRE(policy_.backoff >= 1.0);
  GC_REQUIRE(policy_.jitter >= 0.0);
  GC_REQUIRE(policy_.base_timeout > sim::SimTime::zero());
  GC_REQUIRE(policy_.max_timeout >= policy_.base_timeout);
}

sim::SimTime ReliableExchange::backoff_timeout(std::size_t attempt) const {
  const double scaled =
      static_cast<double>(policy_.base_timeout.as_micros()) *
      std::pow(policy_.backoff, static_cast<double>(attempt));
  const double capped = std::min(
      scaled, static_cast<double>(policy_.max_timeout.as_micros()));
  return sim::SimTime::micros(static_cast<std::int64_t>(capped));
}

ReliableExchange::Token ReliableExchange::begin(SendFn send,
                                                GiveUpFn give_up) {
  GC_REQUIRE(send != nullptr);
  const Token token = next_token_++;
  entries_.emplace(token, Entry{std::move(send), std::move(give_up), 0});
  fire(token);
  return token;
}

void ReliableExchange::fire(Token token) {
  const auto it = entries_.find(token);
  if (it == entries_.end()) return;
  const auto attempt = it->second.attempt;
  // Arm before sending: the send callback may settle the exchange
  // synchronously (e.g. a loop-free in-process shortcut).
  arm_timeout(token, attempt);
  // Copy out so a settle()/cancel() from inside the callback cannot
  // destroy the function object mid-call.
  const SendFn send = it->second.send;
  send(attempt);
}

void ReliableExchange::arm_timeout(Token token, std::size_t attempt) {
  // One jitter draw per armed attempt keeps the RNG stream aligned with
  // the retry schedule regardless of when responses arrive.
  const double stretch = 1.0 + policy_.jitter * rng_.uniform();
  const auto timeout = sim::SimTime::micros(static_cast<std::int64_t>(
      static_cast<double>(backoff_timeout(attempt).as_micros()) * stretch));
  GC_REQUIRE(token < (Token{1} << 56) && attempt < 256);
  simulator_->schedule_timer(timeout, &ReliableExchange::timeout_thunk, this,
                             token | (static_cast<Token>(attempt) << 56));
}

void ReliableExchange::timeout_thunk(void* context, std::uint64_t packed) {
  static_cast<ReliableExchange*>(context)->on_timeout(
      packed & ((Token{1} << 56) - 1),
      static_cast<std::size_t>(packed >> 56));
}

void ReliableExchange::on_timeout(Token token, std::size_t attempt) {
  const auto it = entries_.find(token);
  if (it == entries_.end()) return;       // settled or cancelled
  if (it->second.attempt != attempt) return;  // stale timer
  if (attempt + 1 >= policy_.max_attempts) {
    const GiveUpFn give_up = std::move(it->second.give_up);
    entries_.erase(it);
    trace::counters().incr(owner_, trace::CounterId::kControlGiveups);
    if (give_up) give_up();
    return;
  }
  it->second.attempt = attempt + 1;
  trace::counters().incr(owner_, trace::CounterId::kControlRetries);
  fire(token);
}

bool ReliableExchange::settle(Token token) {
  return entries_.erase(token) != 0;
}

void ReliableExchange::cancel(Token token) { entries_.erase(token); }

void ReliableExchange::cancel_all() { entries_.clear(); }

}  // namespace groupcast::core
