// Request–response reliability for control-plane exchanges.
//
// The Transport is fire-and-forget; this wrapper gives a node's control
// messages (JOIN, ripple search, advertise refresh) at-least-once attempt
// semantics: each exchange re-fires its send callback on a per-attempt
// timeout with capped exponential backoff and deterministic RNG-stream
// jitter, until a response settles it or the attempt budget runs out and
// the give-up callback fires.  The exchange does not know message types —
// the owner supplies a send closure per attempt and settles the token when
// whatever it considers a response arrives — so one mechanism covers every
// request–response pattern in the protocol.
//
// Determinism: the jitter stream is split off the owning node's RNG at
// construction, so a run's retry schedule is a pure function of the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "overlay/population.h"
#include "sim/simulator.h"

namespace groupcast::core {

struct RetryPolicy {
  /// Timeout of the first attempt.
  sim::SimTime base_timeout = sim::SimTime::seconds(1.0);
  /// Multiplier applied per attempt (capped by max_timeout).
  double backoff = 2.0;
  sim::SimTime max_timeout = sim::SimTime::seconds(8.0);
  /// Each timeout is stretched by a uniform factor in [1, 1 + jitter).
  double jitter = 0.1;
  /// Total attempts (the first send included) before giving up.
  std::size_t max_attempts = 3;
};

class ReliableExchange {
 public:
  using Token = std::uint64_t;
  static constexpr Token kNoToken = 0;

  /// Transmits attempt `attempt` (0-based) of the exchange.
  using SendFn = std::function<void(std::size_t attempt)>;
  /// Fired once when every attempt has timed out unanswered.
  using GiveUpFn = std::function<void()>;

  /// `owner` attributes the retry/give-up counters; `rng` is split once
  /// for the jitter stream.
  ReliableExchange(sim::Simulator& simulator, overlay::PeerId owner,
                   RetryPolicy policy, util::Rng& rng);

  /// Starts an exchange: fires attempt 0 immediately and arms its timeout.
  Token begin(SendFn send, GiveUpFn give_up);

  /// A response arrived; stops the retry clock.  Returns false if the
  /// token was not pending (already settled, cancelled, or given up).
  bool settle(Token token);

  /// Abandons an exchange without invoking its give-up callback.
  void cancel(Token token);

  /// Abandons every pending exchange (node shutdown).
  void cancel_all();

  bool pending(Token token) const { return entries_.count(token) != 0; }
  std::size_t in_flight() const { return entries_.size(); }

  const RetryPolicy& policy() const { return policy_; }

  /// Backoff before jitter: min(base * backoff^attempt, max_timeout).
  sim::SimTime backoff_timeout(std::size_t attempt) const;

 private:
  struct Entry {
    SendFn send;
    GiveUpFn give_up;
    std::size_t attempt = 0;
  };

  void fire(Token token);
  void arm_timeout(Token token, std::size_t attempt);
  void on_timeout(Token token, std::size_t attempt);
  /// Timeout dispatch through the simulator's fixed-signature timer path
  /// (no per-attempt closure allocation): the argument packs the attempt
  /// number into the top byte of the token, which caps tokens at 2^56 —
  /// far above any realistic exchange count.
  static void timeout_thunk(void* context, std::uint64_t packed);

  sim::Simulator* simulator_;
  overlay::PeerId owner_;
  RetryPolicy policy_;
  util::Rng rng_;
  Token next_token_ = 1;
  std::unordered_map<Token, Entry> entries_;
};

}  // namespace groupcast::core
