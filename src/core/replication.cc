#include "core/replication.h"

#include <algorithm>

#include "util/require.h"
#include "util/rng.h"

namespace groupcast::core {

std::vector<overlay::PeerId> rendezvous_replicas(std::uint32_t group,
                                                 overlay::PeerId primary,
                                                 std::size_t population,
                                                 std::size_t count,
                                                 const LivenessFilter& alive) {
  GC_REQUIRE(population > 0);
  GC_REQUIRE(count < population);
  std::vector<overlay::PeerId> replicas;
  if (population <= 1 || count == 0) return replicas;
  // splitmix64 over (group, probe index) — stateless, so every node
  // derives the identical sequence.  Dead candidates are skipped in probe
  // order, so two nodes with the same liveness view agree on the result.
  // The probe budget bounds the walk when fewer than `count` live peers
  // exist (every peer is expected within ~population·ln(population)
  // probes; 16x that margin makes a short result a certainty statement,
  // not a sampling accident).
  std::uint64_t state =
      0x9E3779B97F4A7C15ULL ^ (static_cast<std::uint64_t>(group) << 1);
  std::size_t probes_left = 16 * population + 64;
  while (replicas.size() < count && probes_left-- > 0) {
    const auto candidate = static_cast<overlay::PeerId>(
        util::splitmix64(state) % population);
    if (candidate == primary) continue;
    if (alive && !alive(candidate)) continue;
    if (std::find(replicas.begin(), replicas.end(), candidate) !=
        replicas.end()) {
      continue;
    }
    replicas.push_back(candidate);
  }
  return replicas;
}

ReplicatedTree::ReplicatedTree(const overlay::PeerPopulation& population,
                               const overlay::OverlayGraph& graph,
                               const AdvertisementState& advert,
                               SpanningTree& tree)
    : population_(&population), tree_(&tree) {
  for (const auto node : tree.nodes()) {
    if (node == tree.root()) continue;
    const auto primary = tree.parent(node);
    // Candidates: overlay neighbours that hold the advertisement (they can
    // reach the tree), excluding the primary parent; prefer the closest by
    // coordinate distance.
    std::vector<overlay::PeerId> holders;
    for (const auto nbr : graph.neighbors(node)) {
      if (nbr == primary) continue;
      if (advert.received(nbr)) holders.push_back(nbr);
    }
    if (holders.empty()) continue;
    std::sort(holders.begin(), holders.end(),
              [&](overlay::PeerId a, overlay::PeerId b) {
                return population.coord_distance_ms(node, a) <
                       population.coord_distance_ms(node, b);
              });
    // Prefer the closest candidate already on the tree and outside the
    // node's own subtree (usable instantly at failover); fall back to the
    // closest advert holder — it could join on demand via its reverse
    // path, though this implementation treats it as unavailable, so the
    // fallback mainly preserves coverage reporting.
    overlay::PeerId on_tree_choice = overlay::kNoPeer;
    for (const auto candidate : holders) {
      if (!tree.contains(candidate)) continue;
      if (tree.in_subtree(candidate, node)) continue;
      on_tree_choice = candidate;
      break;
    }
    const auto chosen =
        on_tree_choice != overlay::kNoPeer ? on_tree_choice : holders.front();
    backup_.emplace(node, chosen);
  }
}

std::optional<overlay::PeerId> ReplicatedTree::backup_parent(
    overlay::PeerId node) const {
  const auto it = backup_.find(node);
  if (it == backup_.end()) return std::nullopt;
  return it->second;
}

double ReplicatedTree::coverage() const {
  const auto nodes = tree_->node_count();
  if (nodes <= 1) return 0.0;
  return static_cast<double>(backup_.size()) /
         static_cast<double>(nodes - 1);
}

bool ReplicatedTree::backup_valid(overlay::PeerId child,
                                  overlay::PeerId backup,
                                  overlay::PeerId failed) const {
  if (backup == failed) return false;
  if (!tree_->contains(backup)) return false;
  // The backup must survive the failure: not inside the failed subtree
  // (unless it is inside the *child's* own subtree, which moves with it —
  // but then it cannot adopt the child either).
  if (tree_->in_subtree(backup, child)) return false;
  if (tree_->in_subtree(backup, failed)) {
    // Inside a sibling subtree that is also being detached: only usable
    // if that sibling recovers first; to stay conservative, reject.
    return false;
  }
  return true;
}

ReplicatedTree::FailoverReport ReplicatedTree::simulate_failover(
    overlay::PeerId failed) const {
  GC_REQUIRE(tree_->contains(failed));
  GC_REQUIRE(failed != tree_->root());
  FailoverReport report;
  auto orphans = tree_->subtree_subscribers(failed);
  report.orphaned_subscribers =
      orphans.size() - (tree_->is_subscriber(failed) ? 1 : 0);
  for (const auto child : tree_->children(failed)) {
    const auto backup = backup_parent(child);
    const auto subtree_subs = tree_->subtree_subscribers(child).size();
    if (backup && backup_valid(child, *backup, failed)) {
      ++report.switched_subtrees;
      ++report.failover_messages;
      report.recovered_subscribers += subtree_subs;
    } else {
      report.lost_subscribers += subtree_subs;
    }
  }
  return report;
}

ReplicatedTree::FailoverReport ReplicatedTree::failover(
    overlay::PeerId failed) {
  const auto report = simulate_failover(failed);
  // Decide before mutating, so the applied actions match the report even
  // though earlier moves change subtree relationships.
  struct Decision {
    overlay::PeerId child;
    overlay::PeerId backup;  // kNoPeer = prune
  };
  std::vector<Decision> decisions;
  for (const auto child : tree_->children(failed)) {
    const auto backup = backup_parent(child);
    decisions.push_back(
        Decision{child, backup && backup_valid(child, *backup, failed)
                            ? *backup
                            : overlay::kNoPeer});
  }
  for (const auto& d : decisions) {
    if (d.backup != overlay::kNoPeer) {
      tree_->reparent(d.child, d.backup);
    } else {
      tree_->prune(d.child);
    }
  }
  // The failed node is a leaf now.
  tree_->prune(failed);
  backup_.erase(failed);
  return report;
}

}  // namespace groupcast::core
