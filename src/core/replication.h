// Backup-parent replication for spanning trees.
//
// Section 6 lists failure resilience through dynamic replication [35] as a
// planned GroupCast extension.  This module implements the tree-level half
// of it: every tree node pre-arranges a *backup parent* — an overlay
// neighbour that also holds the group advertisement and is not inside the
// node's own subtree.  When a relay crashes, each of its child subtrees
// whose root has a live backup re-attaches instantly (one message),
// instead of falling back to the ripple-search repair path.
//
// The class wraps an established SpanningTree; simulate_failover answers
// "what would we lose" without mutating it, failover applies the switch.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/advertisement.h"
#include "core/spanning_tree.h"

namespace groupcast::core {

/// Optional liveness predicate for rendezvous_replicas: true while the
/// peer is still reachable.  Callers that pass one must apply the *same*
/// view everywhere they need agreement — the replication member set, for
/// instance, is always derived unfiltered so it never shifts under churn.
using LivenessFilter = std::function<bool(overlay::PeerId)>;

/// Deterministic rendezvous replica set for a group: `count` distinct
/// peers derived by hashing (group, index), never including `primary`.
/// Any node can compute the same set locally, so a subscriber whose joins
/// to a crashed rendezvous point keep timing out has agreed-upon fallback
/// attach targets without any coordination (the replicas hold the group
/// advertisement with high probability and accept joins like any other
/// advert holder).  `count` must leave room for the primary
/// (count < population).  With a liveness filter, departed peers are
/// skipped along the same probe sequence; the result may then be shorter
/// than `count` when too few live peers remain.
std::vector<overlay::PeerId> rendezvous_replicas(
    std::uint32_t group, overlay::PeerId primary, std::size_t population,
    std::size_t count, const LivenessFilter& alive = nullptr);

class ReplicatedTree {
 public:
  /// Assigns backup parents to every non-root node of `tree`: the closest
  /// advert-holding overlay neighbour that is already on the tree outside
  /// the node's own subtree (usable instantly), falling back to the
  /// closest advert holder.  The tree is held by reference and mutated
  /// only by failover().
  ReplicatedTree(const overlay::PeerPopulation& population,
                 const overlay::OverlayGraph& graph,
                 const AdvertisementState& advert, SpanningTree& tree);

  /// The assigned backup parent of a node, if any.
  std::optional<overlay::PeerId> backup_parent(overlay::PeerId node) const;

  /// Fraction of non-root tree nodes holding a usable backup.
  double coverage() const;

  struct FailoverReport {
    std::size_t orphaned_subscribers = 0;  // below the failed relay
    std::size_t switched_subtrees = 0;     // re-attached via backups
    std::size_t recovered_subscribers = 0;
    std::size_t lost_subscribers = 0;      // need the slow repair path
    std::size_t failover_messages = 0;     // one per switched subtree
  };

  /// Applies the failure of `failed` (must be a non-root tree node):
  /// child subtrees switch to their roots' backup parents where valid;
  /// subtrees without a valid backup are pruned (their subscribers are
  /// reported as lost and must use the regular repair).
  FailoverReport failover(overlay::PeerId failed);

  /// Same accounting without mutating the tree.
  FailoverReport simulate_failover(overlay::PeerId failed) const;

  const SpanningTree& tree() const { return *tree_; }

 private:
  /// True if `backup` can adopt `child`'s subtree once `failed` is gone.
  bool backup_valid(overlay::PeerId child, overlay::PeerId backup,
                    overlay::PeerId failed) const;

  const overlay::PeerPopulation* population_;
  SpanningTree* tree_;
  std::unordered_map<overlay::PeerId, overlay::PeerId> backup_;
};

}  // namespace groupcast::core
