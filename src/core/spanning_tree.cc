#include "core/spanning_tree.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

const std::vector<overlay::PeerId> SpanningTree::kNoChildren{};

SpanningTree::SpanningTree(overlay::PeerId root) : root_(root) {
  parent_.emplace(root, root);
}

void SpanningTree::attach(overlay::PeerId child, overlay::PeerId parent) {
  GC_REQUIRE_MSG(contains(parent), "parent must already be on the tree");
  GC_REQUIRE(child != parent);
  if (contains(child)) return;
  parent_.emplace(child, parent);
  children_[parent].push_back(child);
  trace::counters().incr(child, trace::CounterId::kTreeEdges);
  trace::tracer().emit(0, trace::EventKind::kTreeEdgeAdded, child, parent);
}

void SpanningTree::mark_subscriber(overlay::PeerId p) {
  GC_REQUIRE_MSG(contains(p), "subscriber must be on the tree");
  subscribers_.insert(p);
}

void SpanningTree::unmark_subscriber(overlay::PeerId p) {
  GC_REQUIRE_MSG(subscribers_.erase(p) == 1, "peer is not a subscriber");
}

std::vector<overlay::PeerId> SpanningTree::subtree_subscribers(
    overlay::PeerId p) const {
  GC_REQUIRE(contains(p));
  std::vector<overlay::PeerId> out;
  std::vector<overlay::PeerId> stack{p};
  while (!stack.empty()) {
    const auto at = stack.back();
    stack.pop_back();
    if (is_subscriber(at)) out.push_back(at);
    for (const auto kid : children(at)) stack.push_back(kid);
  }
  return out;
}

overlay::PeerId SpanningTree::parent(overlay::PeerId p) const {
  const auto it = parent_.find(p);
  GC_REQUIRE_MSG(it != parent_.end(), "peer is not on the tree");
  return it->second;
}

const std::vector<overlay::PeerId>& SpanningTree::children(
    overlay::PeerId p) const {
  const auto it = children_.find(p);
  return it == children_.end() ? kNoChildren : it->second;
}

std::vector<overlay::PeerId> SpanningTree::nodes() const {
  std::vector<overlay::PeerId> out;
  out.reserve(parent_.size());
  for (const auto& [node, parent] : parent_) out.push_back(node);
  return out;
}

std::size_t SpanningTree::depth(overlay::PeerId p) const {
  std::size_t d = 0;
  overlay::PeerId at = p;
  while (at != root_) {
    at = parent(at);
    ++d;
    GC_ENSURE_MSG(d <= parent_.size(), "cycle in spanning tree");
  }
  return d;
}

std::size_t SpanningTree::max_depth() const {
  std::size_t best = 0;
  for (const auto& [node, parent] : parent_) {
    best = std::max(best, depth(node));
  }
  return best;
}

bool SpanningTree::is_consistent() const {
  if (!parent_.contains(root_)) return false;
  for (const auto& [node, up] : parent_) {
    if (node == root_) {
      if (up != root_) return false;
      continue;
    }
    // Walk to the root, bounded by the node count.
    overlay::PeerId at = node;
    std::size_t steps = 0;
    while (at != root_) {
      const auto it = parent_.find(at);
      if (it == parent_.end()) return false;
      at = it->second;
      if (++steps > parent_.size()) return false;  // cycle
    }
  }
  // children_ must mirror parent_.
  for (const auto& [node, kids] : children_) {
    for (const auto kid : kids) {
      const auto it = parent_.find(kid);
      if (it == parent_.end() || it->second != node) return false;
    }
  }
  return true;
}

bool SpanningTree::in_subtree(overlay::PeerId node,
                              overlay::PeerId root_of_subtree) const {
  GC_REQUIRE(contains(node) && contains(root_of_subtree));
  overlay::PeerId at = node;
  std::size_t steps = 0;
  for (;;) {
    if (at == root_of_subtree) return true;
    if (at == root_) return false;
    at = parent(at);
    GC_ENSURE_MSG(++steps <= parent_.size(), "cycle in spanning tree");
  }
}

void SpanningTree::reparent(overlay::PeerId child,
                            overlay::PeerId new_parent) {
  GC_REQUIRE(contains(child) && contains(new_parent));
  GC_REQUIRE_MSG(child != root_, "cannot reparent the root");
  GC_REQUIRE_MSG(!in_subtree(new_parent, child),
                 "reparent target inside the moved subtree");
  const auto old_parent = parent(child);
  if (old_parent == new_parent) return;
  auto& siblings = children_[old_parent];
  siblings.erase(std::find(siblings.begin(), siblings.end(), child));
  parent_[child] = new_parent;
  children_[new_parent].push_back(child);
}

std::size_t SpanningTree::prune(overlay::PeerId p) {
  GC_REQUIRE(contains(p));
  GC_REQUIRE_MSG(p != root_, "cannot prune the root");
  // Collect the subtree.
  std::vector<overlay::PeerId> stack{p};
  std::vector<overlay::PeerId> doomed;
  while (!stack.empty()) {
    const auto at = stack.back();
    stack.pop_back();
    doomed.push_back(at);
    for (const auto kid : children(at)) stack.push_back(kid);
  }
  // Detach from the parent's child list.
  const auto up = parent(p);
  auto& siblings = children_[up];
  siblings.erase(std::find(siblings.begin(), siblings.end(), p));
  for (const auto d : doomed) {
    parent_.erase(d);
    children_.erase(d);
    subscribers_.erase(d);
  }
  return doomed.size();
}

}  // namespace groupcast::core
