// The group-communication spanning tree.
//
// A spanning tree T <V_Pt, E_Pt> is a connected acyclic sub-graph of the
// overlay connecting all group participants (Section 2).  GroupCast grows
// it from the reverse advertisement paths: when a subscriber joins, every
// link its advertisement travelled through becomes part of the tree, so
// the tree also contains non-subscriber *relay* peers.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "overlay/peer.h"

namespace groupcast::core {

class SpanningTree {
 public:
  /// Creates a tree rooted at the rendezvous point.
  explicit SpanningTree(overlay::PeerId root);

  overlay::PeerId root() const { return root_; }

  /// True if the peer is on the tree (relay or subscriber).
  bool contains(overlay::PeerId p) const { return parent_.contains(p); }

  /// Attaches `child` under `parent`, which must already be on the tree.
  /// No-op if child is already attached (its existing position is kept).
  void attach(overlay::PeerId child, overlay::PeerId parent);

  /// Marks a tree node as an actual subscriber (vs pure relay).
  void mark_subscriber(overlay::PeerId p);
  /// Demotes a subscriber back to a relay (it stays on the tree).
  void unmark_subscriber(overlay::PeerId p);
  bool is_subscriber(overlay::PeerId p) const {
    return subscribers_.contains(p);
  }

  /// All subscribers in the subtree rooted at p (p included if subscribed).
  std::vector<overlay::PeerId> subtree_subscribers(overlay::PeerId p) const;

  /// Parent of a node; root's parent is itself.
  overlay::PeerId parent(overlay::PeerId p) const;
  const std::vector<overlay::PeerId>& children(overlay::PeerId p) const;

  std::size_t node_count() const { return parent_.size(); }
  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::vector<overlay::PeerId> nodes() const;
  const std::unordered_set<overlay::PeerId>& subscribers() const {
    return subscribers_;
  }

  /// Hop depth of a node below the root.
  std::size_t depth(overlay::PeerId p) const;
  std::size_t max_depth() const;

  /// Validates the tree invariants: every node reaches the root through
  /// parent links with no cycles.  Cheap enough to run in tests after
  /// every mutation batch.
  bool is_consistent() const;

  /// Removes a *leaf* subtree rooted at p (p and all its descendants);
  /// used when a subscriber departs.  Returns removed node count.
  std::size_t prune(overlay::PeerId p);

  /// Moves the subtree rooted at `child` under `new_parent`.  Both must be
  /// on the tree and `new_parent` must not be inside the moved subtree
  /// (that would create a cycle).  Used by backup-parent failover.
  void reparent(overlay::PeerId child, overlay::PeerId new_parent);

  /// True if `node` lies in the subtree rooted at `root_of_subtree`.
  bool in_subtree(overlay::PeerId node,
                  overlay::PeerId root_of_subtree) const;

 private:
  overlay::PeerId root_;
  std::unordered_map<overlay::PeerId, overlay::PeerId> parent_;
  std::unordered_map<overlay::PeerId, std::vector<overlay::PeerId>> children_;
  std::unordered_set<overlay::PeerId> subscribers_;
  static const std::vector<overlay::PeerId> kNoChildren;
};

}  // namespace groupcast::core
