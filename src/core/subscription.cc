#include "core/subscription.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

double SubscriptionReport::success_rate() const {
  if (outcomes.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& o : outcomes) {
    if (o.success) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(outcomes.size());
}

double SubscriptionReport::average_response_time_ms() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (o.success) {
      total += o.response_time_ms;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

std::size_t SubscriptionReport::total_messages() const {
  std::size_t total = 0;
  for (const auto& o : outcomes) {
    total += o.search_messages + o.join_messages;
  }
  return total;
}

SubscriptionProtocol::SubscriptionProtocol(
    const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph, SubscriptionOptions options)
    : population_(&population), graph_(&graph), options_(options) {
  GC_REQUIRE(options_.ripple_ttl >= 1);
}

std::size_t SubscriptionProtocol::join_via_reverse_path(
    const AdvertisementState& advert, overlay::PeerId start,
    SpanningTree& tree) const {
  GC_REQUIRE_MSG(advert.received(start),
                 "reverse-path join requires the advertisement");
  // Collect the chain from `start` up to the first peer already on the
  // tree (the rendezvous point at the latest).
  std::vector<overlay::PeerId> chain{start};
  overlay::PeerId at = start;
  while (!tree.contains(at)) {
    const auto up = advert.parent.at(at);
    // The rendezvous point is always on the tree, so the walk never asks
    // for its parent; any other node must have a proper parent.
    GC_ENSURE_MSG(up != overlay::kNoPeer && up != at,
                  "broken reverse advertisement path");
    at = up;
    chain.push_back(at);
    GC_ENSURE_MSG(chain.size() <= advert.parent.size(),
                  "cycle in advertisement parents");
  }
  // Attach top-down so every attach sees its parent already on the tree.
  for (std::size_t i = chain.size(); i-- > 1;) {
    tree.attach(chain[i - 1], chain[i]);
  }
  // One join message per hop walked, plus the acknowledgement.
  return chain.size() - 1;
}

std::optional<overlay::PeerId> SubscriptionProtocol::ripple_search(
    const AdvertisementState& advert, const SpanningTree& tree,
    overlay::PeerId subscriber, SubscriptionOutcome& outcome) const {
  // Scoped flood: TTL levels of neighbour expansion.  Every transmission
  // is one search message; nodes forward only on their first receipt;
  // holders of the advertisement respond instead of forwarding.
  std::unordered_map<overlay::PeerId, double> arrival;  // earliest query time
  arrival.emplace(subscriber, 0.0);
  std::vector<overlay::PeerId> frontier{subscriber};

  double best_response_ms = std::numeric_limits<double>::infinity();
  std::optional<overlay::PeerId> best_hit;

  for (std::size_t level = 0; level < options_.ripple_ttl; ++level) {
    std::vector<overlay::PeerId> next;
    for (const auto from : frontier) {
      const double t_from = arrival.at(from);
      for (const auto to : graph_->neighbors(from)) {
        if (to == subscriber) continue;
        ++outcome.search_messages;  // the query transmission
        const double t_to = t_from + population_->latency_ms(from, to);
        const auto [it, inserted] = arrival.try_emplace(to, t_to);
        if (!inserted) {
          it->second = std::min(it->second, t_to);
          continue;  // duplicate: dropped by the receiver
        }
        const bool hit = advert.received(to) || tree.contains(to);
        if (hit) {
          ++outcome.search_messages;  // the response transmission
          const double response = 2.0 * t_to;  // reverse path, same latency
          if (response < best_response_ms) {
            best_response_ms = response;
            best_hit = to;
          }
        } else {
          next.push_back(to);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  if (best_hit) outcome.response_time_ms = best_response_ms;
  return best_hit;
}

SubscriptionOutcome SubscriptionProtocol::subscribe(
    const AdvertisementState& advert, overlay::PeerId subscriber,
    SpanningTree& tree, MessageStats* stats) const {
  GC_REQUIRE(subscriber < population_->size());
  trace::ScopedTimer subscribe_timer(trace::TimerId::kSubscribe);
  trace::counters().incr(subscriber, trace::CounterId::kSubscribeAttempts);
  SubscriptionOutcome outcome;
  outcome.subscriber = subscriber;

  if (tree.contains(subscriber)) {
    // Already a relay on the tree: flip to subscriber, no messages needed.
    tree.mark_subscriber(subscriber);
    outcome.success = true;
    outcome.had_advertisement = advert.received(subscriber);
    outcome.attach_point = tree.parent(subscriber);
    trace::counters().incr(subscriber,
                           trace::CounterId::kSubscribeSuccesses);
    trace::tracer().emit(0, trace::EventKind::kSubscriptionAttempt,
                         subscriber, outcome.attach_point, 1);
    return outcome;
  }

  if (advert.received(subscriber)) {
    outcome.had_advertisement = true;
    outcome.attach_point = advert.parent.at(subscriber);
    const auto hops = join_via_reverse_path(advert, subscriber, tree);
    outcome.join_messages = hops + 1;  // joins + final ack
    // Response time: the join confirmation from the immediate attach point.
    outcome.response_time_ms =
        2.0 * population_->latency_ms(subscriber, outcome.attach_point);
    tree.mark_subscriber(subscriber);
    outcome.success = true;
  } else {
    const auto hit = ripple_search(advert, tree, subscriber, outcome);
    trace::counters().incr(subscriber, trace::CounterId::kRippleSearches);
    trace::tracer().emit(0, trace::EventKind::kRippleSearch, subscriber,
                         hit ? *hit : overlay::kNoPeer,
                         outcome.search_messages);
    if (hit) {
      outcome.attach_point = *hit;
      // Join message to the hit (over a fresh unicast link) + its
      // reverse-path join if it is not on the tree yet + ack.
      std::size_t hops = 1;
      if (!tree.contains(*hit)) {
        hops += join_via_reverse_path(advert, *hit, tree);
      }
      tree.attach(subscriber, *hit);
      tree.mark_subscriber(subscriber);
      outcome.join_messages = hops + 1;
      outcome.response_time_ms +=
          2.0 * population_->latency_ms(subscriber, *hit);
      outcome.success = true;
    }
  }

  if (stats != nullptr) {
    stats->count(MessageKind::kRippleSearch, outcome.search_messages);
    stats->count(MessageKind::kSubscribeJoin, outcome.join_messages);
  }
  if (outcome.success) {
    trace::counters().incr(subscriber,
                           trace::CounterId::kSubscribeSuccesses);
  }
  // Centralized protocol: stamped at sim-time 0 (see docs/OBSERVABILITY.md);
  // stream order still reflects protocol order.
  trace::tracer().emit(0, trace::EventKind::kSubscriptionAttempt, subscriber,
                       outcome.attach_point, outcome.success ? 1 : 0);
  return outcome;
}

SubscriptionReport SubscriptionProtocol::subscribe_all(
    const AdvertisementState& advert,
    const std::vector<overlay::PeerId>& subscribers, SpanningTree& tree,
    MessageStats* stats) const {
  SubscriptionReport report;
  report.outcomes.reserve(subscribers.size());
  for (const auto s : subscribers) {
    report.outcomes.push_back(subscribe(advert, s, tree, stats));
  }
  return report;
}

}  // namespace groupcast::core
