// Subscription protocol (Section 2.2, Step 3).
//
// A peer that received the advertisement joins by sending the subscription
// up the reverse advertisement path; every hop it traverses becomes part of
// the spanning tree.  A peer the advertisement never reached performs a
// ripple search (scoped Gnutella flood, TTL = 2 by default) to find a
// nearby peer that holds the advertisement, attaches to it, and that peer
// in turn joins via its own reverse path.
//
// The "service lookup latency" of Figure 13 is the subscription response
// time: the interval between sending the first lookup/join message and
// receiving the acknowledgement from the attach point.
#pragma once

#include <optional>

#include "core/advertisement.h"
#include "core/spanning_tree.h"

namespace groupcast::core {

struct SubscriptionOptions {
  /// Initial TTL of the ripple search (the paper evaluates TTL = 2).
  std::size_t ripple_ttl = 2;
};

/// Per-subscriber outcome.
struct SubscriptionOutcome {
  overlay::PeerId subscriber = overlay::kNoPeer;
  bool success = false;
  bool had_advertisement = false;   // skipped the search entirely
  double response_time_ms = 0.0;    // lookup + ack latency
  std::size_t search_messages = 0;  // ripple flood + responses
  std::size_t join_messages = 0;    // joins up the reverse path + ack
  overlay::PeerId attach_point = overlay::kNoPeer;
};

/// Aggregate of one group's subscription phase.
struct SubscriptionReport {
  std::vector<SubscriptionOutcome> outcomes;

  double success_rate() const;
  double average_response_time_ms() const;  // over successful subscriptions
  std::size_t total_messages() const;
};

class SubscriptionProtocol {
 public:
  SubscriptionProtocol(const overlay::PeerPopulation& population,
                       const overlay::OverlayGraph& graph,
                       SubscriptionOptions options);

  /// Subscribes every peer in `subscribers` to the advertised group,
  /// growing `tree`.  Message counts also land in `stats` if non-null.
  SubscriptionReport subscribe_all(const AdvertisementState& advert,
                                   const std::vector<overlay::PeerId>& subscribers,
                                   SpanningTree& tree,
                                   MessageStats* stats = nullptr) const;

  /// Subscribes one peer; exposed for incremental joins in applications.
  SubscriptionOutcome subscribe(const AdvertisementState& advert,
                                overlay::PeerId subscriber, SpanningTree& tree,
                                MessageStats* stats = nullptr) const;

 private:
  /// Walks the reverse advertisement path from `start` (which must hold the
  /// advertisement), attaching every hop to the tree.  Returns the number
  /// of join messages spent (one per new tree edge walked).
  std::size_t join_via_reverse_path(const AdvertisementState& advert,
                                    overlay::PeerId start,
                                    SpanningTree& tree) const;

  /// Ripple search around `subscriber`.  Returns the best hit (peer holding
  /// the advertisement or already on the tree) and the response time, and
  /// accumulates message counts into `outcome`.
  std::optional<overlay::PeerId> ripple_search(
      const AdvertisementState& advert, const SpanningTree& tree,
      overlay::PeerId subscriber, SubscriptionOutcome& outcome) const;

  const overlay::PeerPopulation* population_;
  const overlay::OverlayGraph* graph_;
  SubscriptionOptions options_;
};

}  // namespace groupcast::core
