#include "core/transport.h"

#include "core/wire.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

Transport::Transport(sim::Simulator& simulator,
                     const overlay::PeerPopulation& population,
                     TransportOptions options, util::Rng& rng)
    : simulator_(&simulator),
      population_(&population),
      options_(options),
      rng_(rng.split()),
      handlers_(population.size()),
      generation_(population.size(), 0) {
  GC_REQUIRE(options_.loss_probability >= 0.0 &&
             options_.loss_probability <= 1.0);
}

void Transport::register_node(overlay::PeerId peer, Handler handler) {
  GC_REQUIRE(peer < handlers_.size());
  GC_REQUIRE(handler != nullptr);
  GC_REQUIRE_MSG(handlers_[peer] == nullptr, "peer already registered");
  handlers_[peer] = std::move(handler);
}

void Transport::unregister_node(overlay::PeerId peer, DetachMode mode) {
  GC_REQUIRE(peer < handlers_.size());
  handlers_[peer] = nullptr;
  if (mode == DetachMode::kCrash) {
    ++generation_[peer];  // kills this peer's in-flight sends
  }
}

bool Transport::is_registered(overlay::PeerId peer) const {
  GC_REQUIRE(peer < handlers_.size());
  return handlers_[peer] != nullptr;
}

MessageKind Transport::kind_of(const MessageBody& body) {
  if (std::holds_alternative<AdvertiseMsg>(body)) {
    return MessageKind::kAdvertisement;
  }
  if (std::holds_alternative<RippleQueryMsg>(body)) {
    return MessageKind::kRippleSearch;
  }
  if (std::holds_alternative<RippleHitMsg>(body)) {
    return MessageKind::kRippleResponse;
  }
  if (std::holds_alternative<JoinMsg>(body) ||
      std::holds_alternative<LeaveMsg>(body)) {
    return MessageKind::kSubscribeJoin;
  }
  if (std::holds_alternative<JoinAckMsg>(body)) {
    return MessageKind::kSubscribeAck;
  }
  if (std::holds_alternative<HeartbeatMsg>(body) ||
      std::holds_alternative<HeartbeatAckMsg>(body) ||
      std::holds_alternative<ParentLostMsg>(body) ||
      std::holds_alternative<DataNackMsg>(body) ||
      std::holds_alternative<DataAckMsg>(body) ||
      std::holds_alternative<SeqSyncMsg>(body) ||
      std::holds_alternative<FlowControlMsg>(body) ||
      std::holds_alternative<LeaseMsg>(body) ||
      std::holds_alternative<LeaseAckMsg>(body) ||
      std::holds_alternative<ReplicateMsg>(body) ||
      std::holds_alternative<ReplicateAckMsg>(body) ||
      std::holds_alternative<HandoffMsg>(body)) {
    return MessageKind::kMaintenance;
  }
  return MessageKind::kPayload;
}

void Transport::send(overlay::PeerId from, overlay::PeerId to,
                     MessageBody body) {
  GC_REQUIRE(from < handlers_.size() && to < handlers_.size());
  GC_REQUIRE_MSG(from != to, "loopback sends are a protocol bug");
  ++sent_;
  stats_.count(kind_of(body));
  bytes_sent_ += encoded_size(body);
  trace::counters().incr(from, trace::CounterId::kMessagesSent);
  const auto drop = [&](overlay::PeerId node, overlay::PeerId peer,
                        trace::DropReason reason) {
    ++lost_;
    trace::counters().incr(node, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(simulator_->now().as_micros(),
                         trace::EventKind::kMessageDropped, node, peer,
                         static_cast<std::uint64_t>(reason));
  };
  if (fault_filter_ != nullptr) {
    const auto now = simulator_->now();
    if (fault_filter_->blocked(from, to, now)) {
      drop(from, to, trace::DropReason::kPartitioned);
      return;
    }
    const double burst = fault_filter_->extra_loss(now);
    if (burst > 0.0 && rng_.chance(burst)) {
      drop(from, to, trace::DropReason::kBurstLoss);
      return;
    }
  }
  if (rng_.chance(options_.loss_probability)) {
    drop(from, to, trace::DropReason::kLoss);
    return;
  }
  const auto latency =
      sim::SimTime::millis(population_->latency_ms(from, to));
  // Only messages that survived the loss/fault gauntlet count as edge
  // deliveries; the histogram sees the latency they will experience.
  trace::histograms().record(trace::HistogramId::kEdgeDelayUs,
                             static_cast<std::uint64_t>(latency.as_micros()));
  const auto slot = allocate_slot();
  InFlight& record = inflight_[slot];
  record.from = from;
  record.to = to;
  record.sent_in = generation_[from];
  record.body = std::move(body);
  simulator_->schedule_timer(latency, &Transport::deliver_thunk, this, slot);
}

void Transport::deliver_thunk(void* context, std::uint64_t slot) {
  static_cast<Transport*>(context)->deliver(static_cast<std::uint32_t>(slot));
}

std::uint32_t Transport::allocate_slot() {
  if (free_head_ != kNoSlot) {
    const auto slot = free_head_;
    free_head_ = inflight_[slot].next_free;
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void Transport::deliver(std::uint32_t slot) {
  // Move the record out and recycle the slot before dispatching: the
  // handler may itself send, which allocates slots and can grow the pool.
  InFlight& record = inflight_[slot];
  const auto from = record.from;
  const auto to = record.to;
  const auto sent_in = record.sent_in;
  MessageBody body = std::move(record.body);
  record.next_free = free_head_;
  free_head_ = slot;

  if (generation_[from] != sent_in) {  // sender crashed in flight
    trace::counters().incr(from, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        simulator_->now().as_micros(), trace::EventKind::kMessageDropped,
        from, to,
        static_cast<std::uint64_t>(trace::DropReason::kOriginDeparted));
    return;
  }
  const auto& handler = handlers_[to];
  if (handler == nullptr) {  // receiver departed in flight
    trace::counters().incr(to, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        simulator_->now().as_micros(), trace::EventKind::kMessageDropped,
        to, from,
        static_cast<std::uint64_t>(trace::DropReason::kNoReceiver));
    return;
  }
  trace::counters().incr(to, trace::CounterId::kMessagesReceived);
  handler(Envelope{from, to, std::move(body)});
}

}  // namespace groupcast::core
