#include "core/transport.h"

#include <algorithm>

#include "core/wire.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::core {

namespace {

// The per-peer uplink buckets are built once per transport; capacity
// multipliers come from the population's Table 1 capacities.
std::unique_ptr<net::BandwidthModel> make_bandwidth_model(
    const net::BandwidthCaps& caps, const overlay::PeerPopulation& population) {
  if (!caps.any()) return nullptr;
  std::vector<double> capacities;
  capacities.reserve(population.size());
  for (const auto& peer : population.peers()) {
    capacities.push_back(peer.capacity);
  }
  return std::make_unique<net::BandwidthModel>(caps, capacities);
}

}  // namespace

Transport::Transport(sim::Simulator& simulator,
                     const overlay::PeerPopulation& population,
                     TransportOptions options, util::Rng& rng)
    : simulator_(&simulator),
      population_(&population),
      options_(options),
      bandwidth_(make_bandwidth_model(options.bandwidth, population)),
      rng_(rng.split()),
      handlers_(population.size()),
      generation_(population.size(), 0) {
  GC_REQUIRE(options_.loss_probability >= 0.0 &&
             options_.loss_probability <= 1.0);
}

Transport::Transport(sim::ShardSet& shards,
                     const overlay::PeerPopulation& population,
                     TransportOptions options, util::Rng& rng)
    : simulator_(nullptr),
      population_(&population),
      options_(options),
      bandwidth_(make_bandwidth_model(options.bandwidth, population)),
      rng_(rng.split()),
      handlers_(population.size()),
      generation_(population.size(), 0),
      shards_(&shards),
      peer_shard_(population.size(), 0),
      send_counter_(population.size(), 0),
      crash_at_us_(population.size(), -1),
      shard_state_(shards.num_shards()) {
  GC_REQUIRE(options_.loss_probability >= 0.0 &&
             options_.loss_probability <= 1.0);
  loss_seed_ = rng_();
  const auto num_shards = shards.num_shards();
  for (overlay::PeerId p = 0; p < population.size(); ++p) {
    // Shard by access router: every peer pair split across shards is then
    // separated by at least one inter-router hop, which is what lets the
    // lookahead window include the router-to-router latency floor instead
    // of just two access latencies.
    std::uint64_t state = population.info(p).router + 1;
    util::splitmix64(state);
    peer_shard_[p] = static_cast<std::uint32_t>(
        util::splitmix64(state) % num_shards);
  }
  for (auto& state : shard_state_) state.outbox.resize(num_shards);
  shards.set_client(this);
}

Transport::~Transport() {
  if (shards_ != nullptr) shards_->set_client(nullptr);
}

const MessageStats& Transport::stats() const {
  if (shards_ == nullptr) return stats_;
  aggregated_stats_ = MessageStats{};
  for (const auto& state : shard_state_) aggregated_stats_ += state.stats;
  return aggregated_stats_;
}

std::size_t Transport::messages_sent() const {
  if (shards_ == nullptr) return sent_;
  std::size_t total = 0;
  for (const auto& state : shard_state_) total += state.sent;
  return total;
}

std::size_t Transport::messages_lost() const {
  if (shards_ == nullptr) return lost_;
  std::size_t total = 0;
  for (const auto& state : shard_state_) total += state.lost;
  return total;
}

std::size_t Transport::bytes_sent() const {
  if (shards_ == nullptr) return bytes_sent_;
  std::size_t total = 0;
  for (const auto& state : shard_state_) total += state.bytes_sent;
  return total;
}

std::size_t Transport::memory_bytes() const {
  std::size_t total = handlers_.capacity() * sizeof(Handler) +
                      generation_.capacity() * sizeof(std::uint64_t) +
                      inflight_.capacity() * sizeof(InFlight);
  if (bandwidth_ != nullptr) total += bandwidth_->memory_bytes();
  total += peer_shard_.capacity() * sizeof(std::uint32_t) +
           send_counter_.capacity() * sizeof(std::uint64_t) +
           crash_at_us_.capacity() * sizeof(std::int64_t);
  for (const auto& state : shard_state_) {
    total += sizeof(ShardState) +
             state.arrivals.capacity() * sizeof(ShardRecord);
    for (const auto& box : state.outbox) {
      total += box.capacity() * sizeof(ShardRecord);
    }
  }
  return total;
}

void Transport::declare_crash(overlay::PeerId peer, sim::SimTime at) {
  GC_REQUIRE(shards_ != nullptr && peer < crash_at_us_.size());
  crash_at_us_[peer] = at.as_micros();
}

void Transport::register_node(overlay::PeerId peer, Handler handler) {
  GC_REQUIRE(peer < handlers_.size());
  GC_REQUIRE(handler != nullptr);
  GC_REQUIRE_MSG(handlers_[peer] == nullptr, "peer already registered");
  handlers_[peer] = std::move(handler);
}

void Transport::unregister_node(overlay::PeerId peer, DetachMode mode) {
  GC_REQUIRE(peer < handlers_.size());
  handlers_[peer] = nullptr;
  if (mode == DetachMode::kCrash) {
    ++generation_[peer];  // kills this peer's in-flight sends
  }
}

bool Transport::is_registered(overlay::PeerId peer) const {
  GC_REQUIRE(peer < handlers_.size());
  return handlers_[peer] != nullptr;
}

MessageKind Transport::kind_of(const MessageBody& body) {
  if (std::holds_alternative<AdvertiseMsg>(body)) {
    return MessageKind::kAdvertisement;
  }
  if (std::holds_alternative<RippleQueryMsg>(body)) {
    return MessageKind::kRippleSearch;
  }
  if (std::holds_alternative<RippleHitMsg>(body)) {
    return MessageKind::kRippleResponse;
  }
  if (std::holds_alternative<JoinMsg>(body) ||
      std::holds_alternative<LeaveMsg>(body)) {
    return MessageKind::kSubscribeJoin;
  }
  if (std::holds_alternative<JoinAckMsg>(body)) {
    return MessageKind::kSubscribeAck;
  }
  if (std::holds_alternative<HeartbeatMsg>(body) ||
      std::holds_alternative<HeartbeatAckMsg>(body) ||
      std::holds_alternative<ParentLostMsg>(body) ||
      std::holds_alternative<DataNackMsg>(body) ||
      std::holds_alternative<DataAckMsg>(body) ||
      std::holds_alternative<SeqSyncMsg>(body) ||
      std::holds_alternative<FlowControlMsg>(body) ||
      std::holds_alternative<LeaseMsg>(body) ||
      std::holds_alternative<LeaseAckMsg>(body) ||
      std::holds_alternative<ReplicateMsg>(body) ||
      std::holds_alternative<ReplicateAckMsg>(body) ||
      std::holds_alternative<HandoffMsg>(body)) {
    return MessageKind::kMaintenance;
  }
  return MessageKind::kPayload;
}

void Transport::send(overlay::PeerId from, overlay::PeerId to,
                     MessageBody body) {
  GC_REQUIRE(from < handlers_.size() && to < handlers_.size());
  GC_REQUIRE_MSG(from != to, "loopback sends are a protocol bug");
  if (shards_ != nullptr) {
    sharded_send(from, to, std::move(body));
    return;
  }
  ++sent_;
  stats_.count(kind_of(body));
  const std::size_t wire_bytes = encoded_size(body);
  bytes_sent_ += wire_bytes;
  trace::counters().incr(from, trace::CounterId::kMessagesSent);
  // Uplink pacing drains the sender's token bucket on *every* send — the
  // frame is serialized onto the access link whether or not the network
  // drops it downstream — so the bucket state is identical no matter
  // where a message later dies.
  std::int64_t pacing_us = 0;
  if (bandwidth_ != nullptr) {
    pacing_us = bandwidth_->acquire_uplink(from, wire_bytes,
                                           simulator_->now().as_micros());
  }
  const auto drop = [&](overlay::PeerId node, overlay::PeerId peer,
                        trace::DropReason reason) {
    ++lost_;
    trace::counters().incr(node, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(simulator_->now().as_micros(),
                         trace::EventKind::kMessageDropped, node, peer,
                         static_cast<std::uint64_t>(reason));
  };
  if (fault_filter_ != nullptr) {
    const auto now = simulator_->now();
    if (fault_filter_->blocked(from, to, now)) {
      drop(from, to, trace::DropReason::kPartitioned);
      return;
    }
    const double burst = fault_filter_->extra_loss(now);
    if (burst > 0.0 && rng_.chance(burst)) {
      drop(from, to, trace::DropReason::kBurstLoss);
      return;
    }
  }
  if (rng_.chance(options_.loss_probability)) {
    drop(from, to, trace::DropReason::kLoss);
    return;
  }
  auto latency = sim::SimTime::millis(population_->latency_ms(from, to));
  if (bandwidth_ != nullptr) {
    latency += sim::SimTime::micros(pacing_us +
                                    bandwidth_->downlink_us(to, wire_bytes));
  }
  // Only messages that survived the loss/fault gauntlet count as edge
  // deliveries; the histogram sees the latency they will experience.
  trace::histograms().record(trace::HistogramId::kEdgeDelayUs,
                             static_cast<std::uint64_t>(latency.as_micros()));
  const auto slot = allocate_slot();
  InFlight& record = inflight_[slot];
  record.from = from;
  record.to = to;
  record.sent_in = generation_[from];
  record.body = std::move(body);
  simulator_->schedule_timer(latency, &Transport::deliver_thunk, this, slot);
}

void Transport::deliver_thunk(void* context, std::uint64_t slot) {
  static_cast<Transport*>(context)->deliver(static_cast<std::uint32_t>(slot));
}

std::uint32_t Transport::allocate_slot() {
  if (free_head_ != kNoSlot) {
    const auto slot = free_head_;
    free_head_ = inflight_[slot].next_free;
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void Transport::deliver(std::uint32_t slot) {
  // Move the record out and recycle the slot before dispatching: the
  // handler may itself send, which allocates slots and can grow the pool.
  InFlight& record = inflight_[slot];
  const auto from = record.from;
  const auto to = record.to;
  const auto sent_in = record.sent_in;
  MessageBody body = std::move(record.body);
  record.next_free = free_head_;
  free_head_ = slot;

  if (generation_[from] != sent_in) {  // sender crashed in flight
    trace::counters().incr(from, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        simulator_->now().as_micros(), trace::EventKind::kMessageDropped,
        from, to,
        static_cast<std::uint64_t>(trace::DropReason::kOriginDeparted));
    return;
  }
  const auto& handler = handlers_[to];
  if (handler == nullptr) {  // receiver departed in flight
    trace::counters().incr(to, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        simulator_->now().as_micros(), trace::EventKind::kMessageDropped,
        to, from,
        static_cast<std::uint64_t>(trace::DropReason::kNoReceiver));
    return;
  }
  trace::counters().incr(to, trace::CounterId::kMessagesReceived);
  handler(Envelope{from, to, std::move(body)});
}

// ------------------------------------------------------------- sharded mode

bool Transport::hashed_chance(double p, std::uint64_t stream,
                              std::uint64_t counter) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::uint64_t state = loss_seed_ ^ (stream * 0x9E3779B97F4A7C15ULL);
  util::splitmix64(state);
  state += counter;
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53 < p;
}

void Transport::sharded_send(overlay::PeerId from, overlay::PeerId to,
                             MessageBody body) {
  const auto src = peer_shard_[from];
  ShardState& state = shard_state_[src];
  ++state.sent;
  state.stats.count(kind_of(body));
  const std::size_t wire_bytes = encoded_size(body);
  state.bytes_sent += wire_bytes;
  trace::counters().incr(from, trace::CounterId::kMessagesSent);
  const std::uint64_t counter = send_counter_[from]++;
  sim::Simulator& src_simulator = shards_->shard(src);
  const auto now = src_simulator.now();
  // Uplink buckets are safe without synchronization: each peer's bucket
  // is only touched here, on the sending peer's own shard, in the
  // deterministic (arrival, src, counter) execution order.  Pacing only
  // ever *adds* delay, so the conservative lookahead bound still holds.
  std::int64_t pacing_us = 0;
  if (bandwidth_ != nullptr) {
    pacing_us =
        bandwidth_->acquire_uplink(from, wire_bytes, now.as_micros());
  }
  const auto drop = [&](overlay::PeerId node, overlay::PeerId peer,
                        trace::DropReason reason) {
    ++state.lost;
    trace::counters().incr(node, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(now.as_micros(), trace::EventKind::kMessageDropped,
                         node, peer, static_cast<std::uint64_t>(reason));
  };
  if (fault_filter_ != nullptr) {
    if (fault_filter_->blocked(from, to, now)) {
      drop(from, to, trace::DropReason::kPartitioned);
      return;
    }
    const double burst = fault_filter_->extra_loss(now);
    if (hashed_chance(burst, from * 2 + 1, counter)) {
      drop(from, to, trace::DropReason::kBurstLoss);
      return;
    }
  }
  if (hashed_chance(options_.loss_probability, from * 2, counter)) {
    drop(from, to, trace::DropReason::kLoss);
    return;
  }
  auto latency = sim::SimTime::millis(population_->latency_ms(from, to));
  if (bandwidth_ != nullptr) {
    latency += sim::SimTime::micros(pacing_us +
                                    bandwidth_->downlink_us(to, wire_bytes));
  }
  trace::histograms().record(trace::HistogramId::kEdgeDelayUs,
                             static_cast<std::uint64_t>(latency.as_micros()));
  ShardRecord record;
  record.send_us = now.as_micros();
  record.arrival_us = (now + latency).as_micros();
  record.counter = counter;
  record.from = from;
  record.to = to;
  record.body = std::move(body);
  const auto dst = peer_shard_[to];
  if (dst == src) {
    // Same shard (same access router): deliver through the shard's own
    // arrival queue, which keeps delivery order a pure function of
    // (arrival, src, counter) whatever the shard count.
    state.arrivals.push_back(std::move(record));
    std::push_heap(state.arrivals.begin(), state.arrivals.end(),
                   LaterRecord{});
  } else {
    state.outbox[dst].push_back(std::move(record));
  }
}

void Transport::merge_inbound(std::size_t shard) {
  ShardState& state = shard_state_[shard];
  for (auto& src : shard_state_) {
    auto& box = src.outbox[shard];
    for (auto& record : box) {
      state.arrivals.push_back(std::move(record));
      std::push_heap(state.arrivals.begin(), state.arrivals.end(),
                     LaterRecord{});
    }
    box.clear();
  }
}

std::int64_t Transport::next_arrival_us(std::size_t shard) {
  const ShardState& state = shard_state_[shard];
  return state.arrivals.empty() ? -1 : state.arrivals.front().arrival_us;
}

std::size_t Transport::deliver_arrivals_at(std::size_t shard,
                                           std::int64_t t_us) {
  ShardState& state = shard_state_[shard];
  std::size_t fired = 0;
  while (!state.arrivals.empty() && state.arrivals.front().arrival_us <= t_us) {
    std::pop_heap(state.arrivals.begin(), state.arrivals.end(), LaterRecord{});
    ShardRecord record = std::move(state.arrivals.back());
    state.arrivals.pop_back();
    ++fired;
    deliver_record(shard, std::move(record));
  }
  return fired;
}

void Transport::deliver_record(std::size_t shard, ShardRecord&& record) {
  const auto now_us = shards_->shard(shard).now().as_micros();
  const auto crash_us = crash_at_us_[record.from];
  if (crash_us >= record.send_us && crash_us <= record.arrival_us) {
    // Sender crashed while the message was in flight; mirrors the
    // single-wheel generation check without a cross-thread read.
    trace::counters().incr(record.from, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now_us, trace::EventKind::kMessageDropped, record.from, record.to,
        static_cast<std::uint64_t>(trace::DropReason::kOriginDeparted));
    return;
  }
  const auto& handler = handlers_[record.to];
  if (handler == nullptr) {  // receiver departed in flight
    trace::counters().incr(record.to, trace::CounterId::kMessagesDropped);
    trace::tracer().emit(
        now_us, trace::EventKind::kMessageDropped, record.to, record.from,
        static_cast<std::uint64_t>(trace::DropReason::kNoReceiver));
    return;
  }
  trace::counters().incr(record.to, trace::CounterId::kMessagesReceived);
  handler(Envelope{record.from, record.to, std::move(record.body)});
}

}  // namespace groupcast::core
