// Simulated unicast transport between middleware nodes.
//
// GroupCastNode instances exchange typed messages only through this layer:
// a send schedules delivery after the true end-to-end latency of the
// peer pair, optionally dropping the message (lossy links).  This is the
// seam where the simulation would be swapped for real sockets — the node
// logic above it is transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "core/message.h"
#include "net/bandwidth.h"
#include "overlay/population.h"
#include "sim/shard_set.h"
#include "sim/simulator.h"

namespace groupcast::core {

using GroupId = std::uint32_t;

// ---------------------------------------------------------------- payloads

/// Group advertisement (SSA/NSSA), Section 2.2 step 2.
struct AdvertiseMsg {
  GroupId group = 0;
  overlay::PeerId rendezvous = overlay::kNoPeer;
  std::uint32_t ttl = 0;
};

/// Join travelling in the reverse direction of the advertisement.
struct JoinMsg {
  GroupId group = 0;
  /// The peer that wants to become a child of the receiver.
  overlay::PeerId child = overlay::kNoPeer;
};

/// Join confirmation from the attach point.  `depth` is the acker's tree
/// depth (root = 0); the new child adopts depth + 1.  Orphans use it to
/// refuse attach points inside their own subtree (see docs/ROBUSTNESS.md).
struct JoinAckMsg {
  GroupId group = 0;
  std::uint32_t depth = 0;
  // The acker's own tree parent (the new child's grandparent), offered as
  // a precomputed backup attach target for rung 0 of the recovery ladder.
  // Populated only with ReplicationOptions enabled and deliberately *not*
  // wire-encoded, so byte accounting and the encoded format are unchanged
  // (a real deployment would piggyback it on the ack header).
  overlay::PeerId backup = overlay::kNoPeer;
};

/// Scoped subscription lookup (ripple search), Section 2.2 step 3.
/// `round` distinguishes re-searches by the same origin so duplicate
/// suppression does not swallow retries.
struct RippleQueryMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint32_t ttl = 0;
  std::uint32_t round = 0;
};

/// Lookup hit travelling back to the searcher; `depth` is the holder's
/// tree depth (for the orphan cycle guard).
struct RippleHitMsg {
  GroupId group = 0;
  overlay::PeerId holder = overlay::kNoPeer;
  std::uint32_t depth = 0;
};

/// Application payload on a tree edge.
struct DataMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint64_t payload_id = 0;
  // Tree edges this copy will have traversed on arrival (1 for a copy
  // sent by the origin).  Provenance metadata for the dissemination
  // tracer — deliberately *not* wire-encoded, so byte accounting and the
  // encoded format are unchanged (a real deployment would fold it into
  // an existing header byte).
  std::uint32_t hops = 0;
};

/// Leave notification from a child to its tree parent.
struct LeaveMsg {
  GroupId group = 0;
  overlay::PeerId child = overlay::kNoPeer;
};

/// Tree-edge liveness probe from a child to its parent (Section 3.3's
/// two-missed-heartbeat rule applied to SSA tree edges).
struct HeartbeatMsg {
  GroupId group = 0;
};

/// Parent's answer to a heartbeat, echoing its current tree depth so
/// children keep their depth fresh for the orphan cycle guard.
struct HeartbeatAckMsg {
  GroupId group = 0;
  std::uint32_t depth = 0;
  // Backup attach target refresh (the parent's own parent); in-memory
  // only, like JoinAckMsg::backup.
  overlay::PeerId backup = overlay::kNoPeer;
};

/// A node dissolving its tree position tells its children to re-attach.
struct ParentLostMsg {
  GroupId group = 0;
};

/// One chunk of a live stream on a tree edge (docs: EXPERIMENTS.md,
/// "Streaming workloads").  `stream` identifies the source stream within
/// the group (multi-source groups carry several), `chunk_id` the chunk's
/// position in it, and `deadline_us` the absolute sim time after which
/// delivery no longer helps the player — receivers count a late chunk
/// against the miss ratio.  `payload_bytes` is the chunk body size: the
/// wire encoding carries (and encoded_size() counts) that many bytes, so
/// bandwidth-capped transports see streaming load as bytes/sec, which is
/// the whole point of the workload.  With data-plane reliability on,
/// `epoch`/`seq` carry the same per-edge sequencing as ReliableDataMsg;
/// on the fire-and-forget path both stay 0 (edge epochs start at 1).
struct ChunkMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint32_t stream = 0;
  std::uint32_t chunk_id = 0;
  std::int64_t deadline_us = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  // Hop depth on arrival; provenance metadata, not wire-encoded (see
  // DataMsg::hops).
  std::uint32_t hops = 0;
};

// --- reliable data plane (docs/ROBUSTNESS.md, "Data-plane reliability") ---

/// Sequenced application payload on a reliable tree edge.  `epoch`
/// identifies the directed edge's incarnation (the sender bumps it on
/// every (re)attach of the edge); `seq` numbers payloads from 0 within
/// the epoch, per directed edge.
struct ReliableDataMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint64_t payload_id = 0;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  // Hop depth on arrival; provenance metadata, not wire-encoded (see
  // DataMsg::hops).
  std::uint32_t hops = 0;
};

/// Receiver-driven retransmit request for a batch of missing sequence
/// numbers on one directed edge: bit i of `missing` set means sequence
/// `base_seq + i` has not arrived (a 64-seq window per request).
struct DataNackMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  std::uint64_t base_seq = 0;
  std::uint64_t missing = 0;
};

/// Cumulative receiver acknowledgement: every sequence < `cumulative`
/// arrived, so the sender may trim its retransmit buffer to that point.
struct DataAckMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  std::uint64_t cumulative = 0;
};

/// Edge sequence announcement from the directed-edge sender: emitted when
/// the edge is (re)established via the join handshake, and re-emitted as
/// a tail-loss probe while acks are overdue.  `base_seq` is the oldest
/// sequence the sender can still retransmit (its buffer front), `next_seq`
/// the one it will assign next.  The receiver aligns to [base, next) —
/// adopting `base_seq` wholesale on an epoch change, which is what keeps
/// a reattached child from NACK-storming into a dead incarnation — and
/// answers with an ack, or a NACK when the window exposes a gap.
struct SeqSyncMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  std::uint64_t base_seq = 0;
  std::uint64_t next_seq = 0;
};

/// Backpressure notice travelling one hop against the data flow (child to
/// tree parent): the sender's window toward some downstream edge closed
/// (`throttled`) or fully drained (`!throttled`), so the parent should
/// pause / resume feeding this node.  Sent only with flow control enabled
/// (DataReliabilityOptions::flow_control); a lost resume is healed by the
/// sender's ack-overdue probe, which doubles as a throttle-release retry.
struct FlowControlMsg {
  GroupId group = 0;
  bool throttled = false;
};

// --- rendezvous replication (docs/ROBUSTNESS.md, "Rendezvous replication
// & quorum handoff") ---

/// One committed leadership record: `leader` held the lease for `epoch`.
/// The per-group replication log is a set of these, keyed by epoch; logs
/// merge by epoch union, which is what makes partition heal reconcile
/// without duplicate or lost epochs.
struct LeaseRecord {
  std::uint32_t epoch = 0;
  overlay::PeerId leader = overlay::kNoPeer;

  friend bool operator==(const LeaseRecord&, const LeaseRecord&) = default;
};

/// Lease renewal broadcast from the current leaseholder to the other
/// replica-set members.  `rendezvous` is the group's *original* RP — the
/// member set is derived from it (`rendezvous_replicas`), so any receiver
/// can verify its own membership without prior state.
struct LeaseMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  overlay::PeerId leader = overlay::kNoPeer;
  overlay::PeerId rendezvous = overlay::kNoPeer;
};

/// A member's answer to a LeaseMsg or HandoffMsg: it accepts `epoch`.
/// `head_epoch`/`log_size` summarize the member's replication log so the
/// leaseholder can push a full ReplicateMsg when the member has diverged
/// (anti-entropy on heal).
struct LeaseAckMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  std::uint32_t head_epoch = 0;
  std::uint32_t log_size = 0;
};

/// Replicated advert/leadership state push: the sender's full epoch log.
/// Doubles as the grant reply to a HandoffMsg (then `epoch`/`leader` echo
/// the proposal and `records` carry the granter's log, so the candidate
/// learns every record committed under earlier epochs — the Paxos
/// prepare-phase read).
struct ReplicateMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  overlay::PeerId leader = overlay::kNoPeer;
  overlay::PeerId rendezvous = overlay::kNoPeer;
  std::vector<LeaseRecord> records;
};

/// Acknowledges a ReplicateMsg push; same log summary as LeaseAckMsg.
struct ReplicateAckMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  std::uint32_t head_epoch = 0;
  std::uint32_t log_size = 0;
};

/// Leadership takeover proposal from `candidate` for (monotonic) `epoch`.
/// A member grants iff the epoch is above both its committed epoch and
/// anything it already promised; the candidate commits on a majority of
/// grants, which is what keeps a minority side from ever handing off.
struct HandoffMsg {
  GroupId group = 0;
  std::uint32_t epoch = 0;
  overlay::PeerId candidate = overlay::kNoPeer;
  overlay::PeerId rendezvous = overlay::kNoPeer;
};

using MessageBody =
    std::variant<AdvertiseMsg, JoinMsg, JoinAckMsg, RippleQueryMsg,
                 RippleHitMsg, DataMsg, LeaveMsg, HeartbeatMsg,
                 HeartbeatAckMsg, ParentLostMsg, ReliableDataMsg,
                 DataNackMsg, DataAckMsg, SeqSyncMsg, FlowControlMsg,
                 LeaseMsg, LeaseAckMsg, ReplicateMsg, ReplicateAckMsg,
                 HandoffMsg, ChunkMsg>;

struct Envelope {
  overlay::PeerId from = overlay::kNoPeer;
  overlay::PeerId to = overlay::kNoPeer;
  MessageBody body;
};

// --------------------------------------------------------------- transport

struct TransportOptions {
  /// Independent per-message drop probability (0 = reliable).
  double loss_probability = 0.0;
  /// Per-peer access-link caps (net/bandwidth.h).  Both at 0 — the
  /// default — skips the model entirely: no pacing state is built and
  /// every delivery time stays byte-identical to before.
  net::BandwidthCaps bandwidth;
};

/// How a node comes off the transport (see unregister_node).
enum class DetachMode {
  /// Ungraceful: messages the node already sent but that have not yet been
  /// delivered are suppressed — a crashed node's packets die with it.
  kCrash,
  /// Graceful: already-sent messages still deliver, so a final control
  /// message (e.g. a Leave fired just before stop) reaches its peer.
  kGraceful,
};

/// Per-delivery fault queries the transport consults on every send.  A
/// FaultInjector (core/fault_injection.h) implements this from a
/// sim::FaultPlan; the indirection keeps the transport free of any
/// dependency on fault-plan data.
class FaultFilter {
 public:
  virtual ~FaultFilter() = default;
  /// True if `from` and `to` are separated by an active partition.
  virtual bool blocked(overlay::PeerId from, overlay::PeerId to,
                       sim::SimTime now) const = 0;
  /// Extra drop probability from an active burst-loss interval (0 = none).
  virtual double extra_loss(sim::SimTime now) const = 0;
};

class Transport final : public sim::ShardSet::Client {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Transport(sim::Simulator& simulator,
            const overlay::PeerPopulation& population,
            TransportOptions options, util::Rng& rng);

  /// Sharded mode: peers are partitioned by *access router* (all peers on
  /// one stub router share a shard), deliveries run through per-shard
  /// arrival queues in (arrival, src, per-src send counter) order, and
  /// loss/burst draws are stateless hashes of (seed, src, counter) — all
  /// of which makes the execution byte-identical at every shard count
  /// >= 2.  Installs itself as the shard set's client.
  Transport(sim::ShardSet& shards, const overlay::PeerPopulation& population,
            TransportOptions options, util::Rng& rng);

  ~Transport() override;

  /// Attaches a node; messages to `peer` are delivered to `handler`.
  void register_node(overlay::PeerId peer, Handler handler);

  /// Detaches a node.  In-flight messages *to* it are dropped on arrival
  /// in either mode; what happens to messages it already sent depends on
  /// `mode` (kCrash suppresses them, kGraceful lets them land).
  void unregister_node(overlay::PeerId peer,
                       DetachMode mode = DetachMode::kCrash);

  bool is_registered(overlay::PeerId peer) const;

  /// Sends a message; delivery is scheduled after the peers' true latency.
  /// Every send is counted, including ones that are later lost.
  void send(overlay::PeerId from, overlay::PeerId to, MessageBody body);

  const MessageStats& stats() const;
  std::size_t messages_sent() const;
  std::size_t messages_lost() const;
  /// Total wire bytes of every message sent (per the encoding in wire.h).
  std::size_t bytes_sent() const;

  /// The single-wheel simulator; only valid outside sharded mode.
  sim::Simulator& simulator() { return *simulator_; }
  /// The simulator that owns `peer`'s events: the shard it hashes to in
  /// sharded mode, the single wheel otherwise.  Node code resolves its
  /// clock and timers through this so it runs unchanged in both modes.
  sim::Simulator& simulator_for(overlay::PeerId peer) {
    return shards_ != nullptr ? shards_->shard(peer_shard_[peer])
                              : *simulator_;
  }
  bool sharded() const { return shards_ != nullptr; }
  std::size_t shard_of(overlay::PeerId peer) const {
    return shards_ != nullptr ? peer_shard_[peer] : 0;
  }

  /// Pre-declares an ungraceful crash at `at` (sharded mode only): a
  /// message is suppressed in flight iff its sender has a declared crash
  /// in [send, arrival].  Replaces the single-wheel generation check,
  /// which a delivering shard could not read race-free.
  void declare_crash(overlay::PeerId peer, sim::SimTime at);

  const overlay::PeerPopulation& population() const { return *population_; }

  /// Resident bytes of transport state: handler/generation tables plus
  /// the pooled in-flight slots (single-wheel) or the per-shard arrival
  /// queues and mailboxes (sharded).  Feeds the bytes_per_peer footprint
  /// gauge in bench_micro.
  std::size_t memory_bytes() const;

  // sim::ShardSet::Client:
  void merge_inbound(std::size_t shard) override;
  std::int64_t next_arrival_us(std::size_t shard) override;
  std::size_t deliver_arrivals_at(std::size_t shard,
                                  std::int64_t t_us) override;

  /// Installs (or, with nullptr, removes) the fault filter consulted on
  /// every send.  The filter must outlive its installation.
  void set_fault_filter(const FaultFilter* filter) { fault_filter_ = filter; }

 private:
  static MessageKind kind_of(const MessageBody& body);

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One pooled in-flight message.  Delivery runs through the simulator's
  /// fixed-signature timer path with the slot index as the argument, so a
  /// send costs no per-message heap allocation: slots recycle through a
  /// free list and the pool's high-water mark is the peak number of
  /// messages concurrently in flight.
  struct InFlight {
    overlay::PeerId from = overlay::kNoPeer;
    overlay::PeerId to = overlay::kNoPeer;
    std::uint64_t sent_in = 0;
    MessageBody body;
    std::uint32_t next_free = kNoSlot;
  };

  static void deliver_thunk(void* context, std::uint64_t slot);
  void deliver(std::uint32_t slot);
  std::uint32_t allocate_slot();

  /// One cross-shard (or same-shard) delivery in flight.  Arrival queues
  /// pop in ascending (arrival_us, from, counter) — a total order, since
  /// (from, counter) is unique — so delivery order does not depend on
  /// which epoch barrier merged the record.
  struct ShardRecord {
    std::int64_t send_us = 0;
    std::int64_t arrival_us = 0;
    std::uint64_t counter = 0;
    overlay::PeerId from = overlay::kNoPeer;
    overlay::PeerId to = overlay::kNoPeer;
    MessageBody body;
  };
  struct LaterRecord {
    bool operator()(const ShardRecord& a, const ShardRecord& b) const {
      if (a.arrival_us != b.arrival_us) return a.arrival_us > b.arrival_us;
      if (a.from != b.from) return a.from > b.from;
      return a.counter > b.counter;
    }
  };
  /// Per-shard message-plane state, owned by the shard's worker thread
  /// (outboxes hand over at epoch barriers; the main thread may touch any
  /// shard while the workers are parked).
  struct alignas(64) ShardState {
    MessageStats stats;
    std::size_t sent = 0;
    std::size_t lost = 0;
    std::size_t bytes_sent = 0;
    std::vector<ShardRecord> arrivals;               // min-heap, LaterRecord
    std::vector<std::vector<ShardRecord>> outbox;    // indexed by dst shard
  };

  void sharded_send(overlay::PeerId from, overlay::PeerId to,
                    MessageBody body);
  void deliver_record(std::size_t shard, ShardRecord&& record);
  /// Stateless Bernoulli draw: a splitmix64 hash of (seed, stream,
  /// counter) mapped to [0, 1), compared against p.  Independent of
  /// thread interleaving and shard count.
  bool hashed_chance(double p, std::uint64_t stream,
                     std::uint64_t counter) const;

  sim::Simulator* simulator_;
  const overlay::PeerPopulation* population_;
  TransportOptions options_;
  /// Access-link pacing (null when both caps are 0).  Uplink buckets are
  /// only touched from the owning sender's send path, so the model needs
  /// no synchronization even in sharded mode.
  std::unique_ptr<net::BandwidthModel> bandwidth_;
  util::Rng rng_;
  std::vector<Handler> handlers_;
  /// Bumped on every unregister; a delivery whose captured generation is
  /// stale came from a peer that crashed mid-flight and is suppressed.
  std::vector<std::uint64_t> generation_;
  const FaultFilter* fault_filter_ = nullptr;
  MessageStats stats_;
  std::size_t sent_ = 0;
  std::size_t lost_ = 0;
  std::size_t bytes_sent_ = 0;
  std::vector<InFlight> inflight_;
  std::uint32_t free_head_ = kNoSlot;

  // Sharded-mode state (empty in single-wheel mode).
  sim::ShardSet* shards_ = nullptr;
  std::uint64_t loss_seed_ = 0;
  std::vector<std::uint32_t> peer_shard_;
  std::vector<std::uint64_t> send_counter_;
  /// Declared crash instant per peer, or -1 (none).
  std::vector<std::int64_t> crash_at_us_;
  std::vector<ShardState> shard_state_;
  mutable MessageStats aggregated_stats_;
};

}  // namespace groupcast::core
