// Simulated unicast transport between middleware nodes.
//
// GroupCastNode instances exchange typed messages only through this layer:
// a send schedules delivery after the true end-to-end latency of the
// peer pair, optionally dropping the message (lossy links).  This is the
// seam where the simulation would be swapped for real sockets — the node
// logic above it is transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "core/message.h"
#include "overlay/population.h"
#include "sim/simulator.h"

namespace groupcast::core {

using GroupId = std::uint32_t;

// ---------------------------------------------------------------- payloads

/// Group advertisement (SSA/NSSA), Section 2.2 step 2.
struct AdvertiseMsg {
  GroupId group = 0;
  overlay::PeerId rendezvous = overlay::kNoPeer;
  std::uint32_t ttl = 0;
};

/// Join travelling in the reverse direction of the advertisement.
struct JoinMsg {
  GroupId group = 0;
  /// The peer that wants to become a child of the receiver.
  overlay::PeerId child = overlay::kNoPeer;
};

/// Join confirmation from the attach point.
struct JoinAckMsg {
  GroupId group = 0;
};

/// Scoped subscription lookup (ripple search), Section 2.2 step 3.
struct RippleQueryMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint32_t ttl = 0;
};

/// Lookup hit travelling back to the searcher.
struct RippleHitMsg {
  GroupId group = 0;
  overlay::PeerId holder = overlay::kNoPeer;
};

/// Application payload on a tree edge.
struct DataMsg {
  GroupId group = 0;
  overlay::PeerId origin = overlay::kNoPeer;
  std::uint64_t payload_id = 0;
};

/// Leave notification from a child to its tree parent.
struct LeaveMsg {
  GroupId group = 0;
  overlay::PeerId child = overlay::kNoPeer;
};

using MessageBody = std::variant<AdvertiseMsg, JoinMsg, JoinAckMsg,
                                 RippleQueryMsg, RippleHitMsg, DataMsg,
                                 LeaveMsg>;

struct Envelope {
  overlay::PeerId from = overlay::kNoPeer;
  overlay::PeerId to = overlay::kNoPeer;
  MessageBody body;
};

// --------------------------------------------------------------- transport

struct TransportOptions {
  /// Independent per-message drop probability (0 = reliable).
  double loss_probability = 0.0;
};

class Transport {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Transport(sim::Simulator& simulator,
            const overlay::PeerPopulation& population,
            TransportOptions options, util::Rng& rng);

  /// Attaches a node; messages to `peer` are delivered to `handler`.
  void register_node(overlay::PeerId peer, Handler handler);

  /// Detaches a node; in-flight messages to it are dropped on arrival.
  void unregister_node(overlay::PeerId peer);

  bool is_registered(overlay::PeerId peer) const;

  /// Sends a message; delivery is scheduled after the peers' true latency.
  /// Every send is counted, including ones that are later lost.
  void send(overlay::PeerId from, overlay::PeerId to, MessageBody body);

  const MessageStats& stats() const { return stats_; }
  std::size_t messages_sent() const { return sent_; }
  std::size_t messages_lost() const { return lost_; }
  /// Total wire bytes of every message sent (per the encoding in wire.h).
  std::size_t bytes_sent() const { return bytes_sent_; }

  sim::Simulator& simulator() { return *simulator_; }
  const overlay::PeerPopulation& population() const { return *population_; }

 private:
  static MessageKind kind_of(const MessageBody& body);

  sim::Simulator* simulator_;
  const overlay::PeerPopulation* population_;
  TransportOptions options_;
  util::Rng rng_;
  std::vector<Handler> handlers_;
  MessageStats stats_;
  std::size_t sent_ = 0;
  std::size_t lost_ = 0;
  std::size_t bytes_sent_ = 0;
};

}  // namespace groupcast::core
