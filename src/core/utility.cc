#include "core/utility.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace groupcast::core {

namespace {
constexpr double kMinDistance = 1e-3;  // ms; avoids division by zero
constexpr double kMinResourceLevel = 1e-3;
constexpr double kMaxResourceLevel = 1.0 - 1e-3;
// Relative gap kept between beta and the smallest candidate capacity when
// clamping (Eq. 3 requires C_j - beta > 0 for every candidate).
constexpr double kMinCapacityMargin = 1e-9;
}  // namespace

double clamp_resource_level(double r) {
  return std::clamp(r, kMinResourceLevel, kMaxResourceLevel);
}

UtilityParams UtilityParams::from_resource_level(double resource_level) {
  const double r = clamp_resource_level(resource_level);
  const double ln_r = std::log(r);
  return UtilityParams{
      /*alpha=*/1.0 - r,
      /*beta=*/r,
      // r^(-ln r) = e^{-(ln r)^2}: 0 as r->0, 1 as r->1, always in (0, 1].
      /*gamma=*/std::exp(-ln_r * ln_r),
  };
}

std::vector<double> distance_preferences(double alpha,
                                         std::span<const Candidate> list) {
  GC_REQUIRE(!list.empty());
  GC_REQUIRE_MSG(alpha < 1.0, "Eq. 1 requires alpha < 1");
  // Normalize distances by the maximum over the list (Eq. 2), so that
  // d in (0, 1] and 1/d - alpha >= 1 - alpha > 0 for every candidate.
  double max_dist = kMinDistance;
  for (const auto& c : list) {
    max_dist = std::max(max_dist, std::max(c.distance_ms, kMinDistance));
  }
  std::vector<double> prefs(list.size());
  double total = 0.0;
  for (std::size_t j = 0; j < list.size(); ++j) {
    const double d =
        std::max(list[j].distance_ms, kMinDistance) / max_dist;
    prefs[j] = 1.0 / d - alpha;
    total += prefs[j];
  }
  GC_ENSURE(total > 0.0);
  for (auto& p : prefs) p /= total;
  return prefs;
}

std::vector<double> capacity_preferences(double beta,
                                         std::span<const Candidate> list) {
  GC_REQUIRE(!list.empty());
  // Eq. 3 needs beta strictly below every candidate capacity so each
  // numerator C_j - beta stays positive.  The paper's parameterization
  // guarantees that for true capacities (beta = r_i < 1 <= C_j), but a
  // strong peer (r -> 1, beta -> 1) scoring normalized or sampled scores
  // — e.g. the Eq. 6 occurrence frequencies, which live in [0, 1] — can
  // legitimately present candidates at or below beta.  Clamp beta to just
  // under the smallest capacity: the ordering Eq. 3 induces is preserved,
  // the weakest class degrades toward (not to) zero preference, and the
  // core-formation regime no longer aborts.
  double min_capacity = list[0].capacity;
  for (const auto& c : list) {
    min_capacity = std::min(min_capacity, c.capacity);
  }
  const double margin = std::max(
      kMinCapacityMargin, std::abs(min_capacity) * kMinCapacityMargin);
  beta = std::min(beta, min_capacity - margin);
  std::vector<double> prefs(list.size());
  double total = 0.0;
  for (std::size_t j = 0; j < list.size(); ++j) {
    prefs[j] = list[j].capacity - beta;
    total += prefs[j];
  }
  GC_ENSURE(total > 0.0);
  for (auto& p : prefs) p /= total;
  return prefs;
}

std::vector<double> selection_preferences(const UtilityParams& params,
                                          std::span<const Candidate> list) {
  GC_REQUIRE(params.gamma >= 0.0 && params.gamma <= 1.0);
  const auto dp = distance_preferences(params.alpha, list);
  const auto cp = capacity_preferences(params.beta, list);
  std::vector<double> out(list.size());
  for (std::size_t j = 0; j < list.size(); ++j) {
    out[j] = params.gamma * cp[j] + (1.0 - params.gamma) * dp[j];
  }
  return out;
}

std::vector<double> selection_preferences(double resource_level,
                                          std::span<const Candidate> list) {
  return selection_preferences(UtilityParams::from_resource_level(resource_level),
                               list);
}

std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, util::Rng& rng) {
  std::size_t positive = 0;
  for (const double w : weights) {
    GC_REQUIRE_MSG(w >= 0.0, "weights must be non-negative");
    if (w > 0.0) ++positive;
  }
  k = std::min(k, positive);
  std::vector<std::size_t> picked;
  picked.reserve(k);
  std::vector<double> w(weights.begin(), weights.end());
  for (std::size_t round = 0; round < k; ++round) {
    // Recompute the residual mass every round.  Maintaining it by repeated
    // subtraction (total -= w[chosen]) accumulates floating-point drift
    // over many rounds, leaving `total` inconsistent with the remaining
    // weights and biasing the tail draws.
    double total = 0.0;
    for (const double x : w) total += x;
    double u = rng.uniform() * total;
    std::size_t chosen = static_cast<std::size_t>(-1);
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (w[j] <= 0.0) continue;
      if (u < w[j]) {
        chosen = j;
        break;
      }
      u -= w[j];
    }
    if (chosen == static_cast<std::size_t>(-1)) {
      // Floating-point underrun at the tail: take the last positive weight.
      for (std::size_t j = w.size(); j-- > 0;) {
        if (w[j] > 0.0) {
          chosen = j;
          break;
        }
      }
    }
    GC_ENSURE(chosen != static_cast<std::size_t>(-1));
    picked.push_back(chosen);
    w[chosen] = 0.0;
  }
  return picked;
}

}  // namespace groupcast::core
