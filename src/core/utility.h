// The GroupCast utility function (Section 3.1, Equations 1–5).
//
// Given a candidate list L, a peer p_i with resource level r_i scores each
// candidate p_j by a weighted blend of two preference metrics:
//
//   Distance Preference   DP_i(L,j) = (1/d_i(L,j) - α) / Σ_k (1/d_i(L,k) - α)
//   normalized distance   d_i(L,j)  = D(i,j) / max_k D(i,k)          (Eq. 2)
//   Capacity Preference   CP_i(L,j) = (C_j - β) / Σ_k (C_k - β)      (Eq. 3)
//   Selection Preference  P_i(L,j)  = γ·CP + (1-γ)·DP                (Eq. 4)
//
// with the GroupCast parameterization (Eq. 5):
//
//   α = 1 - r_i     β = r_i     γ = r_i^(-ln r_i) = e^{-(ln r_i)²}
//
// r_i is the fraction of peers with less capacity than p_i, estimated by
// sampling.  Weak peers (γ→0) select by proximity; strong peers (γ→1)
// select by capacity and form the forwarding core.
//
// The same function doubles as Equation 6 (overlay bootstrap) by passing
// candidate occurrence frequencies f_i(j) in place of capacities.
#pragma once

#include <span>
#include <vector>

#include "util/rng.h"

namespace groupcast::core {

/// One entry of the candidate list L as seen by the selecting peer:
/// a capacity-like score (node capacity C_j, or degree sample f_i(j)) and
/// the estimated distance D(i, j) from the selector, in ms.
struct Candidate {
  double capacity = 1.0;
  double distance_ms = 1.0;
};

/// The three tunables of Equation 4.
struct UtilityParams {
  double alpha = 0.5;  // distance skew, < 1
  double beta = 0.5;   // capacity skew, < 1
  double gamma = 0.5;  // capacity weight in [0, 1]

  /// The paper's parameterization: α = 1-r, β = r, γ = e^{-(ln r)²}.
  static UtilityParams from_resource_level(double resource_level);
};

/// Clamps a resource-level estimate into the open interval (0, 1) the
/// parameterization needs; sampling can legitimately return 0 (weakest
/// peer) or 1 (strongest).
double clamp_resource_level(double r);

/// Distance Preference (Eq. 1) over the candidate list; returns a
/// probability vector (sums to 1).  Candidates at distance <= 0 are treated
/// as at a small epsilon.  alpha must be < 1.
std::vector<double> distance_preferences(double alpha,
                                         std::span<const Candidate> list);

/// Capacity Preference (Eq. 3); returns a probability vector.
/// The paper's normalization assumes beta below the smallest candidate
/// capacity (β = r_i < 1 <= C_j); when a candidate violates that — a
/// strong peer (r → 1) scoring Eq. 6 occurrence frequencies in [0, 1],
/// say — beta is clamped to just under the smallest capacity so the
/// preference degrades gracefully instead of rejecting the list.
std::vector<double> capacity_preferences(double beta,
                                         std::span<const Candidate> list);

/// Full Selection Preference (Eqs. 4–5) for a selector with the given
/// resource level.  Returns a probability vector over `list`.
std::vector<double> selection_preferences(double resource_level,
                                          std::span<const Candidate> list);

/// Selection Preference with explicit params (for ablation studies).
std::vector<double> selection_preferences(const UtilityParams& params,
                                          std::span<const Candidate> list);

/// Draws `k` distinct indices with probability proportional to `weights`
/// (without replacement).  k is clipped to the number of positive weights.
std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, util::Rng& rng);

}  // namespace groupcast::core
