#include "core/wire.h"

namespace groupcast::core {

namespace wire {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Reader::need(std::size_t n) const {
  if (buffer_.size() - at_ < n) throw WireError("truncated message");
}

std::uint8_t Reader::u8() {
  need(1);
  return buffer_[at_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buffer_[at_++]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buffer_[at_++]) << (8 * i);
  }
  return v;
}

void Reader::skip(std::size_t n) {
  need(n);
  at_ += n;
}

}  // namespace wire

namespace {

// Wire tags.  Stable protocol constants: append only.
enum class Tag : std::uint8_t {
  kAdvertise = 1,
  kJoin = 2,
  kJoinAck = 3,
  kRippleQuery = 4,
  kRippleHit = 5,
  kData = 6,
  kLeave = 7,
  kHeartbeat = 8,
  kHeartbeatAck = 9,
  kParentLost = 10,
  kReliableData = 11,
  kDataNack = 12,
  kDataAck = 13,
  kSeqSync = 14,
  kFlowControl = 15,
  kLease = 16,
  kLeaseAck = 17,
  kReplicate = 18,
  kReplicateAck = 19,
  kHandoff = 20,
  kChunk = 21,
};

// A replication log grows by one record per committed handoff, so any
// real log is tiny; the decode bound only protects against corrupt or
// hostile frames claiming absurd lengths.
constexpr std::uint32_t kMaxLeaseRecords = 1024;

}  // namespace

std::vector<std::uint8_t> encode_message(const MessageBody& body) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(body));
  wire::Writer w(out);
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kAdvertise));
          w.u32(msg.group);
          w.u32(msg.rendezvous);
          w.u32(msg.ttl);
        } else if constexpr (std::is_same_v<T, JoinMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kJoin));
          w.u32(msg.group);
          w.u32(msg.child);
        } else if constexpr (std::is_same_v<T, JoinAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kJoinAck));
          w.u32(msg.group);
          w.u32(msg.depth);
        } else if constexpr (std::is_same_v<T, RippleQueryMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRippleQuery));
          w.u32(msg.group);
          w.u32(msg.origin);
          w.u32(msg.ttl);
          w.u32(msg.round);
        } else if constexpr (std::is_same_v<T, RippleHitMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRippleHit));
          w.u32(msg.group);
          w.u32(msg.holder);
          w.u32(msg.depth);
        } else if constexpr (std::is_same_v<T, DataMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kData));
          w.u32(msg.group);
          w.u32(msg.origin);
          w.u64(msg.payload_id);
        } else if constexpr (std::is_same_v<T, LeaveMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kLeave));
          w.u32(msg.group);
          w.u32(msg.child);
        } else if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
          w.u32(msg.group);
        } else if constexpr (std::is_same_v<T, HeartbeatAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kHeartbeatAck));
          w.u32(msg.group);
          w.u32(msg.depth);
        } else if constexpr (std::is_same_v<T, ParentLostMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kParentLost));
          w.u32(msg.group);
        } else if constexpr (std::is_same_v<T, ReliableDataMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kReliableData));
          w.u32(msg.group);
          w.u32(msg.origin);
          w.u64(msg.payload_id);
          w.u32(msg.epoch);
          w.u64(msg.seq);
        } else if constexpr (std::is_same_v<T, DataNackMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kDataNack));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u64(msg.base_seq);
          w.u64(msg.missing);
        } else if constexpr (std::is_same_v<T, DataAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kDataAck));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u64(msg.cumulative);
        } else if constexpr (std::is_same_v<T, SeqSyncMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kSeqSync));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u64(msg.base_seq);
          w.u64(msg.next_seq);
        } else if constexpr (std::is_same_v<T, FlowControlMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kFlowControl));
          w.u32(msg.group);
          w.u8(msg.throttled ? 1 : 0);
        } else if constexpr (std::is_same_v<T, LeaseMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kLease));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u32(msg.leader);
          w.u32(msg.rendezvous);
        } else if constexpr (std::is_same_v<T, LeaseAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kLeaseAck));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u32(msg.head_epoch);
          w.u32(msg.log_size);
        } else if constexpr (std::is_same_v<T, ReplicateMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kReplicate));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u32(msg.leader);
          w.u32(msg.rendezvous);
          w.u32(static_cast<std::uint32_t>(msg.records.size()));
          for (const auto& record : msg.records) {
            w.u32(record.epoch);
            w.u32(record.leader);
          }
        } else if constexpr (std::is_same_v<T, ReplicateAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kReplicateAck));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u32(msg.head_epoch);
          w.u32(msg.log_size);
        } else if constexpr (std::is_same_v<T, HandoffMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kHandoff));
          w.u32(msg.group);
          w.u32(msg.epoch);
          w.u32(msg.candidate);
          w.u32(msg.rendezvous);
        } else if constexpr (std::is_same_v<T, ChunkMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kChunk));
          w.u32(msg.group);
          w.u32(msg.origin);
          w.u32(msg.stream);
          w.u32(msg.chunk_id);
          w.u64(static_cast<std::uint64_t>(msg.deadline_us));
          w.u32(msg.payload_bytes);
          w.u32(msg.epoch);
          w.u64(msg.seq);
          // The chunk body: the simulation carries no application bytes,
          // so the frame pads with zeros — what matters is that the
          // frame's length (and encoded_size) include them, which is how
          // bandwidth pacing sees the stream as bytes/sec.
          for (std::uint32_t i = 0; i < msg.payload_bytes; ++i) w.u8(0);
        }
      },
      body);
  return out;
}

std::size_t encoded_size(const MessageBody& body) {
  return std::visit(
      [](const auto& msg) -> std::size_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          return 1 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, JoinMsg>) {
          return 1 + 4 + 4;
        } else if constexpr (std::is_same_v<T, JoinAckMsg>) {
          return 1 + 4 + 4;
        } else if constexpr (std::is_same_v<T, RippleQueryMsg>) {
          return 1 + 4 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, RippleHitMsg>) {
          return 1 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, DataMsg>) {
          return 1 + 4 + 4 + 8;
        } else if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          return 1 + 4;
        } else if constexpr (std::is_same_v<T, HeartbeatAckMsg>) {
          return 1 + 4 + 4;
        } else if constexpr (std::is_same_v<T, ParentLostMsg>) {
          return 1 + 4;
        } else if constexpr (std::is_same_v<T, ReliableDataMsg>) {
          return 1 + 4 + 4 + 8 + 4 + 8;
        } else if constexpr (std::is_same_v<T, DataNackMsg>) {
          return 1 + 4 + 4 + 8 + 8;
        } else if constexpr (std::is_same_v<T, DataAckMsg>) {
          return 1 + 4 + 4 + 8;
        } else if constexpr (std::is_same_v<T, SeqSyncMsg>) {
          return 1 + 4 + 4 + 8 + 8;
        } else if constexpr (std::is_same_v<T, FlowControlMsg>) {
          return 1 + 4 + 1;
        } else if constexpr (std::is_same_v<T, LeaseMsg>) {
          return 1 + 4 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, LeaseAckMsg>) {
          return 1 + 4 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, ReplicateMsg>) {
          return 1 + 4 + 4 + 4 + 4 + 4 + msg.records.size() * (4 + 4);
        } else if constexpr (std::is_same_v<T, ReplicateAckMsg>) {
          return 1 + 4 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, HandoffMsg>) {
          return 1 + 4 + 4 + 4 + 4;
        } else if constexpr (std::is_same_v<T, ChunkMsg>) {
          return 1 + 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8 + msg.payload_bytes;
        } else {
          static_assert(std::is_same_v<T, LeaveMsg>);
          return 1 + 4 + 4;
        }
      },
      body);
}

MessageBody decode_message(std::span<const std::uint8_t> buffer) {
  wire::Reader r(buffer);
  const auto tag = static_cast<Tag>(r.u8());
  MessageBody body;
  switch (tag) {
    case Tag::kAdvertise: {
      AdvertiseMsg msg;
      msg.group = r.u32();
      msg.rendezvous = r.u32();
      msg.ttl = r.u32();
      body = msg;
      break;
    }
    case Tag::kJoin: {
      JoinMsg msg;
      msg.group = r.u32();
      msg.child = r.u32();
      body = msg;
      break;
    }
    case Tag::kJoinAck: {
      JoinAckMsg msg;
      msg.group = r.u32();
      msg.depth = r.u32();
      body = msg;
      break;
    }
    case Tag::kRippleQuery: {
      RippleQueryMsg msg;
      msg.group = r.u32();
      msg.origin = r.u32();
      msg.ttl = r.u32();
      msg.round = r.u32();
      body = msg;
      break;
    }
    case Tag::kRippleHit: {
      RippleHitMsg msg;
      msg.group = r.u32();
      msg.holder = r.u32();
      msg.depth = r.u32();
      body = msg;
      break;
    }
    case Tag::kData: {
      DataMsg msg;
      msg.group = r.u32();
      msg.origin = r.u32();
      msg.payload_id = r.u64();
      body = msg;
      break;
    }
    case Tag::kLeave: {
      LeaveMsg msg;
      msg.group = r.u32();
      msg.child = r.u32();
      body = msg;
      break;
    }
    case Tag::kHeartbeat: {
      HeartbeatMsg msg;
      msg.group = r.u32();
      body = msg;
      break;
    }
    case Tag::kHeartbeatAck: {
      HeartbeatAckMsg msg;
      msg.group = r.u32();
      msg.depth = r.u32();
      body = msg;
      break;
    }
    case Tag::kParentLost: {
      ParentLostMsg msg;
      msg.group = r.u32();
      body = msg;
      break;
    }
    case Tag::kReliableData: {
      ReliableDataMsg msg;
      msg.group = r.u32();
      msg.origin = r.u32();
      msg.payload_id = r.u64();
      msg.epoch = r.u32();
      msg.seq = r.u64();
      body = msg;
      break;
    }
    case Tag::kDataNack: {
      DataNackMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.base_seq = r.u64();
      msg.missing = r.u64();
      body = msg;
      break;
    }
    case Tag::kDataAck: {
      DataAckMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.cumulative = r.u64();
      body = msg;
      break;
    }
    case Tag::kSeqSync: {
      SeqSyncMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.base_seq = r.u64();
      msg.next_seq = r.u64();
      body = msg;
      break;
    }
    case Tag::kFlowControl: {
      FlowControlMsg msg;
      msg.group = r.u32();
      // Canonical bool: only 0/1 re-encode byte-identically, so anything
      // else is a corrupt frame, not a truthy value.
      const std::uint8_t throttled = r.u8();
      if (throttled > 1) throw WireError("non-canonical flow-control flag");
      msg.throttled = throttled == 1;
      body = msg;
      break;
    }
    case Tag::kLease: {
      LeaseMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.leader = r.u32();
      msg.rendezvous = r.u32();
      body = msg;
      break;
    }
    case Tag::kLeaseAck: {
      LeaseAckMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.head_epoch = r.u32();
      msg.log_size = r.u32();
      body = msg;
      break;
    }
    case Tag::kReplicate: {
      ReplicateMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.leader = r.u32();
      msg.rendezvous = r.u32();
      const std::uint32_t count = r.u32();
      if (count > kMaxLeaseRecords) throw WireError("oversized lease log");
      msg.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        LeaseRecord record;
        record.epoch = r.u32();
        record.leader = r.u32();
        msg.records.push_back(record);
      }
      body = msg;
      break;
    }
    case Tag::kReplicateAck: {
      ReplicateAckMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.head_epoch = r.u32();
      msg.log_size = r.u32();
      body = msg;
      break;
    }
    case Tag::kHandoff: {
      HandoffMsg msg;
      msg.group = r.u32();
      msg.epoch = r.u32();
      msg.candidate = r.u32();
      msg.rendezvous = r.u32();
      body = msg;
      break;
    }
    case Tag::kChunk: {
      ChunkMsg msg;
      msg.group = r.u32();
      msg.origin = r.u32();
      msg.stream = r.u32();
      msg.chunk_id = r.u32();
      msg.deadline_us = static_cast<std::int64_t>(r.u64());
      msg.payload_bytes = r.u32();
      if (msg.payload_bytes > kMaxChunkBytes) {
        throw WireError("oversized chunk body");
      }
      msg.epoch = r.u32();
      msg.seq = r.u64();
      r.skip(msg.payload_bytes);
      body = msg;
      break;
    }
    default:
      throw WireError("unknown message tag");
  }
  if (!r.exhausted()) throw WireError("trailing bytes after message");
  return body;
}

}  // namespace groupcast::core
