// Binary wire format for the GroupCast protocol messages.
//
// The simulated Transport moves C++ objects, but a deployment moves bytes;
// this module defines the (little-endian, fixed-width, tag-prefixed)
// encoding of every protocol message, with bounds-checked decoding.  The
// Transport uses encoded_size() for bandwidth accounting, so message-load
// results can be read in bytes as well as counts — and the encode/decode
// pair is the seam a socket-backed transport would use as-is.
//
// Layout: [1-byte tag][fixed-width fields in declaration order].
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/transport.h"

namespace groupcast::core {

/// Thrown on malformed input: truncated buffer, unknown tag, or trailing
/// garbage.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decode-side bound on ChunkMsg::payload_bytes (the kMaxLeaseRecords
/// idiom): live-streaming chunks are tens of KiB, so anything past 16 MiB
/// is a corrupt frame, rejected before the reader skips its body.
inline constexpr std::uint32_t kMaxChunkBytes = 16u << 20;

/// Serializes a protocol message.
std::vector<std::uint8_t> encode_message(const MessageBody& body);

/// Parses a buffer produced by encode_message.  Throws WireError on any
/// malformed input; never reads out of bounds.
MessageBody decode_message(std::span<const std::uint8_t> buffer);

/// Size in bytes encode_message would produce (without encoding).
std::size_t encoded_size(const MessageBody& body);

namespace wire {

/// Bounds-checked little-endian primitive writer.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}
  void u8(std::uint8_t v) { out_->push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian primitive reader.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buffer) : buffer_(buffer) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Skips `n` opaque body bytes (chunk payloads); throws on truncation.
  void skip(std::size_t n);
  bool exhausted() const { return at_ == buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - at_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> buffer_;
  std::size_t at_ = 0;
};

}  // namespace wire
}  // namespace groupcast::core
