#include "metrics/esm_metrics.h"

#include "util/require.h"

namespace groupcast::metrics {

double node_stress(const core::DisseminationResult& result) {
  if (result.forward_fanout.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [peer, fanout] : result.forward_fanout) {
    total += static_cast<double>(fanout);
  }
  return total / static_cast<double>(result.forward_fanout.size());
}

double overload_index(const overlay::PeerPopulation& population,
                      const core::SpanningTree& tree,
                      const core::DisseminationResult& result,
                      std::size_t* overloaded_count) {
  const auto nodes = tree.nodes();
  if (nodes.empty()) return 0.0;
  std::size_t overloaded = 0;
  double excess_total = 0.0;
  for (const auto p : nodes) {
    const auto it = result.forward_fanout.find(p);
    const double load =
        it == result.forward_fanout.end() ? 0.0
                                          : static_cast<double>(it->second);
    const double capacity = population.info(p).capacity;
    if (load > capacity) {
      ++overloaded;
      excess_total += load - capacity;
    }
  }
  if (overloaded_count != nullptr) *overloaded_count = overloaded;
  if (overloaded == 0) return 0.0;
  const double fraction =
      static_cast<double>(overloaded) / static_cast<double>(nodes.size());
  const double avg_excess = excess_total / static_cast<double>(overloaded);
  return fraction * avg_excess;
}

EsmMetrics evaluate_session(const overlay::PeerPopulation& population,
                            const core::GroupSession& session,
                            overlay::PeerId source) {
  EsmMetrics m;
  const auto esm = session.disseminate(source);
  const auto baseline = session.ip_multicast_baseline(source);

  m.esm_avg_delay_ms = esm.average_delay_ms;
  m.ip_avg_delay_ms = baseline.average_delay_ms;
  m.delay_penalty = baseline.average_delay_ms > 0.0
                        ? esm.average_delay_ms / baseline.average_delay_ms
                        : 0.0;

  m.esm_ip_messages = esm.ip_messages;
  m.ip_mc_messages = baseline.ip_messages;
  m.link_stress = baseline.ip_messages > 0
                      ? static_cast<double>(esm.ip_messages) /
                            static_cast<double>(baseline.ip_messages)
                      : 0.0;

  m.node_stress = node_stress(esm);
  m.overload_index = overload_index(population, session.tree(), esm,
                                    &m.overloaded_peers);
  m.tree_nodes = session.tree().node_count();
  return m;
}

}  // namespace groupcast::metrics
