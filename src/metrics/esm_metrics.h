// The four end-system-multicast quality metrics of Section 4.3 / 4.4:
//
//  * relative delay penalty — avg ESM delay / avg IP-multicast delay;
//  * link stress            — IP messages of the ESM tree / IP messages of
//                             the IP-multicast tree for the same receivers;
//  * node stress            — average number of children a non-leaf peer
//                             handles in the ESM tree;
//  * overload index         — (fraction of peers overloaded) × (average
//                             workload exceeding those peers' capacities).
#pragma once

#include "core/group_session.h"

namespace groupcast::metrics {

struct EsmMetrics {
  double delay_penalty = 0.0;
  double link_stress = 0.0;
  double node_stress = 0.0;
  double overload_index = 0.0;

  // Raw inputs, kept for diagnostics.
  double esm_avg_delay_ms = 0.0;
  double ip_avg_delay_ms = 0.0;
  std::size_t esm_ip_messages = 0;
  std::size_t ip_mc_messages = 0;
  std::size_t overloaded_peers = 0;
  std::size_t tree_nodes = 0;
};

/// Evaluates one payload dissemination from `source` over the session's
/// spanning tree against the IP-multicast baseline.
EsmMetrics evaluate_session(const overlay::PeerPopulation& population,
                            const core::GroupSession& session,
                            overlay::PeerId source);

/// Node stress alone: mean fan-out over forwarding (non-leaf) nodes.
double node_stress(const core::DisseminationResult& result);

/// Overload index alone: forwarding load vs. peer capacity over all tree
/// nodes (leaves carry load 0 and can never be overloaded).
double overload_index(const overlay::PeerPopulation& population,
                      const core::SpanningTree& tree,
                      const core::DisseminationResult& result,
                      std::size_t* overloaded_count = nullptr);

}  // namespace groupcast::metrics
