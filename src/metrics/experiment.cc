#include "metrics/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "metrics/recovery.h"
#include "metrics/streaming.h"
#include "trace/trace.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast::metrics {

std::size_t ScenarioConfig::effective_group_size() const {
  if (group_size > 0) return std::min(group_size, peer_count);
  return std::max<std::size_t>(16, peer_count / 10);
}

core::MiddlewareConfig ScenarioConfig::middleware_config() const {
  core::MiddlewareConfig mw;
  mw.peer_count = peer_count;
  mw.seed = seed;
  mw.overlay = overlay;
  mw.advertisement.scheme = scheme;
  mw.advertisement.forward_fraction = forward_fraction;
  mw.advertisement.ttl = advertisement_ttl;
  mw.subscription.ripple_ttl = ripple_ttl;
  return mw;
}

std::unique_ptr<core::GroupCastMiddleware> make_scenario_middleware(
    const ScenarioConfig& config) {
  if (config.world == nullptr) {
    return std::make_unique<core::GroupCastMiddleware>(
        config.middleware_config());
  }
  GC_REQUIRE_MSG(config.world->config.peer_count == config.peer_count &&
                     config.world->config.seed == config.seed,
                 "attached deployment snapshot does not match the scenario");
  return std::make_unique<core::GroupCastMiddleware>(config.world);
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  GC_REQUIRE(config.groups >= 1);
  GC_REQUIRE_MSG(config.shards >= 1, "config.shards must be >= 1");
  GC_REQUIRE_MSG(!(config.recovery.enabled && config.streaming.enabled),
                 "recovery and streaming harnesses are mutually exclusive");
  if (config.recovery.enabled) return run_recovery_scenario(config);
  if (config.streaming.enabled) return run_streaming_scenario(config);
  GC_REQUIRE_MSG(config.shards == 1,
                 "shards > 1 requires the recovery harness "
                 "(engine-level scenarios run on the single wheel)");
  ScenarioResult result;
  result.config = config;

  const auto middleware_ptr = make_scenario_middleware(config);
  core::GroupCastMiddleware& middleware = *middleware_ptr;
  result.repair_edges = middleware.connectivity_repair_edges();

  const std::size_t group_size = config.effective_group_size();
  const double n_groups = static_cast<double>(config.groups);

  util::Summary delay_by_group, overload_by_group, link_by_group,
      lookup_by_group;
  for (std::size_t g = 0; g < config.groups; ++g) {
    auto group = middleware.establish_random_group(group_size);

    result.advertisement_messages +=
        static_cast<double>(group.advert.messages) / n_groups;
    result.subscription_messages +=
        static_cast<double>(group.report.total_messages()) / n_groups;
    result.receiving_rate += group.advert.receiving_rate() / n_groups;
    result.subscription_success_rate +=
        group.report.success_rate() / n_groups;
    const double lookup_ms = group.report.average_response_time_ms();
    result.lookup_latency_ms += lookup_ms / n_groups;
    lookup_by_group.add(lookup_ms);

    const auto session = middleware.session(group);
    const auto esm = evaluate_session(middleware.population(), session,
                                      group.advert.rendezvous);
    result.delay_penalty += esm.delay_penalty / n_groups;
    result.link_stress += esm.link_stress / n_groups;
    result.node_stress += esm.node_stress / n_groups;
    result.overload_index += esm.overload_index / n_groups;
    delay_by_group.add(esm.delay_penalty);
    overload_by_group.add(esm.overload_index);
    link_by_group.add(esm.link_stress);

    result.avg_tree_depth +=
        static_cast<double>(group.tree.max_depth()) / n_groups;
    result.avg_tree_nodes +=
        static_cast<double>(group.tree.node_count()) / n_groups;
  }
  result.delay_penalty_group_stddev = delay_by_group.stddev();
  result.overload_index_group_stddev = overload_by_group.stddev();
  result.link_stress_group_stddev = link_by_group.stddev();
  result.lookup_latency_group_stddev = lookup_by_group.stddev();
  result.events_fired = middleware.simulator().events_fired();
  result.queue_high_water = middleware.simulator().queue_high_water();
  if (trace::counters().enabled()) {
    result.counters = trace::counters().snapshot();
  }
  if (trace::histograms().enabled()) {
    result.histograms = trace::histograms().snapshot();
  }
  return result;
}

namespace {

/// One (point, repetition) work item.  The repetition runs against
/// isolated trace facilities injected for exactly this call — workers
/// never touch another thread's (or the caller's) registries, and the
/// snapshots stored in the result cover exactly this run.
ScenarioResult run_repetition(const ScenarioConfig& rep,
                              const GridOptions& options) {
  trace::CounterRegistry local_counters;
  if (options.counters) local_counters.enable(rep.peer_count);
  trace::ScopedCounterRegistry counter_guard(local_counters);
  trace::HistogramRegistry local_histograms;
  if (options.histograms) local_histograms.enable();
  trace::ScopedHistogramRegistry histogram_guard(local_histograms);
  trace::FlightRecorder local_recorder;
  if (options.timeline) local_recorder.enable();
  trace::ScopedFlightRecorder recorder_guard(local_recorder);
  return run_scenario(rep);
}

/// True when two work items read identical values through
/// middleware_config() — they then construct bit-identical deployments
/// and can fork one shared snapshot.  Must cover every ScenarioConfig
/// field that middleware_config() consults.
bool same_world(const ScenarioConfig& a, const ScenarioConfig& b) {
  return a.peer_count == b.peer_count && a.seed == b.seed &&
         a.overlay == b.overlay && a.scheme == b.scheme &&
         a.forward_fraction == b.forward_fraction &&
         a.advertisement_ttl == b.advertisement_ttl &&
         a.ripple_ttl == b.ripple_ttl;
}

/// Deduplicates world construction across work items: every cluster of
/// two or more items with the same middleware config gets one
/// DeploymentSnapshot (built here, serially, before the pool starts) that
/// each run forks instead of rebuilding underlay + embedding + bootstrap.
/// Items whose world is unique keep constructing inline — a snapshot
/// would only add recording overhead — and items arriving with a
/// caller-attached world keep it.  Forks are bit-identical to fresh
/// constructions, so results do not depend on what shares with what.
void attach_shared_worlds(std::vector<ScenarioConfig>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].world != nullptr) continue;
    bool shared = false;
    for (std::size_t j = i + 1; j < items.size() && !shared; ++j) {
      shared = items[j].world == nullptr && same_world(items[i], items[j]);
    }
    if (!shared) continue;
    const auto world = core::GroupCastMiddleware::make_snapshot(
        items[i].middleware_config());
    for (std::size_t j = i; j < items.size(); ++j) {
      if (items[j].world == nullptr && same_world(items[i], items[j])) {
        items[j].world = world;
      }
    }
  }
}

}  // namespace

ScenarioResult reduce_scenario_repetitions(
    const ScenarioConfig& config,
    std::span<const ScenarioResult> repetitions) {
  GC_REQUIRE(!repetitions.empty());
  ScenarioResult total;
  total.config = config;
  const double k = static_cast<double>(repetitions.size());
  util::Summary delay_samples, overload_samples, link_samples;
  util::Summary delivery_samples, reattach_samples, miss_samples;
  for (const ScenarioResult& one : repetitions) {
    delay_samples.add(one.delay_penalty);
    overload_samples.add(one.overload_index);
    link_samples.add(one.link_stress);
    delivery_samples.add(one.delivery_ratio);
    reattach_samples.add(one.reattached_fraction);
    miss_samples.add(one.chunk_miss_ratio);
    total.advertisement_messages += one.advertisement_messages / k;
    total.subscription_messages += one.subscription_messages / k;
    total.receiving_rate += one.receiving_rate / k;
    total.subscription_success_rate += one.subscription_success_rate / k;
    total.lookup_latency_ms += one.lookup_latency_ms / k;
    total.delay_penalty += one.delay_penalty / k;
    total.link_stress += one.link_stress / k;
    total.node_stress += one.node_stress / k;
    total.overload_index += one.overload_index / k;
    total.delivery_ratio += one.delivery_ratio / k;
    total.reattached_fraction += one.reattached_fraction / k;
    total.mean_orphan_epochs += one.mean_orphan_epochs / k;
    total.epochs_to_converge += one.epochs_to_converge / k;
    total.control_overhead += one.control_overhead / k;
    total.invariant_violations += one.invariant_violations / k;
    total.partition_majority_delivery += one.partition_majority_delivery / k;
    total.partition_minority_delivery += one.partition_minority_delivery / k;
    total.lease_handoffs += one.lease_handoffs / k;
    total.epoch_conflicts += one.epoch_conflicts / k;
    total.chunk_miss_ratio += one.chunk_miss_ratio / k;
    total.startup_delay_ms += one.startup_delay_ms / k;
    total.rebuffer_events += one.rebuffer_events / k;
    total.chunks_played_per_viewer += one.chunks_played_per_viewer / k;
    total.flash_attach_fraction += one.flash_attach_fraction / k;
    total.avg_tree_depth += one.avg_tree_depth / k;
    total.avg_tree_nodes += one.avg_tree_nodes / k;
    total.repair_edges += one.repair_edges;
    total.events_fired += one.events_fired;
    total.queue_high_water = std::max(total.queue_high_water,
                                      one.queue_high_water);
    if (total.events_per_shard.size() < one.events_per_shard.size()) {
      total.events_per_shard.resize(one.events_per_shard.size(), 0);
    }
    for (std::size_t s = 0; s < one.events_per_shard.size(); ++s) {
      total.events_per_shard[s] += one.events_per_shard[s];
    }
    total.delay_penalty_group_stddev += one.delay_penalty_group_stddev / k;
    total.overload_index_group_stddev +=
        one.overload_index_group_stddev / k;
    total.link_stress_group_stddev += one.link_stress_group_stddev / k;
    total.lookup_latency_group_stddev +=
        one.lookup_latency_group_stddev / k;
    total.counters.merge(one.counters);
    total.histograms.merge(one.histograms);
    trace::merge_timelines(total.timeline, one.timeline);
  }
  total.delay_penalty_stddev = delay_samples.stddev();
  total.overload_index_stddev = overload_samples.stddev();
  total.link_stress_stddev = link_samples.stddev();
  if (config.recovery.enabled) {
    total.delivery_ratio_stddev = delivery_samples.stddev();
    total.reattached_fraction_stddev = reattach_samples.stddev();
  }
  if (config.streaming.enabled) {
    total.chunk_miss_ratio_stddev = miss_samples.stddev();
  }
  return total;
}

std::vector<ScenarioResult> run_scenario_grid(
    std::span<const ScenarioConfig> points, const GridOptions& options) {
  GC_REQUIRE(options.repetitions >= 1);
  if (points.empty()) return {};

  const std::size_t reps = options.repetitions;
  const std::size_t items = points.size() * reps;
  std::vector<ScenarioResult> runs(items);

  // Work item i = repetition (i % reps) of point (i / reps), so one
  // slow point spreads over the pool instead of serializing at the end.
  // Items are materialized up front so deployment construction can be
  // shared: grid cells that differ only in run-phase parameters (loss,
  // churn, group count, ...) fork one pre-built world.
  std::vector<ScenarioConfig> item_configs(items);
  for (std::size_t i = 0; i < items; ++i) {
    item_configs[i] = points[i / reps];
    item_configs[i].seed += i % reps;  // the seed ladder: seed, seed+1, ...
  }
  attach_shared_worlds(item_configs);

  auto run_item = [&](std::size_t i) {
    runs[i] = run_repetition(item_configs[i], options);
  };

  std::size_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  jobs = std::min(jobs, items);

  if (jobs <= 1) {
    for (std::size_t i = 0; i < items; ++i) run_item(i);
  } else {
    // Self-scheduling pool: an atomic ticket is the only shared mutable
    // word; every result slot is written by exactly one worker.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= items) return;
          try {
            run_item(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            // Drain remaining tickets so the pool winds down quickly.
            next.store(items, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<ScenarioResult> reduced;
  reduced.reserve(points.size());
  const std::span<const ScenarioResult> all(runs);
  for (std::size_t p = 0; p < points.size(); ++p) {
    reduced.push_back(
        reduce_scenario_repetitions(points[p], all.subspan(p * reps, reps)));
  }
  return reduced;
}

ScenarioResult run_scenario_averaged(ScenarioConfig config,
                                     std::size_t repetitions,
                                     std::size_t jobs) {
  GC_REQUIRE(repetitions >= 1);
  GridOptions options;
  options.jobs = jobs;
  options.repetitions = repetitions;
  options.counters = trace::counters().enabled();
  options.histograms = trace::histograms().enabled();
  options.timeline = trace::flight_recorder().enabled();
  auto reduced =
      run_scenario_grid(std::span<const ScenarioConfig>(&config, 1), options);
  // Fold the isolated per-repetition facilities back into the caller's
  // registries (no-ops while disabled): enable-run-export callers like
  // sim_driver --trace_out observe the same accumulated values the
  // pre-pool sequential harness produced.
  trace::counters().merge(reduced.front().counters);
  trace::histograms().merge(reduced.front().histograms);
  trace::flight_recorder().merge(reduced.front().timeline);
  return reduced.front();
}

double bench_scale() {
  const char* raw = std::getenv("GROUPCAST_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double value = std::atof(raw);
  return value > 0.0 ? value : 1.0;
}

}  // namespace groupcast::metrics
