#include "metrics/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "trace/trace.h"
#include "util/require.h"
#include "util/stats.h"

namespace groupcast::metrics {

std::size_t ScenarioConfig::effective_group_size() const {
  if (group_size > 0) return std::min(group_size, peer_count);
  return std::max<std::size_t>(16, peer_count / 10);
}

core::MiddlewareConfig ScenarioConfig::middleware_config() const {
  core::MiddlewareConfig mw;
  mw.peer_count = peer_count;
  mw.seed = seed;
  mw.overlay = overlay;
  mw.advertisement.scheme = scheme;
  mw.advertisement.forward_fraction = forward_fraction;
  mw.advertisement.ttl = advertisement_ttl;
  mw.subscription.ripple_ttl = ripple_ttl;
  return mw;
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  GC_REQUIRE(config.groups >= 1);
  ScenarioResult result;
  result.config = config;

  core::GroupCastMiddleware middleware(config.middleware_config());
  result.repair_edges = middleware.connectivity_repair_edges();

  const std::size_t group_size = config.effective_group_size();
  const double n_groups = static_cast<double>(config.groups);

  util::Summary delay_by_group, overload_by_group, link_by_group,
      lookup_by_group;
  for (std::size_t g = 0; g < config.groups; ++g) {
    auto group = middleware.establish_random_group(group_size);

    result.advertisement_messages +=
        static_cast<double>(group.advert.messages) / n_groups;
    result.subscription_messages +=
        static_cast<double>(group.report.total_messages()) / n_groups;
    result.receiving_rate += group.advert.receiving_rate() / n_groups;
    result.subscription_success_rate +=
        group.report.success_rate() / n_groups;
    const double lookup_ms = group.report.average_response_time_ms();
    result.lookup_latency_ms += lookup_ms / n_groups;
    lookup_by_group.add(lookup_ms);

    const auto session = middleware.session(group);
    const auto esm = evaluate_session(middleware.population(), session,
                                      group.advert.rendezvous);
    result.delay_penalty += esm.delay_penalty / n_groups;
    result.link_stress += esm.link_stress / n_groups;
    result.node_stress += esm.node_stress / n_groups;
    result.overload_index += esm.overload_index / n_groups;
    delay_by_group.add(esm.delay_penalty);
    overload_by_group.add(esm.overload_index);
    link_by_group.add(esm.link_stress);

    result.avg_tree_depth +=
        static_cast<double>(group.tree.max_depth()) / n_groups;
    result.avg_tree_nodes +=
        static_cast<double>(group.tree.node_count()) / n_groups;
  }
  result.delay_penalty_group_stddev = delay_by_group.stddev();
  result.overload_index_group_stddev = overload_by_group.stddev();
  result.link_stress_group_stddev = link_by_group.stddev();
  result.lookup_latency_group_stddev = lookup_by_group.stddev();
  if (trace::counters().enabled()) {
    result.counters = trace::counters().snapshot();
  }
  return result;
}

ScenarioResult run_scenario_averaged(ScenarioConfig config,
                                     std::size_t repetitions) {
  GC_REQUIRE(repetitions >= 1);
  ScenarioResult total;
  total.config = config;
  const double k = static_cast<double>(repetitions);
  util::Summary delay_samples, overload_samples, link_samples;
  for (std::size_t r = 0; r < repetitions; ++r) {
    ScenarioConfig rep = config;
    rep.seed = config.seed + r;
    const auto one = run_scenario(rep);
    delay_samples.add(one.delay_penalty);
    overload_samples.add(one.overload_index);
    link_samples.add(one.link_stress);
    total.advertisement_messages += one.advertisement_messages / k;
    total.subscription_messages += one.subscription_messages / k;
    total.receiving_rate += one.receiving_rate / k;
    total.subscription_success_rate += one.subscription_success_rate / k;
    total.lookup_latency_ms += one.lookup_latency_ms / k;
    total.delay_penalty += one.delay_penalty / k;
    total.link_stress += one.link_stress / k;
    total.node_stress += one.node_stress / k;
    total.overload_index += one.overload_index / k;
    total.avg_tree_depth += one.avg_tree_depth / k;
    total.avg_tree_nodes += one.avg_tree_nodes / k;
    total.repair_edges += one.repair_edges;
    total.delay_penalty_group_stddev += one.delay_penalty_group_stddev / k;
    total.overload_index_group_stddev +=
        one.overload_index_group_stddev / k;
    total.link_stress_group_stddev += one.link_stress_group_stddev / k;
    total.lookup_latency_group_stddev +=
        one.lookup_latency_group_stddev / k;
    total.counters = one.counters;  // last repetition's snapshot
  }
  total.delay_penalty_stddev = delay_samples.stddev();
  total.overload_index_stddev = overload_samples.stddev();
  total.link_stress_stddev = link_samples.stddev();
  return total;
}

double bench_scale() {
  const char* raw = std::getenv("GROUPCAST_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double value = std::atof(raw);
  return value > 0.0 ? value : 1.0;
}

}  // namespace groupcast::metrics
