// Shared experiment harness for the Figure 11–17 sweeps: builds a
// deployment, establishes communication groups, and aggregates the paper's
// metrics.  Each bench binary drives this with its own parameter grid.
//
// Scenario points and their seed repetitions are independent, so
// run_scenario_grid executes them on a worker pool (GridOptions::jobs).
// Determinism contract: for fixed seeds the results — every metric field
// and the counter snapshots — are byte-identical whatever the job count,
// because each run owns an isolated RNG stream (the middleware derives it
// from the repetition's seed) and an isolated trace::CounterRegistry, and
// the per-point reduction always folds repetitions in seed order.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "trace/counters.h"
#include "trace/flight_recorder.h"
#include "trace/histogram.h"

namespace groupcast::metrics {

/// Switches a scenario from the engine-level pipeline to the node-runtime
/// churn harness (metrics/recovery.h).  With `enabled == false` (the
/// default) every other field is inert and run_scenario behaves exactly as
/// before, keeping existing goldens byte-identical.
struct RecoveryOptions {
  bool enabled = false;
  /// Steady-state per-message loss probability of the transport, [0, 1].
  double loss_probability = 0.0;
  /// Fraction of subscribers crashed ungracefully (no leave), [0, 1].
  double crash_fraction = 0.0;
  /// Fraction of subscribers leaving gracefully during churn, [0, 1].
  /// crash_fraction + graceful_fraction must stay <= 1.
  double graceful_fraction = 0.0;
  /// Tree-edge heartbeat period of every node, seconds (> 0).
  double heartbeat_seconds = 0.5;
  /// Heartbeat intervals without an ack before a parent is declared dead.
  /// The node default (2, the paper's two-miss rule) is tuned for a quiet
  /// network; under steady loss p an ack round-trip survives with
  /// (1-p)^2, so the harness default widens the window to keep the
  /// false-positive rate negligible at the sweep's loss levels.
  std::size_t heartbeat_misses = 6;
  /// Length of one convergence epoch, seconds (> 0).  Churn is injected
  /// over one epoch; recovery is then observed epoch by epoch.
  double epoch_seconds = 4.0;
  /// Epochs the harness waits for re-convergence before giving up.
  std::size_t convergence_epochs = 10;
  /// Payloads of the post-churn speaking round (delivery-ratio probe).
  std::size_t speaking_payloads = 4;
  /// Data-plane NACK/retransmit reliability on tree edges
  /// (core::DataReliabilityOptions, defaults).  Off keeps group data on
  /// the legacy fire-and-forget path, byte-identical to before.
  bool reliable_data = false;
  /// Sender-side flow control on reliable edges
  /// (core::DataReliabilityOptions::flow_control): data beyond the window
  /// parks at the sender and a throttle signal propagates up the tree.
  /// Requires reliable_data.
  bool flow_control = false;
  /// Sender window per directed edge, in sequences (flow_control only).
  std::size_t flow_window = 32;
  /// Adaptive failure detection and NACK cadence
  /// (core::NodeOptions::adaptive): per-edge loss/RTT estimators widen
  /// heartbeat_misses and shorten NACK delays online.
  bool adaptive = false;
  /// Every slow_peer_stride-th peer acks at a slow_ack_factor-times
  /// coarser cadence (a "slow child"); 0 disables the impairment.
  std::size_t slow_peer_stride = 0;
  /// Multiplier applied to the slow peers' reliability.ack_every (>= 1).
  std::size_t slow_ack_factor = 10;
  /// Extra fault-plan clauses (sim/fault_plan.h grammar; absolute sim
  /// times) merged into the derived churn plan.  Empty = none.
  std::string fault_plan;
  /// Rendezvous replication with leased leadership and quorum handoff
  /// (core::ReplicationOptions).  Off keeps every message, timer and RNG
  /// draw byte-identical to before.
  bool replication = false;
  /// Replica count beside the rendezvous point (replication only).
  std::size_t replicas = 2;
  /// Lease renewal interval, seconds (> 0, replication only); the lease
  /// duration — takeover patience — is four renewal intervals.
  double lease_seconds = 0.5;
  /// Length of the RP-side partition window injected after recovery has
  /// converged, seconds; 0 disables the partition phase.  Requires
  /// replication: the phase exists to measure leased failover.
  double partition_seconds = 0.0;
  /// Fraction of survivors isolated with the rendezvous point on the
  /// minority side, (0, 0.5] when partition_seconds > 0.  Every replica
  /// stays on the majority side so a quorum can elect.
  double partition_fraction = 0.2;
  /// Payloads published *per side* during the partition window.
  std::size_t partition_payloads = 4;
};

/// Multi-source group layout for the streaming harness.
struct MultiSourceOptions {
  enum class Mode : std::uint8_t {
    /// All publishers feed one shared dissemination tree (one group);
    /// non-root sources publish up through their own attachment point.
    kSharedTree = 0,
    /// Every publisher roots its own tree (one group per source) with the
    /// same viewer set subscribed to all of them.
    kPerSourceTrees,
  };
  /// Concurrent publishers (streams), >= 1.
  std::size_t publishers = 1;
  Mode mode = Mode::kSharedTree;
};

/// Switches a scenario to the live-streaming workload harness
/// (metrics/streaming.h): chunked payloads with playback deadlines over
/// the (optionally reliable) data plane, per-peer bandwidth caps, multi-
/// source groups, and an optional flash crowd joining mid-stream.  With
/// `enabled == false` (the default) every other field is inert and
/// run_scenario behaves exactly as before, keeping existing goldens
/// byte-identical.
struct StreamingOptions {
  bool enabled = false;
  /// Steady-state per-message loss probability of the transport, [0, 1].
  double loss_probability = 0.0;
  /// Chunks each publisher emits, >= 1.
  std::size_t chunks = 50;
  /// Publisher chunk cadence, seconds (> 0).  100 ms ~= a 10 fps
  /// segmenter; one chunk per interval per stream.
  double chunk_interval_seconds = 0.1;
  /// Simulated chunk size, bytes (>= 1, <= core wire limit).  Drives the
  /// transport's token-bucket pacing when caps are set.
  std::size_t chunk_bytes = 16 * 1024;
  /// Playback deadline after each chunk's publish instant, seconds (> 0):
  /// a chunk arriving later counts as late/missed at the viewer.
  double deadline_seconds = 2.0;
  /// Per-peer access-link caps in kbit/s (0 = uncapped); forwarded to
  /// core::TransportOptions::bandwidth.
  double uplink_kbps = 0.0;
  double downlink_kbps = 0.0;
  /// Scale both caps by each peer's capacity class (Table 1 flows).
  bool scale_caps_with_capacity = false;
  /// Chunk transport: NACK/retransmit reliability on tree edges, plus the
  /// usual flow-control / adaptive riders (recovery harness semantics).
  bool reliable_data = false;
  bool flow_control = false;
  bool adaptive = false;
  /// Publisher count and tree layout.
  MultiSourceOptions sources;
  /// Peers that join mid-stream against the warm tree (0 = no flash
  /// crowd), spread uniformly over flash_crowd_seconds.
  std::size_t flash_crowd_joins = 0;
  double flash_crowd_seconds = 1.0;
  /// Tree-edge heartbeat period, seconds (> 0); misses before a parent is
  /// declared dead (recovery harness semantics).
  double heartbeat_seconds = 0.5;
  std::size_t heartbeat_misses = 6;
  /// Length of one convergence epoch, seconds (> 0), and how many epochs
  /// the harness waits for tree convergence before streaming starts.
  double epoch_seconds = 4.0;
  std::size_t convergence_epochs = 10;
};

struct ScenarioConfig {
  std::size_t peer_count = 1000;
  core::OverlayKind overlay = core::OverlayKind::kGroupCast;
  core::AnnouncementScheme scheme = core::AnnouncementScheme::kSsaUtility;
  /// Communication groups per overlay (paper: 10).
  std::size_t groups = 10;
  /// Subscribers per group; 0 means peer_count / 10 (min 16).
  std::size_t group_size = 0;
  std::uint64_t seed = 1;
  /// Forwarded to the middleware's advertisement options.
  double forward_fraction = 0.35;
  std::size_t advertisement_ttl = 8;
  std::size_t ripple_ttl = 2;
  /// Node-runtime churn harness; inert unless recovery.enabled.
  RecoveryOptions recovery;
  /// Live-streaming workload harness; inert unless streaming.enabled.
  /// Mutually exclusive with recovery.enabled.
  StreamingOptions streaming;

  /// Worker shards for the recovery harness's event kernel (sim/shard_set.h).
  /// 1 (the default) runs on the classic single-wheel simulator and stays
  /// byte-identical to pre-shard builds; N >= 2 partitions peers by access
  /// router across N conservative-lookahead shards, byte-identical across
  /// every N >= 2.  Only meaningful with recovery.enabled; must not exceed
  /// peer_count.  Engine-level scenarios reject shards > 1.
  std::size_t shards = 1;

  /// Pre-built deployment to fork instead of constructing one from
  /// middleware_config() (see core::DeploymentSnapshot).  Normally left
  /// null by callers: run_scenario_grid fills it in automatically for
  /// work items that share a middleware config, so a sweep pays for
  /// underlay + embedding + bootstrap once per distinct world rather
  /// than once per cell.  A fork is bit-identical to a fresh
  /// construction, so attaching a (matching) snapshot never changes
  /// results.
  std::shared_ptr<const core::DeploymentSnapshot> world;

  std::size_t effective_group_size() const;
  core::MiddlewareConfig middleware_config() const;
};

/// Aggregated over all groups of one scenario run.
struct ScenarioResult {
  ScenarioConfig config;

  // Figure 11: message loads.
  double advertisement_messages = 0.0;   // mean per group
  double subscription_messages = 0.0;    // mean per group

  // Figure 12: rates.
  double receiving_rate = 0.0;           // mean fraction reached by advert
  double subscription_success_rate = 0.0;

  // Figure 13: lookup latency.
  double lookup_latency_ms = 0.0;

  // Figures 14–17, averaged over groups.
  double delay_penalty = 0.0;
  double link_stress = 0.0;
  double node_stress = 0.0;
  double overload_index = 0.0;

  // Diagnostics.
  double avg_tree_depth = 0.0;
  double avg_tree_nodes = 0.0;
  std::size_t repair_edges = 0;

  // Robustness harness (metrics/recovery.h) — populated only when
  // config.recovery.enabled; all zero otherwise.
  double delivery_ratio = 0.0;        // post-churn speaking round
  double reattached_fraction = 0.0;   // surviving subscribers back on tree
  double mean_orphan_epochs = 0.0;    // mean epochs orphans stayed cut off
  double epochs_to_converge = 0.0;    // convergence_epochs if never
  double control_overhead = 0.0;      // recovery-window msgs / survivor
  double invariant_violations = 0.0;  // core/invariants.h at the end

  // Partition-heal sweep (recovery.replication + partition_seconds > 0;
  // all zero otherwise).  Delivery ratios are measured per partition side
  // during the window: the majority side is served by the elected
  // leaseholder, the minority side by its caretaker subtree.
  double partition_majority_delivery = 0.0;
  double partition_minority_delivery = 0.0;
  double lease_handoffs = 0.0;        // committed takeovers (counter sum)
  double epoch_conflicts = 0.0;       // must stay 0: quorum intersection

  // Streaming harness (metrics/streaming.h) — populated only when
  // config.streaming.enabled; all zero otherwise.  Viewer-eligible means
  // a (viewer, chunk) pair where the chunk was published after the viewer
  // joined (flash joiners are scored live, not against the back-catalog).
  double chunk_miss_ratio = 0.0;      // eligible chunks not played on time
  double startup_delay_ms = 0.0;      // mean join-to-first-played delay
  double rebuffer_events = 0.0;       // mean missed-chunk runs per viewer
  double chunks_played_per_viewer = 0.0;
  double flash_attach_fraction = 0.0; // flash joiners on the tree at the end

  // Dispersion across the groups of one deployment — populated by
  // run_scenario when groups >= 2 (sample stddev over the per-group
  // values behind the means above).
  double delay_penalty_group_stddev = 0.0;
  double overload_index_group_stddev = 0.0;
  double link_stress_group_stddev = 0.0;
  double lookup_latency_group_stddev = 0.0;

  // Dispersion across topologies — only populated by
  // run_scenario_averaged / run_scenario_grid with repetitions >= 2
  // (sample stddev).
  double delay_penalty_stddev = 0.0;
  double overload_index_stddev = 0.0;
  double link_stress_stddev = 0.0;
  /// Seed-to-seed spread of the recovery harness's headline outcomes
  /// (zero when recovery is off or repetitions < 2).  Loss sweeps must
  /// report this: a 50% mean delivery ratio hides whether every seed
  /// lost half the probes or half the seeds lost everything.
  double delivery_ratio_stddev = 0.0;
  double reattached_fraction_stddev = 0.0;
  /// Seed-to-seed spread of the streaming headline (zero when streaming
  /// is off or repetitions < 2), for the same reason as delivery_ratio.
  double chunk_miss_ratio_stddev = 0.0;

  // Event-loop workload of the deployment's simulator: how many events the
  // run fired and the deepest its queue ever got.  The averaged/grid
  // runners sum events across repetitions and keep the maximum queue
  // depth, so the numbers describe the whole point, not one topology.
  std::uint64_t events_fired = 0;
  std::uint64_t queue_high_water = 0;

  // Per-shard event counts of the sharded kernel (config.shards entries
  // when shards >= 2, empty otherwise).  events_fired is their sum, which
  // is shard-count invariant; the per-shard split exposes load imbalance.
  // The averaged/grid runners sum the vectors element-wise across
  // repetitions.
  std::vector<std::uint64_t> events_per_shard;

  // Protocol counters, captured from the calling thread's active registry
  // (trace::counters()) when it is enabled — empty otherwise.  The
  // grid/averaged runners instead give every repetition an isolated,
  // per-run registry and store the order-independent merge of the
  // repetition snapshots here.
  trace::CounterSnapshot counters;

  // Sim-time distributions (edge delay, hop count, end-to-end delay,
  // NACK repair), captured like `counters` from the active
  // trace::histograms() registry; log-binned integers, so repetition
  // merges are order-independent and --jobs=N output is byte-identical.
  trace::HistogramSnapshot histograms;

  // Flight-recorder time series: one frame per recovery epoch (empty for
  // engine-level scenarios or when the facility is off).  Repetition
  // timelines merge keyed by sim time (trace::merge_timelines).
  std::vector<trace::FlightFrame> timeline;
};

/// Builds one deployment and runs `config.groups` groups over it.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// The middleware for one scenario run: forks `config.world` when one is
/// attached (after validating it matches the scenario), otherwise
/// constructs a fresh deployment from middleware_config().  Shared by
/// run_scenario and run_recovery_scenario so both paths honour snapshot
/// reuse identically.
std::unique_ptr<core::GroupCastMiddleware> make_scenario_middleware(
    const ScenarioConfig& config);

/// Execution policy for run_scenario_grid.
struct GridOptions {
  /// Worker threads; 1 runs inline on the calling thread (no pool), 0 uses
  /// std::thread::hardware_concurrency().  Results are byte-identical for
  /// every value.
  std::size_t jobs = 1;
  /// Seed repetitions per grid point (the paper's "repeated over 10 IP
  /// network topologies"), laddered seed, seed+1, ..., seed+repetitions-1.
  std::size_t repetitions = 1;
  /// Collect protocol counters: each repetition runs against a fresh
  /// registry (presized to its peer count) and the merged snapshots land
  /// in ScenarioResult::counters.  Off by default — the benches then pay
  /// only the disabled one-branch incr().
  bool counters = false;
  /// Collect sim-time histograms per repetition (isolated
  /// trace::HistogramRegistry, merged into ScenarioResult::histograms).
  /// Off by default, one-branch record() cost when off.
  bool histograms = false;
  /// Record a flight-recorder frame per recovery epoch (isolated
  /// trace::FlightRecorder, merged into ScenarioResult::timeline).
  /// Off by default; a disabled run schedules no recorder events.
  bool timeline = false;
};

/// Runs every (point, repetition) work item of the grid — points[i] with
/// seeds points[i].seed + {0, ..., repetitions-1} — on a pool of
/// GridOptions::jobs workers, and returns the per-point reductions in
/// points order.  Deterministic: see the header comment.
std::vector<ScenarioResult> run_scenario_grid(
    std::span<const ScenarioConfig> points, const GridOptions& options = {});

/// Folds repetition results (in seed-ladder order) into one averaged
/// result: metric fields are arithmetic means, repair_edges sums, the
/// *_stddev fields are sample stddevs across the repetitions, and counter
/// snapshots merge.  Exposed so callers can reproduce exactly what the
/// grid computes from individual run_scenario results.
ScenarioResult reduce_scenario_repetitions(
    const ScenarioConfig& config, std::span<const ScenarioResult> repetitions);

/// Runs the scenario over `repetitions` seeds (seed, seed+1, ...) on
/// `jobs` workers and averages every field.  Equivalent to a one-point
/// run_scenario_grid, with one addition: counters are collected whenever
/// the caller's ambient registry is enabled, and the merged snapshot is
/// folded back into that registry afterwards (so enable-run-export callers
/// keep working unchanged, sequential or parallel).
ScenarioResult run_scenario_averaged(ScenarioConfig config,
                                     std::size_t repetitions,
                                     std::size_t jobs = 1);

/// Reads a positive scaling factor from the GROUPCAST_BENCH_SCALE
/// environment variable (default 1).  Benches use it to move between the
/// fast default configuration and the paper's full experiment sizes.
double bench_scale();

}  // namespace groupcast::metrics
