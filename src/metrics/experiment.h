// Shared experiment harness for the Figure 11–17 sweeps: builds a
// deployment, establishes communication groups, and aggregates the paper's
// metrics.  Each bench binary drives this with its own parameter grid.
#pragma once

#include <string>

#include "core/middleware.h"
#include "metrics/esm_metrics.h"
#include "trace/counters.h"

namespace groupcast::metrics {

struct ScenarioConfig {
  std::size_t peer_count = 1000;
  core::OverlayKind overlay = core::OverlayKind::kGroupCast;
  core::AnnouncementScheme scheme = core::AnnouncementScheme::kSsaUtility;
  /// Communication groups per overlay (paper: 10).
  std::size_t groups = 10;
  /// Subscribers per group; 0 means peer_count / 10 (min 16).
  std::size_t group_size = 0;
  std::uint64_t seed = 1;
  /// Forwarded to the middleware's advertisement options.
  double forward_fraction = 0.35;
  std::size_t advertisement_ttl = 8;
  std::size_t ripple_ttl = 2;

  std::size_t effective_group_size() const;
  core::MiddlewareConfig middleware_config() const;
};

/// Aggregated over all groups of one scenario run.
struct ScenarioResult {
  ScenarioConfig config;

  // Figure 11: message loads.
  double advertisement_messages = 0.0;   // mean per group
  double subscription_messages = 0.0;    // mean per group

  // Figure 12: rates.
  double receiving_rate = 0.0;           // mean fraction reached by advert
  double subscription_success_rate = 0.0;

  // Figure 13: lookup latency.
  double lookup_latency_ms = 0.0;

  // Figures 14–17, averaged over groups.
  double delay_penalty = 0.0;
  double link_stress = 0.0;
  double node_stress = 0.0;
  double overload_index = 0.0;

  // Diagnostics.
  double avg_tree_depth = 0.0;
  double avg_tree_nodes = 0.0;
  std::size_t repair_edges = 0;

  // Dispersion across the groups of one deployment — populated by
  // run_scenario when groups >= 2 (sample stddev over the per-group
  // values behind the means above).
  double delay_penalty_group_stddev = 0.0;
  double overload_index_group_stddev = 0.0;
  double link_stress_group_stddev = 0.0;
  double lookup_latency_group_stddev = 0.0;

  // Dispersion across topologies — only populated by
  // run_scenario_averaged with repetitions >= 2 (sample stddev).
  double delay_penalty_stddev = 0.0;
  double overload_index_stddev = 0.0;
  double link_stress_stddev = 0.0;

  // Protocol counter totals for the run, captured from the global
  // trace::counters() registry when it is enabled (empty otherwise).
  trace::CounterSnapshot counters;
};

/// Builds one deployment and runs `config.groups` groups over it.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Runs the scenario over `repetitions` seeds (seed, seed+1, ...) and
/// averages every field — the paper's "repeated over 10 IP network
/// topologies".
ScenarioResult run_scenario_averaged(ScenarioConfig config,
                                     std::size_t repetitions);

/// Reads a positive scaling factor from the GROUPCAST_BENCH_SCALE
/// environment variable (default 1).  Benches use it to move between the
/// fast default configuration and the paper's full experiment sizes.
double bench_scale();

}  // namespace groupcast::metrics
