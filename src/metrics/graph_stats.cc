#include "metrics/graph_stats.h"

namespace groupcast::metrics {

util::FrequencyCount degree_distribution(const overlay::OverlayGraph& graph) {
  util::FrequencyCount counts;
  for (overlay::PeerId p = 0; p < graph.peer_count(); ++p) {
    counts.add(graph.degree(p));
  }
  return counts;
}

std::vector<double> per_peer_neighbor_distance(
    const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph) {
  std::vector<double> out(population.size(), -1.0);
  for (overlay::PeerId p = 0; p < population.size(); ++p) {
    const auto nbrs = graph.neighbors(p);
    if (nbrs.empty()) continue;
    double total = 0.0;
    for (const auto n : nbrs) total += population.latency_ms(p, n);
    out[p] = total / static_cast<double>(nbrs.size());
  }
  return out;
}

util::Summary neighbor_distance_summary(
    const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph) {
  util::Summary summary;
  for (const double d : per_peer_neighbor_distance(population, graph)) {
    if (d >= 0.0) summary.add(d);
  }
  return summary;
}

}  // namespace groupcast::metrics
