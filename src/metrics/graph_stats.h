// Overlay graph statistics behind Figures 7–10: degree distributions and
// neighbour proximity.
#pragma once

#include "overlay/graph.h"
#include "overlay/population.h"
#include "util/stats.h"

namespace groupcast::metrics {

/// Degree (distinct-neighbour count) histogram of the overlay.
util::FrequencyCount degree_distribution(const overlay::OverlayGraph& graph);

/// Average *true* latency from each peer to its overlay neighbours —
/// the quantity plotted per peer in Figures 9 and 10.  Peers without
/// neighbours are skipped.
util::Summary neighbor_distance_summary(
    const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph);

/// Per-peer average neighbour distance, indexed by peer; NaN-free: peers
/// without neighbours get -1.
std::vector<double> per_peer_neighbor_distance(
    const overlay::PeerPopulation& population,
    const overlay::OverlayGraph& graph);

}  // namespace groupcast::metrics
