#include "metrics/harness_common.h"

#include <algorithm>
#include <limits>

#include "sim/time.h"
#include "util/require.h"

namespace groupcast::metrics::detail {

std::int64_t shard_lookahead_us(const net::UnderlayTopology& underlay,
                                const overlay::PeerPopulation& population) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double first = kInf, second = kInf;
  for (const auto& peer : population.peers()) {
    const double access = peer.access_latency_ms;
    if (access < first) {
      second = first;
      first = access;
    } else if (access < second) {
      second = access;
    }
  }
  double min_link = kInf;
  for (net::LinkId l = 0; l < underlay.link_count(); ++l) {
    min_link = std::min(min_link, underlay.link(l).latency_ms);
  }
  const double bound_ms = first + second + min_link;
  GC_REQUIRE_MSG(bound_ms > 0.0 && bound_ms < kInf,
                 "sharded execution needs a positive cross-router latency "
                 "floor (>= 2 peers and >= 1 underlay link)");
  return std::max<std::int64_t>(
      1, sim::SimTime::millis(bound_ms).as_micros() - 1);
}

std::vector<std::unique_ptr<ShardTrace>> install_shard_trace(
    sim::ShardSet& engine, std::size_t shards, std::size_t peer_count) {
  std::vector<std::unique_ptr<ShardTrace>> shard_trace;
  if (!trace::counters().enabled() && !trace::histograms().enabled()) {
    return shard_trace;
  }
  for (std::size_t i = 0; i < shards; ++i) {
    auto per_shard = std::make_unique<ShardTrace>();
    if (trace::counters().enabled()) {
      per_shard->counters.enable(peer_count);
    }
    if (trace::histograms().enabled()) per_shard->histograms.enable();
    shard_trace.push_back(std::move(per_shard));
  }
  engine.exec_on_shards([&](std::size_t i) {
    shard_trace[i]->counter_guard =
        std::make_unique<trace::ScopedCounterRegistry>(
            shard_trace[i]->counters);
    shard_trace[i]->histogram_guard =
        std::make_unique<trace::ScopedHistogramRegistry>(
            shard_trace[i]->histograms);
  });
  return shard_trace;
}

void fold_shard_trace(sim::ShardSet& engine,
                      std::vector<std::unique_ptr<ShardTrace>>& shard_trace) {
  if (shard_trace.empty()) return;
  engine.exec_on_shards([&](std::size_t i) {
    shard_trace[i]->histogram_guard.reset();
    shard_trace[i]->counter_guard.reset();
  });
  for (const auto& per_shard : shard_trace) {
    trace::counters().merge(per_shard->counters.snapshot());
    trace::histograms().merge(per_shard->histograms.snapshot());
  }
}

}  // namespace groupcast::metrics::detail
