// Internals shared by the node-runtime harnesses (metrics/recovery.h and
// metrics/streaming.h): the conservative-lookahead bound that lets a
// scenario run on the sharded event kernel, and the per-shard trace
// registries that keep counter/histogram collection shard-count
// invariant.  Not part of the public metrics API.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.h"
#include "overlay/population.h"
#include "sim/shard_set.h"
#include "trace/counters.h"
#include "trace/histogram.h"

namespace groupcast::metrics::detail {

/// Conservative lookahead of the sharded kernel, in microseconds.  Peers
/// are sharded by access router, so every cross-shard message crosses at
/// least one underlay link and pays two (distinct) access latencies: its
/// delay is bounded below by the two smallest access latencies in the
/// population plus the cheapest physical link.  One microsecond of
/// headroom absorbs the float-sum rounding between this bound and the
/// per-pair latency the transport actually converts.  (Bandwidth pacing
/// only ever *adds* delay on top of that latency, so the bound holds
/// unchanged for capped runs.)
std::int64_t shard_lookahead_us(const net::UnderlayTopology& underlay,
                                const overlay::PeerPopulation& population);

/// Per-shard trace facilities: worker threads resolve trace::counters() /
/// trace::histograms() thread-locally, so each shard gets its own
/// registry (installed on the worker via exec_on_shards) and the
/// snapshots merge into the caller's registry at the end — integer sums,
/// hence shard-count invariant.
struct ShardTrace {
  trace::CounterRegistry counters;
  trace::HistogramRegistry histograms;
  std::unique_ptr<trace::ScopedCounterRegistry> counter_guard;
  std::unique_ptr<trace::ScopedHistogramRegistry> histogram_guard;
};

/// Installs one ShardTrace per shard (empty when the caller collects
/// nothing): each shard's worker thread gets isolated registries so the
/// run's samples never contend and merge deterministically.
std::vector<std::unique_ptr<ShardTrace>> install_shard_trace(
    sim::ShardSet& engine, std::size_t shards, std::size_t peer_count);

/// Parks the workers' registries and folds the per-shard snapshots into
/// the caller's (merge is a no-op while the caller's are disabled).
void fold_shard_trace(sim::ShardSet& engine,
                      std::vector<std::unique_ptr<ShardTrace>>& shard_trace);

}  // namespace groupcast::metrics::detail
