#include "metrics/recovery.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include <optional>

#include "core/fault_injection.h"
#include "core/invariants.h"
#include "core/middleware.h"
#include "core/node.h"
#include "sim/fault_plan.h"
#include "sim/recorder.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::metrics {

namespace {

void validate(const RecoveryOptions& rec) {
  GC_REQUIRE_MSG(rec.enabled, "recovery harness invoked while disabled");
  GC_REQUIRE_MSG(
      rec.loss_probability >= 0.0 && rec.loss_probability <= 1.0,
      "recovery.loss_probability must be in [0, 1]");
  GC_REQUIRE_MSG(rec.crash_fraction >= 0.0 && rec.crash_fraction <= 1.0,
                 "recovery.crash_fraction must be in [0, 1]");
  GC_REQUIRE_MSG(
      rec.graceful_fraction >= 0.0 && rec.graceful_fraction <= 1.0,
      "recovery.graceful_fraction must be in [0, 1]");
  GC_REQUIRE_MSG(rec.crash_fraction + rec.graceful_fraction <= 1.0,
                 "crash_fraction + graceful_fraction must stay <= 1");
  GC_REQUIRE_MSG(rec.heartbeat_seconds > 0.0,
                 "recovery.heartbeat_seconds must be > 0");
  GC_REQUIRE(rec.heartbeat_misses >= 1);
  GC_REQUIRE_MSG(rec.epoch_seconds > 0.0,
                 "recovery.epoch_seconds must be > 0");
  GC_REQUIRE(rec.convergence_epochs >= 1);
  GC_REQUIRE(rec.speaking_payloads >= 1);
  GC_REQUIRE_MSG(!rec.flow_control || rec.reliable_data,
                 "recovery.flow_control requires reliable_data");
  GC_REQUIRE(rec.slow_ack_factor >= 1);
}

}  // namespace

ScenarioResult run_recovery_scenario(const ScenarioConfig& config) {
  const RecoveryOptions& rec = config.recovery;
  validate(rec);
  ScenarioResult result;
  result.config = config;

  // Deployment: the middleware builds underlay + population + overlay from
  // config.seed; the harness splits its own RNG stream off the same source
  // so a (config, seed) pair is one deterministic trajectory whatever the
  // grid's job count.
  const auto middleware_ptr = make_scenario_middleware(config);
  core::GroupCastMiddleware& middleware = *middleware_ptr;
  result.repair_edges = middleware.connectivity_repair_edges();
  auto& simulator = middleware.simulator();
  util::Rng rng = middleware.rng().split();

  core::TransportOptions transport_options;
  transport_options.loss_probability = rec.loss_probability;
  core::Transport transport(simulator, middleware.population(),
                            transport_options, rng);

  core::NodeOptions node_options;
  node_options.advertisement = config.middleware_config().advertisement;
  node_options.ripple_ttl = config.ripple_ttl;
  node_options.heartbeat_interval =
      sim::SimTime::seconds(rec.heartbeat_seconds);
  node_options.missed_heartbeats_to_fail = rec.heartbeat_misses;
  node_options.reliability.enabled = rec.reliable_data;
  node_options.reliability.flow_control = rec.flow_control;
  if (rec.flow_control) node_options.reliability.window = rec.flow_window;
  node_options.adaptive = rec.adaptive;
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  nodes.reserve(config.peer_count);
  for (overlay::PeerId p = 0; p < config.peer_count; ++p) {
    auto per_node = node_options;
    if (rec.reliable_data && rec.slow_peer_stride != 0 &&
        p % rec.slow_peer_stride == 0) {
      // Slow child impairment: a coarser ack cadence starves the parent's
      // ack clock, backing data up in its per-edge sender buffer.
      per_node.reliability.ack_every *= rec.slow_ack_factor;
    }
    nodes.push_back(std::make_unique<core::GroupCastNode>(
        p, transport, middleware.graph(), per_node, rng));
    nodes.back()->start();
  }

  const sim::SimTime epoch = sim::SimTime::seconds(rec.epoch_seconds);
  sim::SimTime clock = sim::SimTime::zero();
  const auto advance = [&](sim::SimTime by) {
    clock = clock + by;
    simulator.run_until(clock);
  };

  // Flight recorder: one frame per protocol epoch, so recovery reports
  // carry the delivery / repair trajectory across the fault window.  Only
  // armed when the facility is on — a disabled run schedules no extra
  // events and stays byte-identical to pre-recorder builds.
  std::optional<sim::PeriodicRecorder> recorder;
  if (trace::flight_recorder().enabled()) {
    trace::flight_recorder().capture(simulator.now().as_micros());
    recorder.emplace(simulator, epoch);
  }

  // --- phase 1: establish the group ------------------------------------
  constexpr core::GroupId kGroup = 1;
  const overlay::PeerId rendezvous = middleware.pick_rendezvous();
  nodes[rendezvous]->create_group(kGroup);
  advance(epoch);  // advertisement flood settles

  std::vector<overlay::PeerId> subscribers;
  const std::size_t group_size = config.effective_group_size();
  for (const auto idx :
       rng.sample_indices(config.peer_count, std::min(group_size + 1,
                                                      config.peer_count))) {
    const auto p = static_cast<overlay::PeerId>(idx);
    if (p == rendezvous || subscribers.size() == group_size) continue;
    subscribers.push_back(p);
  }
  // Application-level retry loop: a node that reports terminal subscribe
  // failure (the ladder's give-up callback) re-subscribes one epoch later,
  // as a real client would.  `want` tracks which peers still want the
  // group — graceful leavers drop out below.
  std::unordered_set<overlay::PeerId> want(subscribers.begin(),
                                           subscribers.end());
  std::function<void(overlay::PeerId)> resubscribe_later =
      [&](overlay::PeerId s) {
        simulator.schedule_at(simulator.now() + epoch, [&, s] {
          if (want.count(s) && nodes[s]->running() &&
              !nodes[s]->is_subscribed(kGroup)) {
            nodes[s]->subscribe(kGroup);
          }
        });
      };
  for (const auto s : subscribers) {
    nodes[s]->on_subscribe_result(
        [&, s](core::GroupId, bool success) {
          if (!success && want.count(s)) resubscribe_later(s);
        });
  }
  for (const auto s : subscribers) nodes[s]->subscribe(kGroup);
  for (std::size_t e = 0; e < rec.convergence_epochs; ++e) {
    advance(epoch);
    const bool settled = std::all_of(
        subscribers.begin(), subscribers.end(), [&](overlay::PeerId s) {
          return !nodes[s]->exchange_pending(kGroup);
        });
    if (settled) break;
  }

  // Churn acts on the members that actually made it onto the tree as
  // subscribers (a failed subscriber can still sit on the tree as a pure
  // relay — e.g. pulled in as a rendezvous replica — and is not a member).
  std::vector<overlay::PeerId> members;
  for (const auto s : subscribers) {
    if (nodes[s]->is_subscribed(kGroup) && nodes[s]->on_tree(kGroup)) {
      members.push_back(s);
    }
  }

  // --- phase 2: inject churn -------------------------------------------
  std::vector<overlay::PeerId> victims = members;
  rng.shuffle(victims);
  const auto n_crash = static_cast<std::size_t>(
      rec.crash_fraction * static_cast<double>(members.size()));
  const auto n_leave = static_cast<std::size_t>(
      rec.graceful_fraction * static_cast<double>(members.size()));
  sim::FaultPlan plan;
  if (!rec.fault_plan.empty()) {
    plan.merge(sim::FaultPlan::parse(rec.fault_plan));
  }
  // Stagger the departures across one epoch so later failures can hit
  // peers that are already busy recovering from earlier ones.
  const sim::SimTime churn_start = clock;
  const std::size_t departures = n_crash + n_leave;
  for (std::size_t i = 0; i < departures; ++i) {
    const sim::SimTime at =
        churn_start + sim::SimTime::micros(epoch.as_micros() * (i + 1) /
                                           (departures + 1));
    if (i < n_crash) {
      plan.crashes.push_back(
          sim::CrashEvent{at, static_cast<sim::FaultNodeId>(victims[i])});
    } else {
      const auto leaver = victims[i];
      simulator.schedule_at(at, [&nodes, &want, leaver] {
        // The leaver may have given its subscription up (lossy retries
        // exhausted) between scheduling and firing; nothing to leave then.
        want.erase(leaver);
        if (nodes[leaver]->running() &&
            nodes[leaver]->is_subscribed(kGroup)) {
          nodes[leaver]->unsubscribe(kGroup);
        }
      });
    }
  }
  core::FaultInjector injector(std::move(plan), transport);
  injector.arm([&nodes](overlay::PeerId victim) {
    if (victim < nodes.size()) nodes[victim]->crash();
  });

  std::unordered_set<overlay::PeerId> departed;
  for (std::size_t i = 0; i < departures && i < victims.size(); ++i) {
    departed.insert(victims[i]);
  }
  std::vector<overlay::PeerId> survivors;
  for (const auto m : members) {
    if (!departed.count(m)) survivors.push_back(m);
  }

  const std::size_t messages_before_recovery = transport.messages_sent();
  advance(epoch);  // the churn window itself

  // --- phase 3: observe recovery epoch by epoch -------------------------
  // An orphan is a survivor found off the tree at an epoch boundary; its
  // orphan time is the number of epochs until it is first seen re-attached
  // (convergence_epochs if never).
  std::unordered_map<overlay::PeerId, std::size_t> reattach_epoch;
  std::unordered_set<overlay::PeerId> orphans;
  std::size_t epochs_to_converge = rec.convergence_epochs;
  for (std::size_t e = 1; e <= rec.convergence_epochs; ++e) {
    bool converged = true;
    for (const auto s : survivors) {
      const bool attached =
          nodes[s]->on_tree(kGroup) && !nodes[s]->exchange_pending(kGroup);
      if (!attached) {
        converged = false;
        orphans.insert(s);
      } else if (orphans.count(s) && !reattach_epoch.count(s)) {
        reattach_epoch[s] = e - 1;  // epochs spent orphaned
      }
    }
    if (converged && epochs_to_converge == rec.convergence_epochs) {
      epochs_to_converge = e - 1;
      break;
    }
    advance(epoch);
  }
  result.epochs_to_converge = static_cast<double>(epochs_to_converge);
  if (!orphans.empty()) {
    double total_epochs = 0.0;
    for (const auto o : orphans) {
      const auto it = reattach_epoch.find(o);
      total_epochs += static_cast<double>(
          it != reattach_epoch.end() ? it->second : rec.convergence_epochs);
    }
    result.mean_orphan_epochs =
        total_epochs / static_cast<double>(orphans.size());
  }

  std::size_t reattached = 0;
  for (const auto s : survivors) {
    if (nodes[s]->on_tree(kGroup)) ++reattached;
  }
  result.reattached_fraction =
      survivors.empty() ? 1.0
                        : static_cast<double>(reattached) /
                              static_cast<double>(survivors.size());
  result.control_overhead =
      static_cast<double>(transport.messages_sent() -
                          messages_before_recovery) /
      static_cast<double>(std::max<std::size_t>(1, survivors.size()));

  // --- phase 4: delivery-ratio probe ------------------------------------
  std::size_t deliveries = 0;
  const sim::SimTime published_at = simulator.now();
  for (const auto s : survivors) {
    nodes[s]->on_data([&deliveries, &simulator, published_at](
                          core::GroupId, std::uint64_t, overlay::PeerId) {
      ++deliveries;
      trace::histograms().record(
          trace::HistogramId::kEndToEndDelayUs,
          static_cast<std::uint64_t>(
              (simulator.now() - published_at).as_micros()));
    });
  }
  for (std::uint64_t payload = 1; payload <= rec.speaking_payloads;
       ++payload) {
    nodes[rendezvous]->publish(kGroup, payload);
  }
  advance(epoch);
  const std::size_t expected = survivors.size() * rec.speaking_payloads;
  result.delivery_ratio =
      expected == 0
          ? 1.0
          : static_cast<double>(deliveries) / static_cast<double>(expected);

  // --- phase 5: structural invariants -----------------------------------
  // Stale relay edges collapse in heartbeat-paced cascades (a lost
  // LeaveMsg is repaired one prune window later, which may fold the
  // parent relay in turn), so give the structure the same convergence
  // budget before the final verdict instead of judging a mid-cascade
  // snapshot.
  std::vector<const core::GroupCastNode*> views;
  views.reserve(nodes.size());
  for (const auto& node : nodes) views.push_back(node.get());
  auto report =
      core::check_tree_invariants(views, kGroup, rendezvous, survivors);
  for (std::size_t e = 0; e < rec.convergence_epochs && !report.ok(); ++e) {
    advance(epoch);
    report =
        core::check_tree_invariants(views, kGroup, rendezvous, survivors);
  }
  result.invariant_violations =
      static_cast<double>(report.violations.size());
  result.avg_tree_nodes = static_cast<double>(report.tree_nodes);

  // Reuse the engine-level fields that still make sense here so grid
  // reports stay uniform.
  result.subscription_success_rate =
      subscribers.empty() ? 1.0
                          : static_cast<double>(members.size()) /
                                static_cast<double>(subscribers.size());
  result.subscription_messages =
      static_cast<double>(transport.messages_sent());

  result.events_fired = simulator.events_fired();
  result.queue_high_water = simulator.queue_high_water();
  if (trace::counters().enabled()) {
    result.counters = trace::counters().snapshot();
  }
  if (trace::histograms().enabled()) {
    result.histograms = trace::histograms().snapshot();
  }
  if (trace::flight_recorder().enabled()) {
    // A final frame so the timeline's last point reflects the settled
    // end state even when convergence beat the periodic capture.
    trace::flight_recorder().capture(clock.as_micros());
    result.timeline = trace::flight_recorder().frames();
  }
  return result;
}

}  // namespace groupcast::metrics
