#include "metrics/recovery.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include <optional>

#include "core/fault_injection.h"
#include "core/invariants.h"
#include "core/middleware.h"
#include "core/node.h"
#include "core/replication.h"
#include "metrics/harness_common.h"
#include "sim/fault_plan.h"
#include "sim/recorder.h"
#include "sim/shard_set.h"
#include "trace/counters.h"
#include "trace/histogram.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::metrics {

namespace {

void validate(const RecoveryOptions& rec) {
  GC_REQUIRE_MSG(rec.enabled, "recovery harness invoked while disabled");
  GC_REQUIRE_MSG(
      rec.loss_probability >= 0.0 && rec.loss_probability <= 1.0,
      "recovery.loss_probability must be in [0, 1]");
  GC_REQUIRE_MSG(rec.crash_fraction >= 0.0 && rec.crash_fraction <= 1.0,
                 "recovery.crash_fraction must be in [0, 1]");
  GC_REQUIRE_MSG(
      rec.graceful_fraction >= 0.0 && rec.graceful_fraction <= 1.0,
      "recovery.graceful_fraction must be in [0, 1]");
  GC_REQUIRE_MSG(rec.crash_fraction + rec.graceful_fraction <= 1.0,
                 "crash_fraction + graceful_fraction must stay <= 1");
  GC_REQUIRE_MSG(rec.heartbeat_seconds > 0.0,
                 "recovery.heartbeat_seconds must be > 0");
  GC_REQUIRE(rec.heartbeat_misses >= 1);
  GC_REQUIRE_MSG(rec.epoch_seconds > 0.0,
                 "recovery.epoch_seconds must be > 0");
  GC_REQUIRE(rec.convergence_epochs >= 1);
  GC_REQUIRE(rec.speaking_payloads >= 1);
  GC_REQUIRE_MSG(!rec.flow_control || rec.reliable_data,
                 "recovery.flow_control requires reliable_data");
  GC_REQUIRE(rec.slow_ack_factor >= 1);
  GC_REQUIRE_MSG(rec.partition_seconds >= 0.0,
                 "recovery.partition_seconds must be >= 0");
  GC_REQUIRE_MSG(rec.partition_seconds == 0.0 || rec.replication,
                 "recovery.partition_seconds requires replication");
  if (rec.replication) {
    GC_REQUIRE_MSG(rec.replicas >= 1, "recovery.replicas must be >= 1");
    GC_REQUIRE_MSG(rec.lease_seconds > 0.0,
                   "recovery.lease_seconds must be > 0");
  }
  if (rec.partition_seconds > 0.0) {
    GC_REQUIRE_MSG(
        rec.partition_fraction > 0.0 && rec.partition_fraction <= 0.5,
        "recovery.partition_fraction must be in (0, 0.5]");
    GC_REQUIRE(rec.partition_payloads >= 1);
  }
}

/// Payload-id bases of the per-side partition probes; far above anything
/// the speaking rounds use, so side counters never alias.
constexpr std::uint64_t kMinorityProbeBase = 1'000'000;
constexpr std::uint64_t kMajorityProbeBase = 2'000'000;

}  // namespace

ScenarioResult run_recovery_scenario(const ScenarioConfig& config) {
  const RecoveryOptions& rec = config.recovery;
  validate(rec);
  GC_REQUIRE_MSG(config.shards >= 1, "config.shards must be >= 1");
  GC_REQUIRE_MSG(config.shards <= config.peer_count,
                 "config.shards must not exceed peer_count");
  ScenarioResult result;
  result.config = config;

  // Deployment: the middleware builds underlay + population + overlay from
  // config.seed; the harness splits its own RNG stream off the same source
  // so a (config, seed) pair is one deterministic trajectory whatever the
  // grid's job count.
  const auto middleware_ptr = make_scenario_middleware(config);
  core::GroupCastMiddleware& middleware = *middleware_ptr;
  result.repair_edges = middleware.connectivity_repair_edges();
  auto& simulator = middleware.simulator();
  util::Rng rng = middleware.rng().split();

  core::TransportOptions transport_options;
  transport_options.loss_probability = rec.loss_probability;
  // Sharded kernel: with config.shards >= 2 the run executes on a
  // ShardSet of per-shard wheels advancing in conservative-lookahead
  // epochs instead of the middleware's single wheel.  The engine is
  // declared before the transport so the transport (the ShardSet client)
  // is torn down first.
  std::optional<sim::ShardSet> engine;
  if (config.shards > 1) {
    engine.emplace(config.shards,
                   detail::shard_lookahead_us(middleware.underlay(),
                                              middleware.population()),
                   simulator.now());
  }
  std::optional<core::Transport> transport_storage;
  if (engine) {
    transport_storage.emplace(*engine, middleware.population(),
                              transport_options, rng);
  } else {
    transport_storage.emplace(simulator, middleware.population(),
                              transport_options, rng);
  }
  core::Transport& transport = *transport_storage;

  // Worker threads resolve the trace facilities thread-locally; give each
  // shard its own registries whenever the caller collects anything, and
  // fold the snapshots back in before the result captures them.
  std::vector<std::unique_ptr<detail::ShardTrace>> shard_trace;
  if (engine) {
    shard_trace =
        detail::install_shard_trace(*engine, config.shards, config.peer_count);
  }

  core::NodeOptions node_options;
  node_options.advertisement = config.middleware_config().advertisement;
  node_options.ripple_ttl = config.ripple_ttl;
  node_options.heartbeat_interval =
      sim::SimTime::seconds(rec.heartbeat_seconds);
  node_options.missed_heartbeats_to_fail = rec.heartbeat_misses;
  node_options.reliability.enabled = rec.reliable_data;
  node_options.reliability.flow_control = rec.flow_control;
  if (rec.flow_control) node_options.reliability.window = rec.flow_window;
  node_options.adaptive = rec.adaptive;
  if (rec.replication) {
    node_options.replication.enabled = true;
    node_options.replication.replicas = rec.replicas;
    node_options.replication.lease_interval =
        sim::SimTime::seconds(rec.lease_seconds);
    node_options.replication.lease_duration =
        sim::SimTime::seconds(rec.lease_seconds * 4.0);
    // Ladder targeting must round-robin over at least the replica quorum,
    // or an orphan could never reach the elected leaseholder.
    node_options.rendezvous_replicas =
        std::max(node_options.rendezvous_replicas, rec.replicas);
  }
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  nodes.reserve(config.peer_count);
  for (overlay::PeerId p = 0; p < config.peer_count; ++p) {
    auto per_node = node_options;
    if (rec.reliable_data && rec.slow_peer_stride != 0 &&
        p % rec.slow_peer_stride == 0) {
      // Slow child impairment: a coarser ack cadence starves the parent's
      // ack clock, backing data up in its per-edge sender buffer.
      per_node.reliability.ack_every *= rec.slow_ack_factor;
    }
    nodes.push_back(std::make_unique<core::GroupCastNode>(
        p, transport, middleware.graph(), per_node, rng));
    nodes.back()->start();
  }

  const sim::SimTime epoch = sim::SimTime::seconds(rec.epoch_seconds);
  sim::SimTime clock = sim::SimTime::zero();
  const auto advance = [&](sim::SimTime by) {
    clock = clock + by;
    if (engine) {
      engine->run_until(clock);
    } else {
      simulator.run_until(clock);
    }
  };

  // Flight recorder: one frame per protocol epoch, so recovery reports
  // carry the delivery / repair trajectory across the fault window.  Only
  // armed when the facility is on — a disabled run schedules no extra
  // events and stays byte-identical to pre-recorder builds.  The recorder
  // snapshots global state from an event handler, which has no safe home
  // on a sharded run — require the single wheel.
  std::optional<sim::PeriodicRecorder> recorder;
  if (trace::flight_recorder().enabled()) {
    GC_REQUIRE_MSG(!engine,
                   "the flight recorder requires the single-wheel engine "
                   "(run with shards == 1)");
    trace::flight_recorder().capture(simulator.now().as_micros());
    recorder.emplace(simulator, epoch);
  }

  // --- phase 1: establish the group ------------------------------------
  constexpr core::GroupId kGroup = 1;
  const overlay::PeerId rendezvous = middleware.pick_rendezvous();
  nodes[rendezvous]->create_group(kGroup);
  advance(epoch);  // advertisement flood settles

  std::vector<overlay::PeerId> subscribers;
  const std::size_t group_size = config.effective_group_size();
  for (const auto idx :
       rng.sample_indices(config.peer_count, std::min(group_size + 1,
                                                      config.peer_count))) {
    const auto p = static_cast<overlay::PeerId>(idx);
    if (p == rendezvous || subscribers.size() == group_size) continue;
    subscribers.push_back(p);
  }
  // Application-level retry loop: a node that reports terminal subscribe
  // failure (the ladder's give-up callback) re-subscribes one epoch later,
  // as a real client would.  `want` tracks which peers still want the
  // group — graceful leavers drop out below.  A per-peer byte vector
  // instead of a shared set: every entry is only touched by closures of
  // that one peer, which all run on its own shard, so the sharded run
  // needs no lock around it.
  std::vector<char> want(config.peer_count, 0);
  for (const auto s : subscribers) want[s] = 1;
  std::function<void(overlay::PeerId)> resubscribe_later =
      [&](overlay::PeerId s) {
        auto& node_sim = transport.simulator_for(s);
        node_sim.schedule_at(node_sim.now() + epoch, [&, s] {
          if (want[s] != 0 && nodes[s]->running() &&
              !nodes[s]->is_subscribed(kGroup)) {
            nodes[s]->subscribe(kGroup);
          }
        });
      };
  for (const auto s : subscribers) {
    nodes[s]->on_subscribe_result(
        [&, s](core::GroupId, bool success) {
          if (!success && want[s] != 0) resubscribe_later(s);
        });
  }
  for (const auto s : subscribers) nodes[s]->subscribe(kGroup);
  for (std::size_t e = 0; e < rec.convergence_epochs; ++e) {
    advance(epoch);
    const bool settled = std::all_of(
        subscribers.begin(), subscribers.end(), [&](overlay::PeerId s) {
          return !nodes[s]->exchange_pending(kGroup);
        });
    if (settled) break;
  }

  // Churn acts on the members that actually made it onto the tree as
  // subscribers (a failed subscriber can still sit on the tree as a pure
  // relay — e.g. pulled in as a rendezvous replica — and is not a member).
  std::vector<overlay::PeerId> members;
  for (const auto s : subscribers) {
    if (nodes[s]->is_subscribed(kGroup) && nodes[s]->on_tree(kGroup)) {
      members.push_back(s);
    }
  }

  // --- phase 2: inject churn -------------------------------------------
  std::vector<overlay::PeerId> victims = members;
  rng.shuffle(victims);
  const auto n_crash = static_cast<std::size_t>(
      rec.crash_fraction * static_cast<double>(members.size()));
  const auto n_leave = static_cast<std::size_t>(
      rec.graceful_fraction * static_cast<double>(members.size()));
  sim::FaultPlan plan;
  if (!rec.fault_plan.empty()) {
    plan.merge(sim::FaultPlan::parse(rec.fault_plan));
  }
  // Stagger the departures across one epoch so later failures can hit
  // peers that are already busy recovering from earlier ones.
  const sim::SimTime churn_start = clock;
  const std::size_t departures = n_crash + n_leave;
  for (std::size_t i = 0; i < departures; ++i) {
    const sim::SimTime at =
        churn_start + sim::SimTime::micros(epoch.as_micros() * (i + 1) /
                                           (departures + 1));
    if (i < n_crash) {
      plan.crashes.push_back(
          sim::CrashEvent{at, static_cast<sim::FaultNodeId>(victims[i])});
    } else {
      const auto leaver = victims[i];
      transport.simulator_for(leaver).schedule_at(at, [&nodes, &want,
                                                       leaver] {
        // The leaver may have given its subscription up (lossy retries
        // exhausted) between scheduling and firing; nothing to leave then.
        want[leaver] = 0;
        if (nodes[leaver]->running() &&
            nodes[leaver]->is_subscribed(kGroup)) {
          nodes[leaver]->unsubscribe(kGroup);
        }
      });
    }
  }
  core::FaultInjector injector(std::move(plan), transport);
  injector.arm([&nodes](overlay::PeerId victim) {
    if (victim < nodes.size()) nodes[victim]->crash();
  });

  std::unordered_set<overlay::PeerId> departed;
  for (std::size_t i = 0; i < departures && i < victims.size(); ++i) {
    departed.insert(victims[i]);
  }
  std::vector<overlay::PeerId> survivors;
  for (const auto m : members) {
    if (!departed.count(m)) survivors.push_back(m);
  }

  const std::size_t messages_before_recovery = transport.messages_sent();
  advance(epoch);  // the churn window itself

  // --- phase 3: observe recovery epoch by epoch -------------------------
  // An orphan is a survivor found off the tree at an epoch boundary; its
  // orphan time is the number of epochs until it is first seen re-attached
  // (convergence_epochs if never).
  std::unordered_map<overlay::PeerId, std::size_t> reattach_epoch;
  std::unordered_set<overlay::PeerId> orphans;
  std::size_t epochs_to_converge = rec.convergence_epochs;
  for (std::size_t e = 1; e <= rec.convergence_epochs; ++e) {
    bool converged = true;
    for (const auto s : survivors) {
      const bool attached =
          nodes[s]->on_tree(kGroup) && !nodes[s]->exchange_pending(kGroup);
      if (!attached) {
        converged = false;
        orphans.insert(s);
      } else if (orphans.count(s) && !reattach_epoch.count(s)) {
        reattach_epoch[s] = e - 1;  // epochs spent orphaned
      }
    }
    if (converged && epochs_to_converge == rec.convergence_epochs) {
      epochs_to_converge = e - 1;
      break;
    }
    advance(epoch);
  }
  result.epochs_to_converge = static_cast<double>(epochs_to_converge);
  if (!orphans.empty()) {
    double total_epochs = 0.0;
    for (const auto o : orphans) {
      const auto it = reattach_epoch.find(o);
      total_epochs += static_cast<double>(
          it != reattach_epoch.end() ? it->second : rec.convergence_epochs);
    }
    result.mean_orphan_epochs =
        total_epochs / static_cast<double>(orphans.size());
  }

  std::size_t reattached = 0;
  for (const auto s : survivors) {
    if (nodes[s]->on_tree(kGroup)) ++reattached;
  }
  result.reattached_fraction =
      survivors.empty() ? 1.0
                        : static_cast<double>(reattached) /
                              static_cast<double>(survivors.size());
  result.control_overhead =
      static_cast<double>(transport.messages_sent() -
                          messages_before_recovery) /
      static_cast<double>(std::max<std::size_t>(1, survivors.size()));

  std::vector<const core::GroupCastNode*> views;
  views.reserve(nodes.size());
  for (const auto& node : nodes) views.push_back(node.get());

  // --- phase 3b: RP-side partition window and heal ----------------------
  // The rendezvous point plus a slice of its own subtree are cut off from
  // the rest of the network (every replica stays on the majority side, so
  // the quorum can elect).  Both sides publish mid-window; delivery is
  // counted per side, and the heal must merge the divergent lease logs
  // with neither duplicate nor lost epochs.
  if (rec.replication && rec.partition_seconds > 0.0) {
    const auto replica_set = core::rendezvous_replicas(
        kGroup, rendezvous, config.peer_count,
        std::min(rec.replicas, config.peer_count - 1));
    const std::unordered_set<overlay::PeerId> replica_members(
        replica_set.begin(), replica_set.end());
    const std::unordered_set<overlay::PeerId> survivor_set(survivors.begin(),
                                                           survivors.end());
    // The minority side is a connected subtree: BFS from the rendezvous
    // root, parents before children, until the target share of surviving
    // subscribers is isolated.  Replicas are never enqueued — they (and
    // everything below them) belong to the majority.
    const std::size_t n_minority = std::max<std::size_t>(
        1, static_cast<std::size_t>(rec.partition_fraction *
                                    static_cast<double>(survivors.size())));
    std::unordered_set<overlay::PeerId> minority_set{rendezvous};
    std::vector<overlay::PeerId> frontier{rendezvous};
    std::size_t minority_subscribers = 0;
    for (std::size_t i = 0;
         i < frontier.size() && minority_subscribers < n_minority; ++i) {
      for (const auto child : nodes[frontier[i]]->tree_children(kGroup)) {
        if (minority_subscribers >= n_minority) break;
        if (child >= nodes.size() || !nodes[child]->running()) continue;
        if (replica_members.count(child)) continue;
        if (!minority_set.insert(child).second) continue;
        frontier.push_back(child);
        if (survivor_set.count(child)) ++minority_subscribers;
      }
    }
    std::vector<overlay::PeerId> minority(minority_set.begin(),
                                          minority_set.end());
    std::sort(minority.begin(), minority.end());
    std::vector<overlay::PeerId> majority;
    for (overlay::PeerId p = 0; p < config.peer_count; ++p) {
      if (!minority_set.count(p)) majority.push_back(p);
    }
    // Sides cover every peer: traffic touching a peer listed on neither
    // side would pass the filter and tunnel across the cut.
    sim::FaultPlan partition_plan;
    partition_plan.partitions.push_back(sim::PartitionWindow{
        clock, clock + sim::SimTime::seconds(rec.partition_seconds),
        std::vector<sim::FaultNodeId>(minority.begin(), minority.end()),
        std::vector<sim::FaultNodeId>(majority.begin(), majority.end())});
    {
      // Scoped: constructing the injector replaces the churn injector as
      // the transport's fault filter; it is restored below.
      core::FaultInjector partition_injector(std::move(partition_plan),
                                             transport);
      // Probe late in the window: the majority side's cut subtree heads
      // walk the full recovery ladder (each partitioned rung candidate
      // burns a whole retry ladder) before they reach the elected
      // replica, so the delivery probe measures the *steady* partitioned
      // state, not the failover transient.
      advance(sim::SimTime::seconds(rec.partition_seconds * 0.8));

      // The majority must have elected by now, and each side may hold at
      // most one leaseholder.
      const auto mid = core::check_replication_invariants(
          views, kGroup, {minority, majority});
      result.invariant_violations +=
          static_cast<double>(mid.violations.size());

      overlay::PeerId majority_leader = overlay::kNoPeer;
      for (const auto r : replica_set) {
        if (nodes[r]->running() && nodes[r]->is_leaseholder(kGroup)) {
          majority_leader = r;
          break;
        }
      }
      // Atomic tallies: in sharded mode the probes land on whatever shard
      // owns the receiver.  Relaxed is enough — totals are read only
      // after the workers park at the epoch barrier.
      std::atomic<std::size_t> minority_deliveries{0};
      std::atomic<std::size_t> majority_deliveries{0};
      for (const auto s : survivors) {
        const bool minority_side = minority_set.count(s) != 0;
        nodes[s]->on_data([&minority_deliveries, &majority_deliveries,
                           minority_side](core::GroupId, std::uint64_t id,
                                          overlay::PeerId) {
          if (id >= kMinorityProbeBase && id < kMajorityProbeBase) {
            if (minority_side) {
              minority_deliveries.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (id >= kMajorityProbeBase) {
            if (!minority_side) {
              majority_deliveries.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      if (nodes[rendezvous]->running() &&
          nodes[rendezvous]->on_tree(kGroup)) {
        for (std::uint64_t i = 0; i < rec.partition_payloads; ++i) {
          nodes[rendezvous]->publish(kGroup, kMinorityProbeBase + i);
        }
      }
      if (majority_leader != overlay::kNoPeer &&
          nodes[majority_leader]->on_tree(kGroup)) {
        for (std::uint64_t i = 0; i < rec.partition_payloads; ++i) {
          nodes[majority_leader]->publish(kGroup, kMajorityProbeBase + i);
        }
      }
      advance(sim::SimTime::seconds(rec.partition_seconds * 0.2));
      for (const auto s : survivors) nodes[s]->on_data(nullptr);

      std::size_t minority_probe_nodes = 0;
      std::size_t majority_probe_nodes = 0;
      for (const auto s : survivors) {
        if (minority_set.count(s)) {
          ++minority_probe_nodes;
        } else if (s != majority_leader) {
          ++majority_probe_nodes;
        }
      }
      result.partition_minority_delivery =
          minority_probe_nodes == 0
              ? 1.0
              : static_cast<double>(minority_deliveries.load()) /
                    static_cast<double>(minority_probe_nodes *
                                        rec.partition_payloads);
      result.partition_majority_delivery =
          majority_probe_nodes == 0
              ? 1.0
              : static_cast<double>(majority_deliveries.load()) /
                    static_cast<double>(majority_probe_nodes *
                                        rec.partition_payloads);
    }
    transport.set_fault_filter(&injector);  // restore the churn plan

    // Heal: members reconcile their epoch logs and the deposed caretaker
    // folds its subtree back under the elected leader.
    auto healed = core::check_replication_invariants(views, kGroup);
    for (std::size_t e = 0;
         e < rec.convergence_epochs &&
         (!healed.ok() || !nodes[rendezvous]->on_tree(kGroup));
         ++e) {
      advance(epoch);
      healed = core::check_replication_invariants(views, kGroup);
    }
    result.invariant_violations +=
        static_cast<double>(healed.violations.size());
    result.lease_handoffs =
        healed.union_records > 0
            ? static_cast<double>(healed.union_records - 1)
            : 0.0;
    result.epoch_conflicts =
        static_cast<double>(healed.conflicting_records);
  }

  // After a lease handoff the tree re-roots at the acting leaseholder, so
  // the delivery probe and reachability checks anchor there, not at the
  // original rendezvous point.
  const auto acting_root = [&]() -> overlay::PeerId {
    if (!rec.replication) return rendezvous;
    if (nodes[rendezvous]->running() &&
        nodes[rendezvous]->is_leaseholder(kGroup)) {
      return rendezvous;
    }
    for (const auto r : core::rendezvous_replicas(
             kGroup, rendezvous, config.peer_count,
             std::min(rec.replicas, config.peer_count - 1))) {
      if (nodes[r]->running() && nodes[r]->is_leaseholder(kGroup)) return r;
    }
    return rendezvous;
  };

  // --- phase 4: delivery-ratio probe ------------------------------------
  std::atomic<std::size_t> deliveries{0};
  const sim::SimTime published_at = engine ? engine->now() : simulator.now();
  for (const auto s : survivors) {
    // The delay sample reads the receiver's own clock: on the single
    // wheel that is the shared simulator (same object as before), on a
    // sharded run the receiver's shard.
    sim::Simulator& node_sim = transport.simulator_for(s);
    nodes[s]->on_data([&deliveries, &node_sim, published_at](
                          core::GroupId, std::uint64_t, overlay::PeerId) {
      deliveries.fetch_add(1, std::memory_order_relaxed);
      trace::histograms().record(
          trace::HistogramId::kEndToEndDelayUs,
          static_cast<std::uint64_t>(
              (node_sim.now() - published_at).as_micros()));
    });
  }
  const overlay::PeerId speaker =
      nodes[rendezvous]->running() && nodes[rendezvous]->on_tree(kGroup)
          ? rendezvous
          : acting_root();
  for (std::uint64_t payload = 1; payload <= rec.speaking_payloads;
       ++payload) {
    nodes[speaker]->publish(kGroup, payload);
  }
  advance(epoch);
  const std::size_t expected = survivors.size() * rec.speaking_payloads;
  result.delivery_ratio =
      expected == 0 ? 1.0
                    : static_cast<double>(deliveries.load()) /
                          static_cast<double>(expected);

  // --- phase 5: structural invariants -----------------------------------
  // Stale relay edges collapse in heartbeat-paced cascades (a lost
  // LeaveMsg is repaired one prune window later, which may fold the
  // parent relay in turn), so give the structure the same convergence
  // budget before the final verdict instead of judging a mid-cascade
  // snapshot.
  auto report =
      core::check_tree_invariants(views, kGroup, acting_root(), survivors);
  for (std::size_t e = 0; e < rec.convergence_epochs && !report.ok(); ++e) {
    advance(epoch);
    report =
        core::check_tree_invariants(views, kGroup, acting_root(), survivors);
  }
  result.invariant_violations +=
      static_cast<double>(report.violations.size());
  result.avg_tree_nodes = static_cast<double>(report.tree_nodes);

  // Reuse the engine-level fields that still make sense here so grid
  // reports stay uniform.
  result.subscription_success_rate =
      subscribers.empty() ? 1.0
                          : static_cast<double>(members.size()) /
                                static_cast<double>(subscribers.size());
  result.subscription_messages =
      static_cast<double>(transport.messages_sent());

  if (engine) {
    result.events_fired = engine->events_fired();
    // Per-shard wheels each track a high-water mark; a cross-shard
    // maximum would vary with the shard count, so the sharded engine
    // reports 0 here (documented in PERFORMANCE.md).
    result.queue_high_water = 0;
    result.events_per_shard = engine->events_per_shard();
    detail::fold_shard_trace(*engine, shard_trace);
  } else {
    result.events_fired = simulator.events_fired();
    result.queue_high_water = simulator.queue_high_water();
  }
  if (trace::counters().enabled()) {
    result.counters = trace::counters().snapshot();
  }
  if (trace::histograms().enabled()) {
    result.histograms = trace::histograms().snapshot();
  }
  if (trace::flight_recorder().enabled()) {
    // A final frame so the timeline's last point reflects the settled
    // end state even when convergence beat the periodic capture.
    trace::flight_recorder().capture(clock.as_micros());
    result.timeline = trace::flight_recorder().frames();
  }
  return result;
}

}  // namespace groupcast::metrics
