// Churn-and-loss recovery harness over the deployable node runtime.
//
// While run_scenario exercises the engine-level protocols on a quiet
// network, this harness stands up one GroupCastNode per peer, injects a
// deterministic fault plan (ungraceful crashes, graceful leaves, partition
// windows, burst loss) through core::FaultInjector, and measures how the
// reliable control plane (docs/ROBUSTNESS.md) re-converges:
//
//   * delivery ratio of a post-churn speaking round,
//   * the fraction of surviving subscribers re-attached to the tree,
//   * mean orphan time (in convergence epochs) and epochs to converge,
//   * control-plane overhead of the recovery window,
//   * structural invariant violations (core/invariants.h).
//
// Activated through ScenarioConfig::recovery (enabled = false keeps the
// classic engine path byte-identical), so the whole grid machinery —
// run_scenario_grid's worker pool, seed ladders, counter isolation —
// applies unchanged.  Determinism contract: for a fixed config the result
// is byte-identical whatever GridOptions::jobs is.
#pragma once

#include "metrics/experiment.h"

namespace groupcast::metrics {

/// Runs one node-runtime churn scenario.  Requires
/// `config.recovery.enabled`; run_scenario dispatches here on its own, so
/// callers normally never need this symbol directly.
ScenarioResult run_recovery_scenario(const ScenarioConfig& config);

}  // namespace groupcast::metrics
