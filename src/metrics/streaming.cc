#include "metrics/streaming.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/middleware.h"
#include "core/node.h"
#include "core/wire.h"
#include "metrics/harness_common.h"
#include "sim/shard_set.h"
#include "trace/counters.h"
#include "trace/histogram.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::metrics {

namespace {

void validate(const StreamingOptions& str) {
  GC_REQUIRE_MSG(str.enabled, "streaming harness invoked while disabled");
  GC_REQUIRE_MSG(
      str.loss_probability >= 0.0 && str.loss_probability <= 1.0,
      "streaming.loss_probability must be in [0, 1]");
  GC_REQUIRE_MSG(str.chunks >= 1, "streaming.chunks must be >= 1");
  GC_REQUIRE_MSG(str.chunk_interval_seconds > 0.0,
                 "streaming.chunk_interval_seconds must be > 0");
  GC_REQUIRE_MSG(str.chunk_bytes >= 1 &&
                     str.chunk_bytes <= core::kMaxChunkBytes,
                 "streaming.chunk_bytes must be in [1, 16 MiB]");
  GC_REQUIRE_MSG(str.deadline_seconds > 0.0,
                 "streaming.deadline_seconds must be > 0");
  GC_REQUIRE_MSG(str.uplink_kbps >= 0.0 && str.downlink_kbps >= 0.0,
                 "streaming bandwidth caps must be non-negative");
  GC_REQUIRE_MSG(!str.flow_control || str.reliable_data,
                 "streaming.flow_control requires reliable_data");
  GC_REQUIRE_MSG(str.sources.publishers >= 1,
                 "streaming.sources.publishers must be >= 1");
  GC_REQUIRE_MSG(str.flash_crowd_seconds > 0.0,
                 "streaming.flash_crowd_seconds must be > 0");
  GC_REQUIRE_MSG(str.heartbeat_seconds > 0.0,
                 "streaming.heartbeat_seconds must be > 0");
  GC_REQUIRE(str.heartbeat_misses >= 1);
  GC_REQUIRE_MSG(str.epoch_seconds > 0.0,
                 "streaming.epoch_seconds must be > 0");
  GC_REQUIRE(str.convergence_epochs >= 1);
}

/// Group ids used by the harness: the shared-tree mode uses kGroupBase
/// alone; per-source trees use kGroupBase + stream.
constexpr core::GroupId kGroupBase = 1;

/// One viewer's arrival log: publisher-major, chunk-minor, -1 = never
/// arrived.  Each slot is written only from its viewer's shard (the
/// on_chunk callback runs there), so the sharded run needs no locks.
struct ViewerLog {
  overlay::PeerId peer = overlay::kNoPeer;
  /// When this viewer became eligible (stream start, or the flash join
  /// instant): chunks published before it are back-catalog, not scored.
  std::int64_t eligible_from_us = 0;
  bool flash = false;
  std::vector<std::int64_t> arrival_us;
};

}  // namespace

ScenarioResult run_streaming_scenario(const ScenarioConfig& config) {
  const StreamingOptions& str = config.streaming;
  validate(str);
  GC_REQUIRE_MSG(config.shards >= 1, "config.shards must be >= 1");
  GC_REQUIRE_MSG(config.shards <= config.peer_count,
                 "config.shards must not exceed peer_count");
  const std::size_t n_streams = str.sources.publishers;
  const bool per_source =
      str.sources.mode == MultiSourceOptions::Mode::kPerSourceTrees;
  const std::size_t n_groups = per_source ? n_streams : 1;
  GC_REQUIRE_MSG(n_streams + 1 < config.peer_count,
                 "streaming needs peers beyond the publishers");

  ScenarioResult result;
  result.config = config;

  const auto middleware_ptr = make_scenario_middleware(config);
  core::GroupCastMiddleware& middleware = *middleware_ptr;
  result.repair_edges = middleware.connectivity_repair_edges();
  auto& simulator = middleware.simulator();
  util::Rng rng = middleware.rng().split();

  core::TransportOptions transport_options;
  transport_options.loss_probability = str.loss_probability;
  transport_options.bandwidth.uplink_kbps = str.uplink_kbps;
  transport_options.bandwidth.downlink_kbps = str.downlink_kbps;
  transport_options.bandwidth.scale_with_capacity =
      str.scale_caps_with_capacity;
  std::optional<sim::ShardSet> engine;
  if (config.shards > 1) {
    engine.emplace(config.shards,
                   detail::shard_lookahead_us(middleware.underlay(),
                                              middleware.population()),
                   simulator.now());
  }
  std::optional<core::Transport> transport_storage;
  if (engine) {
    transport_storage.emplace(*engine, middleware.population(),
                              transport_options, rng);
  } else {
    transport_storage.emplace(simulator, middleware.population(),
                              transport_options, rng);
  }
  core::Transport& transport = *transport_storage;

  std::vector<std::unique_ptr<detail::ShardTrace>> shard_trace;
  if (engine) {
    shard_trace =
        detail::install_shard_trace(*engine, config.shards, config.peer_count);
  }

  core::NodeOptions node_options;
  node_options.advertisement = config.middleware_config().advertisement;
  node_options.ripple_ttl = config.ripple_ttl;
  node_options.heartbeat_interval =
      sim::SimTime::seconds(str.heartbeat_seconds);
  node_options.missed_heartbeats_to_fail = str.heartbeat_misses;
  node_options.reliability.enabled = str.reliable_data;
  node_options.reliability.flow_control = str.flow_control;
  node_options.adaptive = str.adaptive;
  std::vector<std::unique_ptr<core::GroupCastNode>> nodes;
  nodes.reserve(config.peer_count);
  for (overlay::PeerId p = 0; p < config.peer_count; ++p) {
    nodes.push_back(std::make_unique<core::GroupCastNode>(
        p, transport, middleware.graph(), node_options, rng));
    nodes.back()->start();
  }

  const sim::SimTime epoch = sim::SimTime::seconds(str.epoch_seconds);
  sim::SimTime clock = sim::SimTime::zero();
  const auto advance = [&](sim::SimTime by) {
    clock = clock + by;
    if (engine) {
      engine->run_until(clock);
    } else {
      simulator.run_until(clock);
    }
  };

  // --- phase 1: sources, groups, and the advertisement flood ------------
  // Shared tree: the rendezvous roots the one group and every publisher
  // attaches as a subscriber (publishing up through its own attachment
  // point).  Per-source trees: each publisher creates — and thereby
  // roots — its own group.
  const overlay::PeerId rendezvous = middleware.pick_rendezvous();
  std::vector<overlay::PeerId> publishers;
  for (const auto idx : rng.sample_indices(
           config.peer_count,
           std::min(n_streams + 1, config.peer_count))) {
    const auto p = static_cast<overlay::PeerId>(idx);
    if (p == rendezvous || publishers.size() == n_streams) continue;
    publishers.push_back(p);
  }
  GC_REQUIRE_MSG(publishers.size() == n_streams,
                 "peer_count too small for the requested publishers");
  if (per_source) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      nodes[publishers[s]]->create_group(
          kGroupBase + static_cast<core::GroupId>(s));
    }
  } else {
    nodes[rendezvous]->create_group(kGroupBase);
  }
  advance(epoch);  // advertisement flood settles

  // --- phase 2: viewers subscribe, tree converges -----------------------
  std::vector<char> is_source(config.peer_count, 0);
  for (const auto p : publishers) is_source[p] = 1;
  is_source[rendezvous] = 1;
  std::vector<overlay::PeerId> viewers;
  const std::size_t group_size = config.effective_group_size();
  for (const auto idx : rng.sample_indices(
           config.peer_count,
           std::min(group_size + n_streams + 1, config.peer_count))) {
    const auto p = static_cast<overlay::PeerId>(idx);
    if (is_source[p] != 0 || viewers.size() == group_size) continue;
    viewers.push_back(p);
  }

  // Application-level retry loop (the recovery harness idiom): a node
  // whose subscribe ladder gives up retries one epoch later.  `want` is
  // per-peer state only touched from that peer's own shard.
  std::vector<char> want(config.peer_count, 0);
  const auto all_groups = [&] {
    std::vector<core::GroupId> groups;
    for (std::size_t g = 0; g < n_groups; ++g) {
      groups.push_back(kGroupBase + static_cast<core::GroupId>(g));
    }
    return groups;
  }();
  std::function<void(overlay::PeerId, core::GroupId)> resubscribe_later =
      [&](overlay::PeerId p, core::GroupId g) {
        auto& node_sim = transport.simulator_for(p);
        node_sim.schedule_at(node_sim.now() + epoch, [&, p, g] {
          if (want[p] != 0 && nodes[p]->running() &&
              !nodes[p]->is_subscribed(g)) {
            nodes[p]->subscribe(g);
          }
        });
      };
  const auto arm_subscriber = [&](overlay::PeerId p) {
    want[p] = 1;
    nodes[p]->on_subscribe_result([&, p](core::GroupId g, bool success) {
      if (!success && want[p] != 0) resubscribe_later(p, g);
    });
  };
  for (const auto v : viewers) arm_subscriber(v);
  if (!per_source) {
    // Shared tree: publishers must be on the tree to publish.
    for (const auto p : publishers) arm_subscriber(p);
    for (const auto p : publishers) nodes[p]->subscribe(kGroupBase);
  }
  for (const auto v : viewers) {
    for (const auto g : all_groups) nodes[v]->subscribe(g);
  }
  for (std::size_t e = 0; e < str.convergence_epochs; ++e) {
    advance(epoch);
    const bool settled = std::all_of(
        viewers.begin(), viewers.end(), [&](overlay::PeerId v) {
          return std::none_of(all_groups.begin(), all_groups.end(),
                              [&](core::GroupId g) {
                                return nodes[v]->exchange_pending(g);
                              });
        });
    if (settled) break;
  }

  // --- phase 3: the streaming window ------------------------------------
  const sim::SimTime stream_start = clock;
  const auto interval =
      sim::SimTime::seconds(str.chunk_interval_seconds);
  const auto deadline_after = sim::SimTime::seconds(str.deadline_seconds);

  // Actual publish instants, publisher-major ((stream * chunks) + chunk);
  // -1 = the source never got the chunk out (it was off-tree at the
  // cadence tick).  Written only from the publisher's own shard.
  std::vector<std::int64_t> published_us(n_streams * str.chunks, -1);
  for (std::size_t s = 0; s < n_streams; ++s) {
    const overlay::PeerId pub = publishers[s];
    const core::GroupId g =
        per_source ? kGroupBase + static_cast<core::GroupId>(s) : kGroupBase;
    auto& pub_sim = transport.simulator_for(pub);
    for (std::size_t c = 0; c < str.chunks; ++c) {
      const sim::SimTime at =
          stream_start + sim::SimTime::micros(interval.as_micros() *
                                              static_cast<std::int64_t>(c + 1));
      pub_sim.schedule_at(at, [&, s, c, g, pub, at] {
        if (!nodes[pub]->running() || !nodes[pub]->on_tree(g)) return;
        published_us[s * str.chunks + c] = at.as_micros();
        nodes[pub]->publish_chunk(g, static_cast<std::uint32_t>(s),
                                  static_cast<std::uint32_t>(c),
                                  at + deadline_after,
                                  static_cast<std::uint32_t>(str.chunk_bytes));
      });
    }
  }

  // Viewer logs: regular viewers first, flash joiners appended below.
  std::vector<ViewerLog> logs;
  std::unordered_map<overlay::PeerId, std::size_t> log_index;
  const auto add_log = [&](overlay::PeerId p, std::int64_t eligible_from,
                           bool flash) {
    log_index[p] = logs.size();
    ViewerLog log;
    log.peer = p;
    log.eligible_from_us = eligible_from;
    log.flash = flash;
    log.arrival_us.assign(n_streams * str.chunks, -1);
    logs.push_back(std::move(log));
  };
  for (const auto v : viewers) {
    add_log(v, stream_start.as_micros(), false);
  }

  // Flash crowd: extra peers subscribing against the warm tree, spread
  // uniformly across the flash window at the head of the stream.
  std::vector<overlay::PeerId> flash_peers;
  if (str.flash_crowd_joins > 0) {
    std::vector<char> taken = is_source;
    for (const auto v : viewers) taken[v] = 1;
    std::size_t free_peers = 0;
    for (const auto t : taken) free_peers += t == 0 ? 1 : 0;
    GC_REQUIRE_MSG(str.flash_crowd_joins <= free_peers,
                   "flash_crowd_joins exceeds the peers left over after "
                   "sources and viewers");
    for (overlay::PeerId p = 0;
         p < config.peer_count && flash_peers.size() < str.flash_crowd_joins;
         ++p) {
      if (taken[p] == 0) flash_peers.push_back(p);
    }
    const auto flash_window = sim::SimTime::seconds(str.flash_crowd_seconds);
    for (std::size_t i = 0; i < flash_peers.size(); ++i) {
      const overlay::PeerId p = flash_peers[i];
      const sim::SimTime at =
          stream_start +
          sim::SimTime::micros(flash_window.as_micros() *
                               static_cast<std::int64_t>(i + 1) /
                               static_cast<std::int64_t>(flash_peers.size() +
                                                         1));
      add_log(p, at.as_micros(), true);
      arm_subscriber(p);
      transport.simulator_for(p).schedule_at(at, [&, p] {
        for (const auto g : all_groups) nodes[p]->subscribe(g);
      });
    }
  }

  // Arrival recording: the callback runs on the viewer's shard and only
  // writes that viewer's slots; first arrival wins (retransmit races and
  // duplicate suppression make repeats impossible anyway, but the guard
  // keeps the log monotone by construction).
  for (const auto& entry : log_index) {
    const overlay::PeerId p = entry.first;
    const std::size_t li = entry.second;
    auto& node_sim = transport.simulator_for(p);
    nodes[p]->on_chunk(
        [&logs, li, n_streams, chunks = str.chunks, &node_sim](
            core::GroupId, const core::ChunkMsg& msg) {
          if (msg.stream >= n_streams || msg.chunk_id >= chunks) return;
          auto& slot = logs[li].arrival_us[msg.stream * chunks + msg.chunk_id];
          if (slot < 0) slot = node_sim.now().as_micros();
        });
  }

  // Run out the stream, the last deadline, and one settle epoch (NACK
  // repair of the tail, flash-join completion).
  advance(sim::SimTime::micros(interval.as_micros() *
                               static_cast<std::int64_t>(str.chunks + 1)) +
          deadline_after + epoch);

  // --- phase 4: the player model ----------------------------------------
  // Score each viewer against the chunks that were actually published
  // after it became eligible: played = arrived by the deadline; a maximal
  // run of consecutive missed chunks of one stream is one rebuffer event;
  // startup delay is eligibility to the first played arrival.
  const std::int64_t deadline_us = deadline_after.as_micros();
  std::uint64_t total_eligible = 0, total_played = 0, total_missed = 0;
  std::uint64_t total_rebuffers = 0;
  double startup_sum_ms = 0.0;
  std::size_t startup_samples = 0;
  for (const auto& log : logs) {
    std::int64_t first_play_us = -1;
    std::uint64_t viewer_missed = 0, viewer_rebuffers = 0;
    for (std::size_t s = 0; s < n_streams; ++s) {
      bool in_gap = false;
      for (std::size_t c = 0; c < str.chunks; ++c) {
        const std::int64_t pub_at = published_us[s * str.chunks + c];
        if (pub_at < 0 || pub_at < log.eligible_from_us) continue;
        ++total_eligible;
        const std::int64_t arrived = log.arrival_us[s * str.chunks + c];
        const bool played = arrived >= 0 && arrived <= pub_at + deadline_us;
        if (played) {
          ++total_played;
          if (first_play_us < 0 || arrived < first_play_us) {
            first_play_us = arrived;
          }
          in_gap = false;
          continue;
        }
        ++viewer_missed;
        if (!in_gap) {
          ++viewer_rebuffers;
          in_gap = true;
        }
      }
    }
    total_missed += viewer_missed;
    total_rebuffers += viewer_rebuffers;
    if (viewer_missed > 0) {
      trace::counters().incr(log.peer, trace::CounterId::kChunksMissed,
                             viewer_missed);
    }
    if (viewer_rebuffers > 0) {
      trace::counters().incr(log.peer, trace::CounterId::kRebufferEvents,
                             viewer_rebuffers);
    }
    if (first_play_us >= 0) {
      const auto startup_us =
          static_cast<std::uint64_t>(first_play_us - log.eligible_from_us);
      trace::histograms().record(trace::HistogramId::kStartupDelayUs,
                                 startup_us);
      startup_sum_ms += static_cast<double>(startup_us) / 1000.0;
      ++startup_samples;
    }
  }
  result.chunk_miss_ratio =
      total_eligible == 0 ? 0.0
                          : static_cast<double>(total_missed) /
                                static_cast<double>(total_eligible);
  result.startup_delay_ms =
      startup_samples == 0
          ? 0.0
          : startup_sum_ms / static_cast<double>(startup_samples);
  result.rebuffer_events =
      logs.empty() ? 0.0
                   : static_cast<double>(total_rebuffers) /
                         static_cast<double>(logs.size());
  result.chunks_played_per_viewer =
      logs.empty() ? 0.0
                   : static_cast<double>(total_played) /
                         static_cast<double>(logs.size());
  std::size_t flash_attached = 0;
  for (const auto p : flash_peers) {
    const bool attached = std::all_of(
        all_groups.begin(), all_groups.end(), [&](core::GroupId g) {
          return nodes[p]->is_subscribed(g) && nodes[p]->on_tree(g);
        });
    if (attached) ++flash_attached;
  }
  result.flash_attach_fraction =
      flash_peers.empty() ? 1.0
                          : static_cast<double>(flash_attached) /
                                static_cast<double>(flash_peers.size());

  // Engine-level fields that still make sense here, so grid reports stay
  // uniform with the other harnesses.
  std::size_t attached_viewers = 0;
  for (const auto v : viewers) {
    const bool attached = std::all_of(
        all_groups.begin(), all_groups.end(), [&](core::GroupId g) {
          return nodes[v]->is_subscribed(g) && nodes[v]->on_tree(g);
        });
    if (attached) ++attached_viewers;
  }
  result.subscription_success_rate =
      viewers.empty() ? 1.0
                      : static_cast<double>(attached_viewers) /
                            static_cast<double>(viewers.size());
  result.subscription_messages =
      static_cast<double>(transport.messages_sent());

  if (engine) {
    result.events_fired = engine->events_fired();
    // See run_recovery_scenario: per-shard high-water marks do not merge
    // into a shard-count-invariant number.
    result.queue_high_water = 0;
    result.events_per_shard = engine->events_per_shard();
    detail::fold_shard_trace(*engine, shard_trace);
  } else {
    result.events_fired = simulator.events_fired();
    result.queue_high_water = simulator.queue_high_water();
  }
  if (trace::counters().enabled()) {
    result.counters = trace::counters().snapshot();
  }
  if (trace::histograms().enabled()) {
    result.histograms = trace::histograms().snapshot();
  }
  return result;
}

}  // namespace groupcast::metrics
