// Live-streaming workload harness over the deployable node runtime.
//
// While the recovery harness (metrics/recovery.h) measures re-convergence
// under churn, this harness measures *playback*: k publishers emit
// chunked streams with per-chunk playback deadlines into shared or
// per-source dissemination trees, the transport enforces per-peer
// uplink/downlink bandwidth caps (net/bandwidth.h), and an optional flash
// crowd joins mid-stream against the warm tree.  A harness-side player
// model scores every viewer-eligible chunk:
//
//   * chunk miss ratio — eligible chunks not played before their deadline,
//   * startup delay — join (or stream start) to the first played chunk,
//   * rebuffer events — maximal runs of consecutive missed chunks,
//   * chunks played per viewer, and the flash crowd's attach fraction.
//
// Activated through ScenarioConfig::streaming (enabled = false keeps the
// classic engine path byte-identical), so the whole grid machinery —
// run_scenario_grid's worker pool, seed ladders, counter isolation —
// applies unchanged.  Determinism contract: for a fixed config the result
// is byte-identical whatever GridOptions::jobs or config.shards is.
#pragma once

#include "metrics/experiment.h"

namespace groupcast::metrics {

/// Runs one live-streaming scenario.  Requires
/// `config.streaming.enabled`; run_scenario dispatches here on its own,
/// so callers normally never need this symbol directly.
ScenarioResult run_streaming_scenario(const ScenarioConfig& config);

}  // namespace groupcast::metrics
