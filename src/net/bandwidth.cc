#include "net/bandwidth.h"

#include <algorithm>

#include "util/require.h"

namespace groupcast::net {

namespace {

// kbps -> bytes/sec, rounded to at least 1 so a tiny positive cap still
// makes progress instead of dividing by zero.
std::uint64_t to_bytes_per_sec(double kbps, double multiplier) {
  if (kbps <= 0.0) return 0;
  const double bps = kbps * multiplier * 1000.0 / 8.0;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bps));
}

// Ceiling of bytes * 1e6 / rate: the integer-µs serialization time of
// `bytes` at `rate` bytes/sec.
std::int64_t serialize_us(std::size_t bytes, std::uint64_t rate) {
  const auto numer = static_cast<std::uint64_t>(bytes) * 1'000'000ull;
  return static_cast<std::int64_t>((numer + rate - 1) / rate);
}

}  // namespace

BandwidthModel::BandwidthModel(const BandwidthCaps& caps,
                               const std::vector<double>& capacities) {
  GC_REQUIRE_MSG(caps.uplink_kbps >= 0.0 && caps.downlink_kbps >= 0.0,
                 "bandwidth caps must be non-negative");
  const std::size_t n = capacities.size();
  up_bytes_per_sec_.resize(n);
  down_bytes_per_sec_.resize(n);
  up_free_us_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double mult = caps.scale_with_capacity ? capacities[i] : 1.0;
    up_bytes_per_sec_[i] = to_bytes_per_sec(caps.uplink_kbps, mult);
    down_bytes_per_sec_[i] = to_bytes_per_sec(caps.downlink_kbps, mult);
  }
}

std::int64_t BandwidthModel::acquire_uplink(std::uint32_t from,
                                            std::size_t bytes,
                                            std::int64_t now_us) {
  const auto rate = up_bytes_per_sec_[from];
  if (rate == 0) return 0;
  auto& free_us = up_free_us_[from];
  const std::int64_t start = std::max(free_us, now_us);
  free_us = start + serialize_us(bytes, rate);
  return free_us - now_us;
}

std::int64_t BandwidthModel::downlink_us(std::uint32_t to,
                                         std::size_t bytes) const {
  const auto rate = down_bytes_per_sec_[to];
  return rate == 0 ? 0 : serialize_us(bytes, rate);
}

std::size_t BandwidthModel::memory_bytes() const {
  return up_bytes_per_sec_.capacity() * sizeof(std::uint64_t) +
         down_bytes_per_sec_.capacity() * sizeof(std::uint64_t) +
         up_free_us_.capacity() * sizeof(std::int64_t);
}

}  // namespace groupcast::net
