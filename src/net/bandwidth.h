// Per-peer access-link bandwidth model for the streaming workloads.
//
// The underlay topology models propagation delay only; for chunked
// streams the binding resource is the peer's access link, so this module
// adds serialization delay on top of it.  Uplinks are paced with a
// token-bucket whose refill rate is the configured cap: each send drains
// `bytes` of credit and, when the bucket is empty, transmission start
// slides to the instant enough credit has accrued (an integer
// next-free-time per peer, so back-to-back sends queue behind each
// other).  Downlinks are modelled as stateless serialization delay —
// receivers in a dissemination tree fan *out*, so their inbound link
// rarely queues and the stateless form keeps delivery order independent
// of receiver-side state.
//
// Determinism: uplink state is only touched from the sending peer's send
// path, which runs on the sender's shard in deterministic order (see
// core/transport.cc), and all arithmetic is integer microseconds — so
// results are byte-identical across --jobs and --shards.  With both caps
// at 0 (the default) the model is never constructed and every delivery
// time is unchanged.
#pragma once

#include <cstdint>
#include <vector>

namespace groupcast::net {

/// Access-link caps, in kilobits per second; 0 disables that direction.
/// With `scale_with_capacity`, the caps are per capacity unit: a peer
/// supporting k 64kbps flows (overlay::PeerInfo::capacity) gets k times
/// the configured rate, so supernodes serve wider fan-out per the
/// paper's Table 1 heterogeneity.
struct BandwidthCaps {
  double uplink_kbps = 0.0;
  double downlink_kbps = 0.0;
  bool scale_with_capacity = false;

  bool any() const { return uplink_kbps > 0.0 || downlink_kbps > 0.0; }
};

class BandwidthModel {
 public:
  /// `capacities[i]` is peer i's capacity multiplier (ignored unless
  /// caps.scale_with_capacity); one uplink bucket is kept per peer.
  BandwidthModel(const BandwidthCaps& caps,
                 const std::vector<double>& capacities);

  /// Reserves uplink credit for `bytes` on peer `from` at sim time
  /// `now_us` and returns the serialization delay (µs) until the last
  /// byte has left the access link — 0 when the uplink is uncapped.
  /// Mutates the peer's bucket: later sends queue behind this one.
  std::int64_t acquire_uplink(std::uint32_t from, std::size_t bytes,
                              std::int64_t now_us);

  /// Stateless downlink serialization delay (µs) for `bytes` into peer
  /// `to`; 0 when the downlink is uncapped.
  std::int64_t downlink_us(std::uint32_t to, std::size_t bytes) const;

  std::size_t memory_bytes() const;

 private:
  // Per-peer rates in bytes/second (0 = uncapped in that direction).
  std::vector<std::uint64_t> up_bytes_per_sec_;
  std::vector<std::uint64_t> down_bytes_per_sec_;
  // Instant each peer's uplink finishes its last queued transmission.
  std::vector<std::int64_t> up_free_us_;
};

}  // namespace groupcast::net
