#include "net/multicast.h"

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::net {

IpMulticastTree::IpMulticastTree(const IpRouting& routing, RouterId source,
                                 const std::vector<RouterId>& receivers)
    : routing_(&routing), source_(source) {
  trace::ScopedTimer build_timer(trace::TimerId::kIpTreeBuild);
  std::unordered_set<RouterId> distinct;
  double total_delay = 0.0;
  for (const RouterId r : receivers) {
    total_delay += routing.distance_ms(source, r);
    if (r == source) continue;
    if (distinct.insert(r).second) {
      routing.for_each_path_link(source, r,
                                 [this](LinkId link) { links_.insert(link); });
    }
  }
  average_delay_ms_ =
      receivers.empty()
          ? 0.0
          : total_delay / static_cast<double>(receivers.size());
  trace::tracer().emit(0, trace::EventKind::kIpTreeBuilt,
                       static_cast<trace::NodeId>(source), trace::kNoNode,
                       links_.size());
}

double IpMulticastTree::delay_ms_to(RouterId receiver) const {
  return routing_->distance_ms(source_, receiver);
}

}  // namespace groupcast::net
