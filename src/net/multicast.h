// IP multicast baseline.
//
// The paper simulates IP multicast "by merging the unicast routes into
// shortest path trees" and uses it as the reference point for the relative
// delay penalty and link stress metrics (Section 4.3).  This class performs
// that merge at the router level; peer access links are accounted for by the
// metrics layer on top.
#pragma once

#include <unordered_set>
#include <vector>

#include "net/routing.h"

namespace groupcast::net {

/// Shortest-path multicast tree from one source router to a set of receiver
/// routers, derived by merging unicast shortest paths.
class IpMulticastTree {
 public:
  /// Receivers may contain duplicates (several peers behind one router);
  /// the link union is computed over distinct routers.
  IpMulticastTree(const IpRouting& routing, RouterId source,
                  const std::vector<RouterId>& receivers);

  RouterId source() const { return source_; }

  /// Delay from the source to `receiver`; equals the unicast shortest path
  /// (property of a shortest-path tree).
  double delay_ms_to(RouterId receiver) const;

  /// Mean delay over the receiver list given at construction (counting
  /// duplicates once per entry, i.e. per peer).
  double average_delay_ms() const { return average_delay_ms_; }

  /// Number of distinct physical links in the tree == number of IP messages
  /// one multicast packet generates at the router level.
  std::size_t link_message_count() const { return links_.size(); }

  /// True if the given physical link is part of the tree.
  bool uses_link(LinkId link) const { return links_.contains(link); }

 private:
  const IpRouting* routing_;
  RouterId source_;
  double average_delay_ms_ = 0.0;
  std::unordered_set<LinkId> links_;
};

}  // namespace groupcast::net
