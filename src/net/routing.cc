#include "net/routing.h"

#include <algorithm>
#include <queue>

#include "util/require.h"

namespace groupcast::net {

IpRouting::IpRouting(const UnderlayTopology& topology)
    : topology_(&topology), n_(topology.router_count()) {
  GC_REQUIRE(n_ > 0);
  dist_.assign(n_ * n_, std::numeric_limits<double>::infinity());
  next_.assign(n_ * n_, 0);

  link_of_.resize(n_);
  for (RouterId r = 0; r < n_; ++r) {
    for (const auto& [link, nbr] : topology.neighbors(r)) {
      link_of_[r].emplace(nbr, link);
    }
  }

  // Dijkstra from every source.  `pred` tracks the predecessor so we can
  // fill the next-hop matrix for the *reverse* direction in one pass; we
  // instead run per-source and record first hops directly by propagating
  // the first hop along with the tentative distance.
  using QueueItem = std::pair<double, RouterId>;
  std::vector<double> dist(n_);
  std::vector<RouterId> first_hop(n_);
  for (RouterId src = 0; src < n_; ++src) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
        heap;
    dist[src] = 0.0;
    first_hop[src] = src;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (d > dist[at]) continue;
      for (const auto& [link, nbr] : topology.neighbors(at)) {
        const double cand = d + topology.link(link).latency_ms;
        if (cand < dist[nbr]) {
          dist[nbr] = cand;
          first_hop[nbr] = (at == src) ? nbr : first_hop[at];
          heap.emplace(cand, nbr);
        }
      }
    }
    for (RouterId dst = 0; dst < n_; ++dst) {
      GC_ENSURE_MSG(dist[dst] < std::numeric_limits<double>::infinity(),
                    "underlay must be connected");
      dist_[index(src, dst)] = dist[dst];
      next_[index(src, dst)] = first_hop[dst];
    }
  }

  // Shortest-path *costs* are symmetric on an undirected underlay, but the
  // two directions can tie-break onto different equal-cost paths and sum
  // the same latencies in a different order, ending a few ulps apart.
  // Collapse each pair onto the smaller rounding so distance_ms(a, b) ==
  // distance_ms(b, a) exactly.
  for (RouterId a = 0; a < n_; ++a) {
    for (RouterId b = a + 1; b < n_; ++b) {
      const double d = std::min(dist_[index(a, b)], dist_[index(b, a)]);
      dist_[index(a, b)] = d;
      dist_[index(b, a)] = d;
    }
  }
}

double IpRouting::distance_ms(RouterId from, RouterId to) const {
  GC_REQUIRE(from < n_ && to < n_);
  return dist_[index(from, to)];
}

RouterId IpRouting::next_hop(RouterId from, RouterId to) const {
  GC_REQUIRE(from < n_ && to < n_);
  GC_REQUIRE(from != to);
  return next_[index(from, to)];
}

std::vector<RouterId> IpRouting::path(RouterId from, RouterId to) const {
  GC_REQUIRE(from < n_ && to < n_);
  std::vector<RouterId> out{from};
  RouterId at = from;
  while (at != to) {
    at = next_[index(at, to)];
    out.push_back(at);
    GC_ENSURE_MSG(out.size() <= n_, "routing loop detected");
  }
  return out;
}

void IpRouting::for_each_path_link(
    RouterId from, RouterId to, const std::function<void(LinkId)>& fn) const {
  GC_REQUIRE(from < n_ && to < n_);
  RouterId at = from;
  std::size_t hops = 0;
  while (at != to) {
    const RouterId hop = next_[index(at, to)];
    const auto it = link_of_[at].find(hop);
    GC_ENSURE(it != link_of_[at].end());
    fn(it->second);
    at = hop;
    GC_ENSURE_MSG(++hops <= n_, "routing loop detected");
  }
}

std::size_t IpRouting::hop_count(RouterId from, RouterId to) const {
  std::size_t hops = 0;
  for_each_path_link(from, to, [&hops](LinkId) { ++hops; });
  return hops;
}

}  // namespace groupcast::net
