#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <queue>
#include <set>

#include "util/require.h"

namespace groupcast::net {

std::vector<RouterId> UnderlayTopology::stub_routers() const {
  std::vector<RouterId> out;
  for (RouterId id = 0; id < routers_.size(); ++id) {
    if (routers_[id].kind == RouterKind::kStub) out.push_back(id);
  }
  return out;
}

bool UnderlayTopology::is_connected() const {
  if (routers_.empty()) return true;
  std::vector<char> seen(routers_.size(), 0);
  std::queue<RouterId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const RouterId at = frontier.front();
    frontier.pop();
    for (const auto& [link, nbr] : adjacency_[at]) {
      if (!seen[nbr]) {
        seen[nbr] = 1;
        ++reached;
        frontier.push(nbr);
      }
    }
  }
  return reached == routers_.size();
}

RouterId UnderlayTopology::Builder::add_router(RouterKind kind,
                                               std::uint32_t domain) {
  routers_.push_back(Router{kind, domain});
  adjacency_.emplace_back();
  return static_cast<RouterId>(routers_.size() - 1);
}

bool UnderlayTopology::Builder::has_link(RouterId a, RouterId b) const {
  if (a >= routers_.size() || b >= routers_.size()) return false;
  const auto& adj = adjacency_[a];
  return std::any_of(adj.begin(), adj.end(),
                     [b](const auto& entry) { return entry.second == b; });
}

LinkId UnderlayTopology::Builder::add_link(RouterId a, RouterId b,
                                           double latency_ms) {
  GC_REQUIRE(a < routers_.size() && b < routers_.size());
  GC_REQUIRE_MSG(a != b, "self-loop links are not allowed");
  GC_REQUIRE_MSG(latency_ms > 0.0, "link latency must be positive");
  GC_REQUIRE_MSG(!has_link(a, b), "duplicate link");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, latency_ms});
  adjacency_[a].emplace_back(id, b);
  adjacency_[b].emplace_back(id, a);
  return id;
}

UnderlayTopology UnderlayTopology::Builder::build() && {
  UnderlayTopology topo;
  topo.routers_ = std::move(routers_);
  topo.links_ = std::move(links_);
  topo.adjacency_ = std::move(adjacency_);
  GC_REQUIRE_MSG(topo.is_connected(), "underlay topology must be connected");
  return topo;
}

namespace {

/// Connects `members` into a random connected sub-graph: a randomized ring
/// (guaranteeing connectivity) plus `extra_fraction * |members|` random
/// chords.  Latencies are drawn uniformly from [lo, hi].
void connect_domain(UnderlayTopology::Builder& builder,
                    std::vector<RouterId> members, double lo, double hi,
                    double extra_fraction, util::Rng& rng) {
  if (members.size() < 2) return;
  rng.shuffle(members);
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    builder.add_link(members[i], members[i + 1], rng.uniform(lo, hi));
  }
  if (members.size() > 2) {
    builder.add_link(members.back(), members.front(), rng.uniform(lo, hi));
  }
  const auto extras = static_cast<std::size_t>(
      std::ceil(extra_fraction * static_cast<double>(members.size())));
  for (std::size_t i = 0; i < extras; ++i) {
    const auto a = members[rng.uniform_index(members.size())];
    const auto b = members[rng.uniform_index(members.size())];
    if (a == b || builder.has_link(a, b)) continue;
    builder.add_link(a, b, rng.uniform(lo, hi));
  }
}

}  // namespace

UnderlayTopology generate_transit_stub(const TransitStubConfig& config,
                                       util::Rng& rng) {
  GC_REQUIRE(config.transit_domains >= 1);
  GC_REQUIRE(config.routers_per_transit_domain >= 1);
  GC_REQUIRE(config.routers_per_stub_domain >= 1);

  UnderlayTopology::Builder builder;

  // 1. Transit routers, grouped by transit domain.
  std::vector<std::vector<RouterId>> transit(config.transit_domains);
  for (std::uint32_t d = 0; d < config.transit_domains; ++d) {
    for (std::uint32_t r = 0; r < config.routers_per_transit_domain; ++r) {
      transit[d].push_back(builder.add_router(RouterKind::kTransit, d));
    }
    connect_domain(builder, transit[d], config.intra_transit_min_ms,
                   config.intra_transit_max_ms, config.extra_edge_fraction,
                   rng);
  }

  // 2. Inter-domain transit links: ring over domains plus random chords,
  //    each implemented as a link between random border routers.
  if (config.transit_domains > 1) {
    for (std::uint32_t d = 0; d < config.transit_domains; ++d) {
      const std::uint32_t e = (d + 1) % config.transit_domains;
      if (d == e) continue;
      const RouterId a = transit[d][rng.uniform_index(transit[d].size())];
      const RouterId b = transit[e][rng.uniform_index(transit[e].size())];
      if (!builder.has_link(a, b)) {
        builder.add_link(a, b, rng.uniform(config.transit_transit_min_ms,
                                           config.transit_transit_max_ms));
      }
      if (config.transit_domains > 2 && rng.chance(0.5)) {
        const std::uint32_t f =
            static_cast<std::uint32_t>(rng.uniform_index(
                config.transit_domains));
        if (f != d) {
          const RouterId c = transit[f][rng.uniform_index(transit[f].size())];
          const RouterId g = transit[d][rng.uniform_index(transit[d].size())];
          if (c != g && !builder.has_link(c, g)) {
            builder.add_link(c, g,
                             rng.uniform(config.transit_transit_min_ms,
                                         config.transit_transit_max_ms));
          }
        }
      }
    }
  }

  // 3. Stub domains hanging off each transit router.
  std::uint32_t stub_domain_index = 0;
  for (std::uint32_t d = 0; d < config.transit_domains; ++d) {
    for (const RouterId attach : transit[d]) {
      for (std::uint32_t s = 0; s < config.stub_domains_per_transit_router;
           ++s) {
        std::vector<RouterId> stub;
        for (std::uint32_t r = 0; r < config.routers_per_stub_domain; ++r) {
          stub.push_back(
              builder.add_router(RouterKind::kStub, stub_domain_index));
        }
        connect_domain(builder, stub, config.intra_stub_min_ms,
                       config.intra_stub_max_ms, config.extra_edge_fraction,
                       rng);
        // Gateway link from a random stub router up to the transit router.
        const RouterId gateway = stub[rng.uniform_index(stub.size())];
        builder.add_link(gateway, attach,
                         rng.uniform(config.transit_stub_min_ms,
                                     config.transit_stub_max_ms));
        ++stub_domain_index;
      }
    }
  }

  return std::move(builder).build();
}

UnderlayTopology generate_waxman(const WaxmanConfig& config, util::Rng& rng) {
  GC_REQUIRE(config.routers >= 2);
  GC_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0);
  GC_REQUIRE(config.beta > 0.0);
  GC_REQUIRE(config.plane_side_ms > 0.0);

  // Place routers on the plane.
  std::vector<std::pair<double, double>> position(config.routers);
  for (auto& [x, y] : position) {
    x = rng.uniform(0.0, config.plane_side_ms);
    y = rng.uniform(0.0, config.plane_side_ms);
  }
  const auto distance = [&position](std::uint32_t a, std::uint32_t b) {
    const double dx = position[a].first - position[b].first;
    const double dy = position[a].second - position[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const double max_distance = config.plane_side_ms * std::numbers::sqrt2;

  UnderlayTopology::Builder builder;
  for (std::uint32_t r = 0; r < config.routers; ++r) {
    builder.add_router(RouterKind::kStub, 0);
  }
  for (std::uint32_t a = 0; a < config.routers; ++a) {
    for (std::uint32_t b = a + 1; b < config.routers; ++b) {
      const double d = distance(a, b);
      const double p =
          config.alpha * std::exp(-d / (config.beta * max_distance));
      if (rng.chance(p)) {
        builder.add_link(a, b, std::max(d, 0.05));
      }
    }
  }

  // Stitch components: connect each unreached router to its nearest
  // already-reached one (latency = geometric distance, so repairs do not
  // distort the latency structure).
  std::vector<char> reached(config.routers, 0);
  std::vector<std::uint32_t> stack{0};
  reached[0] = 1;
  // Temporary adjacency from the builder via repeated BFS after repairs.
  const auto bfs = [&](auto&& self) -> void {
    while (!stack.empty()) {
      const auto at = stack.back();
      stack.pop_back();
      for (std::uint32_t other = 0; other < config.routers; ++other) {
        if (!reached[other] && builder.has_link(at, other)) {
          reached[other] = 1;
          stack.push_back(other);
        }
      }
    }
    (void)self;
  };
  bfs(bfs);
  for (std::uint32_t r = 0; r < config.routers; ++r) {
    if (reached[r]) continue;
    std::uint32_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t other = 0; other < config.routers; ++other) {
      if (!reached[other]) continue;
      const double d = distance(r, other);
      if (d < best) {
        best = d;
        nearest = other;
      }
    }
    builder.add_link(r, nearest, std::max(best, 0.05));
    reached[r] = 1;
    stack.push_back(r);
    bfs(bfs);
  }

  return std::move(builder).build();
}

TransitStubConfig scale_config_for_peers(std::size_t peer_count,
                                         std::size_t peers_per_router) {
  GC_REQUIRE(peer_count > 0);
  GC_REQUIRE(peers_per_router > 0);
  TransitStubConfig config;
  const auto target_stub_routers = std::max<std::size_t>(
      48, (peer_count + peers_per_router - 1) / peers_per_router);
  // Keep transit structure fixed; widen the stub tier.  stub routers =
  // transit_domains * routers_per_transit * stubs_per_router * routers_per_stub
  const std::size_t transit_routers = static_cast<std::size_t>(
      config.transit_domains * config.routers_per_transit_domain);
  const double per_transit = static_cast<double>(target_stub_routers) /
                             static_cast<double>(transit_routers);
  // Split between stub-domain count and stub-domain size, favouring size.
  config.routers_per_stub_domain = static_cast<std::uint32_t>(
      std::clamp(std::ceil(std::sqrt(per_transit) * 2.0), 4.0, 48.0));
  config.stub_domains_per_transit_router = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(per_transit /
                              static_cast<double>(
                                  config.routers_per_stub_domain))));
  return config;
}

}  // namespace groupcast::net
