// Router-level IP underlay with a GT-ITM style transit-stub structure.
//
// The paper's evaluation uses the Transit-Stub model of the GT-ITM topology
// generator [34] for the physical network.  We reproduce the same three-level
// structure:
//
//   * a small core of transit domains, interconnected at random;
//   * each transit domain is a connected sub-graph of transit routers;
//   * each transit router hosts several stub domains (connected sub-graphs
//     of stub routers) attached through a gateway link.
//
// Link latencies are chosen so that router-pair distances span the same
// 0–400 ms range the paper's proximity plots show: long transit-transit
// links, medium transit-stub links, short intra-domain links.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace groupcast::net {

using RouterId = std::uint32_t;
using LinkId = std::uint32_t;

/// Role of a router in the transit-stub hierarchy.
enum class RouterKind : std::uint8_t { kTransit, kStub };

struct Router {
  RouterKind kind = RouterKind::kStub;
  /// Transit domain index for transit routers; stub domain index for stubs.
  std::uint32_t domain = 0;
};

/// One undirected physical link.
struct Link {
  RouterId a = 0;
  RouterId b = 0;
  double latency_ms = 0.0;
};

/// Parameters of the transit-stub generator.  The defaults produce a
/// ~600-router internetwork suitable for overlays of a few thousand peers;
/// scale `stub_domains_per_transit_router` / `routers_per_stub_domain` up
/// for the 32k-peer sweeps.
struct TransitStubConfig {
  std::uint32_t transit_domains = 4;
  std::uint32_t routers_per_transit_domain = 4;
  std::uint32_t stub_domains_per_transit_router = 3;
  std::uint32_t routers_per_stub_domain = 12;

  /// Extra random edges per domain graph beyond the connecting ring,
  /// expressed as a fraction of node count (adds redundancy / path choice).
  double extra_edge_fraction = 0.35;

  // Latency ranges (ms) per link class.
  double transit_transit_min_ms = 30.0;
  double transit_transit_max_ms = 130.0;
  double intra_transit_min_ms = 8.0;
  double intra_transit_max_ms = 25.0;
  double transit_stub_min_ms = 5.0;
  double transit_stub_max_ms = 20.0;
  double intra_stub_min_ms = 1.0;
  double intra_stub_max_ms = 6.0;

  std::uint32_t total_routers() const {
    const std::uint32_t transit = transit_domains * routers_per_transit_domain;
    return transit + transit * stub_domains_per_transit_router *
                         routers_per_stub_domain;
  }
};

/// Immutable router-level topology.  Construct via `generate_transit_stub`
/// or assemble explicitly with `Builder` (used by tests).
class UnderlayTopology {
 public:
  class Builder;

  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Router& router(RouterId id) const { return routers_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Links incident to `id` as (link id, neighbour id) pairs.
  const std::vector<std::pair<LinkId, RouterId>>& neighbors(
      RouterId id) const {
    return adjacency_.at(id);
  }

  /// All stub routers (the attachment points for peers).
  std::vector<RouterId> stub_routers() const;

  /// True if every router can reach every other (BFS).
  bool is_connected() const;

 private:
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<LinkId, RouterId>>> adjacency_;
};

/// Incremental construction with validation; `build()` checks connectivity.
class UnderlayTopology::Builder {
 public:
  RouterId add_router(RouterKind kind, std::uint32_t domain);

  /// Adds an undirected link; rejects self-loops, duplicate edges and
  /// non-positive latencies.
  LinkId add_link(RouterId a, RouterId b, double latency_ms);

  bool has_link(RouterId a, RouterId b) const;
  std::size_t router_count() const { return routers_.size(); }

  /// Finalizes; throws PreconditionError if the graph is not connected.
  UnderlayTopology build() &&;

 private:
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<LinkId, RouterId>>> adjacency_;
};

/// Generates a random transit-stub internetwork.
UnderlayTopology generate_transit_stub(const TransitStubConfig& config,
                                       util::Rng& rng);

/// Parameters of the Waxman random-graph generator — GT-ITM's other
/// classic model, used here as an ablation underlay to check that the
/// paper's conclusions do not hinge on the transit-stub structure.
/// Routers are placed uniformly in a square of side `plane_side_ms`
/// (coordinates double as propagation distance); an edge between routers
/// at distance d exists with probability  alpha * exp(-d / (beta * L)),
/// where L is the maximum possible distance.
struct WaxmanConfig {
  std::uint32_t routers = 200;
  double alpha = 0.15;
  double beta = 0.18;
  double plane_side_ms = 250.0;
  /// Every router is flagged kStub (peers may attach anywhere).
  /// Disconnected graphs are stitched with nearest-neighbour repair edges.
};

UnderlayTopology generate_waxman(const WaxmanConfig& config, util::Rng& rng);

/// Picks a TransitStubConfig sized so the underlay offers roughly one stub
/// router per `peers_per_router` peers for an overlay of `peer_count` peers.
TransitStubConfig scale_config_for_peers(std::size_t peer_count,
                                         std::size_t peers_per_router = 24);

}  // namespace groupcast::net
