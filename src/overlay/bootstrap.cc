#include "overlay/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/utility.h"
#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::overlay {

GroupCastBootstrap::GroupCastBootstrap(const PeerPopulation& population,
                                       OverlayGraph& graph,
                                       HostCacheServer& host_cache,
                                       BootstrapOptions options,
                                       util::Rng& rng)
    : population_(&population),
      graph_(&graph),
      host_cache_(&host_cache),
      options_(options),
      rng_(rng.split()),
      joined_(population.size(), 0) {
  GC_REQUIRE(options_.degree_min >= 1);
  GC_REQUIRE(options_.degree_max >= options_.degree_min);
  GC_REQUIRE(options_.fallback_back_link_prob >= 0.0 &&
             options_.fallback_back_link_prob <= 1.0);
}

GroupCastBootstrap::GroupCastBootstrap(const GroupCastBootstrap& other,
                                       OverlayGraph& graph,
                                       HostCacheServer& host_cache)
    : population_(other.population_),
      graph_(&graph),
      host_cache_(&host_cache),
      options_(other.options_),
      rng_(other.rng_),
      joined_(other.joined_) {}

std::size_t GroupCastBootstrap::target_degree(double capacity) const {
  GC_REQUIRE(capacity > 0.0);
  const double raw =
      options_.degree_base * std::pow(capacity, options_.degree_exponent);
  return std::clamp(static_cast<std::size_t>(std::ceil(raw)),
                    options_.degree_min, options_.degree_max);
}

double GroupCastBootstrap::back_link_probability(
    PeerId k, PeerId i, const std::vector<PeerId>& nbrs) const {
  if (nbrs.empty()) return 1.0;  // a lonely peer takes anyone
  const double n = static_cast<double>(nbrs.size());
  const double ck = population_->info(k).capacity;
  const double ci = population_->info(i).capacity;
  const double d_ik = population_->coord_distance_ms(i, k);

  std::size_t nbrs_below_k = 0;   // rc_k: |{j in Nbr(k) : C_j <= C_k}|
  std::size_t nbrs_below_i = 0;   // rc_i: |{j in Nbr(k) : C_j <= C_i}|
  std::size_t nbrs_farther = 0;   // rd_i: |{j in Nbr(k) : D(j,k) >= D(i,k)}|
  for (const PeerId j : nbrs) {
    const double cj = population_->info(j).capacity;
    if (cj <= ck) ++nbrs_below_k;
    if (cj <= ci) ++nbrs_below_i;
    if (population_->coord_distance_ms(j, k) >= d_ik) ++nbrs_farther;
  }
  const double rck = static_cast<double>(nbrs_below_k) / n;
  const double rci = static_cast<double>(nbrs_below_i) / n;
  const double rdi = static_cast<double>(nbrs_farther) / n;
  return rck * rck * rci + (1.0 - rck * rck) * rdi;
}

namespace {
/// Candidate discovery shared by join() and refill(): probe the bootstrap
/// peers, merge their neighbour lists into LC with occurrence frequencies.
std::unordered_map<PeerId, std::size_t> gather_candidates(
    const OverlayGraph& graph, PeerId self,
    const std::vector<PeerId>& bootstrap_peers, JoinStats& stats) {
  std::unordered_map<PeerId, std::size_t> frequency;
  for (const PeerId target : bootstrap_peers) {
    stats.probe_messages += 2;  // probe + response
    ++frequency[target];        // the bootstrap peer is itself a candidate
    for (const PeerId nbr : graph.neighbors(target)) {
      if (nbr != self) ++frequency[nbr];
    }
  }
  frequency.erase(self);
  stats.candidates_seen = frequency.size();
  return frequency;
}
}  // namespace

JoinStats GroupCastBootstrap::join(PeerId peer) {
  GC_REQUIRE(peer < population_->size());
  GC_REQUIRE_MSG(!joined_[peer], "peer is already a member of the overlay");
  trace::ScopedTimer join_timer(trace::TimerId::kBootstrapJoin);
  JoinStats stats;

  // A peer re-entering after a crash may still have half-open links that
  // its old neighbours have not detected yet; a fresh join supersedes them.
  graph_->isolate(peer);

  // Step 1: bootstrap candidates from the host cache.
  const auto bootstrap_peers = host_cache_->bootstrap_candidates(peer);

  // Step 2: probe and compile LC_i.
  const auto frequency =
      gather_candidates(*graph_, peer, bootstrap_peers, stats);

  if (!frequency.empty()) {
    // Step 3: utility scores via Eq. 6 (capacity := occurrence frequency).
    std::vector<PeerId> candidates;
    std::vector<core::Candidate> scored;
    candidates.reserve(frequency.size());
    scored.reserve(frequency.size());
    for (const auto& [id, freq] : frequency) {
      candidates.push_back(id);
      scored.push_back(core::Candidate{
          static_cast<double>(freq),
          population_->coord_distance_ms(peer, id)});
    }
    const double r_i = core::clamp_resource_level(
        options_.pinned_resource_level >= 0.0
            ? options_.pinned_resource_level
            : population_->sampled_resource_level(
                  peer, options_.resource_sample, rng_));
    const auto prefs = core::selection_preferences(r_i, scored);

    const std::size_t want = target_degree(population_->info(peer).capacity);
    const auto picks =
        core::weighted_sample_without_replacement(prefs, want, rng_);

    // Step 4: out links + back-link negotiation.
    for (const std::size_t idx : picks) {
      const PeerId chosen = candidates[idx];
      if (graph_->add_edge(peer, chosen)) ++stats.out_links_created;
      ++stats.back_link_requests;
      const auto nbrs_of_chosen = graph_->neighbors(chosen);
      const double pb = back_link_probability(chosen, peer, nbrs_of_chosen);
      const bool accepted =
          rng_.chance(pb) || rng_.chance(options_.fallback_back_link_prob);
      if (accepted && graph_->add_edge(chosen, peer)) {
        ++stats.back_links_accepted;
      }
    }
  }

  joined_[peer] = 1;
  host_cache_->register_peer(peer);
  trace::counters().incr(peer, trace::CounterId::kJoins);
  trace::tracer().emit(0, trace::EventKind::kPeerJoin, peer, kNoPeer,
                       stats.out_links_created);
  return stats;
}

std::size_t GroupCastBootstrap::refill(PeerId peer) {
  GC_REQUIRE(peer < population_->size());
  GC_REQUIRE_MSG(joined_[peer], "refill requires a joined peer");

  const std::size_t have = graph_->out_neighbors(peer).size();
  const std::size_t want = target_degree(population_->info(peer).capacity);
  if (have >= want) return 0;

  JoinStats stats;
  // Candidate pool: host-cache batch plus neighbours-of-neighbours
  // (the peers we can reach without a directory round-trip).
  auto bootstrap_peers = host_cache_->bootstrap_candidates(peer);
  for (const PeerId nbr : graph_->neighbors(peer)) {
    bootstrap_peers.push_back(nbr);
  }
  auto frequency = gather_candidates(*graph_, peer, bootstrap_peers, stats);
  // Existing neighbours are not candidates for new links.
  for (const PeerId nbr : graph_->neighbors(peer)) frequency.erase(nbr);
  if (frequency.empty()) return 0;

  std::vector<PeerId> candidates;
  std::vector<core::Candidate> scored;
  for (const auto& [id, freq] : frequency) {
    candidates.push_back(id);
    scored.push_back(core::Candidate{
        static_cast<double>(freq), population_->coord_distance_ms(peer, id)});
  }
  const double r_i = core::clamp_resource_level(
      options_.pinned_resource_level >= 0.0
          ? options_.pinned_resource_level
          : population_->sampled_resource_level(peer,
                                                options_.resource_sample,
                                                rng_));
  const auto prefs = core::selection_preferences(r_i, scored);
  const auto picks =
      core::weighted_sample_without_replacement(prefs, want - have, rng_);

  std::size_t created = 0;
  for (const std::size_t idx : picks) {
    const PeerId chosen = candidates[idx];
    if (graph_->add_edge(peer, chosen)) {
      ++created;
      const double pb =
          back_link_probability(chosen, peer, graph_->neighbors(chosen));
      if (rng_.chance(pb) || rng_.chance(options_.fallback_back_link_prob)) {
        graph_->add_edge(chosen, peer);
      }
    }
  }
  if (created > 0) {
    trace::counters().incr(peer, trace::CounterId::kLinkRefills, created);
  }
  return created;
}

void GroupCastBootstrap::leave(PeerId peer) {
  GC_REQUIRE(peer < population_->size());
  GC_REQUIRE_MSG(joined_[peer], "peer is not a member of the overlay");
  graph_->isolate(peer);
  host_cache_->deregister_peer(peer);
  joined_[peer] = 0;
  trace::counters().incr(peer, trace::CounterId::kLeaves);
  trace::tracer().emit(0, trace::EventKind::kPeerLeave, peer, kNoPeer, 0);
}

void GroupCastBootstrap::fail(PeerId peer) {
  GC_REQUIRE(peer < population_->size());
  GC_REQUIRE_MSG(joined_[peer], "peer is not a member of the overlay");
  // A crash leaves everything dangling: neighbours keep half-open links
  // until heartbeats detect the failure, and the host cache keeps a stale
  // directory entry.  MaintenanceProtocol cleans both up.
  joined_[peer] = 0;
  trace::counters().incr(peer, trace::CounterId::kLeaves);
  trace::tracer().emit(0, trace::EventKind::kPeerLeave, peer, kNoPeer, 1);
}

void GroupCastBootstrap::report_failure(PeerId dead) {
  GC_REQUIRE(dead < population_->size());
  if (!joined_[dead]) host_cache_->deregister_peer(dead);
}

}  // namespace groupcast::overlay
