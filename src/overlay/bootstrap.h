// Utility-aware overlay construction (Section 3.3).
//
// The join protocol of a peer p_i:
//   1. obtain bootstrap peers B_i from the host cache (closest + random);
//   2. probe each peer in B_i; each probe response carries the responder's
//      neighbour list.  The union forms the candidate list LC_i, in which
//      the occurrence frequency f_i(j) of a peer j samples j's degree;
//   3. score every candidate with Equation 6 — the utility function with
//      f_i(j) substituted for capacity — and pick out-neighbours with
//      probability proportional to utility (count scaled by own capacity);
//   4. request a back link from every chosen neighbour k, which accepts
//      with probability
//        PB_k = rc_k(Nbr_k)² · rc_i(Nbr_k) + (1 − rc_k(Nbr_k)²) · rd_i(Nbr_k)
//      and otherwise still accepts with probability p_b = 0.5.
//
// Preferential attachment through f_i(j) yields a power-law degree
// distribution (Figure 7); the distance term keeps neighbours close
// (Figure 9).
#pragma once

#include "overlay/graph.h"
#include "overlay/host_cache.h"
#include "overlay/population.h"

namespace groupcast::overlay {

struct BootstrapOptions {
  /// Out-degree target: clamp(ceil(base * capacity^exponent), min, max).
  /// Scales connection count with capacity so powerful peers become hubs.
  double degree_base = 1.6;
  double degree_exponent = 0.32;
  std::size_t degree_min = 2;
  std::size_t degree_max = 48;

  /// p_b: probability of accepting a back link that failed the PB test.
  double fallback_back_link_prob = 0.5;

  /// Peers sampled to estimate the joiner's resource level r_i.
  std::size_t resource_sample = 32;

  /// Ablation hook: when >= 0, every peer uses this fixed resource level
  /// instead of the sampled estimate (pinning the utility blend: r -> 0
  /// gives distance-only selection, r -> 1 capacity-only).  < 0 = paper
  /// behaviour.
  double pinned_resource_level = -1.0;
};

/// Per-join protocol cost accounting.
struct JoinStats {
  std::size_t probe_messages = 0;       // probes + probe responses
  std::size_t back_link_requests = 0;
  std::size_t back_links_accepted = 0;  // via PB or the p_b fallback
  std::size_t out_links_created = 0;
  std::size_t candidates_seen = 0;      // |LC_i| (distinct)
};

class GroupCastBootstrap {
 public:
  GroupCastBootstrap(const PeerPopulation& population, OverlayGraph& graph,
                     HostCacheServer& host_cache, BootstrapOptions options,
                     util::Rng& rng);

  /// Fork copy (deployment snapshots): identical protocol state — options,
  /// RNG stream position, joined set — rebound to the fork's own graph and
  /// host cache so later joins/refills replay bit-identically without
  /// touching the donor's structures.
  GroupCastBootstrap(const GroupCastBootstrap& other, OverlayGraph& graph,
                     HostCacheServer& host_cache);

  /// Executes the full join protocol for `peer` and registers it with the
  /// host cache.  Idempotent joins are a precondition violation (a peer
  /// must leave before rejoining).
  JoinStats join(PeerId peer);

  /// Graceful departure: drops the peer's links and host-cache entry.
  void leave(PeerId peer);

  /// Ungraceful failure: drops the links but leaves the (now stale)
  /// host-cache entry behind, as a crash would.
  void fail(PeerId peer);

  /// Epoch repair for an already-joined peer whose out-degree fell below
  /// target (neighbour failures): reruns the candidate-gathering and
  /// utility selection to top the neighbour list back up.  Returns the
  /// number of new out links.  (Section 3.3, "Neighborhood Link
  /// Maintenance".)
  std::size_t refill(PeerId peer);

  bool is_joined(PeerId peer) const { return joined_.at(peer) != 0; }

  /// Called by maintenance when heartbeats expose a crashed peer: purges
  /// the stale host-cache entry so later joins stop being pointed at it.
  void report_failure(PeerId dead);

  /// Out-degree target for a peer of the given capacity.
  std::size_t target_degree(double capacity) const;

  /// The back-link acceptance probability PB_k(Nbr(p_k), p_i) — exposed for
  /// tests.  `nbrs` is k's current neighbour set.
  double back_link_probability(PeerId k, PeerId i,
                               const std::vector<PeerId>& nbrs) const;

  const BootstrapOptions& options() const { return options_; }

 private:
  const PeerPopulation* population_;
  OverlayGraph* graph_;
  HostCacheServer* host_cache_;
  BootstrapOptions options_;
  util::Rng rng_;
  std::vector<char> joined_;
};

}  // namespace groupcast::overlay
