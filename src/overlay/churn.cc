#include "overlay/churn.h"

#include <cmath>

#include "util/require.h"

namespace groupcast::overlay {

ChurnModel::ChurnModel(sim::Simulator& simulator,
                       GroupCastBootstrap& bootstrap, ChurnOptions options,
                       util::Rng& rng)
    : simulator_(&simulator),
      bootstrap_(&bootstrap),
      options_(options),
      rng_(rng.split()) {
  GC_REQUIRE(options_.mean_interarrival > sim::SimTime::zero());
  GC_REQUIRE(options_.session_shape > 0.0);
  GC_REQUIRE(options_.failure_fraction >= 0.0 &&
             options_.failure_fraction <= 1.0);
}

void ChurnModel::start(const std::vector<PeerId>& arrival_order) {
  sim::SimTime at = sim::SimTime::zero();
  for (const PeerId peer : arrival_order) {
    at += sim::SimTime::seconds(
        rng_.exponential(options_.mean_interarrival.as_seconds()));
    simulator_->schedule_at(at, [this, peer] {
      bootstrap_->join(peer);
      ++stats_.joins;
      if (join_hook_) join_hook_(peer);
      if (options_.mean_session > sim::SimTime::zero()) {
        schedule_departure(peer);
      }
    });
  }
}

void ChurnModel::schedule_departure(PeerId peer) {
  // Weibull with mean `mean_session`: scale = mean / Gamma(1 + 1/shape).
  const double scale = options_.mean_session.as_seconds() /
                       std::tgamma(1.0 + 1.0 / options_.session_shape);
  const auto session =
      sim::SimTime::seconds(rng_.weibull(options_.session_shape, scale));
  const bool crash = rng_.chance(options_.failure_fraction);
  simulator_->schedule(session, [this, peer, crash] {
    if (!bootstrap_->is_joined(peer)) return;
    if (crash) {
      bootstrap_->fail(peer);
      ++stats_.failures;
    } else {
      bootstrap_->leave(peer);
      ++stats_.graceful_leaves;
    }
    if (leave_hook_) leave_hook_(peer);
  });
}

}  // namespace groupcast::overlay
