// Churn driver: schedules peer arrivals and departures on the simulator.
//
// The paper's Section 4.1 setup has peers joining "with intervals following
// an exponential distribution Expo(1s)".  For churn experiments we extend
// this with exponential session lengths and a configurable fraction of
// ungraceful failures (crash instead of goodbye).
#pragma once

#include <functional>

#include "overlay/bootstrap.h"
#include "sim/simulator.h"

namespace groupcast::overlay {

struct ChurnOptions {
  sim::SimTime mean_interarrival = sim::SimTime::seconds(1.0);
  /// 0 disables departures: peers join and stay (Section 4.1 setting).
  sim::SimTime mean_session = sim::SimTime::zero();
  /// Weibull shape of the session-length distribution.  1.0 = exponential;
  /// Saroiu-style measured sessions are heavy-tailed (shape ~ 0.5: many
  /// short visits, a few very long residents).  The scale is derived so
  /// the mean stays `mean_session`.
  double session_shape = 1.0;
  /// Of the departures, this fraction crash instead of leaving gracefully.
  double failure_fraction = 0.3;
};

struct ChurnStats {
  std::size_t joins = 0;
  std::size_t graceful_leaves = 0;
  std::size_t failures = 0;
};

class ChurnModel {
 public:
  using PeerEvent = std::function<void(PeerId)>;

  ChurnModel(sim::Simulator& simulator, GroupCastBootstrap& bootstrap,
             ChurnOptions options, util::Rng& rng);

  /// Schedules the staggered arrival of every peer in `arrival_order`.
  /// If sessions are enabled, each peer's departure is scheduled too.
  /// Call before Simulator::run().
  void start(const std::vector<PeerId>& arrival_order);

  /// Optional hooks fired after each join / departure.
  void on_join(PeerEvent hook) { join_hook_ = std::move(hook); }
  void on_leave(PeerEvent hook) { leave_hook_ = std::move(hook); }

  const ChurnStats& stats() const { return stats_; }

 private:
  void schedule_departure(PeerId peer);

  sim::Simulator* simulator_;
  GroupCastBootstrap* bootstrap_;
  ChurnOptions options_;
  util::Rng rng_;
  ChurnStats stats_;
  PeerEvent join_hook_;
  PeerEvent leave_hook_;
};

}  // namespace groupcast::overlay
