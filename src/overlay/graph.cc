#include "overlay/graph.h"

#include <algorithm>
#include <queue>

#include "util/require.h"

namespace groupcast::overlay {

namespace {

// Compaction trigger: once relocation garbage exceeds the live half of a
// non-trivial arena, rebuild.  Amortized O(1) per append — every relocated
// slot is copied at most once more before enough garbage accrues again.
constexpr std::size_t kCompactionFloor = 1024;

}  // namespace

OverlayGraph::OverlayGraph(std::size_t peer_count)
    : out_(peer_count), in_(peer_count), generation_(peer_count, 0) {}

void OverlayGraph::append(Span& span, PeerId value) {
  if (span.size == span.capacity) {
    // Relocate the span to the arena tail with doubled capacity; the old
    // run becomes garbage until the next compaction.
    const std::uint32_t grown = span.capacity == 0 ? 4 : span.capacity * 2;
    const std::size_t at = arena_.size();
    arena_.resize(at + grown, kNoPeer);
    std::copy(arena_.begin() + span.offset,
              arena_.begin() + span.offset + span.size, arena_.begin() + at);
    live_ += grown - span.capacity;
    span.offset = static_cast<std::uint32_t>(at);
    span.capacity = grown;
  }
  arena_[span.offset + span.size] = value;
  ++span.size;
  if (arena_.size() > kCompactionFloor && arena_.size() - live_ > live_) {
    compact();
  }
}

bool OverlayGraph::erase(Span& span, PeerId value) {
  const auto begin = arena_.begin() + span.offset;
  const auto end = begin + span.size;
  const auto it = std::find(begin, end, value);
  if (it == end) return false;
  std::copy(it + 1, end, it);  // ordered erase, exactly like vector::erase
  --span.size;
  return true;
}

void OverlayGraph::compact() {
  std::vector<PeerId> packed;
  packed.reserve(edge_count_ * 2);
  const auto repack = [&](Span& span) {
    const auto at = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), arena_.begin() + span.offset,
                  arena_.begin() + span.offset + span.size);
    span.offset = at;
    span.capacity = span.size;
  };
  for (auto& span : out_) repack(span);
  for (auto& span : in_) repack(span);
  arena_ = std::move(packed);
  live_ = arena_.size();
}

std::size_t OverlayGraph::memory_bytes() const {
  return sizeof(*this) + arena_.capacity() * sizeof(PeerId) +
         (out_.capacity() + in_.capacity()) * sizeof(Span) +
         generation_.capacity() * sizeof(std::uint64_t);
}

bool OverlayGraph::add_edge(PeerId from, PeerId to) {
  GC_REQUIRE(from < out_.size() && to < out_.size());
  GC_REQUIRE_MSG(from != to, "self edges are not allowed");
  if (has_edge(from, to)) return false;
  append(out_[from], to);
  append(in_[to], from);
  // Nbr() is the union of both directions, so either endpoint's cached
  // neighbour view goes stale.
  ++generation_[from];
  ++generation_[to];
  ++edge_count_;
  return true;
}

bool OverlayGraph::remove_edge(PeerId from, PeerId to) {
  GC_REQUIRE(from < out_.size() && to < out_.size());
  if (!erase(out_[from], to)) return false;
  erase(in_[to], from);
  ++generation_[from];
  ++generation_[to];
  --edge_count_;
  return true;
}

void OverlayGraph::isolate(PeerId peer) {
  GC_REQUIRE(peer < out_.size());
  // Copy: remove_edge mutates the adjacency runs we iterate.
  const auto out_view = view(out_[peer]);
  const std::vector<PeerId> outs(out_view.begin(), out_view.end());
  for (const PeerId to : outs) remove_edge(peer, to);
  const auto in_view = view(in_[peer]);
  const std::vector<PeerId> ins(in_view.begin(), in_view.end());
  for (const PeerId from : ins) remove_edge(from, peer);
}

bool OverlayGraph::has_edge(PeerId from, PeerId to) const {
  GC_REQUIRE(from < out_.size() && to < out_.size());
  const auto outs = view(out_[from]);
  return std::find(outs.begin(), outs.end(), to) != outs.end();
}

std::vector<PeerId> OverlayGraph::neighbors(PeerId p) const {
  GC_REQUIRE(p < out_.size());
  const auto outs = view(out_[p]);
  std::vector<PeerId> result(outs.begin(), outs.end());
  for (const PeerId q : view(in_[p])) {
    if (std::find(result.begin(), result.end(), q) == result.end()) {
      result.push_back(q);
    }
  }
  return result;
}

std::size_t OverlayGraph::degree(PeerId p) const {
  GC_REQUIRE(p < out_.size());
  const auto outs = view(out_[p]);
  std::size_t count = outs.size();
  for (const PeerId q : view(in_[p])) {
    if (std::find(outs.begin(), outs.end(), q) == outs.end()) ++count;
  }
  return count;
}

OverlayGraph::Connectivity OverlayGraph::connectivity() const {
  Connectivity result;
  const std::size_t n = out_.size();
  std::vector<char> seen(n, 0);
  std::size_t active = 0;
  PeerId start = kNoPeer;
  for (PeerId p = 0; p < n; ++p) {
    if (out_[p].size != 0 || in_[p].size != 0) {
      ++active;
      if (start == kNoPeer) start = p;
    } else {
      ++result.isolated_peers;
    }
  }
  if (active == 0) {
    result.connected = n <= 1;
    return result;
  }
  std::queue<PeerId> frontier;
  frontier.push(start);
  seen[start] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const PeerId at = frontier.front();
    frontier.pop();
    for (const PeerId nbr : neighbors(at)) {
      if (!seen[nbr]) {
        seen[nbr] = 1;
        ++reached;
        frontier.push(nbr);
      }
    }
  }
  result.largest_component = reached;
  result.connected = reached == active && result.isolated_peers == 0;
  return result;
}

double OverlayGraph::average_hop_distance(util::Rng& rng,
                                          std::size_t samples) const {
  const std::size_t n = out_.size();
  if (n < 2) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  std::vector<std::int32_t> dist(n);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto src = static_cast<PeerId>(rng.uniform_index(n));
    // BFS from src; accumulate distance to a random reachable target.
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<PeerId> frontier;
    frontier.push(src);
    dist[src] = 0;
    while (!frontier.empty()) {
      const PeerId at = frontier.front();
      frontier.pop();
      for (const PeerId nbr : neighbors(at)) {
        if (dist[nbr] < 0) {
          dist[nbr] = dist[at] + 1;
          frontier.push(nbr);
        }
      }
    }
    const auto dst = static_cast<PeerId>(rng.uniform_index(n));
    if (dst != src && dist[dst] > 0) {
      total += dist[dst];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double OverlayGraph::clustering_coefficient() const {
  const std::size_t n = out_.size();
  double total = 0.0;
  std::size_t counted = 0;
  for (PeerId p = 0; p < n; ++p) {
    const auto nbrs = neighbors(p);
    if (nbrs.size() < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (connected(nbrs[i], nbrs[j])) ++closed;
      }
    }
    const double possible =
        static_cast<double>(nbrs.size() * (nbrs.size() - 1)) / 2.0;
    total += static_cast<double>(closed) / possible;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace groupcast::overlay
