// Directed overlay graph.
//
// GroupCast's bootstrap creates *forwarding* (outgoing) edges chosen by the
// joiner and *back links* (incoming edges) accepted probabilistically by the
// target (Section 3.3).  Messages flow over the union of both directions —
// the links are long-lived transport connections, as in Gnutella — but the
// distinction matters for how the topology forms, so the graph keeps it.
//
// Storage: both adjacency directions live in one shared PeerId arena with a
// 12-byte {offset, size, capacity} span per peer per direction, instead of
// a std::vector (24-byte header + its own heap block) each.  At 100k peers
// that is the difference between ~5 MB of vector headers plus 200k small
// allocations and one flat array — see docs/PERFORMANCE.md, "Sharded
// execution & memory budget".  Appends relocate a full span to the arena
// tail (amortized O(1)); the garbage this leaves behind is compacted away
// once it exceeds half the arena.  Per-span element order is exactly the
// order std::vector kept — append at the back, erase shifts left — so
// neighbour iteration, and everything seeded from it, is byte-identical.
#pragma once

#include <vector>

#include "overlay/peer.h"
#include "util/require.h"

namespace groupcast::overlay {

class OverlayGraph {
 public:
  /// Read-only view of one peer's adjacency run in the arena.  Invalidated
  /// by any edge mutation (like the vector iterators it replaced).
  class NeighborSpan {
   public:
    NeighborSpan(const PeerId* data, std::size_t size)
        : data_(data), size_(size) {}
    const PeerId* begin() const { return data_; }
    const PeerId* end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    PeerId operator[](std::size_t i) const { return data_[i]; }

   private:
    const PeerId* data_;
    std::size_t size_;
  };

  explicit OverlayGraph(std::size_t peer_count);

  std::size_t peer_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds a directed edge from -> to.  Returns false (no-op) if it already
  /// exists.  Self-edges are a precondition violation.
  bool add_edge(PeerId from, PeerId to);

  /// Removes a directed edge; returns false if absent.
  bool remove_edge(PeerId from, PeerId to);

  /// Drops all edges incident to `peer` in either direction (peer failure).
  void isolate(PeerId peer);

  bool has_edge(PeerId from, PeerId to) const;

  /// True if a link exists in either direction.
  bool connected(PeerId a, PeerId b) const {
    return has_edge(a, b) || has_edge(b, a);
  }

  NeighborSpan out_neighbors(PeerId p) const {
    GC_REQUIRE(p < out_.size());
    return view(out_[p]);
  }
  NeighborSpan in_neighbors(PeerId p) const {
    GC_REQUIRE(p < in_.size());
    return view(in_[p]);
  }

  /// All peers connected to `p` in either direction, deduplicated.
  /// This is Nbr(p) in the paper: the set messages can be exchanged with.
  std::vector<PeerId> neighbors(PeerId p) const;

  /// |neighbors(p)| without materializing the vector.
  std::size_t degree(PeerId p) const;

  /// Monotone version of `p`'s neighbour set: bumped every time an edge
  /// incident to `p` (either direction) is added or removed.  Lets
  /// utility-selection caches detect staleness in O(1) instead of
  /// re-deriving Nbr(p) — see docs/PERFORMANCE.md.
  std::uint64_t neighbor_generation(PeerId p) const {
    GC_REQUIRE(p < generation_.size());
    return generation_[p];
  }

  /// Retained bytes of the adjacency store (arena + spans + generations),
  /// capacity-based and deterministic for a fixed edge history.
  std::size_t memory_bytes() const;

  /// Rebuilds the arena with zero garbage and per-span capacity == size.
  /// Called automatically when relocation garbage piles up; exposed for
  /// long-lived graphs that just finished a churn storm.
  void compact();

  /// True if the union (undirected view) of the graph is connected over
  /// the peers that have at least one edge; isolated peers are reported via
  /// the second member.
  struct Connectivity {
    bool connected = false;
    std::size_t isolated_peers = 0;
    std::size_t largest_component = 0;
  };
  Connectivity connectivity() const;

  /// Mean shortest-path hop distance over sampled peer pairs (undirected
  /// view); used by the low-diameter claims.  Unreachable pairs excluded.
  double average_hop_distance(util::Rng& rng, std::size_t samples = 200) const;

  /// Watts–Strogatz clustering coefficient (undirected view), averaged over
  /// peers with degree >= 2.
  double clustering_coefficient() const;

 private:
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
  };

  NeighborSpan view(const Span& span) const {
    return {arena_.data() + span.offset, span.size};
  }
  void append(Span& span, PeerId value);
  bool erase(Span& span, PeerId value);

  std::vector<PeerId> arena_;  // shared by both directions of every peer
  std::vector<Span> out_;
  std::vector<Span> in_;
  std::vector<std::uint64_t> generation_;
  std::size_t edge_count_ = 0;
  std::size_t live_ = 0;  // arena slots inside some span's capacity
};

}  // namespace groupcast::overlay
