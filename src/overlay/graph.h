// Directed overlay graph.
//
// GroupCast's bootstrap creates *forwarding* (outgoing) edges chosen by the
// joiner and *back links* (incoming edges) accepted probabilistically by the
// target (Section 3.3).  Messages flow over the union of both directions —
// the links are long-lived transport connections, as in Gnutella — but the
// distinction matters for how the topology forms, so the graph keeps it.
#pragma once

#include <unordered_set>
#include <vector>

#include "overlay/peer.h"

namespace groupcast::overlay {

class OverlayGraph {
 public:
  explicit OverlayGraph(std::size_t peer_count);

  std::size_t peer_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds a directed edge from -> to.  Returns false (no-op) if it already
  /// exists.  Self-edges are a precondition violation.
  bool add_edge(PeerId from, PeerId to);

  /// Removes a directed edge; returns false if absent.
  bool remove_edge(PeerId from, PeerId to);

  /// Drops all edges incident to `peer` in either direction (peer failure).
  void isolate(PeerId peer);

  bool has_edge(PeerId from, PeerId to) const;

  /// True if a link exists in either direction.
  bool connected(PeerId a, PeerId b) const {
    return has_edge(a, b) || has_edge(b, a);
  }

  const std::vector<PeerId>& out_neighbors(PeerId p) const {
    return out_.at(p);
  }
  const std::vector<PeerId>& in_neighbors(PeerId p) const { return in_.at(p); }

  /// All peers connected to `p` in either direction, deduplicated.
  /// This is Nbr(p) in the paper: the set messages can be exchanged with.
  std::vector<PeerId> neighbors(PeerId p) const;

  /// |neighbors(p)| without materializing the vector.
  std::size_t degree(PeerId p) const;

  /// Monotone version of `p`'s neighbour set: bumped every time an edge
  /// incident to `p` (either direction) is added or removed.  Lets
  /// utility-selection caches detect staleness in O(1) instead of
  /// re-deriving Nbr(p) — see docs/PERFORMANCE.md.
  std::uint64_t neighbor_generation(PeerId p) const {
    return generation_.at(p);
  }

  /// True if the union (undirected view) of the graph is connected over
  /// the peers that have at least one edge; isolated peers are reported via
  /// the second member.
  struct Connectivity {
    bool connected = false;
    std::size_t isolated_peers = 0;
    std::size_t largest_component = 0;
  };
  Connectivity connectivity() const;

  /// Mean shortest-path hop distance over sampled peer pairs (undirected
  /// view); used by the low-diameter claims.  Unreachable pairs excluded.
  double average_hop_distance(util::Rng& rng, std::size_t samples = 200) const;

  /// Watts–Strogatz clustering coefficient (undirected view), averaged over
  /// peers with degree >= 2.
  double clustering_coefficient() const;

 private:
  std::vector<std::vector<PeerId>> out_;
  std::vector<std::vector<PeerId>> in_;
  std::vector<std::uint64_t> generation_;
  std::size_t edge_count_ = 0;
};

}  // namespace groupcast::overlay
