#include "overlay/host_cache.h"

#include <algorithm>

#include "util/require.h"

namespace groupcast::overlay {

HostCacheServer::HostCacheServer(const PeerPopulation& population,
                                 HostCacheOptions options, util::Rng& rng)
    : population_(&population),
      options_(options),
      rng_(rng.split()),
      position_(population.size(), -1) {
  GC_REQUIRE(options_.capacity > 0);
  GC_REQUIRE(options_.min_batch >= 2);
  GC_REQUIRE(options_.max_batch >= options_.min_batch);
}

void HostCacheServer::register_peer(PeerId peer) {
  GC_REQUIRE(peer < position_.size());
  if (position_[peer] >= 0) return;
  if (entries_.size() >= options_.capacity) {
    // Random replacement, as Gnucleus-style caches effectively do under
    // constant churn.
    const auto victim_slot = rng_.uniform_index(entries_.size());
    const PeerId victim = entries_[victim_slot];
    position_[victim] = -1;
    entries_[victim_slot] = peer;
    position_[peer] = static_cast<std::int32_t>(victim_slot);
    return;
  }
  position_[peer] = static_cast<std::int32_t>(entries_.size());
  entries_.push_back(peer);
}

void HostCacheServer::deregister_peer(PeerId peer) {
  GC_REQUIRE(peer < position_.size());
  const auto slot = position_[peer];
  if (slot < 0) return;
  const PeerId last = entries_.back();
  entries_[static_cast<std::size_t>(slot)] = last;
  position_[last] = slot;
  entries_.pop_back();
  position_[peer] = -1;
}

bool HostCacheServer::contains(PeerId peer) const {
  GC_REQUIRE(peer < position_.size());
  return position_[peer] >= 0;
}

std::vector<PeerId> HostCacheServer::bootstrap_candidates(PeerId joiner) {
  GC_REQUIRE(joiner < position_.size());

  std::vector<PeerId> pool;
  pool.reserve(entries_.size());
  for (const PeerId p : entries_) {
    if (p != joiner) pool.push_back(p);
  }
  if (pool.empty()) return {};

  const std::size_t batch = std::min<std::size_t>(
      pool.size(),
      options_.min_batch +
          rng_.uniform_index(options_.max_batch - options_.min_batch + 1));
  const std::size_t closest_half = (batch + 1) / 2;

  // BD_i: closest by network-coordinate distance.
  std::partial_sort(
      pool.begin(),
      pool.begin() + static_cast<std::ptrdiff_t>(
                         std::min(closest_half, pool.size())),
      pool.end(), [&](PeerId a, PeerId b) {
        return population_->coord_distance_ms(joiner, a) <
               population_->coord_distance_ms(joiner, b);
      });
  std::vector<PeerId> result(
      pool.begin(),
      pool.begin() + static_cast<std::ptrdiff_t>(
                         std::min(closest_half, pool.size())));

  // BR_i: random picks from the remainder, skipping duplicates.
  std::size_t attempts = 0;
  while (result.size() < batch && attempts < pool.size() * 4 + 16) {
    ++attempts;
    const PeerId pick = pool[rng_.uniform_index(pool.size())];
    if (std::find(result.begin(), result.end(), pick) == result.end()) {
      result.push_back(pick);
    }
  }
  return result;
}

}  // namespace groupcast::overlay
