// Host cache server (bootstrap directory).
//
// "a joining peer i obtains a list of existing peers ... by contacting a
// host cache server.  The host cache server is an extension of Gnucleus,
// which caches the information of a list of peers that are currently active.
// ... the host cache sorts its cached entries in an ascending order by their
// network coordinate distances to peer i.  From the top of this sorted list,
// the host cache selects a list of peers BD_i.  They are returned together
// with a list of randomly selected peers BR_i.  |BR_i| = |BD_i| and
// 5 <= |B_i| <= 8."                                         (Section 3.3)
#pragma once

#include <vector>

#include "overlay/population.h"

namespace groupcast::overlay {

struct HostCacheOptions {
  std::size_t capacity = 1000;     // max cached entries
  std::size_t min_batch = 5;       // lower bound on |B_i|
  std::size_t max_batch = 8;       // upper bound on |B_i|
};

class HostCacheServer {
 public:
  HostCacheServer(const PeerPopulation& population, HostCacheOptions options,
                  util::Rng& rng);

  /// Registers an active peer (on join).  Evicts a random entry when full.
  void register_peer(PeerId peer);

  /// Removes a peer (on graceful departure / detected failure).
  void deregister_peer(PeerId peer);

  bool contains(PeerId peer) const;
  std::size_t size() const { return entries_.size(); }

  /// Bootstrap query: returns B_i = BD_i ∪ BR_i (closest half by network
  /// coordinate distance to `joiner`, random half), never including the
  /// joiner itself.  Empty when the cache holds no other peer.
  std::vector<PeerId> bootstrap_candidates(PeerId joiner);

 private:
  const PeerPopulation* population_;
  HostCacheOptions options_;
  util::Rng rng_;
  std::vector<PeerId> entries_;           // insertion order (cheap eviction)
  std::vector<std::int32_t> position_;    // peer -> index in entries_, or -1
};

}  // namespace groupcast::overlay
