#include "overlay/maintenance.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/require.h"

namespace groupcast::overlay {

MaintenanceProtocol::MaintenanceProtocol(sim::Simulator& simulator,
                                         const PeerPopulation& population,
                                         OverlayGraph& graph,
                                         GroupCastBootstrap& bootstrap,
                                         MaintenanceOptions options)
    : simulator_(&simulator),
      population_(&population),
      graph_(&graph),
      bootstrap_(&bootstrap),
      options_(options),
      current_epoch_(options.epoch) {
  GC_REQUIRE(options_.heartbeat_interval > sim::SimTime::zero());
  GC_REQUIRE(options_.epoch >= options_.heartbeat_interval);
  GC_REQUIRE(options_.min_epoch > sim::SimTime::zero());
  GC_REQUIRE(options_.missed_heartbeats_to_fail >= 1);
}

void MaintenanceProtocol::start(sim::SimTime horizon) {
  simulator_->schedule(current_epoch_,
                       [this, horizon] { run_epoch(horizon); });
}

void MaintenanceProtocol::run_epoch(sim::SimTime horizon) {
  trace::ScopedTimer epoch_timer(trace::TimerId::kMaintenanceEpoch);
  ++stats_.epochs;
  const std::size_t dead_links_before = stats_.dead_links_removed;
  const sim::SimTime now = simulator_->now();
  const sim::SimTime detection_lag =
      options_.heartbeat_interval *
      static_cast<std::int64_t>(options_.missed_heartbeats_to_fail);

  // Analytic heartbeat accounting: every live link exchanges two messages
  // per heartbeat interval.
  const auto beats_per_epoch = static_cast<std::size_t>(
      current_epoch_.as_seconds() / options_.heartbeat_interval.as_seconds());
  stats_.heartbeat_messages += 2 * graph_->edge_count() * beats_per_epoch;

  std::size_t failures_this_epoch = 0;
  for (PeerId p = 0; p < population_->size(); ++p) {
    if (!bootstrap_->is_joined(p)) continue;
    // Detect dead neighbours: a neighbour that is down is declared failed
    // only after `detection_lag` of simulated unresponsiveness.
    for (const PeerId nbr : graph_->neighbors(p)) {
      if (bootstrap_->is_joined(nbr)) continue;
      const auto [it, inserted] = last_seen_down_.try_emplace(nbr, now);
      if (!inserted && now - it->second < detection_lag) continue;
      if (graph_->remove_edge(p, nbr)) ++stats_.dead_links_removed;
      if (graph_->remove_edge(nbr, p)) ++stats_.dead_links_removed;
      bootstrap_->report_failure(nbr);
      ++failures_this_epoch;
    }
  }
  // Repair pass after detection so new links are not drawn from corpses.
  for (PeerId p = 0; p < population_->size(); ++p) {
    if (!bootstrap_->is_joined(p)) continue;
    stats_.links_repaired += bootstrap_->refill(p);
  }

  // Adapt the epoch to the observed churn.
  if (failures_this_epoch > options_.churn_high_watermark) {
    current_epoch_ = std::max(
        options_.min_epoch,
        sim::SimTime::micros(current_epoch_.as_micros() / 2));
  } else {
    current_epoch_ = std::min(
        options_.epoch,
        sim::SimTime::micros(current_epoch_.as_micros() * 3 / 2));
  }
  if (current_epoch_ < options_.heartbeat_interval) {
    current_epoch_ = options_.heartbeat_interval;
  }

  trace::tracer().emit(now.as_micros(), trace::EventKind::kMaintenanceEpoch,
                       trace::kNoNode, trace::kNoNode,
                       stats_.dead_links_removed - dead_links_before);

  if (now + current_epoch_ <= horizon) {
    simulator_->schedule(current_epoch_,
                         [this, horizon] { run_epoch(horizon); });
  }
}

}  // namespace groupcast::overlay
