// Epoch-based neighbourhood link maintenance (Section 3.3).
//
// "Peers regularly exchange heartbeat messages with their neighbors ...
// A neighbor that has failed to respond to two consecutive heartbeat
// messages is assumed to have failed. ... At the end of the epoch, the
// peer attempts to repair its neighbor list [and] establish a set of new
// links to peers that are currently not its neighbors.  New peers are
// chosen according to their utility values."
//
// Implementation note: heartbeats are accounted analytically per epoch
// (2 messages per link per heartbeat interval) instead of as millions of
// simulator events; failure *detection* still honours the two-miss rule by
// only declaring a neighbour dead once it has been unresponsive for two
// heartbeat intervals of simulated time.
#pragma once

#include <unordered_map>

#include "overlay/bootstrap.h"
#include "sim/simulator.h"

namespace groupcast::overlay {

struct MaintenanceOptions {
  sim::SimTime heartbeat_interval = sim::SimTime::seconds(30.0);
  sim::SimTime epoch = sim::SimTime::seconds(120.0);
  std::size_t missed_heartbeats_to_fail = 2;
  /// The epoch adapts to churn: it shrinks towards `min_epoch` when many
  /// failures are detected and relaxes back towards `epoch` when quiet.
  sim::SimTime min_epoch = sim::SimTime::seconds(30.0);
  /// Failures per epoch (across the overlay) above which the epoch halves.
  std::size_t churn_high_watermark = 8;
};

struct MaintenanceStats {
  std::size_t epochs = 0;
  std::size_t heartbeat_messages = 0;
  std::size_t dead_links_removed = 0;
  std::size_t links_repaired = 0;
};

/// Runs maintenance epochs over the whole overlay.  Peers that have left or
/// failed are recognized through GroupCastBootstrap::is_joined.
class MaintenanceProtocol {
 public:
  MaintenanceProtocol(sim::Simulator& simulator,
                      const PeerPopulation& population,
                      OverlayGraph& graph, GroupCastBootstrap& bootstrap,
                      MaintenanceOptions options);

  /// Schedules the first epoch; subsequent epochs self-schedule with the
  /// churn-adapted interval.  `horizon` bounds the last epoch's start time.
  void start(sim::SimTime horizon);

  const MaintenanceStats& stats() const { return stats_; }
  sim::SimTime current_epoch_length() const { return current_epoch_; }

 private:
  void run_epoch(sim::SimTime horizon);

  sim::Simulator* simulator_;
  const PeerPopulation* population_;
  OverlayGraph* graph_;
  GroupCastBootstrap* bootstrap_;
  MaintenanceOptions options_;
  sim::SimTime current_epoch_;
  MaintenanceStats stats_;
  /// Simulated time at which each peer was last seen alive by neighbours.
  std::unordered_map<PeerId, sim::SimTime> last_seen_down_;
};

}  // namespace groupcast::overlay
