#include "overlay/peer.h"

#include <algorithm>

#include "util/require.h"

namespace groupcast::overlay {

CapacityDistribution::CapacityDistribution()
    : CapacityDistribution({1.0, 10.0, 100.0, 1000.0, 10000.0},
                           {0.20, 0.45, 0.30, 0.049, 0.001}) {}

CapacityDistribution::CapacityDistribution(std::vector<double> levels,
                                           std::vector<double> weights)
    : levels_(std::move(levels)), categorical_(std::move(weights)) {
  GC_REQUIRE(levels_.size() == categorical_.size());
  GC_REQUIRE(!levels_.empty());
  GC_REQUIRE_MSG(std::is_sorted(levels_.begin(), levels_.end()),
                 "capacity levels must be ascending");
  for (double level : levels_) GC_REQUIRE(level > 0.0);
}

double CapacityDistribution::sample(util::Rng& rng) const {
  return levels_[categorical_.sample(rng)];
}

double CapacityDistribution::resource_level(double capacity) const {
  double below = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] < capacity) below += categorical_.probability(i);
  }
  return below;
}

}  // namespace groupcast::overlay
