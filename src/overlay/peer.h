// Peer identity and capacity model.
//
// A GroupCast peer is identified by the tuple
//   <IP address, port, coordinate, capacity>        (Section 3.3)
// Capacity is "the number of 64kbps connections the node is willing to
// support" and follows the measured distribution of Saroiu et al. [25]
// reproduced in the paper's Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "coords/coord.h"
#include "net/topology.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace groupcast::overlay {

using PeerId = std::uint32_t;
inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// Static description of one peer.
struct PeerInfo {
  PeerId id = kNoPeer;
  net::RouterId router = 0;        // stub router the peer attaches to
  double access_latency_ms = 0.5;  // last-mile latency to that router
  coords::Coord coord;             // GNP/Vivaldi network coordinate
  double capacity = 1.0;           // number of 64kbps flows supported
};

/// Table 1 of the paper: capacity level -> fraction of peers.
///
///   1x: 20%   10x: 45%   100x: 30%   1000x: 4.9%   10000x: 0.1%
class CapacityDistribution {
 public:
  /// Builds the paper's Table 1 distribution.
  CapacityDistribution();

  /// Custom levels/weights (tests use small synthetic tables).
  CapacityDistribution(std::vector<double> levels, std::vector<double> weights);

  /// Draws a capacity value.
  double sample(util::Rng& rng) const;

  /// Exact resource level of a capacity value under this distribution:
  /// the fraction of peers expected to have *strictly less* capacity
  /// (Section 3.1's r_i).  E.g. Table 1 gives r(100x) = 0.65.
  double resource_level(double capacity) const;

  const std::vector<double>& levels() const { return levels_; }
  double probability_of_level(std::size_t index) const {
    return categorical_.probability(index);
  }
  std::size_t level_count() const { return levels_.size(); }

 private:
  std::vector<double> levels_;  // ascending capacity values
  util::Categorical categorical_;
};

}  // namespace groupcast::overlay
