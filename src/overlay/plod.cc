#include "overlay/plod.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/distributions.h"
#include "util/require.h"

namespace groupcast::overlay {

PlodResult generate_plod(OverlayGraph& graph, const PlodOptions& options,
                         util::Rng& rng) {
  const std::size_t n = graph.peer_count();
  GC_REQUIRE(n >= 2);
  GC_REQUIRE_MSG(graph.edge_count() == 0, "PLOD requires an empty graph");
  GC_REQUIRE(options.min_degree >= 1);
  const std::size_t max_degree =
      options.max_degree == 0 ? std::max<std::size_t>(64, n / 10)
                              : options.max_degree;
  GC_REQUIRE(max_degree >= options.min_degree);

  PlodResult result;

  // 1. Sample each node's degree credit from P(d) ∝ d^-α over
  //    {min_degree, .., max_degree}.
  const std::size_t span = max_degree - options.min_degree + 1;
  util::ZipfDistribution zipf(span, options.alpha);
  std::vector<std::size_t> credit(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Zipf rank 1 (most probable) maps to min_degree.
    credit[i] = options.min_degree + (zipf.sample(rng) - 1);
    result.assigned_credits += credit[i];
  }

  // 2. Randomly pair nodes with remaining credit.
  std::vector<PeerId> pool;  // nodes with credit left
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (credit[i] > 0) pool.push_back(static_cast<PeerId>(i));
  }
  std::size_t attempts_left = result.assigned_credits *
                              options.max_attempts_factor;
  auto compact = [&pool, &credit]() {
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&credit](PeerId p) { return credit[p] == 0; }),
               pool.end());
  };
  std::size_t stale = 0;
  while (pool.size() >= 2 && attempts_left-- > 0) {
    const PeerId a = pool[rng.uniform_index(pool.size())];
    const PeerId b = pool[rng.uniform_index(pool.size())];
    if (a == b || graph.connected(a, b)) {
      if (++stale > pool.size() * 8) {
        compact();
        stale = 0;
        if (pool.size() < 2) break;
      }
      continue;
    }
    graph.add_edge(a, b);
    graph.add_edge(b, a);
    ++result.placed_edges;
    --credit[a];
    --credit[b];
    stale = 0;
    if (credit[a] == 0 || credit[b] == 0) compact();
  }

  // 3. Stitch components: find connected components of the undirected view
  //    and chain them together with random inter-component edges.
  std::vector<std::int32_t> component(n, -1);
  std::int32_t n_components = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    const std::int32_t c = n_components++;
    std::queue<PeerId> frontier;
    frontier.push(static_cast<PeerId>(start));
    component[start] = c;
    while (!frontier.empty()) {
      const PeerId at = frontier.front();
      frontier.pop();
      for (const PeerId nbr : graph.neighbors(at)) {
        if (component[nbr] < 0) {
          component[nbr] = c;
          frontier.push(nbr);
        }
      }
    }
  }
  if (n_components > 1) {
    // One random representative per component, chained in random order.
    std::vector<PeerId> reps(static_cast<std::size_t>(n_components), kNoPeer);
    std::vector<PeerId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    for (const PeerId p : order) {
      auto& rep = reps[static_cast<std::size_t>(component[p])];
      if (rep == kNoPeer) rep = p;
    }
    for (std::size_t c = 1; c < reps.size(); ++c) {
      graph.add_edge(reps[c - 1], reps[c]);
      graph.add_edge(reps[c], reps[c - 1]);
      ++result.repair_edges;
    }
  }

  return result;
}

}  // namespace groupcast::overlay
