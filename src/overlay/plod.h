// PLOD — Power-Law Out-Degree random graph generator (Palmer & Steffan,
// GLOBECOM 2000).  The paper uses PLOD-generated "random power-law
// overlay networks" as the baseline for every overlay-level comparison
// (Figures 8, 10–17): same degree law, but neighbours chosen with no regard
// to proximity or capacity.
#pragma once

#include "overlay/graph.h"
#include "overlay/population.h"

namespace groupcast::overlay {

struct PlodOptions {
  /// Degree-law exponent; the paper's Figure 8 uses α = 1.8.
  double alpha = 1.8;
  /// Degree credits are drawn from ranks {min_degree .. max_degree} with
  /// P(d) ∝ d^-α.  The floor of 3 keeps the realized graph well connected
  /// (Gnutella-like mean degree ≈ 4), matching the connectivity of the
  /// paper's baseline networks; with a floor of 2 the generator produces
  /// long degree-2 chains on which scoped floods die out.
  std::size_t min_degree = 3;
  /// 0 = auto: max(64, peer_count / 10), letting hub sizes grow with the
  /// network as in measured Gnutella snapshots.
  std::size_t max_degree = 0;
  /// Random (src, dst) pairing attempts per remaining credit before giving
  /// up on placing the remaining budget.
  std::size_t max_attempts_factor = 20;
};

/// Result of a PLOD run.
struct PlodResult {
  std::size_t assigned_credits = 0;  // Σ sampled degrees
  std::size_t placed_edges = 0;      // undirected edges realized
  std::size_t repair_edges = 0;      // edges added to stitch components
};

/// Generates a PLOD graph over all peers in `graph` (which must be empty).
/// Each realized undirected edge is stored as a pair of directed edges so
/// the result is comparable with GroupCast overlays.  After credit
/// placement, disconnected components are stitched together with random
/// repair edges (and counted in the result) so that downstream experiments
/// always run on a connected overlay — the paper's comparisons presuppose
/// one.
PlodResult generate_plod(OverlayGraph& graph, const PlodOptions& options,
                         util::Rng& rng);

}  // namespace groupcast::overlay
