#include "overlay/population.h"

#include "util/require.h"

namespace groupcast::overlay {

PeerPopulation::PeerPopulation(const net::IpRouting& routing,
                               const PopulationConfig& config, util::Rng& rng)
    : routing_(&routing), capacities_(config.capacities) {
  GC_REQUIRE(config.peer_count >= 2);
  GC_REQUIRE(config.access_latency_min_ms > 0.0);
  GC_REQUIRE(config.access_latency_max_ms >= config.access_latency_min_ms);

  const auto stubs = routing.topology().stub_routers();
  GC_REQUIRE_MSG(!stubs.empty(), "underlay has no stub routers");

  peers_.resize(config.peer_count);
  for (PeerId id = 0; id < config.peer_count; ++id) {
    PeerInfo& p = peers_[id];
    p.id = id;
    p.router = stubs[rng.uniform_index(stubs.size())];
    p.access_latency_ms = rng.uniform(config.access_latency_min_ms,
                                      config.access_latency_max_ms);
    p.capacity = capacities_.sample(rng);
  }

  // Coordinate assignment over the true peer-pair latencies.
  const coords::LatencyOracle oracle = [this](std::size_t a, std::size_t b) {
    return latency_ms(static_cast<PeerId>(a), static_cast<PeerId>(b));
  };
  switch (config.coordinates) {
    case CoordinateSystem::kGnp: {
      coords::GnpEmbedding gnp(config.peer_count, oracle, rng, config.gnp);
      for (PeerId id = 0; id < config.peer_count; ++id) {
        peers_[id].coord = gnp.coordinate(id);
      }
      break;
    }
    case CoordinateSystem::kVivaldi: {
      coords::VivaldiModel vivaldi(config.peer_count, rng, config.vivaldi);
      vivaldi.run_rounds(config.vivaldi_rounds, oracle, rng);
      for (PeerId id = 0; id < config.peer_count; ++id) {
        peers_[id].coord = vivaldi.coordinate(id);
      }
      break;
    }
  }
}

double PeerPopulation::latency_ms(PeerId a, PeerId b) const {
  if (a == b) return 0.0;
  const PeerInfo& pa = peers_.at(a);
  const PeerInfo& pb = peers_.at(b);
  return pa.access_latency_ms +
         routing_->distance_ms(pa.router, pb.router) + pb.access_latency_ms;
}

double PeerPopulation::coord_distance_ms(PeerId a, PeerId b) const {
  return peers_.at(a).coord.distance_to(peers_.at(b).coord);
}

double PeerPopulation::resource_level(PeerId id) const {
  return capacities_.resource_level(peers_.at(id).capacity);
}

double PeerPopulation::sampled_resource_level(PeerId id,
                                              std::size_t sample_size,
                                              util::Rng& rng) const {
  GC_REQUIRE(sample_size > 0);
  const double own = peers_.at(id).capacity;
  std::size_t below = 0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < sample_size; ++s) {
    const auto other = static_cast<PeerId>(rng.uniform_index(peers_.size()));
    if (other == id) continue;
    ++counted;
    if (peers_[other].capacity < own) ++below;
  }
  if (counted == 0) return 0.5;
  return static_cast<double>(below) / static_cast<double>(counted);
}

}  // namespace groupcast::overlay
