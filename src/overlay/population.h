// A population of peers attached to the IP underlay.
//
// Reproduces the paper's experimental setup (Section 4): "Peers are randomly
// attached to the stub domain routers", capacities follow Table 1, and
// network coordinates are assigned with GNP.
#pragma once

#include <memory>
#include <vector>

#include "coords/gnp.h"
#include "coords/vivaldi.h"
#include "net/routing.h"
#include "overlay/peer.h"

namespace groupcast::overlay {

/// How peers obtain their network coordinates.  The paper's evaluation
/// uses GNP [1]; Vivaldi [15] is the landmark-free alternative it cites.
enum class CoordinateSystem { kGnp, kVivaldi };

struct PopulationConfig {
  std::size_t peer_count = 1000;
  double access_latency_min_ms = 0.2;
  double access_latency_max_ms = 2.0;
  CoordinateSystem coordinates = CoordinateSystem::kGnp;
  coords::GnpOptions gnp;
  coords::VivaldiOptions vivaldi;
  /// Sampling rounds for the Vivaldi variant (each node measures one
  /// random peer per round).
  std::size_t vivaldi_rounds = 60;
  CapacityDistribution capacities{};
};

/// Immutable peer set: attachment points, capacities, true latencies and
/// estimated (coordinate) distances.
class PeerPopulation {
 public:
  PeerPopulation(const net::IpRouting& routing, const PopulationConfig& config,
                 util::Rng& rng);

  std::size_t size() const { return peers_.size(); }
  const PeerInfo& info(PeerId id) const { return peers_.at(id); }
  const std::vector<PeerInfo>& peers() const { return peers_; }

  /// True end-to-end latency (ms): access + router path + access.
  /// For a == b this is 0.
  double latency_ms(PeerId a, PeerId b) const;

  /// Latency as *estimated* from network coordinates — what the middleware
  /// actually uses in its utility computation (D(i, j) in the paper).
  double coord_distance_ms(PeerId a, PeerId b) const;

  /// Exact resource level r_i of a peer under the capacity distribution.
  double resource_level(PeerId id) const;

  /// Empirical resource level measured against `sample_size` random peers —
  /// the decentralized estimate GroupCast actually performs (Section 3.1).
  double sampled_resource_level(PeerId id, std::size_t sample_size,
                                util::Rng& rng) const;

  const net::IpRouting& routing() const { return *routing_; }
  const CapacityDistribution& capacity_distribution() const {
    return capacities_;
  }

 private:
  const net::IpRouting* routing_;
  CapacityDistribution capacities_;
  std::vector<PeerInfo> peers_;
};

}  // namespace groupcast::overlay
