#include "overlay/search.h"

#include <limits>
#include <unordered_map>

#include "util/require.h"

namespace groupcast::overlay {

SearchResult flood_search(const PeerPopulation& population,
                          const OverlayGraph& graph, PeerId origin,
                          std::size_t ttl,
                          const SearchPredicate& predicate) {
  GC_REQUIRE(origin < graph.peer_count());
  GC_REQUIRE(predicate != nullptr);
  SearchResult result;

  if (predicate(origin)) {
    // Local hit: zero network cost.
    result.found = true;
    result.hit = origin;
    result.peers_probed = 1;
    return result;
  }

  std::unordered_map<PeerId, double> arrival{{origin, 0.0}};
  std::vector<PeerId> frontier{origin};
  result.peers_probed = 1;
  double best_hit_time = std::numeric_limits<double>::infinity();

  for (std::size_t level = 0; level < ttl && !frontier.empty(); ++level) {
    std::vector<PeerId> next;
    for (const auto from : frontier) {
      const double t_from = arrival.at(from);
      for (const auto to : graph.neighbors(from)) {
        ++result.messages;
        const double t_to = t_from + population.latency_ms(from, to);
        const auto [it, inserted] = arrival.try_emplace(to, t_to);
        if (!inserted) {
          it->second = std::min(it->second, t_to);
          continue;  // duplicate copy dropped by the receiver
        }
        ++result.peers_probed;
        if (predicate(to)) {
          if (t_to < best_hit_time) {
            best_hit_time = t_to;
            result.hit = to;
          }
          continue;  // hits respond; they do not forward
        }
        next.push_back(to);
      }
    }
    frontier = std::move(next);
  }
  if (result.hit != kNoPeer) {
    result.found = true;
    ++result.messages;  // the response
    result.latency_ms = 2.0 * best_hit_time;
  }
  return result;
}

SearchResult random_walk_search(const PeerPopulation& population,
                                const OverlayGraph& graph, PeerId origin,
                                const RandomWalkOptions& options,
                                const SearchPredicate& predicate,
                                util::Rng& rng) {
  GC_REQUIRE(origin < graph.peer_count());
  GC_REQUIRE(predicate != nullptr);
  GC_REQUIRE(options.walkers >= 1);
  GC_REQUIRE(options.max_steps >= 1);
  SearchResult result;

  if (predicate(origin)) {
    result.found = true;
    result.hit = origin;
    result.peers_probed = 1;
    return result;
  }

  double best_hit_time = std::numeric_limits<double>::infinity();
  std::unordered_map<PeerId, char> probed{{origin, 1}};

  for (std::size_t w = 0; w < options.walkers; ++w) {
    PeerId at = origin;
    PeerId came_from = origin;
    double elapsed = 0.0;
    for (std::size_t step = 0; step < options.max_steps; ++step) {
      const auto nbrs = graph.neighbors(at);
      if (nbrs.empty()) break;
      // Candidate pool, optionally excluding the immediate previous hop.
      PeerId next = nbrs[rng.uniform_index(nbrs.size())];
      if (options.avoid_backtrack && nbrs.size() > 1) {
        while (next == came_from) {
          next = nbrs[rng.uniform_index(nbrs.size())];
        }
      }
      ++result.messages;
      elapsed += population.latency_ms(at, next);
      came_from = at;
      at = next;
      if (probed.try_emplace(at, 1).second) ++result.peers_probed;
      if (predicate(at)) {
        if (elapsed < best_hit_time) {
          best_hit_time = elapsed;
          result.hit = at;
        }
        break;  // this walker is done
      }
    }
  }
  if (result.hit != kNoPeer) {
    result.found = true;
    ++result.messages;  // the response
    result.latency_ms = 2.0 * best_hit_time;
  }
  return result;
}

}  // namespace groupcast::overlay
