// Unstructured-overlay search primitives.
//
// Section 1 motivates GroupCast with the cost profile of service lookup in
// unstructured P2P networks: "searching has to be carried out either by
// flooding the request or through random walks.  The former approach
// results in heavy communication overheads, whereas the latter may
// generate very long search paths."  These are those two primitives, in
// their standard Gnutella forms, with full cost accounting — used by the
// lookup benchmarks and available to applications that need generic
// resource discovery on the overlay.
#pragma once

#include <functional>

#include "overlay/graph.h"
#include "overlay/population.h"

namespace groupcast::overlay {

/// Decides whether a probed peer satisfies the query.
using SearchPredicate = std::function<bool(PeerId)>;

struct SearchResult {
  bool found = false;
  PeerId hit = kNoPeer;          // first (lowest-latency) satisfying peer
  std::size_t messages = 0;      // every query transmission
  std::size_t peers_probed = 0;  // distinct peers that evaluated the query
  double latency_ms = 0.0;       // query propagation time to the hit,
                                 // round trip (hit response included)
};

/// Scoped flood (Gnutella QUERY): every peer forwards the query to all of
/// its neighbours on first receipt, TTL-bounded.  Finds the hit with the
/// earliest arrival time; message count includes duplicates.
SearchResult flood_search(const PeerPopulation& population,
                          const OverlayGraph& graph, PeerId origin,
                          std::size_t ttl, const SearchPredicate& predicate);

struct RandomWalkOptions {
  std::size_t walkers = 4;       // parallel walkers launched by the origin
  std::size_t max_steps = 64;    // per-walker TTL
  /// Walkers avoid stepping straight back where they came from when the
  /// node has another neighbour.
  bool avoid_backtrack = true;
};

/// k-walker random walk (Gnutella "modified random walk").  Each walker
/// steps independently; the result reports the cheapest successful walker
/// by arrival latency.  Deterministic for a given rng state.
SearchResult random_walk_search(const PeerPopulation& population,
                                const OverlayGraph& graph, PeerId origin,
                                const RandomWalkOptions& options,
                                const SearchPredicate& predicate,
                                util::Rng& rng);

}  // namespace groupcast::overlay
