#include "overlay/supernode.h"

#include <numeric>

#include "core/utility.h"
#include "util/require.h"

namespace groupcast::overlay {

SupernodeLayout build_supernode_overlay(const PeerPopulation& population,
                                        OverlayGraph& graph,
                                        HostCacheServer& host_cache,
                                        const SupernodeOptions& options,
                                        util::Rng& rng) {
  GC_REQUIRE_MSG(graph.edge_count() == 0,
                 "supernode construction requires an empty graph");
  GC_REQUIRE(options.leaf_links >= 1);
  GC_REQUIRE(options.capacity_threshold > 0.0);

  SupernodeLayout layout;
  layout.is_supernode.assign(population.size(), 0);
  for (PeerId p = 0; p < population.size(); ++p) {
    if (population.info(p).capacity >= options.capacity_threshold) {
      layout.supernodes.push_back(p);
      layout.is_supernode[p] = 1;
    } else {
      layout.leaves.push_back(p);
    }
  }
  GC_REQUIRE_MSG(!layout.supernodes.empty(),
                 "no peer clears the supernode capacity threshold");

  // Core tier: the regular utility-aware bootstrap among supernodes only.
  // A dedicated host cache keeps the candidate pool inside the tier.
  HostCacheServer core_cache(population, HostCacheOptions{}, rng);
  GroupCastBootstrap core_bootstrap(population, graph, core_cache,
                                    options.core, rng);
  auto join_order = layout.supernodes;
  rng.shuffle(join_order);
  for (const auto sn : join_order) core_bootstrap.join(sn);

  // Leaf tier: every leaf attaches to `leaf_links` supernodes chosen by
  // the utility function.  Supernodes always accept leaves (that is what
  // they signed up for).
  for (const auto leaf : layout.leaves) {
    std::vector<core::Candidate> scored;
    scored.reserve(layout.supernodes.size());
    for (const auto sn : layout.supernodes) {
      scored.push_back(
          core::Candidate{population.info(sn).capacity,
                          population.coord_distance_ms(leaf, sn)});
    }
    const double r = core::clamp_resource_level(
        population.sampled_resource_level(leaf, options.resource_sample,
                                          rng));
    const auto prefs = core::selection_preferences(r, scored);
    const auto picks = core::weighted_sample_without_replacement(
        prefs, options.leaf_links, rng);
    for (const auto idx : picks) {
      const auto sn = layout.supernodes[idx];
      graph.add_edge(leaf, sn);
      graph.add_edge(sn, leaf);
    }
  }

  for (PeerId p = 0; p < population.size(); ++p) {
    host_cache.register_peer(p);
  }
  return layout;
}

}  // namespace groupcast::overlay
