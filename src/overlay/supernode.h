// Two-tier ("supernode") overlay variant.
//
// The paper's Section 6 notes that "the GroupCast system can be easily
// adapted for supernode or multi-layer overlay architectures".  This module
// is that adaptation: peers whose capacity clears a threshold form the
// *core* tier, built with the regular utility-aware bootstrap among
// themselves; every remaining peer becomes a *leaf* that attaches to a few
// nearby supernodes (selection by the same utility function, which for
// weak leaves degenerates to proximity — exactly the behaviour Eq. 5
// prescribes).
//
// The same announcement / subscription / session machinery runs unchanged
// on the combined graph, so the flat and two-tier architectures are
// directly comparable (see bench_supernode).
#pragma once

#include "overlay/bootstrap.h"

namespace groupcast::overlay {

struct SupernodeOptions {
  /// Peers at or above this capacity form the core tier (Table 1: 100x
  /// keeps ~35% of peers in the core).
  double capacity_threshold = 100.0;
  /// Supernodes each leaf attaches to (primary + backups).
  std::size_t leaf_links = 2;
  /// Bootstrap parameters for the core tier.
  BootstrapOptions core;
  /// Resource-sample size for the leaves' utility evaluation.
  std::size_t resource_sample = 32;
};

struct SupernodeLayout {
  std::vector<PeerId> supernodes;
  std::vector<PeerId> leaves;
  std::vector<char> is_supernode;  // indexed by peer

  double core_fraction() const {
    const auto total = supernodes.size() + leaves.size();
    return total == 0 ? 0.0
                      : static_cast<double>(supernodes.size()) /
                            static_cast<double>(total);
  }
};

/// Builds the two-tier overlay into `graph` (must be empty) and registers
/// every peer with `host_cache`.  Returns the tier assignment.
SupernodeLayout build_supernode_overlay(const PeerPopulation& population,
                                        OverlayGraph& graph,
                                        HostCacheServer& host_cache,
                                        const SupernodeOptions& options,
                                        util::Rng& rng);

}  // namespace groupcast::overlay
