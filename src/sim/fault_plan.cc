#include "sim/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "util/require.h"

namespace groupcast::sim {

void FaultPlan::validate() const {
  for (const auto& window : partitions) {
    GC_REQUIRE_MSG(window.begin < window.end,
                   "partition window must have begin < end");
    GC_REQUIRE_MSG(!window.side_a.empty() && !window.side_b.empty(),
                   "partition sides must be non-empty");
  }
  for (const auto& burst : bursts) {
    GC_REQUIRE_MSG(burst.begin < burst.end,
                   "burst window must have begin < end");
    GC_REQUIRE_MSG(burst.loss_probability >= 0.0 &&
                       burst.loss_probability <= 1.0,
                   "burst loss probability must be in [0, 1]");
  }
}

void FaultPlan::merge(const FaultPlan& other) {
  crashes.insert(crashes.end(), other.crashes.begin(), other.crashes.end());
  partitions.insert(partitions.end(), other.partitions.begin(),
                    other.partitions.end());
  bursts.insert(bursts.end(), other.bursts.begin(), other.bursts.end());
}

bool partitioned(const FaultPlan& plan, FaultNodeId a, FaultNodeId b,
                 SimTime now) {
  const auto in = [](const std::vector<FaultNodeId>& side, FaultNodeId n) {
    return std::find(side.begin(), side.end(), n) != side.end();
  };
  for (const auto& window : plan.partitions) {
    if (now < window.begin || now >= window.end) continue;
    if ((in(window.side_a, a) && in(window.side_b, b)) ||
        (in(window.side_a, b) && in(window.side_b, a))) {
      return true;
    }
  }
  return false;
}

double burst_loss(const FaultPlan& plan, SimTime now) {
  double loss = 0.0;
  for (const auto& burst : plan.bursts) {
    if (now >= burst.begin && now < burst.end) {
      loss = std::max(loss, burst.loss_probability);
    }
  }
  return loss;
}

// ------------------------------------------------------------------ parse

namespace {

/// Cursor over the plan text with single-token helpers.  All errors throw
/// PreconditionError naming the offending clause.
class PlanScanner {
 public:
  explicit PlanScanner(std::string_view clause) : text_(clause) {}

  void skip_space() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool eat(char c) {
    skip_space();
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    GC_REQUIRE_MSG(eat(c), "expected '" + std::string(1, c) +
                               "' in fault-plan clause: " +
                               std::string(text_));
  }

  bool eat_word(std::string_view word) {
    skip_space();
    if (text_.substr(at_).starts_with(word)) {
      at_ += word.size();
      return true;
    }
    return false;
  }

  double number() {
    skip_space();
    double value = 0.0;
    const char* begin = text_.data() + at_;
    const char* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    GC_REQUIRE_MSG(result.ec == std::errc{},
                   "expected a number in fault-plan clause: " +
                       std::string(text_));
    at_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  SimTime time() {
    const double value = number();
    // `ms` must be tried before the bare-`s` default.
    if (eat_word("ms")) return SimTime::millis(value);
    eat_word("s");
    return SimTime::seconds(value);
  }

  FaultNodeId node() {
    const double value = number();
    GC_REQUIRE_MSG(value >= 0.0 && value == static_cast<double>(
                                                static_cast<FaultNodeId>(value)),
                   "node id must be a non-negative integer in clause: " +
                       std::string(text_));
    return static_cast<FaultNodeId>(value);
  }

  std::vector<FaultNodeId> nodes() {
    std::vector<FaultNodeId> out;
    out.push_back(node());
    while (eat(',')) out.push_back(node());
    return out;
  }

  void expect_end() {
    skip_space();
    GC_REQUIRE_MSG(at_ == text_.size(),
                   "trailing input in fault-plan clause: " +
                       std::string(text_));
  }

 private:
  std::string_view text_;
  std::size_t at_ = 0;
};

void parse_clause(std::string_view clause, FaultPlan& plan) {
  PlanScanner scan(clause);
  scan.skip_space();
  if (scan.eat_word("crash")) {
    scan.expect('@');
    CrashEvent crash;
    crash.at = scan.time();
    scan.expect(':');
    crash.node = scan.node();
    scan.expect_end();
    plan.crashes.push_back(crash);
    return;
  }
  if (scan.eat_word("partition")) {
    scan.expect('@');
    PartitionWindow window;
    window.begin = scan.time();
    scan.expect('-');
    window.end = scan.time();
    scan.expect(':');
    window.side_a = scan.nodes();
    scan.expect('|');
    window.side_b = scan.nodes();
    scan.expect_end();
    plan.partitions.push_back(std::move(window));
    return;
  }
  if (scan.eat_word("burst")) {
    scan.expect('@');
    BurstLoss burst;
    burst.begin = scan.time();
    scan.expect('-');
    burst.end = scan.time();
    scan.expect(':');
    burst.loss_probability = scan.number();
    scan.expect_end();
    plan.bursts.push_back(burst);
    return;
  }
  GC_REQUIRE_MSG(false, "unknown fault-plan clause: " + std::string(clause));
}

bool blank(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  });
}

std::string format_time(SimTime t) {
  std::ostringstream os;
  const auto us = t.as_micros();
  if (us % 1'000'000 == 0) {
    os << us / 1'000'000 << "s";
  } else {
    os << t.as_millis() << "ms";
  }
  return os.str();
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ';' && text[i] != '\n') continue;
    const auto clause = text.substr(start, i - start);
    if (!blank(clause)) parse_clause(clause, plan);
    start = i + 1;
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::to_text() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << "; ";
    first = false;
  };
  for (const auto& crash : crashes) {
    sep();
    os << "crash@" << format_time(crash.at) << ":" << crash.node;
  }
  for (const auto& window : partitions) {
    sep();
    os << "partition@" << format_time(window.begin) << "-"
       << format_time(window.end) << ":";
    for (std::size_t i = 0; i < window.side_a.size(); ++i) {
      os << (i ? "," : "") << window.side_a[i];
    }
    os << "|";
    for (std::size_t i = 0; i < window.side_b.size(); ++i) {
      os << (i ? "," : "") << window.side_b[i];
    }
  }
  for (const auto& burst : bursts) {
    sep();
    os << "burst@" << format_time(burst.begin) << "-"
       << format_time(burst.end) << ":" << burst.loss_probability;
  }
  return os.str();
}

}  // namespace groupcast::sim
