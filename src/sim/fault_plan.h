// Deterministic fault schedules for robustness experiments.
//
// A FaultPlan is pure data: node crashes pinned to instants, partition
// windows separating two peer sets, and burst-loss intervals that raise
// the transport's drop probability for a while.  Plans are built
// programmatically (the recovery harness derives them from a seeded RNG)
// or parsed from a compact textual grammar (see docs/ROBUSTNESS.md):
//
//   crash@12.5s:7; partition@30s-60s:1,2,3|4,5; burst@45s-48s:0.9
//
// The plan itself never touches the simulator — injection is done by
// core::FaultInjector, which schedules the crashes and answers the
// transport's per-delivery fault queries.  Keeping the schedule as plain
// data is what makes recovery runs reproducible: same seed + same plan
// text => the same events in the same order, byte-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace groupcast::sim {

/// Node ids as the simulation layer sees them (== overlay::PeerId).
using FaultNodeId = std::uint32_t;

/// One ungraceful node failure at a fixed instant.
struct CrashEvent {
  SimTime at;
  FaultNodeId node = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// A timed two-sided network partition: while now is in [begin, end),
/// every message between a member of `side_a` and a member of `side_b`
/// (either direction) is dropped at send time.  Traffic within one side,
/// or touching peers in neither side, is unaffected.
struct PartitionWindow {
  SimTime begin;
  SimTime end;
  std::vector<FaultNodeId> side_a;
  std::vector<FaultNodeId> side_b;

  friend bool operator==(const PartitionWindow&,
                         const PartitionWindow&) = default;
};

/// A burst-loss interval: while now is in [begin, end), every send is
/// additionally dropped with `loss_probability` (on top of the
/// transport's own steady-state loss).
struct BurstLoss {
  SimTime begin;
  SimTime end;
  double loss_probability = 0.0;

  friend bool operator==(const BurstLoss&, const BurstLoss&) = default;
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<BurstLoss> bursts;

  bool empty() const {
    return crashes.empty() && partitions.empty() && bursts.empty();
  }

  /// Throws PreconditionError unless every window has begin < end and
  /// every burst probability is in [0, 1].
  void validate() const;

  /// Parses the textual grammar (clauses separated by ';' or newlines;
  /// whitespace is free).  Times are floats with an optional `s` (default)
  /// or `ms` suffix.  Throws PreconditionError on malformed input; the
  /// returned plan is already validated.
  ///
  ///   plan      := clause ((';' | '\n') clause)*
  ///   clause    := crash | partition | burst
  ///   crash     := 'crash' '@' time ':' node
  ///   partition := 'partition' '@' time '-' time ':' nodes '|' nodes
  ///   burst     := 'burst' '@' time '-' time ':' probability
  ///   nodes     := node (',' node)*
  static FaultPlan parse(std::string_view text);

  /// Canonical textual form; parse(to_text()) round-trips the plan.
  std::string to_text() const;

  /// Appends every event of `other` to this plan.
  void merge(const FaultPlan& other);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// True if the plan separates `a` from `b` at instant `now`.
bool partitioned(const FaultPlan& plan, FaultNodeId a, FaultNodeId b,
                 SimTime now);

/// The largest burst-loss probability active at `now` (0 when none is).
double burst_loss(const FaultPlan& plan, SimTime now);

}  // namespace groupcast::sim
