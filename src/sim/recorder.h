// PeriodicRecorder: drives the trace flight recorder from simulated time.
//
// Arms a fixed-signature timer on a Simulator that captures one
// FlightFrame per period into the calling thread's active
// trace::flight_recorder().  Captures are pure reads of counter /
// histogram totals stamped with the simulator clock, so the recorded
// time series is deterministic for a fixed seed and merges
// order-independently across repetitions.  When the recorder facility is
// disabled each fire is a single branch, and construction with
// `period <= 0` arms nothing at all.
//
// The instance must outlive neither the simulator nor the run: the
// destructor cancels the pending timer, so scoping a PeriodicRecorder to
// the harness function is enough.
#pragma once

#include "sim/simulator.h"
#include "trace/flight_recorder.h"

namespace groupcast::sim {

class PeriodicRecorder {
 public:
  PeriodicRecorder(Simulator& simulator, SimTime period)
      : simulator_(&simulator), period_(period) {
    if (period_.as_micros() > 0) arm();
  }
  ~PeriodicRecorder() { simulator_->cancel(timer_); }
  PeriodicRecorder(const PeriodicRecorder&) = delete;
  PeriodicRecorder& operator=(const PeriodicRecorder&) = delete;

 private:
  static void fire_thunk(void* context, std::uint64_t /*arg*/) {
    auto* self = static_cast<PeriodicRecorder*>(context);
    trace::flight_recorder().capture(self->simulator_->now().as_micros());
    self->arm();
  }

  void arm() {
    timer_ = simulator_->schedule_timer(period_, &fire_thunk, this, 0);
  }

  Simulator* simulator_;
  SimTime period_;
  TimerHandle timer_;
};

}  // namespace groupcast::sim
