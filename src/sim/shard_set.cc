#include "sim/shard_set.h"

#include <algorithm>
#include <limits>

#include "util/require.h"

namespace groupcast::sim {

ShardSet::ShardSet(std::size_t num_shards, std::int64_t lookahead_us,
                   SimTime start)
    : shards_(num_shards),
      lookahead_us_(lookahead_us),
      now_(start),
      barrier_(static_cast<std::uint32_t>(num_shards)) {
  GC_REQUIRE(num_shards >= 1);
  GC_REQUIRE_MSG(lookahead_us > 0, "lookahead must be positive");
  for (auto& shard : shards_) {
    shard.simulator = std::make_unique<Simulator>();
    shard.simulator->run_until(start);  // align the clock, fires nothing
  }
  threads_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ShardSet::~ShardSet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cmd_ = Command::kStop;
    ++cmd_seq_;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ShardSet::broadcast(Command cmd) {
  std::unique_lock<std::mutex> lock(mu_);
  cmd_ = cmd;
  done_count_ = 0;
  ++cmd_seq_;
  cv_.notify_all();
  done_cv_.wait(lock, [this] { return done_count_ == shards_.size(); });
}

void ShardSet::exec_on_shards(const std::function<void(std::size_t)>& fn) {
  exec_fn_ = &fn;
  broadcast(Command::kExec);
  exec_fn_ = nullptr;
}

void ShardSet::run_until(SimTime deadline) {
  GC_REQUIRE(client_ != nullptr);
  GC_REQUIRE(deadline >= now_);
  deadline_us_ = deadline.as_micros();
  broadcast(Command::kRun);
  now_ = deadline;
}

std::uint64_t ShardSet::events_fired() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.simulator->events_fired() + shard.delivered_events;
  }
  return total;
}

std::vector<std::uint64_t> ShardSet::events_per_shard() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard.simulator->events_fired() + shard.delivered_events);
  }
  return out;
}

std::size_t ShardSet::memory_bytes() const {
  std::size_t total = sizeof(*this) + shards_.capacity() * sizeof(Shard) +
                      threads_.capacity() * sizeof(std::thread);
  for (const auto& shard : shards_) total += shard.simulator->memory_bytes();
  return total;
}

void ShardSet::worker_main(std::size_t i) {
  std::uint64_t seen = 0;
  for (;;) {
    Command cmd;
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return cmd_seq_ != seen; });
      seen = cmd_seq_;
      cmd = cmd_;
      fn = exec_fn_;
    }
    if (cmd == Command::kStop) return;
    if (cmd == Command::kExec) {
      (*fn)(i);
    } else {
      run_worker(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_count_ == shards_.size()) done_cv_.notify_one();
    }
  }
}

void ShardSet::run_worker(std::size_t i) {
  Shard& self = shards_[i];
  const std::int64_t deadline = deadline_us_;
  for (;;) {
    // Barrier 1: every send of the previous epoch (and, on the first
    // iteration, every send the main thread posted while we were parked)
    // is visible — safe to merge.
    barrier_.arrive_and_wait();
    client_->merge_inbound(i);
    std::int64_t next = -1;
    std::int64_t wheel_us = 0;
    if (self.simulator->peek_next_event(wheel_us)) next = wheel_us;
    const std::int64_t arrival_us = client_->next_arrival_us(i);
    if (arrival_us >= 0 && (next < 0 || arrival_us < next)) {
      next = arrival_us;
    }
    self.next_us = next;
    // Barrier 2: every shard published its earliest pending instant; the
    // leader picks the epoch target.  Any event fired in the epoch is at
    // time >= m, so everything it sends arrives at >= m + lookahead —
    // strictly after the target.  With nothing pending before the
    // deadline the whole remaining span is one epoch.
    barrier_.arrive_and_wait([this, deadline] {
      std::int64_t m = -1;
      for (const auto& shard : shards_) {
        if (shard.next_us >= 0 && (m < 0 || shard.next_us < m)) {
          m = shard.next_us;
        }
      }
      if (m < 0 || m > deadline) {
        target_us_ = deadline;
        run_done_ = true;
      } else {
        target_us_ = std::min(deadline, m + lookahead_us_ - 1);
        run_done_ = target_us_ >= deadline;
      }
    });
    run_interleaved(i, target_us_);
    if (run_done_) return;
  }
}

void ShardSet::run_interleaved(std::size_t i, std::int64_t target_us) {
  Shard& self = shards_[i];
  Simulator& simulator = *self.simulator;
  for (;;) {
    std::int64_t wheel_us = 0;
    const bool has_wheel = simulator.peek_next_event(wheel_us);
    const std::int64_t arrival_us = client_->next_arrival_us(i);
    std::int64_t t = -1;
    if (has_wheel && wheel_us <= target_us) t = wheel_us;
    if (arrival_us >= 0 && arrival_us <= target_us &&
        (t < 0 || arrival_us < t)) {
      t = arrival_us;
    }
    if (t < 0) break;
    if (arrival_us >= 0 && arrival_us <= t) {
      // Arrivals first at equal instants: handlers observe now() == t and
      // may schedule same-instant wheel events, which the run_until below
      // then fires.
      simulator.advance_now(SimTime::micros(t));
      self.delivered_events += client_->deliver_arrivals_at(i, t);
    }
    simulator.run_until(SimTime::micros(t));
  }
  simulator.run_until(SimTime::micros(target_us));
}

}  // namespace groupcast::sim
