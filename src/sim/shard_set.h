// Conservative-lookahead parallel discrete-event execution.
//
// A ShardSet runs N independent timer wheels (one sim::Simulator per
// shard) on N persistent worker threads and advances them in lockstep
// epochs.  The epoch rule is the classic conservative bound: if every
// cross-shard interaction takes at least `lookahead_us` of simulated time
// to arrive, all shards can run an epoch of that width concurrently
// without ever receiving a message timestamped in their past.  Cross-shard
// traffic is the client's job (core::Transport): sends during an epoch are
// parked in per-(src, dst) mailboxes, merged into per-shard arrival queues
// at the epoch barrier, and delivered by the shard runner in a fixed
// (arrival, src, per-src counter) total order — so the execution is
// byte-identical at every shard count >= 2 (see docs/PERFORMANCE.md,
// "Sharded execution & memory budget", for the full determinism
// contract).
//
// Epochs are not fixed-width: at each barrier the leader computes the
// global minimum pending event time m (wheel events and queued arrivals)
// and sets the next epoch target to min(deadline, m + lookahead - 1) —
// empty stretches are skipped in one hop, dense stretches advance one
// lookahead window at a time.  Any message sent inside the epoch is
// timestamped >= m, so it arrives strictly after the target and is safe
// to merge at the next barrier.
//
// Thread model: worker i owns shard i's Simulator and all node state
// hashed to it; the constructing thread ("main") may touch any shard
// only while the workers are parked between run_until calls (the
// command handoff is a mutex + condvar, so parking gives full
// happens-before in both directions).  Barriers inside a run are
// busy-wait sense barriers: at the event densities the recovery bench
// produces (a few events per lookahead window per shard) a futex wake
// per epoch would cost more than the epoch's work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace groupcast::sim {

class ShardSet {
 public:
  /// The cross-shard message plane (implemented by core::Transport).
  /// All three hooks are invoked on the shard's worker thread (or on the
  /// main thread while the workers are parked, for shard-less setup).
  class Client {
   public:
    virtual ~Client() = default;
    /// Drain every inbound mailbox for `shard` into its arrival queue.
    /// Called at each epoch barrier, after all sends of the previous
    /// epoch are visible and before the next epoch target is chosen.
    virtual void merge_inbound(std::size_t shard) = 0;
    /// Earliest queued arrival for `shard` in micros, or -1 when none.
    virtual std::int64_t next_arrival_us(std::size_t shard) = 0;
    /// Deliver every arrival for `shard` at exactly `t_us`; returns the
    /// number of deliveries fired (they count as events).
    virtual std::size_t deliver_arrivals_at(std::size_t shard,
                                            std::int64_t t_us) = 0;
  };

  /// `lookahead_us` must be a strictly positive lower bound on the
  /// simulated latency of every cross-shard interaction.  `start` presets
  /// every shard's clock (the harness hands over from a single-threaded
  /// bootstrap simulator mid-run).
  ShardSet(std::size_t num_shards, std::int64_t lookahead_us,
           SimTime start = SimTime::zero());
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  std::int64_t lookahead_us() const { return lookahead_us_; }
  Simulator& shard(std::size_t i) { return *shards_[i].simulator; }

  /// Installs the message plane.  Must be set before the first run.
  void set_client(Client* client) { client_ = client; }

  /// Runs `fn(shard)` once per shard, each on that shard's own worker
  /// thread, and returns when all have finished.  Used to install
  /// per-shard thread-local instrumentation (scoped counter/histogram
  /// registries) whose guards must live on the owning thread.
  void exec_on_shards(const std::function<void(std::size_t)>& fn);

  /// Advances every shard to `deadline` (inclusive, like
  /// Simulator::run_until) in conservative-lookahead epochs.  Returns
  /// with all workers parked and every shard's clock at `deadline`.
  void run_until(SimTime deadline);

  /// The global clock: every shard's now() after the last run_until.
  SimTime now() const { return now_; }

  /// Total events fired across all shards (wheel events plus client
  /// deliveries).  Invariant across shard counts.
  std::uint64_t events_fired() const;
  /// Per-shard event totals, for the shard-imbalance bench columns.
  std::vector<std::uint64_t> events_per_shard() const;

  std::size_t memory_bytes() const;

 private:
  enum class Command : std::uint8_t { kNone, kRun, kExec, kStop };

  /// Sense-reversing busy-wait barrier; the last arriver runs
  /// `completion` before releasing the others.
  class SpinBarrier {
   public:
    explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

    template <typename F>
    void arrive_and_wait(F&& completion) {
      const std::uint64_t gen = generation_.load(std::memory_order_acquire);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
        arrived_.store(0, std::memory_order_relaxed);
        completion();
        generation_.store(gen + 1, std::memory_order_release);
      } else {
        // Bounded spin, then yield: when the workers outnumber the
        // machine's cores (CI runners, containers), a pure pause loop
        // burns whole scheduler quanta per barrier and the run crawls;
        // yielding lets the straggler shard onto the core immediately.
        std::uint32_t spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
          if (++spins < kSpinLimit) {
            pause();
          } else {
            std::this_thread::yield();
          }
        }
      }
    }
    void arrive_and_wait() {
      arrive_and_wait([] {});
    }

   private:
    /// Spin budget before falling back to yield (~a few hundred ns).
    static constexpr std::uint32_t kSpinLimit = 256;

    static void pause() {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    }

    const std::uint32_t parties_;
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
  };

  struct alignas(64) Shard {
    std::unique_ptr<Simulator> simulator;
    std::uint64_t delivered_events = 0;
    /// This shard's earliest pending instant (wheel or arrival queue),
    /// or -1; published before the target barrier, read by the leader.
    std::int64_t next_us = -1;
  };

  void worker_main(std::size_t i);
  void run_worker(std::size_t i);
  /// Interleaves wheel events and client arrivals up to `target_us`
  /// inclusive: at each instant, arrivals deliver first, then wheel
  /// events (including any the handlers scheduled for the same instant).
  void run_interleaved(std::size_t i, std::int64_t target_us);
  void broadcast(Command cmd);

  std::vector<Shard> shards_;
  std::vector<std::thread> threads_;
  Client* client_ = nullptr;
  const std::int64_t lookahead_us_;
  SimTime now_;

  // Command handoff (main <-> parked workers).
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t cmd_seq_ = 0;
  Command cmd_ = Command::kNone;
  std::int64_t deadline_us_ = 0;
  const std::function<void(std::size_t)>* exec_fn_ = nullptr;
  std::size_t done_count_ = 0;

  // Epoch state, written only by the barrier leader inside the barrier's
  // completion step (release/acquire on the barrier generation orders it).
  SpinBarrier barrier_;
  std::int64_t target_us_ = 0;
  bool run_done_ = false;
};

}  // namespace groupcast::sim
