#include "sim/simulator.h"

#include <utility>

#include "util/require.h"

namespace groupcast::sim {

void Simulator::schedule(SimTime delay, Action action) {
  GC_REQUIRE_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime when, Action action) {
  GC_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
  GC_REQUIRE(action != nullptr);
  queue_.push(Event{when, next_seq_++, std::move(action)});
  // Bare compare + store on the schedule path; the kEventLoopLag trace
  // event for an advanced mark is emitted from fire(), where the tracer
  // lookup is already hoisted.
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::fire(trace::Tracer& tracer, bool tracing, bool timing) {
  // priority_queue::top() is const; the action must be moved out before
  // pop, so copy the small parts and move the closure via const_cast —
  // confined to this one spot.
  auto& top = const_cast<Event&>(queue_.top());
  const SimTime when = top.when;
  Action action = std::move(top.action);
  queue_.pop();
  now_ = when;
  if (tracing) {
    if (queue_high_water_ > reported_high_water_) {
      reported_high_water_ = queue_high_water_;
      tracer.emit(now_.as_micros(), trace::EventKind::kEventLoopLag,
                  trace::kNoNode, trace::kNoNode, queue_high_water_);
    }
    tracer.emit(now_.as_micros(), trace::EventKind::kSimEvent,
                trace::kNoNode, trace::kNoNode, queue_.size());
  }
  if (timing) {
    trace::ScopedTimer timer(trace::TimerId::kSimEvent);
    action();
  } else {
    action();
  }
  ++events_fired_;
}

std::size_t Simulator::run() {
  // Hoisted per-run: installing a sink or enabling timers *during* a run
  // takes effect at the next run() call, which keeps the per-event cost
  // of disabled tracing to two predictable branches.
  auto& tracer = trace::tracer();
  const bool tracing = tracer.enabled();
  const bool timing = trace::timers().enabled();
  std::size_t fired = 0;
  while (!queue_.empty()) {
    fire(tracer, tracing, timing);
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime deadline) {
  auto& tracer = trace::tracer();
  const bool tracing = tracer.enabled();
  const bool timing = trace::timers().enabled();
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    fire(tracer, tracing, timing);
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace groupcast::sim
