#include "sim/simulator.h"

#include <utility>

#include "util/require.h"

namespace groupcast::sim {

void Simulator::schedule(SimTime delay, Action action) {
  GC_REQUIRE_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime when, Action action) {
  GC_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
  GC_REQUIRE(action != nullptr);
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // priority_queue::top() is const; the action must be moved out before
    // pop, so copy the small parts and move the closure via const_cast —
    // confined to this one spot.
    auto& top = const_cast<Event&>(queue_.top());
    const SimTime when = top.when;
    Action action = std::move(top.action);
    queue_.pop();
    now_ = when;
    action();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    auto& top = const_cast<Event&>(queue_.top());
    const SimTime when = top.when;
    Action action = std::move(top.action);
    queue_.pop();
    now_ = when;
    action();
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace groupcast::sim
