#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>

#include "util/require.h"

namespace groupcast::sim {

namespace {

/// Heap comparator: pops overflow entries in ascending (when, seq) order.
struct OverflowLater {
  template <typename Ref>
  bool operator()(const Ref& a, const Ref& b) const {
    return b < a;
  }
};

}  // namespace

Simulator::Simulator() {
  for (auto& level : heads_) {
    for (auto& head : level) head = kNil;
  }
}

int Simulator::level_for(std::int64_t when_us) const {
  const std::uint64_t diff = static_cast<std::uint64_t>(when_us) ^
                             static_cast<std::uint64_t>(cursor_us_);
  if (diff == 0) return 0;
  const int msb = 63 - std::countl_zero(diff);
  return msb / kSlotBits;
}

std::uint32_t Simulator::allocate_node() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = nodes_[index].next;
    return index;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Simulator::free_node(std::uint32_t index) {
  EventNode& node = nodes_[index];
  node.action = nullptr;  // release captured state promptly
  node.fn = nullptr;
  node.context = nullptr;
  node.cancelled = false;
  node.state = NodeState::kFree;
  ++node.generation;  // stale handles to this slot stop matching
  node.next = free_head_;
  free_head_ = index;
}

void Simulator::place(std::uint32_t index) {
  EventNode& node = nodes_[index];
  const std::int64_t when_us = node.when.as_micros();
  if (draining_ && when_us == cursor_us_) {
    // Scheduled for the instant currently firing: join the tail of the
    // batch.  seq is monotone, so the batch stays sorted.
    node.state = NodeState::kDrain;
    drain_.push_back(index);
    return;
  }
  const int level = level_for(when_us);
  if (level >= kLevels) {
    node.state = NodeState::kOverflow;
    overflow_.push_back(OverflowRef{when_us, node.seq, index});
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    return;
  }
  const int slot =
      static_cast<int>((when_us >> (kSlotBits * level)) & (kSlots - 1));
  node.state = NodeState::kWheel;
  node.level = static_cast<std::uint8_t>(level);
  node.wheel_slot = static_cast<std::uint8_t>(slot);
  node.next = heads_[level][slot];
  heads_[level][slot] = index;
  occupied_[level] |= std::uint64_t{1} << slot;
}

void Simulator::unlink_from_wheel(EventNode& node, std::uint32_t index) {
  const int level = node.level;
  const int slot = node.wheel_slot;
  std::uint32_t* link = &heads_[level][slot];
  while (*link != index) link = &nodes_[*link].next;
  *link = node.next;
  if (heads_[level][slot] == kNil) {
    occupied_[level] &= ~(std::uint64_t{1} << slot);
  }
}

TimerHandle Simulator::enqueue(SimTime when, TimerFn fn, void* context,
                               std::uint64_t arg, Action action) {
  GC_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
  const std::uint32_t index = allocate_node();
  EventNode& node = nodes_[index];
  node.when = when;
  node.seq = next_seq_++;
  node.fn = fn;
  node.context = context;
  node.arg = arg;
  node.action = std::move(action);
  place(index);
  ++live_;
  // Bare compare + store on the schedule path; the kEventLoopLag trace
  // event for an advanced mark is emitted from fire_batch(), where the
  // tracer lookup is already hoisted.
  if (live_ > queue_high_water_) queue_high_water_ = live_;
  return TimerHandle{index, node.generation};
}

TimerHandle Simulator::schedule(SimTime delay, Action action) {
  GC_REQUIRE_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  GC_REQUIRE(action != nullptr);
  return enqueue(now_ + delay, nullptr, nullptr, 0, std::move(action));
}

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  GC_REQUIRE(action != nullptr);
  return enqueue(when, nullptr, nullptr, 0, std::move(action));
}

TimerHandle Simulator::schedule_timer(SimTime delay, TimerFn fn, void* context,
                                      std::uint64_t arg) {
  GC_REQUIRE_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  GC_REQUIRE(fn != nullptr);
  return enqueue(now_ + delay, fn, context, arg, nullptr);
}

TimerHandle Simulator::schedule_timer_at(SimTime when, TimerFn fn,
                                         void* context, std::uint64_t arg) {
  GC_REQUIRE(fn != nullptr);
  return enqueue(when, fn, context, arg, nullptr);
}

bool Simulator::timer_pending(TimerHandle handle) const {
  if (!handle.assigned() || handle.slot >= nodes_.size()) return false;
  const EventNode& node = nodes_[handle.slot];
  return node.generation == handle.generation &&
         node.state != NodeState::kFree && !node.cancelled;
}

bool Simulator::cancel(TimerHandle handle) {
  if (!timer_pending(handle)) return false;
  const std::uint32_t index = handle.slot;
  EventNode& node = nodes_[index];
  --live_;
  switch (node.state) {
    case NodeState::kWheel:
      // Eager removal keeps the wheel free of dead nodes: occupancy
      // bitmaps stay exact and cascades never shuffle corpses around.
      unlink_from_wheel(node, index);
      free_node(index);
      break;
    case NodeState::kOverflow:
    case NodeState::kDrain:
      // Heap entries / the in-flight batch still reference the node by
      // index; mark it and let that sweep reclaim it.
      node.cancelled = true;
      break;
    case NodeState::kFree:
      break;  // unreachable: timer_pending filtered it
  }
  return true;
}

TimerHandle Simulator::reschedule(TimerHandle handle, SimTime delay) {
  GC_REQUIRE_MSG(timer_pending(handle),
                 "reschedule requires a live timer handle");
  EventNode& node = nodes_[handle.slot];
  const TimerFn fn = node.fn;
  void* context = node.context;
  const std::uint64_t arg = node.arg;
  Action action = std::move(node.action);
  cancel(handle);
  return enqueue(now_ + delay, fn, context, arg, std::move(action));
}

void Simulator::migrate_overflow() {
  while (!overflow_.empty()) {
    const OverflowRef top = overflow_.front();
    const EventNode& node = nodes_[top.node];
    // A cancelled-then-recycled node no longer matches its heap entry;
    // detect that via seq (unique per scheduling) before trusting it.
    const bool stale = node.state != NodeState::kOverflow ||
                       node.seq != top.seq || node.cancelled;
    if (!stale && level_for(top.when_us) >= kLevels) break;
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    overflow_.pop_back();
    if (stale) {
      if (node.state == NodeState::kOverflow && node.seq == top.seq) {
        free_node(top.node);  // cancelled while parked
      }
      continue;
    }
    place(top.node);
  }
}

bool Simulator::next_event_time(std::int64_t& when_us) {
  migrate_overflow();
  for (int level = 0; level < kLevels; ++level) {
    const int pos =
        static_cast<int>((cursor_us_ >> (kSlotBits * level)) & (kSlots - 1));
    const std::uint64_t mask = occupied_[level] >> pos;
    if (mask == 0) continue;
    const int slot = pos + std::countr_zero(mask);
    if (level == 0) {
      // A level-0 slot is one microsecond wide; its start IS the time.
      when_us = (cursor_us_ & ~std::int64_t{kSlots - 1}) | slot;
      return true;
    }
    // Upper-level slots span many microseconds: scan the chain for the
    // true minimum.  No cross-level comparison is needed — every event
    // in a higher level lies beyond the end of this level's window.
    std::int64_t best = -1;
    for (std::uint32_t index = heads_[level][slot]; index != kNil;
         index = nodes_[index].next) {
      const std::int64_t candidate = nodes_[index].when.as_micros();
      if (best < 0 || candidate < best) best = candidate;
    }
    when_us = best;
    return true;
  }
  if (!overflow_.empty()) {
    when_us = overflow_.front().when_us;  // beyond the wheel horizon
    return true;
  }
  return false;
}

bool Simulator::prepare_batch() {
  for (;;) {
    migrate_overflow();
    int found_level = -1;
    int found_slot = 0;
    for (int level = 0; level < kLevels; ++level) {
      const int pos = static_cast<int>((cursor_us_ >> (kSlotBits * level)) &
                                       (kSlots - 1));
      const std::uint64_t mask = occupied_[level] >> pos;
      if (mask == 0) continue;
      found_level = level;
      found_slot = pos + std::countr_zero(mask);
      break;
    }
    if (found_level < 0) {
      if (overflow_.empty()) return false;
      // Wheel empty: jump the cursor straight to the heap minimum (no
      // queued event constrains it) and let migration pull entries in.
      cursor_us_ = overflow_.front().when_us;
      continue;
    }
    if (found_level == 0) {
      const std::int64_t batch_us =
          (cursor_us_ & ~std::int64_t{kSlots - 1}) | found_slot;
      cursor_us_ = batch_us;
      drain_.clear();
      drain_pos_ = 0;
      std::uint32_t index = heads_[0][found_slot];
      heads_[0][found_slot] = kNil;
      occupied_[0] &= ~(std::uint64_t{1} << found_slot);
      while (index != kNil) {
        const std::uint32_t next = nodes_[index].next;
        nodes_[index].state = NodeState::kDrain;
        drain_.push_back(index);
        index = next;
      }
      // Restore FIFO scheduling order: the slot chain is LIFO, and nodes
      // that cascaded down from upper levels interleave with direct
      // level-0 inserts.
      std::sort(drain_.begin(), drain_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return nodes_[a].seq < nodes_[b].seq;
                });
      return true;
    }
    // Cascade: advance the cursor to the slot's start and re-bin the
    // chain one or more levels down.
    const int shift = kSlotBits * found_level;
    const std::int64_t above = ~((std::int64_t{1} << (shift + kSlotBits)) - 1);
    cursor_us_ = (cursor_us_ & above) |
                 (static_cast<std::int64_t>(found_slot) << shift);
    std::uint32_t index = heads_[found_level][found_slot];
    heads_[found_level][found_slot] = kNil;
    occupied_[found_level] &= ~(std::uint64_t{1} << found_slot);
    while (index != kNil) {
      const std::uint32_t next = nodes_[index].next;
      place(index);
      index = next;
    }
  }
}

std::size_t Simulator::fire_batch(trace::Tracer& tracer, bool tracing,
                                  bool timing) {
  std::size_t fired = 0;
  draining_ = true;
  while (drain_pos_ < drain_.size()) {
    const std::uint32_t index = drain_[drain_pos_++];
    EventNode& node = nodes_[index];
    if (node.state != NodeState::kDrain) continue;  // clear() mid-batch
    if (node.cancelled) {
      free_node(index);
      continue;
    }
    now_ = node.when;
    --live_;
    if (tracing) {
      if (queue_high_water_ > reported_high_water_) {
        reported_high_water_ = queue_high_water_;
        tracer.emit(now_.as_micros(), trace::EventKind::kEventLoopLag,
                    trace::kNoNode, trace::kNoNode, queue_high_water_);
      }
      tracer.emit(now_.as_micros(), trace::EventKind::kSimEvent,
                  trace::kNoNode, trace::kNoNode, live_);
    }
    // Move the callback out before recycling the node: the callback may
    // schedule new events that reuse this very slab slot.
    const TimerFn fn = node.fn;
    void* context = node.context;
    const std::uint64_t arg = node.arg;
    Action action = std::move(node.action);
    free_node(index);
    if (timing) {
      const trace::ScopedTimer timer(trace::TimerId::kSimEvent);
      if (fn != nullptr) {
        fn(context, arg);
      } else {
        action();
      }
    } else if (fn != nullptr) {
      fn(context, arg);
    } else {
      action();
    }
    ++events_fired_;
    ++fired;
  }
  draining_ = false;
  drain_.clear();
  drain_pos_ = 0;
  return fired;
}

std::size_t Simulator::run() {
  // Hoisted per-run: installing a sink or enabling timers *during* a run
  // takes effect at the next run() call, which keeps the per-event cost
  // of disabled tracing to two predictable branches.
  auto& tracer = trace::tracer();
  const bool tracing = tracer.enabled();
  const bool timing = trace::timers().enabled();
  std::size_t fired = 0;
  while (live_ > 0 && prepare_batch()) {
    fired += fire_batch(tracer, tracing, timing);
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime deadline) {
  auto& tracer = trace::tracer();
  const bool tracing = tracer.enabled();
  const bool timing = trace::timers().enabled();
  std::size_t fired = 0;
  while (live_ > 0) {
    std::int64_t when_us = 0;
    if (!next_event_time(when_us) || when_us > deadline.as_micros()) break;
    if (!prepare_batch()) break;
    fired += fire_batch(tracer, tracing, timing);
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

void Simulator::clear() {
  for (int level = 0; level < kLevels; ++level) {
    occupied_[level] = 0;
    for (int slot = 0; slot < kSlots; ++slot) heads_[level][slot] = kNil;
  }
  overflow_.clear();
  drain_.clear();
  drain_pos_ = 0;
  for (std::uint32_t index = 0;
       index < static_cast<std::uint32_t>(nodes_.size()); ++index) {
    if (nodes_[index].state != NodeState::kFree) free_node(index);
  }
  live_ = 0;
}

}  // namespace groupcast::sim
