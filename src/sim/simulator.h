// Discrete-event simulation kernel.
//
// This is the C++ equivalent of the p-sim simulator the paper's evaluation
// runs on: a single-threaded event loop with timestamped callbacks.  Events
// scheduled for the same instant run in scheduling (FIFO) order, which keeps
// protocol traces deterministic for a given seed.
//
// The event queue is a hashed hierarchical timer wheel (kLevels levels of
// kSlots slots, one occupancy bitmap per level) over a slab of pooled event
// nodes:
//
//  * schedule / cancel / fire are amortized O(1) — no O(log n) heap
//    sift-downs on the per-message hot path, and no per-event allocation
//    once the slab has warmed up (freed nodes are recycled via a free
//    list).
//  * the fixed-signature timer path (schedule_timer) stores a bare
//    function pointer + context word in the pooled node, so periodic
//    protocol timers (heartbeats, retransmit timeouts, transport
//    deliveries) never touch std::function at all.
//  * every schedule returns a TimerHandle that can cancel or reschedule
//    the event before it fires; handles are generation-checked, so a
//    stale handle to an already-fired (and recycled) node is rejected
//    rather than cancelling an unrelated event.
//  * firing order is *exactly* the old binary-heap order — ascending
//    (when, seq) — because a level-0 slot spans a single microsecond and
//    is drained in sequence-number order.  Golden traces are unchanged.
//
// Events further out than the wheel horizon (2^36 us, ~19 simulated hours)
// park in an overflow heap and migrate into the wheel as the clock
// approaches them.
//
// A Simulator instance is thread-confined, not thread-safe: one thread
// drives it for its whole lifetime.  Independent simulators may run on
// different threads concurrently — the tracing/counter/timer hooks they
// fire resolve to per-thread state (see trace/trace.h), so parallel
// scenario runs share nothing mutable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace groupcast::sim {

/// Reference to a scheduled event, returned by every schedule call.  Valid
/// until the event fires, is cancelled, or the simulator is cleared;
/// generation checks make stale handles inert (cancel returns false).
struct TimerHandle {
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t slot = kInvalid;
  std::uint32_t generation = 0;

  /// False only for default-constructed (never-scheduled) handles.
  bool assigned() const { return slot != kInvalid; }

  friend bool operator==(TimerHandle, TimerHandle) = default;
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator simulator;
///   simulator.schedule(SimTime::millis(10), [&]{ ... });
///   auto timer = simulator.schedule_timer(SimTime::seconds(1), &on_tick,
///                                         this);
///   simulator.cancel(timer);
///   simulator.run();
class Simulator {
 public:
  using Action = std::function<void()>;
  /// Fixed-signature callback: no type erasure, no allocation.
  using TimerFn = void (*)(void* context, std::uint64_t arg);

  /// Current simulated time (updated as events fire).
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  /// Negative delays are a precondition violation.
  TimerHandle schedule(SimTime delay, Action action);

  /// Schedules `action` at an absolute instant (must be >= now()).
  TimerHandle schedule_at(SimTime when, Action action);

  /// Allocation-free form: schedules `fn(context, arg)` to run `delay`
  /// after the current time.  The context must outlive the event (or the
  /// event must be cancelled first).
  TimerHandle schedule_timer(SimTime delay, TimerFn fn, void* context,
                             std::uint64_t arg = 0);

  /// Allocation-free form at an absolute instant (must be >= now()).
  TimerHandle schedule_timer_at(SimTime when, TimerFn fn, void* context,
                                std::uint64_t arg = 0);

  /// Cancels a pending event.  Returns false if the handle is stale (the
  /// event already fired, was cancelled, or the simulator was cleared).
  bool cancel(TimerHandle handle);

  /// True while the event the handle refers to is still queued.
  bool timer_pending(TimerHandle handle) const;

  /// Cancels `handle` and re-arms the same callback `delay` from now.
  /// Returns the new handle (the old one becomes stale); an unassigned /
  /// stale handle is a precondition violation — reschedule only what is
  /// still pending.  The rescheduled event takes a fresh position in the
  /// FIFO order of its new timestamp.
  TimerHandle reschedule(TimerHandle handle, SimTime delay);

  /// Runs until the event queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline remain queued.  Returns events fired.
  std::size_t run_until(SimTime deadline);

  /// Number of live events waiting in the queue (cancelled events leave
  /// the count immediately).
  std::size_t pending() const { return live_; }

  /// Deepest the event queue has ever been for this simulator — the
  /// high-water mark observability hook.  Each new high-water also emits
  /// an EventLoopLag trace event when tracing is on.
  std::size_t queue_high_water() const { return queue_high_water_; }

  /// Total events fired over the simulator's lifetime.
  std::size_t events_fired() const { return events_fired_; }

  /// Resident bytes of timer state: the pooled event-node slab plus the
  /// overflow heap and drain batch.  Sized by capacity, so it reflects
  /// the high-water footprint, not the instantaneous queue depth.  Feeds
  /// the bytes_per_peer gauge in bench_micro.
  std::size_t memory_bytes() const {
    return sizeof(*this) + nodes_.capacity() * sizeof(EventNode) +
           overflow_.capacity() * sizeof(OverflowRef) +
           drain_.capacity() * sizeof(std::uint32_t);
  }

  /// Earliest pending event time; false when nothing is queued.  Public
  /// peek for the sharded epoch scheduler (sim/shard_set.h), which needs
  /// the global minimum over every shard's wheel to size the next
  /// lookahead epoch.  May migrate overflow entries but never fires
  /// events or advances the clock.
  bool peek_next_event(std::int64_t& when_us) {
    return next_event_time(when_us);
  }

  /// Fast-forwards now() to `when` without firing anything — the sharded
  /// runner uses it so cross-shard deliveries at instant `when` observe
  /// now() == when before any wheel event at that instant runs.  Requires
  /// that no pending event is scheduled strictly before `when`; a `when`
  /// in the past is a no-op.
  void advance_now(SimTime when) {
    if (when > now_) now_ = when;
  }

  /// Drops all pending events (used by tests and teardown).  Every
  /// outstanding TimerHandle becomes stale.
  void clear();

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;               // 64
  static constexpr int kLevels = 6;
  static constexpr int kHorizonBits = kSlotBits * kLevels;    // 2^36 us

  /// Where a slab node currently lives.
  enum class NodeState : std::uint8_t {
    kFree,      // on the free list
    kWheel,     // linked into a wheel slot
    kOverflow,  // parked in the overflow heap
    kDrain,     // pulled into the current same-instant firing batch
  };

  struct EventNode {
    SimTime when;
    std::uint64_t seq = 0;       // FIFO tie-break for identical timestamps
    TimerFn fn = nullptr;        // fixed-signature path; null => action
    void* context = nullptr;
    std::uint64_t arg = 0;
    Action action;               // generic path (engaged iff fn == null)
    std::uint32_t next = kNil;   // slot chain / free list link
    std::uint32_t generation = 0;
    NodeState state = NodeState::kFree;
    bool cancelled = false;      // lazy cancel for kOverflow / kDrain
    std::uint8_t level = 0;      // wheel position (kWheel only)
    std::uint8_t wheel_slot = 0;
  };

  /// Overflow entries ordered by (when, seq) via std::greater (min-heap).
  struct OverflowRef {
    std::int64_t when_us;
    std::uint64_t seq;
    std::uint32_t node;
    friend auto operator<=>(const OverflowRef& a, const OverflowRef& b) {
      if (a.when_us != b.when_us) return a.when_us <=> b.when_us;
      return a.seq <=> b.seq;
    }
  };

  std::uint32_t allocate_node();
  void free_node(std::uint32_t index);
  TimerHandle enqueue(SimTime when, TimerFn fn, void* context,
                      std::uint64_t arg, Action action);
  /// Links a node into the wheel / overflow / live drain batch.
  void place(std::uint32_t index);
  /// Unlinks a kWheel node from its slot chain.
  void unlink_from_wheel(EventNode& node, std::uint32_t index);
  /// Moves overflow entries that now fit the wheel horizon into the wheel.
  void migrate_overflow();
  /// Earliest pending event time; false when nothing is queued.  Does not
  /// advance the wheel cursor (safe to call from run_until peeks).
  bool next_event_time(std::int64_t& when_us);
  /// Cascades upper wheel levels until the earliest pending events sit in
  /// a level-0 slot, then pulls that slot into drain order.  Returns false
  /// when nothing is queued.  Advances the cursor to the batch time.
  bool prepare_batch();
  /// Fires the prepared batch; returns events actually run.
  std::size_t fire_batch(trace::Tracer& tracer, bool tracing, bool timing);

  int level_for(std::int64_t when_us) const;

  SimTime now_;
  /// Wheel read cursor, <= every queued event's timestamp.  Trails now_
  /// when run_until fast-forwards the clock past an empty stretch.
  std::int64_t cursor_us_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t queue_high_water_ = 0;
  std::size_t reported_high_water_ = 0;  // last mark traced as kEventLoopLag
  std::size_t events_fired_ = 0;

  std::uint64_t occupied_[kLevels] = {};
  std::uint32_t heads_[kLevels][kSlots];
  std::vector<EventNode> nodes_;
  std::uint32_t free_head_ = kNil;
  std::vector<OverflowRef> overflow_;  // std::push_heap min-heap
  /// Same-instant firing batch, sorted by seq; events scheduled for the
  /// batch's own timestamp while it drains append here (their seq is
  /// necessarily larger, so the order stays sorted).
  std::vector<std::uint32_t> drain_;
  std::size_t drain_pos_ = 0;
  bool draining_ = false;

 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
};

}  // namespace groupcast::sim
