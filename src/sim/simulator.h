// Discrete-event simulation kernel.
//
// This is the C++ equivalent of the p-sim simulator the paper's evaluation
// runs on: a single-threaded event loop with timestamped callbacks.  Events
// scheduled for the same instant run in scheduling (FIFO) order, which keeps
// protocol traces deterministic for a given seed.
//
// A Simulator instance is thread-confined, not thread-safe: one thread
// drives it for its whole lifetime.  Independent simulators may run on
// different threads concurrently — the tracing/counter/timer hooks they
// fire resolve to per-thread state (see trace/trace.h), so parallel
// scenario runs share nothing mutable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace groupcast::sim {

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator simulator;
///   simulator.schedule(SimTime::millis(10), [&]{ ... });
///   simulator.run();
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (updated as events fire).
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  /// Negative delays are a precondition violation.
  void schedule(SimTime delay, Action action);

  /// Schedules `action` at an absolute instant (must be >= now()).
  void schedule_at(SimTime when, Action action);

  /// Runs until the event queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline remain queued.  Returns events fired.
  std::size_t run_until(SimTime deadline);

  /// Number of events waiting in the queue.
  std::size_t pending() const { return queue_.size(); }

  /// Deepest the event queue has ever been for this simulator — the
  /// high-water mark observability hook.  Each new high-water also emits
  /// an EventLoopLag trace event when tracing is on.
  std::size_t queue_high_water() const { return queue_high_water_; }

  /// Total events fired over the simulator's lifetime.
  std::size_t events_fired() const { return events_fired_; }

  /// Drops all pending events (used by tests and teardown).
  void clear();

 private:
  /// Pops the next event, advances the clock, and runs the action with
  /// the configured tracing / timing hooks.  `tracer` is hoisted by the
  /// run loops so the disabled path stays one null check per event.
  void fire(trace::Tracer& tracer, bool tracing, bool timing);
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for identical timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::size_t queue_high_water_ = 0;
  std::size_t reported_high_water_ = 0;  // last mark traced as kEventLoopLag
  std::size_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace groupcast::sim
