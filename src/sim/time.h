// Simulated time.
//
// Time is an integer count of microseconds wrapped in a strong type so that
// durations and instants cannot be confused with plain integers, and so the
// event queue never suffers floating-point comparison drift.  Latencies in
// the network substrate are expressed in (double) milliseconds and converted
// at this boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace groupcast::sim {

/// A duration or an instant on the simulation clock, in microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  static constexpr SimTime millis(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1000.0)};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1'000'000.0)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_millis() const {
    return static_cast<double>(us_) / 1000.0;
  }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  constexpr SimTime& operator+=(SimTime other) {
    us_ += other.us_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.us_ * k};
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_millis() << "ms";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace groupcast::sim
