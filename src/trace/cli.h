// Command-line tracing glue for bench/example binaries: recognises
// --trace_out=<path> and, when present, streams the run's protocol events
// to a JSONL file, appending a final counter snapshot when the guard goes
// out of scope.  Without the flag the guard is inert and the binary runs
// exactly as before (tracing stays disabled, zero hot-path cost).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "trace/sink.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace groupcast::trace {

class CliTracing {
 public:
  /// Parses argv; only --trace_out (and --help) are accepted.  Exits with
  /// a usage message on unknown flags, matching the repo's other CLIs.
  CliTracing(int argc, char** argv) {
    util::Flags flags;
    flags.declare("trace_out", "write a JSONL protocol trace to this path",
                  "");
    if (!flags.parse(argc, argv)) {
      std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                   flags.help(argv[0]).c_str());
      std::exit(2);
    }
    if (flags.help_requested()) {
      std::printf("%s", flags.help(argv[0]).c_str());
      std::exit(0);
    }
    open(flags.get_string("trace_out"));
  }

  /// Direct form for binaries that pre-process argv themselves
  /// (bench_micro strips --trace_out before google-benchmark parses the
  /// rest).  An empty path leaves tracing disabled.
  explicit CliTracing(const std::string& path) { open(path); }

  ~CliTracing() {
    if (sink_ == nullptr) return;
    emit_counter_snapshot();
    counters().disable();
    sink_.reset();  // flush + detach the global tracer
  }
  CliTracing(const CliTracing&) = delete;
  CliTracing& operator=(const CliTracing&) = delete;

  bool active() const { return sink_ != nullptr; }

 private:
  void open(const std::string& path) {
    if (path.empty()) return;
    sink_ = std::make_unique<ScopedSink>(
        std::make_unique<JsonlFileSink>(path));
    counters().enable(0);
  }

  std::unique_ptr<ScopedSink> sink_;
};

}  // namespace groupcast::trace
