// Command-line glue shared by the bench/example binaries: recognises
// --trace_out=<path> and, when present, streams the run's protocol events
// to a JSONL file, appending a final counter snapshot when the guard goes
// out of scope.  Without the flag the guard is inert and the binary runs
// exactly as before (tracing stays disabled, zero hot-path cost).
//
// Also parses --jobs=<n>, the worker count the binaries hand to the
// experiment grid (metrics::run_scenario_grid): 1 = sequential (default),
// 0 = one worker per hardware thread.  Results are byte-identical for
// every value — the grid gives each run an isolated RNG stream and
// counter registry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "trace/sink.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace groupcast::trace {

class CliTracing {
 public:
  /// Parses argv; only --trace_out, --jobs (and --help) are accepted.
  /// Exits with a usage message on unknown flags, matching the repo's
  /// other CLIs.
  CliTracing(int argc, char** argv) {
    util::Flags flags;
    flags.declare("trace_out", "write a JSONL protocol trace to this path",
                  "");
    flags.declare("json_out",
                  "write a machine-readable BENCH report (JSON) to this path",
                  "");
    flags.declare("jobs",
                  "experiment-grid worker threads (0 = all hardware threads)",
                  "1");
    flags.declare("shards",
                  "event-kernel worker shards per run (1 = the classic "
                  "single wheel; >= 2 runs router-sharded)",
                  "1");
    if (!flags.parse(argc, argv)) {
      std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                   flags.help(argv[0]).c_str());
      std::exit(2);
    }
    if (flags.help_requested()) {
      std::printf("%s", flags.help(argv[0]).c_str());
      std::exit(0);
    }
    jobs_ = static_cast<std::size_t>(
        std::max<std::int64_t>(0, flags.get_int("jobs")));
    json_out_ = flags.get_string("json_out");
    const auto trace_out = flags.get_string("trace_out");
    // Per-event capture is thread-confined: worker threads have no sink,
    // so a --jobs>1 trace would silently drop their events.  Refuse the
    // combination instead (see docs/OBSERVABILITY.md, "Thread model").
    if (!trace_out.empty() && jobs_ != 1) {
      std::fprintf(stderr,
                   "%s: --trace_out requires --jobs=1 (worker threads have "
                   "no trace sink; their events would be dropped).\n"
                   "Counters, histograms and the flight recorder merge "
                   "deterministically at any job count — only the per-event "
                   "stream needs a single thread.\n",
                   argv[0]);
      std::exit(2);
    }
    shards_ = static_cast<std::size_t>(
        std::max<std::int64_t>(0, flags.get_int("shards")));
    if (shards_ == 0) {
      std::fprintf(stderr, "%s: --shards must be >= 1\n", argv[0]);
      std::exit(2);
    }
    // Same thread-confinement rule as --jobs: a sharded run fires events
    // on several workers at once, so there is no single totally-ordered
    // event stream for the JSONL sink to record.
    if (!trace_out.empty() && shards_ != 1) {
      std::fprintf(stderr,
                   "%s: --trace_out requires --shards=1 (a sharded run has "
                   "no single totally-ordered event stream to trace).\n"
                   "Counters and histograms merge deterministically at any "
                   "shard count — only the per-event stream needs a single "
                   "wheel.\n",
                   argv[0]);
      std::exit(2);
    }
    open(trace_out);
  }

  /// Direct form for binaries that pre-process argv themselves
  /// (bench_micro strips --trace_out before google-benchmark parses the
  /// rest).  An empty path leaves tracing disabled.
  explicit CliTracing(const std::string& path) { open(path); }

  ~CliTracing() {
    if (sink_ == nullptr) return;
    emit_counter_snapshot();
    emit_histogram_snapshot();
    emit_timeline();
    counters().disable();
    histograms().disable();
    flight_recorder().disable();
    sink_.reset();  // flush + detach the global tracer
  }
  CliTracing(const CliTracing&) = delete;
  CliTracing& operator=(const CliTracing&) = delete;

  bool active() const { return sink_ != nullptr; }

  /// Worker threads requested via --jobs (1 when the flag was absent or
  /// the path constructor was used; 0 means "all hardware threads").
  std::size_t jobs() const { return jobs_; }

  /// Event-kernel shards requested via --shards (1 when absent or when
  /// the path constructor was used).
  std::size_t shards() const { return shards_; }

  /// --json_out destination for the bench's machine-readable report
  /// (bench/json_report.h); empty when the flag was absent.
  const std::string& json_out() const { return json_out_; }

 private:
  void open(const std::string& path) {
    if (path.empty()) return;
    sink_ = std::make_unique<ScopedSink>(
        std::make_unique<JsonlFileSink>(path));
    counters().enable(0);
    histograms().enable();
    flight_recorder().enable();
  }

  std::unique_ptr<ScopedSink> sink_;
  std::size_t jobs_ = 1;
  std::size_t shards_ = 1;
  std::string json_out_;
};

}  // namespace groupcast::trace
