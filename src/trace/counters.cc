#include "trace/counters.h"

#include <algorithm>

namespace groupcast::trace {

const char* to_string(CounterId id) {
  switch (id) {
    case CounterId::kMessagesSent:
      return "messages_sent";
    case CounterId::kMessagesReceived:
      return "messages_received";
    case CounterId::kMessagesForwarded:
      return "messages_forwarded";
    case CounterId::kMessagesDropped:
      return "messages_dropped";
    case CounterId::kAdvertsForwarded:
      return "adverts_forwarded";
    case CounterId::kSubscribeAttempts:
      return "subscribe_attempts";
    case CounterId::kSubscribeSuccesses:
      return "subscribe_successes";
    case CounterId::kRippleSearches:
      return "ripple_searches";
    case CounterId::kTreeEdges:
      return "tree_edges";
    case CounterId::kTreeRepairs:
      return "tree_repairs";
    case CounterId::kJoins:
      return "joins";
    case CounterId::kLeaves:
      return "leaves";
    case CounterId::kLinkRefills:
      return "link_refills";
    case CounterId::kControlRetries:
      return "control_retries";
    case CounterId::kControlGiveups:
      return "control_giveups";
    case CounterId::kOrphansRecovered:
      return "orphans_recovered";
    case CounterId::kHeartbeats:
      return "heartbeats";
    case CounterId::kTimersCoalesced:
      return "timers_coalesced";
    case CounterId::kUtilityCacheHits:
      return "utility_cache_hits";
    case CounterId::kUtilityCacheMisses:
      return "utility_cache_misses";
    case CounterId::kNacksSent:
      return "nacks_sent";
    case CounterId::kRetransmits:
      return "retransmits";
    case CounterId::kDupsSuppressed:
      return "dups_suppressed";
    case CounterId::kSendBufferHighWater:
      return "send_buffer_high_water";
    case CounterId::kBytesPerPeer:
      return "bytes_per_peer";
    case CounterId::kFlowBlocked:
      return "flow_blocked";
    case CounterId::kFlowThrottles:
      return "flow_throttles";
    case CounterId::kLeaseRenewals:
      return "lease_renewals";
    case CounterId::kLeaseHandoffs:
      return "lease_handoffs";
    case CounterId::kEpochConflicts:
      return "epoch_conflicts";
    case CounterId::kBackupAttaches:
      return "backup_attaches";
    case CounterId::kChunksPublished:
      return "chunks_published";
    case CounterId::kChunksDelivered:
      return "chunks_delivered";
    case CounterId::kChunksLate:
      return "chunks_late";
    case CounterId::kChunksMissed:
      return "chunks_missed";
    case CounterId::kRebufferEvents:
      return "rebuffer_events";
    case CounterId::kCount_:
      break;
  }
  return "?";
}

std::vector<std::pair<NodeId, std::uint64_t>>
CounterSnapshot::top_nodes(CounterId id, std::size_t k) const {
  std::vector<std::pair<NodeId, std::uint64_t>> ranked;
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    const auto v = per_node[i][static_cast<std::size_t>(id)];
    if (v > 0) ranked.emplace_back(static_cast<NodeId>(i), v);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::array<std::int64_t, kCounterIds> CounterSnapshot::totals_delta(
    const CounterSnapshot& base) const {
  std::array<std::int64_t, kCounterIds> delta{};
  for (std::size_t i = 0; i < kCounterIds; ++i) {
    delta[i] = static_cast<std::int64_t>(totals[i]) -
               static_cast<std::int64_t>(base.totals[i]);
  }
  return delta;
}

void CounterSnapshot::merge(const CounterSnapshot& other) {
  for (std::size_t i = 0; i < kCounterIds; ++i) totals[i] += other.totals[i];
  if (per_node.size() < other.per_node.size()) {
    per_node.resize(other.per_node.size());
  }
  for (std::size_t n = 0; n < other.per_node.size(); ++n) {
    for (std::size_t i = 0; i < kCounterIds; ++i) {
      per_node[n][i] += other.per_node[n][i];
    }
  }
}

void CounterRegistry::enable(std::size_t node_hint) {
  reset();
  if (node_hint > 0) per_node_.resize(node_hint);
  enabled_ = true;
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot snap;
  snap.totals = totals_;
  snap.per_node = per_node_;
  return snap;
}

void CounterRegistry::reset() {
  totals_.fill(0);
  per_node_.clear();
}

void CounterRegistry::merge(const CounterSnapshot& snap) {
  if (!enabled_) return;
  for (std::size_t i = 0; i < kCounterIds; ++i) totals_[i] += snap.totals[i];
  if (per_node_.size() < snap.per_node.size()) grow(snap.per_node.size());
  for (std::size_t n = 0; n < snap.per_node.size(); ++n) {
    for (std::size_t i = 0; i < kCounterIds; ++i) {
      per_node_[n][i] += snap.per_node[n][i];
    }
  }
}

void CounterRegistry::grow(std::size_t need) {
  per_node_.resize(std::max(need, per_node_.size() * 2));
}

namespace {
// Per-thread injection point.  A nullptr means "use the thread's default
// instance"; guards swap in per-run registries so concurrent scenario runs
// are fully isolated (no atomics needed anywhere on the incr() hot path).
thread_local CounterRegistry* tl_active_counters = nullptr;
}  // namespace

CounterRegistry& counters() {
  if (tl_active_counters != nullptr) return *tl_active_counters;
  thread_local CounterRegistry default_registry;
  return default_registry;
}

ScopedCounterRegistry::ScopedCounterRegistry(CounterRegistry& registry)
    : previous_(tl_active_counters) {
  tl_active_counters = &registry;
}

ScopedCounterRegistry::~ScopedCounterRegistry() {
  tl_active_counters = previous_;
}

}  // namespace groupcast::trace
