// Per-node monotonic counters.
//
// Every peer accumulates protocol counters (messages sent / received /
// forwarded / dropped, advertisements forwarded, tree repairs, ripple
// searches, ...) in a CounterRegistry.  The registry is disabled by
// default: incr() is then a single predictable branch, so the figure-sweep
// benches pay nothing.  When enabled (sim_driver --trace_out, tests), the
// experiment harness snapshots it into ScenarioResult and the snapshot can
// be exported into the trace for cross-run diffing.
//
// Instrumentation sites report to `trace::counters()`, which resolves to
// the calling thread's *active* registry: a per-thread default instance,
// unless a ScopedCounterRegistry guard has injected another one.  The
// parallel experiment harness gives every scenario run its own registry
// this way, so concurrent runs never share mutable counter state and a
// run's snapshot covers exactly that run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/event.h"

namespace groupcast::trace {

enum class CounterId : std::uint8_t {
  kMessagesSent = 0,
  kMessagesReceived,
  kMessagesForwarded,   // received and passed on (advert / data relay)
  kMessagesDropped,     // duplicates, loss, departed receivers
  kAdvertsForwarded,    // advertisement copies this node transmitted
  kSubscribeAttempts,
  kSubscribeSuccesses,
  kRippleSearches,      // searches this node originated
  kTreeEdges,           // spanning-tree attachments (counted at the child)
  kTreeRepairs,         // repair procedures run for this node's failure
  kJoins,               // overlay join protocol completions
  kLeaves,              // graceful leaves + crashes
  kLinkRefills,         // links re-established by epoch maintenance
  kControlRetries,      // reliable-exchange attempts after the first
  kControlGiveups,      // reliable exchanges that exhausted every attempt
  kOrphansRecovered,    // orphaned nodes that reattached to a tree
  kHeartbeats,          // tree-edge heartbeats this node sent
  kTimersCoalesced,     // heartbeat timers saved by the shared per-node tick
  kUtilityCacheHits,    // SSA preference vectors served from cache
  kUtilityCacheMisses,  // SSA preference vectors recomputed (Eqs. 1-5)
  kNacksSent,           // data-plane retransmit requests this node issued
  kRetransmits,         // buffered payload copies re-sent on a NACK
  kDupsSuppressed,      // sequence-level duplicate payloads discarded
  kSendBufferHighWater, // sum over directed edges of each edge's lifetime
                        // peak retransmit-buffer depth (delta increments)
  kBytesPerPeer,        // memory-footprint gauge: resident state per peer
                        // (node + edge + timer bytes; set by bench_micro)
  kFlowBlocked,         // payloads parked behind a closed sender window
  kFlowThrottles,       // throttle signals sent upstream (edge went blocked)
  kLeaseRenewals,       // lease renewals the leaseholder committed (majority)
  kLeaseHandoffs,       // leadership takeovers committed by this node
  kEpochConflicts,      // lease records merged with mismatched leaders
  kBackupAttaches,      // orphans reattached via the rung-0 backup parent
  kChunksPublished,     // stream chunks this node originated
  kChunksDelivered,     // chunks accepted before their playback deadline
  kChunksLate,          // chunks accepted after their playback deadline
  kChunksMissed,        // viewer-eligible chunks never played (harness-side)
  kRebufferEvents,      // maximal runs of missed chunks per viewer-stream
  kCount_,
};

inline constexpr std::size_t kCounterIds =
    static_cast<std::size_t>(CounterId::kCount_);

const char* to_string(CounterId id);

/// Point-in-time copy of the registry, safe to keep after reset().
struct CounterSnapshot {
  using Row = std::array<std::uint64_t, kCounterIds>;

  /// Sum over all nodes, per counter.
  Row totals{};
  /// Per-node rows, indexed by PeerId (dense; zero rows included).
  std::vector<Row> per_node;

  std::uint64_t total(CounterId id) const {
    return totals[static_cast<std::size_t>(id)];
  }
  std::uint64_t of(NodeId node, CounterId id) const {
    const auto i = static_cast<std::size_t>(node);
    return i < per_node.size() ? per_node[i][static_cast<std::size_t>(id)]
                               : 0;
  }

  /// The `k` nodes with the largest value of `id` (ties: lower id first),
  /// as (node, value) pairs, descending; zero-valued nodes are skipped.
  std::vector<std::pair<NodeId, std::uint64_t>> top_nodes(
      CounterId id, std::size_t k) const;

  /// Per-counter totals delta (this - base), e.g. run B vs run A.
  std::array<std::int64_t, kCounterIds> totals_delta(
      const CounterSnapshot& base) const;

  /// Element-wise accumulation of `other` into this snapshot; the
  /// per-node table grows to cover the larger of the two.  Integer sums,
  /// so merging is associative and order-independent — repetition
  /// snapshots merged in any order give identical results.
  void merge(const CounterSnapshot& other);

  friend bool operator==(const CounterSnapshot&,
                         const CounterSnapshot&) = default;
};

class CounterRegistry {
 public:
  bool enabled() const { return enabled_; }

  /// Turns counting on and clears previous values.  `node_hint` presizes
  /// the per-node table (it still grows on demand).
  void enable(std::size_t node_hint = 0);
  /// Turns counting off; values are kept until enable() or reset().
  void disable() { enabled_ = false; }

  /// Increments a counter; no-op (one branch) while disabled.  Events with
  /// no attributable node (node == kNoNode) only land in the totals.
  void incr(NodeId node, CounterId id, std::uint64_t n = 1) {
    if (!enabled_) return;
    totals_[static_cast<std::size_t>(id)] += n;
    if (node == kNoNode) return;
    const auto i = static_cast<std::size_t>(node);
    if (i >= per_node_.size()) grow(i + 1);
    per_node_[i][static_cast<std::size_t>(id)] += n;
  }

  std::uint64_t total(CounterId id) const {
    return totals_[static_cast<std::size_t>(id)];
  }
  std::uint64_t of(NodeId node, CounterId id) const {
    const auto i = static_cast<std::size_t>(node);
    return i < per_node_.size() ? per_node_[i][static_cast<std::size_t>(id)]
                                : 0;
  }
  std::size_t node_count() const { return per_node_.size(); }

  CounterSnapshot snapshot() const;
  /// Zeroes every counter; the enabled state is unchanged.
  void reset();

  /// Accumulates a snapshot's values into this registry (no-op while
  /// disabled).  Lets an isolated per-run registry's results be folded
  /// back into an outer registry after the run.
  void merge(const CounterSnapshot& snap);

 private:
  void grow(std::size_t need);

  bool enabled_ = false;
  std::array<std::uint64_t, kCounterIds> totals_{};
  std::vector<CounterSnapshot::Row> per_node_;
};

/// The calling thread's active counter registry (defined in counters.cc;
/// also declared via trace.h).  Defaults to a per-thread instance so
/// concurrent scenario runs never contend; redirect with
/// ScopedCounterRegistry.
CounterRegistry& counters();

/// RAII injection: routes this thread's trace::counters() to `registry`
/// for the guard's lifetime.  Guards nest; destruction restores the
/// previous target.  The guard must be destroyed on the thread that
/// created it.
class ScopedCounterRegistry {
 public:
  explicit ScopedCounterRegistry(CounterRegistry& registry);
  ~ScopedCounterRegistry();
  ScopedCounterRegistry(const ScopedCounterRegistry&) = delete;
  ScopedCounterRegistry& operator=(const ScopedCounterRegistry&) = delete;

 private:
  CounterRegistry* previous_;
};

}  // namespace groupcast::trace
