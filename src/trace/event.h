// Typed protocol events for the observability layer.
//
// Every significant protocol action (an advertisement copy forwarded, a
// subscription attempt resolved, a tree edge grown, a peer joining or
// leaving the overlay, a message dropped, the simulator queue reaching a
// new high-water mark) is describable as one fixed-size TraceEvent: a
// sim-timestamp, an event kind, up to two peer ids, and one integer value
// whose meaning depends on the kind.  Events are plain data — recording
// one never allocates, so sinks can sit on the protocol hot paths.
//
// This module sits *below* sim/ and overlay/ in the dependency order (the
// simulator itself is instrumented), so node ids are plain integers here;
// overlay::PeerId converts implicitly and uses the same kNoPeer sentinel.
#pragma once

#include <cstddef>
#include <cstdint>

namespace groupcast::trace {

/// A peer / node id as the trace layer sees it (== overlay::PeerId).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class EventKind : std::uint8_t {
  /// A run phase starts; `value` is a Phase.  Emitted by the middleware
  /// façade so reports can split costs into bootstrap / advertisement /
  /// steady-state buckets.
  kPhaseBegin = 0,
  /// One simulator event fired; `value` = events still pending.
  kSimEvent,
  /// The simulator queue depth reached a new high-water mark (`value`).
  kEventLoopLag,
  /// `node` forwarded an advertisement copy to `peer`; `value` = remaining
  /// TTL carried by the copy.
  kAdvertForwarded,
  /// `node` finished a subscription attempt against attach point `peer`
  /// (kNoNode when none was found); `value` = 1 on success.
  kSubscriptionAttempt,
  /// Spanning-tree growth: `node` attached under parent `peer`.
  kTreeEdgeAdded,
  /// `node` completed the overlay join protocol; `value` = out links.
  kPeerJoin,
  /// `node` left the overlay; `value` = 1 for a crash, 0 for graceful.
  kPeerLeave,
  /// A message from `node` to `peer` was dropped (duplicate suppression,
  /// loss, or a departed receiver); `value` = a DropReason.
  kMessageDropped,
  /// `node` ran a ripple search; `value` = search messages spent.
  kRippleSearch,
  /// Tree repair after the failure of `node`; `value` = nodes pruned.
  kTreeRepair,
  /// One maintenance epoch completed; `value` = dead links removed.
  kMaintenanceEpoch,
  /// An IP multicast reference tree was merged for source router `node`;
  /// `value` = distinct physical links in the tree.
  kIpTreeBuilt,
  /// End-of-run counter export: counter `peer` (a CounterId) of `node`
  /// had `value`.  Lets trace_report diff counters between two runs.
  kCounterSnapshot,
  /// A fault-plan event fired: `node` crashed (`value` = 0), a partition
  /// window opened (`value` = 1) or closed (2), or a burst-loss interval
  /// opened (3) or closed (4).
  kFaultInjected,
  /// Orphaned node `node` reattached to the tree under new parent `peer`;
  /// `value` = recovery attempts it took.
  kOrphanRecovered,
  /// Origin `node` published a payload into a group; `value` = packed
  /// provenance (see pack_provenance) with hop depth 0.
  kPayloadPublished,
  /// `node` transmitted a payload copy to `peer`; `value` = packed
  /// provenance carrying the hop depth the copy will have on arrival.
  kPayloadSent,
  /// `node` re-sent a buffered payload copy to `peer` on a NACK; `value`
  /// = packed provenance of the buffered copy.
  kPayloadRetransmit,
  /// `node` accepted a payload copy that arrived via `peer` (first
  /// delivery, duplicates are kMessageDropped); `value` = packed
  /// provenance with the realized hop depth.
  kPayloadDelivered,
  /// End-of-run histogram export: histogram `node` (a HistogramId), bin
  /// `peer` — either a value bin [0, kHistogramBins) holding its count, or
  /// a summary slot kHistogramBins + {0:count, 1:sum, 2:min, 3:max}.
  kHistogramBin,
  /// Flight-recorder frame row at sim time `t_us`: series `peer` (a
  /// CounterId, or kCounterIds + a HistogramId for that histogram's
  /// sample count) had cumulative total `value`.
  kTimelineFrame,
  /// Leaseholder `node` committed a lease renewal for its rendezvous
  /// replica set; `value` = the renewed epoch.
  kLeaseRenewed,
  /// `node` took the group lease over from `peer` (the previous leader,
  /// kNoNode when unknown); `value` = the new epoch.
  kLeaseHandoff,
  kCount_,
};

inline constexpr std::size_t kEventKinds =
    static_cast<std::size_t>(EventKind::kCount_);

/// Run phases marked by EventKind::kPhaseBegin.
enum class Phase : std::uint8_t {
  kBootstrap = 0,    // overlay construction (joins, host cache)
  kAdvertisement,    // SSA/NSSA announcement + subscriptions per group
  kSteadyState,      // established groups: payloads, churn, maintenance
  kCount_,
};

inline constexpr std::size_t kPhases = static_cast<std::size_t>(Phase::kCount_);

/// Why a message was dropped (EventKind::kMessageDropped `value`).
enum class DropReason : std::uint8_t {
  kDuplicate = 0,   // duplicate-suppression at the receiver
  kLoss,            // lossy transport
  kNoReceiver,      // receiver departed while the message was in flight
  kTtlExpired,      // TTL ran out before forwarding
  kPartitioned,     // sender and receiver were on opposite partition sides
  kBurstLoss,       // dropped by a fault-plan burst-loss interval
  kOriginDeparted,  // sender crashed before the scheduled delivery fired
  kStaleEpoch,      // sequenced payload from an out-of-date edge incarnation
  kCount_,
};

/// One recorded observation.  Fixed-size and trivially copyable so ring
/// buffers are just arrays and file sinks never allocate per event.
struct TraceEvent {
  std::int64_t t_us = 0;  // simulated time, microseconds
  EventKind kind = EventKind::kPhaseBegin;
  NodeId node = kNoNode;  // primary actor
  NodeId peer = kNoNode;  // counterpart, if any
  std::uint64_t value = 0;  // kind-specific payload

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

const char* to_string(EventKind kind);
const char* to_string(Phase phase);
const char* to_string(DropReason reason);

/// Message provenance packed into the single TraceEvent value: the
/// publishing origin, the payload id it chose, and the hop depth of this
/// particular copy (tree edges traversed when it arrives).  Payload ids
/// are truncated to 32 bits and hop depths to 8 — both far beyond what a
/// dissemination tree over a bounded overlay produces.
struct Provenance {
  NodeId origin = kNoNode;
  std::uint64_t payload_id = 0;
  std::uint32_t hops = 0;

  friend bool operator==(const Provenance&, const Provenance&) = default;
};

inline constexpr std::uint64_t pack_provenance(NodeId origin,
                                               std::uint64_t payload_id,
                                               std::uint32_t hops) {
  return (static_cast<std::uint64_t>(origin) << 40) |
         (static_cast<std::uint64_t>(hops & 0xFFu) << 32) |
         (payload_id & 0xFFFFFFFFu);
}

inline constexpr Provenance unpack_provenance(std::uint64_t value) {
  Provenance p;
  p.origin = static_cast<NodeId>(value >> 40);
  p.hops = static_cast<std::uint32_t>((value >> 32) & 0xFFu);
  p.payload_id = value & 0xFFFFFFFFu;
  return p;
}

}  // namespace groupcast::trace
