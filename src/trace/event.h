// Typed protocol events for the observability layer.
//
// Every significant protocol action (an advertisement copy forwarded, a
// subscription attempt resolved, a tree edge grown, a peer joining or
// leaving the overlay, a message dropped, the simulator queue reaching a
// new high-water mark) is describable as one fixed-size TraceEvent: a
// sim-timestamp, an event kind, up to two peer ids, and one integer value
// whose meaning depends on the kind.  Events are plain data — recording
// one never allocates, so sinks can sit on the protocol hot paths.
//
// This module sits *below* sim/ and overlay/ in the dependency order (the
// simulator itself is instrumented), so node ids are plain integers here;
// overlay::PeerId converts implicitly and uses the same kNoPeer sentinel.
#pragma once

#include <cstddef>
#include <cstdint>

namespace groupcast::trace {

/// A peer / node id as the trace layer sees it (== overlay::PeerId).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class EventKind : std::uint8_t {
  /// A run phase starts; `value` is a Phase.  Emitted by the middleware
  /// façade so reports can split costs into bootstrap / advertisement /
  /// steady-state buckets.
  kPhaseBegin = 0,
  /// One simulator event fired; `value` = events still pending.
  kSimEvent,
  /// The simulator queue depth reached a new high-water mark (`value`).
  kEventLoopLag,
  /// `node` forwarded an advertisement copy to `peer`; `value` = remaining
  /// TTL carried by the copy.
  kAdvertForwarded,
  /// `node` finished a subscription attempt against attach point `peer`
  /// (kNoNode when none was found); `value` = 1 on success.
  kSubscriptionAttempt,
  /// Spanning-tree growth: `node` attached under parent `peer`.
  kTreeEdgeAdded,
  /// `node` completed the overlay join protocol; `value` = out links.
  kPeerJoin,
  /// `node` left the overlay; `value` = 1 for a crash, 0 for graceful.
  kPeerLeave,
  /// A message from `node` to `peer` was dropped (duplicate suppression,
  /// loss, or a departed receiver); `value` = a DropReason.
  kMessageDropped,
  /// `node` ran a ripple search; `value` = search messages spent.
  kRippleSearch,
  /// Tree repair after the failure of `node`; `value` = nodes pruned.
  kTreeRepair,
  /// One maintenance epoch completed; `value` = dead links removed.
  kMaintenanceEpoch,
  /// An IP multicast reference tree was merged for source router `node`;
  /// `value` = distinct physical links in the tree.
  kIpTreeBuilt,
  /// End-of-run counter export: counter `peer` (a CounterId) of `node`
  /// had `value`.  Lets trace_report diff counters between two runs.
  kCounterSnapshot,
  /// A fault-plan event fired: `node` crashed (`value` = 0), a partition
  /// window opened (`value` = 1) or closed (2), or a burst-loss interval
  /// opened (3) or closed (4).
  kFaultInjected,
  /// Orphaned node `node` reattached to the tree under new parent `peer`;
  /// `value` = recovery attempts it took.
  kOrphanRecovered,
  kCount_,
};

inline constexpr std::size_t kEventKinds =
    static_cast<std::size_t>(EventKind::kCount_);

/// Run phases marked by EventKind::kPhaseBegin.
enum class Phase : std::uint8_t {
  kBootstrap = 0,    // overlay construction (joins, host cache)
  kAdvertisement,    // SSA/NSSA announcement + subscriptions per group
  kSteadyState,      // established groups: payloads, churn, maintenance
  kCount_,
};

inline constexpr std::size_t kPhases = static_cast<std::size_t>(Phase::kCount_);

/// Why a message was dropped (EventKind::kMessageDropped `value`).
enum class DropReason : std::uint8_t {
  kDuplicate = 0,   // duplicate-suppression at the receiver
  kLoss,            // lossy transport
  kNoReceiver,      // receiver departed while the message was in flight
  kTtlExpired,      // TTL ran out before forwarding
  kPartitioned,     // sender and receiver were on opposite partition sides
  kBurstLoss,       // dropped by a fault-plan burst-loss interval
  kOriginDeparted,  // sender crashed before the scheduled delivery fired
  kStaleEpoch,      // sequenced payload from an out-of-date edge incarnation
  kCount_,
};

/// One recorded observation.  Fixed-size and trivially copyable so ring
/// buffers are just arrays and file sinks never allocate per event.
struct TraceEvent {
  std::int64_t t_us = 0;  // simulated time, microseconds
  EventKind kind = EventKind::kPhaseBegin;
  NodeId node = kNoNode;  // primary actor
  NodeId peer = kNoNode;  // counterpart, if any
  std::uint64_t value = 0;  // kind-specific payload

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

const char* to_string(EventKind kind);
const char* to_string(Phase phase);
const char* to_string(DropReason reason);

}  // namespace groupcast::trace
