#include "trace/flight_recorder.h"

#include <algorithm>

namespace groupcast::trace {

void FlightFrame::merge(const FlightFrame& other) {
  for (std::size_t i = 0; i < kCounterIds; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kHistogramIds; ++i) {
    samples[i] += other.samples[i];
  }
}

void FlightRecorder::enable(std::size_t capacity) {
  frames_.clear();
  capacity_ = std::max<std::size_t>(1, capacity);
  enabled_ = true;
}

void FlightRecorder::capture(std::int64_t t_us) {
  if (!enabled_) return;
  FlightFrame frame;
  frame.t_us = t_us;
  const auto counter_snap = counters().snapshot();
  frame.counters = counter_snap.totals;
  for (std::size_t i = 0; i < kHistogramIds; ++i) {
    frame.samples[i] =
        histograms().of(static_cast<HistogramId>(i)).count;
  }
  if (!frames_.empty() && frames_.back().t_us == t_us) {
    frames_.back() = frame;
    return;
  }
  if (frames_.size() == capacity_) frames_.pop_front();
  frames_.push_back(frame);
}

std::vector<FlightFrame> FlightRecorder::frames() const {
  return std::vector<FlightFrame>(frames_.begin(), frames_.end());
}

void FlightRecorder::merge(const std::vector<FlightFrame>& timeline) {
  if (!enabled_) return;
  std::vector<FlightFrame> merged(frames_.begin(), frames_.end());
  merge_timelines(merged, timeline);
  if (merged.size() > capacity_) {
    merged.erase(merged.begin(),
                 merged.begin() +
                     static_cast<std::ptrdiff_t>(merged.size() - capacity_));
  }
  frames_.assign(merged.begin(), merged.end());
}

namespace {
thread_local FlightRecorder* tl_active_recorder = nullptr;
}  // namespace

FlightRecorder& flight_recorder() {
  if (tl_active_recorder != nullptr) return *tl_active_recorder;
  thread_local FlightRecorder instance;
  return instance;
}

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder& recorder)
    : previous_(tl_active_recorder) {
  tl_active_recorder = &recorder;
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  tl_active_recorder = previous_;
}

void merge_timelines(std::vector<FlightFrame>& into,
                     const std::vector<FlightFrame>& other) {
  std::vector<FlightFrame> merged;
  merged.reserve(into.size() + other.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into.size() || b < other.size()) {
    if (b >= other.size() ||
        (a < into.size() && into[a].t_us < other[b].t_us)) {
      merged.push_back(into[a++]);
    } else if (a >= into.size() || other[b].t_us < into[a].t_us) {
      merged.push_back(other[b++]);
    } else {
      FlightFrame frame = into[a++];
      frame.merge(other[b++]);
      merged.push_back(frame);
    }
  }
  into = std::move(merged);
}

}  // namespace groupcast::trace
