// Flight recorder: a bounded ring of periodic sim-time snapshots.
//
// Each capture() stamps the calling thread's *active* counter and
// histogram registries (cumulative totals, not deltas) into a FlightFrame
// keyed by simulated time.  Recovery benches capture one frame per
// protocol epoch, turning the end-state delivery numbers into
// trajectories across the fault window.  The ring is bounded: once full,
// the oldest frame is dropped, so a long run keeps its most recent
// history — the flight-recorder idea.
//
// Frames are pure integers keyed by sim time, so time series from
// repeated runs merge order-independently (union of timestamps, summing
// rows on equal stamps).  That keeps --jobs=N byte-identical, same as
// counters and histograms.  Disabled by default; capture() is then one
// branch.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "trace/counters.h"
#include "trace/histogram.h"

namespace groupcast::trace {

/// One periodic snapshot: cumulative counter totals and histogram sample
/// counts at sim time `t_us`.
struct FlightFrame {
  std::int64_t t_us = 0;
  std::array<std::uint64_t, kCounterIds> counters{};
  std::array<std::uint64_t, kHistogramIds> samples{};

  /// Element-wise integer accumulation (timestamps must match).
  void merge(const FlightFrame& other);

  friend bool operator==(const FlightFrame&, const FlightFrame&) = default;
};

/// Number of flight-recorder series exported per frame: every counter
/// followed by every histogram's sample count (see EventKind::
/// kTimelineFrame).
inline constexpr std::size_t kTimelineSeries = kCounterIds + kHistogramIds;

class FlightRecorder {
 public:
  bool enabled() const { return enabled_; }

  /// Turns recording on, clears previous frames, and bounds the ring to
  /// `capacity` frames (oldest dropped first).
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stops recording; frames are kept until enable() or reset().
  void disable() { enabled_ = false; }

  /// Snapshots the calling thread's active counters() and histograms()
  /// into a frame stamped `t_us`; no-op (one branch) while disabled.
  /// Re-capturing an existing stamp overwrites that frame.
  void capture(std::int64_t t_us);

  std::size_t size() const { return frames_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Frames oldest-first.
  std::vector<FlightFrame> frames() const;
  void reset() { frames_.clear(); }

  /// Folds externally merged frames back into the ring (no-op while
  /// disabled); used by the grid harness to surface a reduced timeline
  /// through the ambient recorder.
  void merge(const std::vector<FlightFrame>& timeline);

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::deque<FlightFrame> frames_;
};

/// The calling thread's active flight recorder.  Defaults to a per-thread
/// instance; redirect with ScopedFlightRecorder.
FlightRecorder& flight_recorder();

/// RAII injection, same contract as ScopedCounterRegistry /
/// ScopedHistogramRegistry.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& recorder);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

/// Merges `other` into timeline `into`, keyed by t_us: union of
/// timestamps, element-wise sums where both have a frame.  Both inputs
/// must be sorted by t_us (captures are); the result stays sorted.
/// Integer sums keyed by time make this associative and
/// order-independent, so repetition timelines reduce deterministically.
void merge_timelines(std::vector<FlightFrame>& into,
                     const std::vector<FlightFrame>& other);

}  // namespace groupcast::trace
