#include "trace/histogram.h"

namespace groupcast::trace {

const char* to_string(HistogramId id) {
  switch (id) {
    case HistogramId::kEdgeDelayUs:
      return "edge_delay_us";
    case HistogramId::kHopCount:
      return "hop_count";
    case HistogramId::kEndToEndDelayUs:
      return "end_to_end_delay_us";
    case HistogramId::kNackRepairUs:
      return "nack_repair_us";
    case HistogramId::kWindowOccupancy:
      return "window_occupancy";
    case HistogramId::kEstimatedLoss:
      return "estimated_loss";
    case HistogramId::kThrottleUs:
      return "throttle_us";
    case HistogramId::kHandoffUs:
      return "handoff_us";
    case HistogramId::kChunkSlackUs:
      return "chunk_slack_us";
    case HistogramId::kStartupDelayUs:
      return "startup_delay_us";
    case HistogramId::kCount_:
      break;
  }
  return "?";
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t b = 0; b < kHistogramBins; ++b) bins[b] += other.bins[b];
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramData::percentile(double p) const {
  if (count == 0) return 0;
  if (p <= 0.0) return min;
  if (p >= 1.0) return max;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBins; ++b) {
    seen += bins[b];
    if (seen > rank) return histogram_bin_floor(b);
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramIds; ++i) data[i].merge(other.data[i]);
}

void HistogramRegistry::enable() {
  reset();
  enabled_ = true;
}

HistogramSnapshot HistogramRegistry::snapshot() const {
  HistogramSnapshot snap;
  snap.data = data_;
  return snap;
}

void HistogramRegistry::reset() {
  for (auto& h : data_) h = HistogramData{};
}

void HistogramRegistry::merge(const HistogramSnapshot& snap) {
  if (!enabled_) return;
  for (std::size_t i = 0; i < kHistogramIds; ++i) {
    data_[i].merge(snap.data[i]);
  }
}

namespace {
// The per-thread injection point; see ScopedHistogramRegistry.  Mirrors
// tl_active_counters in counters.cc.
thread_local HistogramRegistry* tl_active_histograms = nullptr;
}  // namespace

HistogramRegistry& histograms() {
  if (tl_active_histograms != nullptr) return *tl_active_histograms;
  thread_local HistogramRegistry instance;
  return instance;
}

ScopedHistogramRegistry::ScopedHistogramRegistry(HistogramRegistry& registry)
    : previous_(tl_active_histograms) {
  tl_active_histograms = &registry;
}

ScopedHistogramRegistry::~ScopedHistogramRegistry() {
  tl_active_histograms = previous_;
}

}  // namespace groupcast::trace
