// Deterministic log-binned sim-time histograms.
//
// The fourth trace facility (after sinks, counters, and wall-clock
// timers): distributions of simulated-time quantities — per-edge delivery
// latency, payload hop counts, end-to-end delay, NACK-to-repair time.
// Samples land in log2-spaced bins with integer count/sum/min/max
// summaries, so two histograms merge by element-wise integer accumulation
// — associative and order-independent, exactly like CounterSnapshot.
// That makes histograms safe under `run_scenario_grid --jobs=N`: each run
// records into an injected per-run registry (ScopedHistogramRegistry, the
// ScopedCounterRegistry pattern) and the seed-order reduction merges the
// snapshots, so output is byte-identical at any job count.
//
// Disabled by default: record() is then a single predictable branch, so
// the figure-sweep benches pay nothing.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "trace/event.h"

namespace groupcast::trace {

enum class HistogramId : std::uint8_t {
  kEdgeDelayUs = 0,   // transport latency of each delivered message, µs
  kHopCount,          // tree edges traversed by each accepted payload copy
  kEndToEndDelayUs,   // publish-to-deliver delay per probe payload, µs
  kNackRepairUs,      // first NACK to in-order repair per rx-edge gap, µs
  kWindowOccupancy,   // in-flight seqs per windowed send (flow control on)
  kEstimatedLoss,     // adaptive per-edge loss estimate, permille (EWMA)
  kThrottleUs,        // duration of each sender throttle episode, µs
  kHandoffUs,         // lease-expiry detection to committed takeover, µs
  kChunkSlackUs,      // deadline minus arrival per on-time chunk, µs
  kStartupDelayUs,    // stream start to first played chunk per viewer, µs
  kCount_,
};

inline constexpr std::size_t kHistogramIds =
    static_cast<std::size_t>(HistogramId::kCount_);

const char* to_string(HistogramId id);

/// Bins are log2-spaced: bin 0 holds the value 0, bin b >= 1 holds values
/// in [2^(b-1), 2^b), and the last bin absorbs everything above 2^62.
inline constexpr std::size_t kHistogramBins = 64;

inline constexpr std::size_t histogram_bin(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBins ? width : kHistogramBins - 1;
}

/// Smallest value that maps to `bin` (the bin's inclusive lower bound).
inline constexpr std::uint64_t histogram_bin_floor(std::size_t bin) {
  return bin == 0 ? 0 : std::uint64_t{1} << (bin - 1);
}

/// One distribution: per-bin counts plus exact integer summaries.
struct HistogramData {
  std::array<std::uint64_t, kHistogramBins> bins{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // valid only when count > 0
  std::uint64_t max = 0;

  void record(std::uint64_t value) {
    ++bins[histogram_bin(value)];
    if (count == 0 || value < min) min = value;
    if (count == 0 || value > max) max = value;
    ++count;
    sum += value;
  }

  /// Element-wise integer accumulation; order-independent.
  void merge(const HistogramData& other);

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Lower bound of the bin holding the p-th percentile sample
  /// (0 <= p <= 1); exact for min/max, bin-resolution otherwise.
  std::uint64_t percentile(double p) const;

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// Point-in-time copy of every histogram, safe to keep after reset().
struct HistogramSnapshot {
  std::array<HistogramData, kHistogramIds> data{};

  const HistogramData& of(HistogramId id) const {
    return data[static_cast<std::size_t>(id)];
  }
  bool empty() const {
    for (const auto& h : data) {
      if (h.count != 0) return false;
    }
    return true;
  }

  /// Merges `other` into this snapshot; associative and
  /// order-independent, like CounterSnapshot::merge.
  void merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

class HistogramRegistry {
 public:
  bool enabled() const { return enabled_; }

  /// Turns recording on and clears previous samples.
  void enable();
  /// Turns recording off; samples are kept until enable() or reset().
  void disable() { enabled_ = false; }

  /// Records one sample; no-op (one branch) while disabled.
  void record(HistogramId id, std::uint64_t value) {
    if (!enabled_) return;
    data_[static_cast<std::size_t>(id)].record(value);
  }

  const HistogramData& of(HistogramId id) const {
    return data_[static_cast<std::size_t>(id)];
  }

  HistogramSnapshot snapshot() const;
  /// Zeroes every histogram; the enabled state is unchanged.
  void reset();

  /// Accumulates a snapshot into this registry (no-op while disabled) —
  /// folds an isolated per-run registry's results back into an outer one.
  void merge(const HistogramSnapshot& snap);

 private:
  bool enabled_ = false;
  std::array<HistogramData, kHistogramIds> data_{};
};

/// The calling thread's active histogram registry.  Defaults to a
/// per-thread instance; redirect with ScopedHistogramRegistry.
HistogramRegistry& histograms();

/// RAII injection: routes this thread's trace::histograms() to `registry`
/// for the guard's lifetime.  Guards nest; destruction restores the
/// previous target.  The guard must be destroyed on the thread that
/// created it.
class ScopedHistogramRegistry {
 public:
  explicit ScopedHistogramRegistry(HistogramRegistry& registry);
  ~ScopedHistogramRegistry();
  ScopedHistogramRegistry(const ScopedHistogramRegistry&) = delete;
  ScopedHistogramRegistry& operator=(const ScopedHistogramRegistry&) = delete;

 private:
  HistogramRegistry* previous_;
};

}  // namespace groupcast::trace
