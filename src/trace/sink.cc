#include "trace/sink.h"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "util/require.h"

namespace groupcast::trace {

namespace {

/// Signed view of a PeerId for serialization: kNoPeer becomes -1.
std::int64_t id_out(NodeId p) {
  return p == kNoNode ? -1 : static_cast<std::int64_t>(p);
}

NodeId id_in(std::int64_t v) {
  return v < 0 ? kNoNode : static_cast<NodeId>(v);
}

}  // namespace

// ------------------------------------------------------------ ring buffer

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  GC_REQUIRE(capacity >= 1);
  buffer_.reserve(capacity);
}

void RingBufferSink::record(const TraceEvent& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  if (buffer_.size() < capacity_) {
    out = buffer_;
  } else {
    // Full ring: next_ points at the oldest slot.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(buffer_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void RingBufferSink::clear() {
  buffer_.clear();
  next_ = 0;
  recorded_ = 0;
}

// ------------------------------------------------------------------ JSONL

std::string to_jsonl(const TraceEvent& event) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "{\"t_us\":%" PRId64 ",\"kind\":\"%s\",\"node\":%" PRId64
                ",\"peer\":%" PRId64 ",\"value\":%" PRIu64 "}",
                event.t_us, to_string(event.kind), id_out(event.node),
                id_out(event.peer), event.value);
  return line;
}

namespace {

/// Finds `"key":` in `line` and returns the character offset just past the
/// colon, or npos.
std::size_t find_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool parse_int_field(const std::string& line, const char* key,
                     std::int64_t* out) {
  const auto at = find_value(line, key);
  if (at == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at || errno != 0) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_kind_field(const std::string& line, EventKind* out) {
  auto at = find_value(line, "kind");
  if (at == std::string::npos) return false;
  while (at < line.size() && line[at] == ' ') ++at;
  if (at >= line.size() || line[at] != '"') return false;
  const auto close = line.find('"', at + 1);
  if (close == std::string::npos) return false;
  const std::string name = line.substr(at + 1, close - at - 1);
  for (std::size_t k = 0; k < kEventKinds; ++k) {
    if (name == to_string(static_cast<EventKind>(k))) {
      *out = static_cast<EventKind>(k);
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<TraceEvent> parse_jsonl(const std::string& line) {
  TraceEvent event;
  std::int64_t t = 0, node = 0, peer = 0, value = 0;
  if (!parse_int_field(line, "t_us", &t)) return std::nullopt;
  if (!parse_kind_field(line, &event.kind)) return std::nullopt;
  if (!parse_int_field(line, "node", &node)) return std::nullopt;
  if (!parse_int_field(line, "peer", &peer)) return std::nullopt;
  if (!parse_int_field(line, "value", &value)) return std::nullopt;
  event.t_us = t;
  event.node = id_in(node);
  event.peer = id_in(peer);
  event.value = static_cast<std::uint64_t>(value);
  return event;
}

JsonlFileSink::JsonlFileSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  GC_REQUIRE_MSG(file_ != nullptr, "cannot open trace file: " + path);
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::record(const TraceEvent& event) {
  const auto line = to_jsonl(event);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++recorded_;
}

void JsonlFileSink::flush() { std::fflush(file_); }

std::optional<std::vector<TraceEvent>> read_jsonl_file(
    const std::string& path, std::size_t* malformed) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return std::nullopt;
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::string line;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), file) != nullptr) {
    line += chunk;
    if (!line.empty() && line.back() != '\n' && !std::feof(file)) {
      continue;  // long line split across fgets calls
    }
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!line.empty()) {
      if (auto event = parse_jsonl(line)) {
        out.push_back(*event);
      } else {
        ++bad;
      }
    }
    line.clear();
  }
  std::fclose(file);
  if (malformed != nullptr) *malformed = bad;
  return out;
}

}  // namespace groupcast::trace
