// Trace sinks: where recorded events go.
//
// The tracer (trace.h) forwards events to exactly one TraceSink.  Two
// implementations cover the evaluation needs:
//
//  * RingBufferSink — fixed-capacity in-memory ring; the cheapest way to
//    keep "the last N things that happened" around for tests and for
//    post-mortem inspection after an assertion failure.
//  * JsonlFileSink  — one JSON object per line, append-only.  The format
//    is deterministic (fixed key order, integer fields only), so two runs
//    of the same seed produce byte-identical files; tools/trace_report
//    consumes it.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.h"

namespace groupcast::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Records one event.  Must not throw on the hot path.
  virtual void record(const TraceEvent& event) = 0;
  /// Pushes buffered state to its destination (no-op for memory sinks).
  virtual void flush() {}
};

/// Discards everything; useful to measure tracing overhead in isolation.
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Keeps the most recent `capacity` events in memory.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void record(const TraceEvent& event) override;

  /// Events still held, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= events().size()).
  std::size_t recorded() const { return recorded_; }
  /// Events lost to wraparound.
  std::size_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t next_ = 0;      // slot the next event lands in
  std::size_t recorded_ = 0;
};

/// Serializes one event as a single JSONL line (no trailing newline).
/// Fixed key order: {"t_us":..,"kind":"..","node":..,"peer":..,"value":..}
/// `node`/`peer` are emitted as -1 when they are kNoPeer.
std::string to_jsonl(const TraceEvent& event);

/// Parses a line produced by to_jsonl (tolerant of key order and extra
/// whitespace).  Returns nullopt on malformed input or an unknown kind.
std::optional<TraceEvent> parse_jsonl(const std::string& line);

/// Appends events to a JSONL file, one line each.
class JsonlFileSink final : public TraceSink {
 public:
  /// Opens (truncates) `path`; throws PreconditionError if it cannot.
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void record(const TraceEvent& event) override;
  void flush() override;

  const std::string& path() const { return path_; }
  std::size_t recorded() const { return recorded_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t recorded_ = 0;
};

/// Reads every parseable event of a JSONL trace file, in file order.
/// Returns nullopt if the file cannot be opened; malformed lines are
/// skipped and counted in `*malformed` when provided.
std::optional<std::vector<TraceEvent>> read_jsonl_file(
    const std::string& path, std::size_t* malformed = nullptr);

}  // namespace groupcast::trace
