#include "trace/trace.h"

namespace groupcast::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kSimEvent:
      return "sim_event";
    case EventKind::kEventLoopLag:
      return "event_loop_lag";
    case EventKind::kAdvertForwarded:
      return "advert_forwarded";
    case EventKind::kSubscriptionAttempt:
      return "subscription_attempt";
    case EventKind::kTreeEdgeAdded:
      return "tree_edge_added";
    case EventKind::kPeerJoin:
      return "peer_join";
    case EventKind::kPeerLeave:
      return "peer_leave";
    case EventKind::kMessageDropped:
      return "message_dropped";
    case EventKind::kRippleSearch:
      return "ripple_search";
    case EventKind::kTreeRepair:
      return "tree_repair";
    case EventKind::kMaintenanceEpoch:
      return "maintenance_epoch";
    case EventKind::kIpTreeBuilt:
      return "ip_tree_built";
    case EventKind::kCounterSnapshot:
      return "counter_snapshot";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kOrphanRecovered:
      return "orphan_recovered";
    case EventKind::kPayloadPublished:
      return "payload_published";
    case EventKind::kPayloadSent:
      return "payload_sent";
    case EventKind::kPayloadRetransmit:
      return "payload_retransmit";
    case EventKind::kPayloadDelivered:
      return "payload_delivered";
    case EventKind::kHistogramBin:
      return "histogram_bin";
    case EventKind::kTimelineFrame:
      return "timeline_frame";
    case EventKind::kLeaseRenewed:
      return "lease_renewed";
    case EventKind::kLeaseHandoff:
      return "lease_handoff";
    case EventKind::kCount_:
      break;
  }
  return "?";
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBootstrap:
      return "bootstrap";
    case Phase::kAdvertisement:
      return "advertisement";
    case Phase::kSteadyState:
      return "steady-state";
    case Phase::kCount_:
      break;
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kDuplicate:
      return "duplicate";
    case DropReason::kLoss:
      return "loss";
    case DropReason::kNoReceiver:
      return "no-receiver";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kPartitioned:
      return "partitioned";
    case DropReason::kBurstLoss:
      return "burst-loss";
    case DropReason::kOriginDeparted:
      return "origin-departed";
    case DropReason::kStaleEpoch:
      return "stale-epoch";
    case DropReason::kCount_:
      break;
  }
  return "?";
}

const char* to_string(TimerId id) {
  switch (id) {
    case TimerId::kSimEvent:
      return "sim.event";
    case TimerId::kAnnounce:
      return "advert.announce";
    case TimerId::kSubscribe:
      return "subscription.subscribe";
    case TimerId::kBootstrapJoin:
      return "bootstrap.join";
    case TimerId::kMaintenanceEpoch:
      return "maintenance.epoch";
    case TimerId::kIpTreeBuild:
      return "multicast.build";
    case TimerId::kCount_:
      break;
  }
  return "?";
}

Tracer& tracer() {
  // Thread-local so worker-pool scenario runs never share a sink pointer;
  // see the thread-model note in trace.h.  (counters() lives in
  // counters.cc next to its injection guard.)
  thread_local Tracer instance;
  return instance;
}

TimerRegistry& timers() {
  thread_local TimerRegistry instance;
  return instance;
}

void TimerRegistry::enable() {
  reset();
  enabled_ = true;
}

void TimerRegistry::reset() {
  for (auto& slot : totals_) slot = TimerTotals{};
}

void emit_counter_snapshot(std::int64_t t_us) {
  auto& t = tracer();
  auto& c = counters();
  if (!t.enabled() || !c.enabled()) return;
  for (std::size_t node = 0; node < c.node_count(); ++node) {
    for (std::size_t id = 0; id < kCounterIds; ++id) {
      const auto v =
          c.of(static_cast<NodeId>(node), static_cast<CounterId>(id));
      if (v == 0) continue;
      t.emit(t_us, EventKind::kCounterSnapshot, static_cast<NodeId>(node),
             static_cast<NodeId>(id), v);
    }
  }
  for (std::size_t id = 0; id < kCounterIds; ++id) {
    const auto v = c.total(static_cast<CounterId>(id));
    if (v == 0) continue;
    t.emit(t_us, EventKind::kCounterSnapshot, kNoNode,
           static_cast<NodeId>(id), v);
  }
}

void emit_histogram_snapshot(std::int64_t t_us) {
  auto& t = tracer();
  auto& h = histograms();
  if (!t.enabled() || !h.enabled()) return;
  for (std::size_t id = 0; id < kHistogramIds; ++id) {
    const auto& data = h.of(static_cast<HistogramId>(id));
    if (data.count == 0) continue;
    for (std::size_t bin = 0; bin < kHistogramBins; ++bin) {
      if (data.bins[bin] == 0) continue;
      t.emit(t_us, EventKind::kHistogramBin, static_cast<NodeId>(id),
             static_cast<NodeId>(bin), data.bins[bin]);
    }
    // Summary slots past the bin range: count, sum, min, max.
    const std::uint64_t summary[4] = {data.count, data.sum, data.min,
                                      data.max};
    for (std::size_t s = 0; s < 4; ++s) {
      t.emit(t_us, EventKind::kHistogramBin, static_cast<NodeId>(id),
             static_cast<NodeId>(kHistogramBins + s), summary[s]);
    }
  }
}

void emit_timeline() {
  auto& t = tracer();
  auto& r = flight_recorder();
  if (!t.enabled() || !r.enabled()) return;
  for (const auto& frame : r.frames()) {
    for (std::size_t id = 0; id < kCounterIds; ++id) {
      if (frame.counters[id] == 0) continue;
      t.emit(frame.t_us, EventKind::kTimelineFrame, kNoNode,
             static_cast<NodeId>(id), frame.counters[id]);
    }
    for (std::size_t id = 0; id < kHistogramIds; ++id) {
      if (frame.samples[id] == 0) continue;
      t.emit(frame.t_us, EventKind::kTimelineFrame, kNoNode,
             static_cast<NodeId>(kCounterIds + id), frame.samples[id]);
    }
  }
}

}  // namespace groupcast::trace
