#include "trace/trace.h"

namespace groupcast::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kSimEvent:
      return "sim_event";
    case EventKind::kEventLoopLag:
      return "event_loop_lag";
    case EventKind::kAdvertForwarded:
      return "advert_forwarded";
    case EventKind::kSubscriptionAttempt:
      return "subscription_attempt";
    case EventKind::kTreeEdgeAdded:
      return "tree_edge_added";
    case EventKind::kPeerJoin:
      return "peer_join";
    case EventKind::kPeerLeave:
      return "peer_leave";
    case EventKind::kMessageDropped:
      return "message_dropped";
    case EventKind::kRippleSearch:
      return "ripple_search";
    case EventKind::kTreeRepair:
      return "tree_repair";
    case EventKind::kMaintenanceEpoch:
      return "maintenance_epoch";
    case EventKind::kIpTreeBuilt:
      return "ip_tree_built";
    case EventKind::kCounterSnapshot:
      return "counter_snapshot";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kOrphanRecovered:
      return "orphan_recovered";
    case EventKind::kCount_:
      break;
  }
  return "?";
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBootstrap:
      return "bootstrap";
    case Phase::kAdvertisement:
      return "advertisement";
    case Phase::kSteadyState:
      return "steady-state";
    case Phase::kCount_:
      break;
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kDuplicate:
      return "duplicate";
    case DropReason::kLoss:
      return "loss";
    case DropReason::kNoReceiver:
      return "no-receiver";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kPartitioned:
      return "partitioned";
    case DropReason::kBurstLoss:
      return "burst-loss";
    case DropReason::kOriginDeparted:
      return "origin-departed";
    case DropReason::kStaleEpoch:
      return "stale-epoch";
    case DropReason::kCount_:
      break;
  }
  return "?";
}

const char* to_string(TimerId id) {
  switch (id) {
    case TimerId::kSimEvent:
      return "sim.event";
    case TimerId::kAnnounce:
      return "advert.announce";
    case TimerId::kSubscribe:
      return "subscription.subscribe";
    case TimerId::kBootstrapJoin:
      return "bootstrap.join";
    case TimerId::kMaintenanceEpoch:
      return "maintenance.epoch";
    case TimerId::kIpTreeBuild:
      return "multicast.build";
    case TimerId::kCount_:
      break;
  }
  return "?";
}

Tracer& tracer() {
  // Thread-local so worker-pool scenario runs never share a sink pointer;
  // see the thread-model note in trace.h.  (counters() lives in
  // counters.cc next to its injection guard.)
  thread_local Tracer instance;
  return instance;
}

TimerRegistry& timers() {
  thread_local TimerRegistry instance;
  return instance;
}

void TimerRegistry::enable() {
  reset();
  enabled_ = true;
}

void TimerRegistry::reset() {
  for (auto& slot : totals_) slot = TimerTotals{};
}

void emit_counter_snapshot(std::int64_t t_us) {
  auto& t = tracer();
  auto& c = counters();
  if (!t.enabled() || !c.enabled()) return;
  for (std::size_t node = 0; node < c.node_count(); ++node) {
    for (std::size_t id = 0; id < kCounterIds; ++id) {
      const auto v =
          c.of(static_cast<NodeId>(node), static_cast<CounterId>(id));
      if (v == 0) continue;
      t.emit(t_us, EventKind::kCounterSnapshot, static_cast<NodeId>(node),
             static_cast<NodeId>(id), v);
    }
  }
  for (std::size_t id = 0; id < kCounterIds; ++id) {
    const auto v = c.total(static_cast<CounterId>(id));
    if (v == 0) continue;
    t.emit(t_us, EventKind::kCounterSnapshot, kNoNode,
           static_cast<NodeId>(id), v);
  }
}

}  // namespace groupcast::trace
