// The tracing facade: a per-thread Tracer, per-node counters, and
// wall-clock section timers.
//
// Design constraints (ISSUE 1):
//  * zero-cost when disabled — emit() is a single null-pointer check, no
//    allocation, no virtual call; counters and timers are one boolean
//    branch.  Figure-sweep bench numbers must be unaffected.
//  * deterministic when enabled — events carry only simulated time and
//    ids, never wall-clock, so two runs of one seed produce byte-identical
//    JSONL traces.  Wall-clock measurements live exclusively in the timer
//    registry, which is reported separately and never serialized into the
//    trace stream.
//
// Thread model (ISSUE 2): each simulator instance is confined to one
// thread, and the tracer / counter / timer accessors all resolve to
// thread-local state, so independent scenario runs on a worker pool never
// share mutable instrumentation — plain state, no atomics, TSan-clean.
// A sink installed on one thread only observes that thread's runs; the
// parallel experiment harness instead injects an isolated CounterRegistry
// per run (trace::ScopedCounterRegistry) and merges the snapshots.
//
// Usage:
//   trace::ScopedSink guard(std::make_unique<trace::JsonlFileSink>(path));
//   trace::counters().enable(peer_count);
//   ... run the scenario ...
//   trace::emit_counter_snapshot();   // export counters into the trace
#pragma once

#include <chrono>
#include <memory>

#include "trace/counters.h"
#include "trace/event.h"
#include "trace/flight_recorder.h"
#include "trace/histogram.h"
#include "trace/sink.h"

namespace groupcast::trace {

/// Routes events to the installed sink; inert while no sink is set.
class Tracer {
 public:
  bool enabled() const { return sink_ != nullptr; }

  /// Installs (or clears, with nullptr) the sink.  Not owned.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void emit(const TraceEvent& event) {
    if (sink_ == nullptr) return;
    sink_->record(event);
  }
  void emit(std::int64_t t_us, EventKind kind, NodeId node = kNoNode,
            NodeId peer = kNoNode, std::uint64_t value = 0) {
    if (sink_ == nullptr) return;
    sink_->record(TraceEvent{t_us, kind, node, peer, value});
  }
  void flush() {
    if (sink_ != nullptr) sink_->flush();
  }

 private:
  TraceSink* sink_ = nullptr;
};

/// The calling thread's tracer — every instrumentation hook reports here.
/// (The per-thread counter registry accessor, trace::counters(), lives in
/// counters.h together with its ScopedCounterRegistry injection guard.)
Tracer& tracer();

/// RAII installer: owns a sink, points the calling thread's tracer at it
/// for the guard's lifetime, flushes and detaches on destruction.
class ScopedSink {
 public:
  explicit ScopedSink(std::unique_ptr<TraceSink> sink)
      : sink_(std::move(sink)) {
    tracer().set_sink(sink_.get());
  }
  ~ScopedSink() {
    tracer().flush();
    tracer().set_sink(nullptr);
  }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

  TraceSink* get() const { return sink_.get(); }

 private:
  std::unique_ptr<TraceSink> sink_;
};

/// Exports the current counter values into the trace as kCounterSnapshot
/// events (one per non-zero node/counter pair, then one totals row with
/// node == kNoNode), stamped at `t_us`.  No-op unless both the tracer and
/// the counter registry are enabled.
void emit_counter_snapshot(std::int64_t t_us = 0);

/// Exports the current histograms into the trace as kHistogramBin events
/// (one per non-zero bin, then count/sum/min/max summary slots), stamped
/// at `t_us`.  No-op unless both the tracer and the histogram registry
/// are enabled.
void emit_histogram_snapshot(std::int64_t t_us = 0);

/// Exports the flight recorder's frames into the trace as kTimelineFrame
/// events — one event per non-zero series per frame, stamped with the
/// frame's own capture time.  No-op unless both the tracer and the flight
/// recorder are enabled.
void emit_timeline();

// -------------------------------------------------------------- timers

/// Instrumented wall-clock sections, one slot per section kind.
enum class TimerId : std::uint8_t {
  kSimEvent = 0,      // one simulator event action
  kAnnounce,          // AdvertisementEngine::announce
  kSubscribe,         // SubscriptionProtocol::subscribe
  kBootstrapJoin,     // GroupCastBootstrap::join
  kMaintenanceEpoch,  // MaintenanceProtocol::run_epoch
  kIpTreeBuild,       // IpMulticastTree construction
  kCount_,
};

inline constexpr std::size_t kTimerIds =
    static_cast<std::size_t>(TimerId::kCount_);

const char* to_string(TimerId id);

struct TimerTotals {
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
};

class TimerRegistry {
 public:
  bool enabled() const { return enabled_; }
  /// Turns timing on and clears previous totals.
  void enable();
  void disable() { enabled_ = false; }

  void add(TimerId id, std::uint64_t ns) {
    auto& slot = totals_[static_cast<std::size_t>(id)];
    slot.ns += ns;
    ++slot.calls;
  }
  const TimerTotals& of(TimerId id) const {
    return totals_[static_cast<std::size_t>(id)];
  }
  void reset();

 private:
  bool enabled_ = false;
  TimerTotals totals_[kTimerIds] = {};
};

/// The calling thread's timer registry.
TimerRegistry& timers();

/// RAII wall-clock timer for one section; accumulates into timers().
/// When timing is disabled the constructor is one branch and the clock is
/// never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerId id) : id_(id), armed_(timers().enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timers().add(
        id_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerId id_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace groupcast::trace
