#include "util/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace groupcast::util {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  GC_REQUIRE(n >= 1);
  GC_REQUIRE(s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against FP round-down
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  GC_REQUIRE(rank >= 1 && rank <= cdf_.size());
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lo;
}

Categorical::Categorical(std::vector<double> weights)
    : weights_(std::move(weights)) {
  GC_REQUIRE(!weights_.empty());
  double total = 0.0;
  for (double w : weights_) {
    GC_REQUIRE_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  GC_REQUIRE_MSG(total > 0.0, "categorical weights must not all be zero");
  cdf_.resize(weights_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] /= total;
    run += weights_[i];
    cdf_[i] = run;
  }
  cdf_.back() = 1.0;
}

std::size_t Categorical::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Categorical::probability(std::size_t index) const {
  GC_REQUIRE(index < weights_.size());
  return weights_[index];
}

}  // namespace groupcast::util
