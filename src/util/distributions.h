// Workload distributions used throughout the evaluation: Zipf capacities
// (Section 3.1 synthetic study), exponential inter-arrival times
// (Section 4.1), and a generic categorical sampler (Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace groupcast::util {

/// Zipf distribution over ranks {1, .., n}: P(k) ∝ k^(-s).
///
/// Sampling is done by inverse transform over the precomputed CDF, O(log n)
/// per draw.  The paper's Section 3.1 study draws peer capacities from a
/// Zipf with parameter 2.0.
class ZipfDistribution {
 public:
  /// @param n number of ranks (>= 1)
  /// @param s skew exponent (> 0)
  ZipfDistribution(std::size_t n, double s);

  /// Draws a rank in {1, .., n}; rank 1 is the most probable.
  std::size_t sample(Rng& rng) const;

  /// Probability of a given rank (1-based).
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

/// Categorical distribution: sample index i with probability weight[i]/Σw.
class Categorical {
 public:
  explicit Categorical(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;
  double probability(std::size_t index) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;       // normalized cumulative weights
  std::vector<double> weights_;   // normalized weights
};

}  // namespace groupcast::util
