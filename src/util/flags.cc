#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/require.h"

namespace groupcast::util {

void Flags::declare(const std::string& name, const std::string& description,
                    const std::string& default_value) {
  GC_REQUIRE_MSG(!name.empty() && name[0] != '-',
                 "declare flags without leading dashes");
  GC_REQUIRE_MSG(!declared_.contains(name), "flag declared twice");
  declared_.emplace(name, Declared{description, default_value, std::nullopt});
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = declared_.find(name);
    if (it == declared_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    if (!value) {
      // --name value form; booleans may omit the value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = *value;
  }
  return true;
}

std::string Flags::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, decl] : declared_) {
    os << "  --" << name;
    if (!decl.default_value.empty()) {
      os << " (default: " << decl.default_value << ")";
    }
    os << "\n      " << decl.description << "\n";
  }
  return os.str();
}

const Flags::Declared& Flags::find(const std::string& name) const {
  const auto it = declared_.find(name);
  GC_REQUIRE_MSG(it != declared_.end(), "flag was never declared");
  return it->second;
}

bool Flags::provided(const std::string& name) const {
  return find(name).value.has_value();
}

std::string Flags::get_string(const std::string& name) const {
  const auto& decl = find(name);
  return decl.value.value_or(decl.default_value);
}

std::int64_t Flags::get_int(const std::string& name) const {
  const auto raw = get_string(name);
  char* end = nullptr;
  const auto v = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    const auto fallback = find(name).default_value;
    return fallback.empty() ? 0 : std::strtoll(fallback.c_str(), nullptr, 10);
  }
  return v;
}

double Flags::get_double(const std::string& name) const {
  const auto raw = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    const auto fallback = find(name).default_value;
    return fallback.empty() ? 0.0 : std::strtod(fallback.c_str(), nullptr);
  }
  return v;
}

bool Flags::get_bool(const std::string& name) const {
  const auto raw = get_string(name);
  return raw == "true" || raw == "1" || raw == "yes" || raw == "on";
}

}  // namespace groupcast::util
