// Minimal command-line flag parsing for the example drivers and benches.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, `--help` text generation, and strict rejection of unknown
// flags (typos should fail loudly in experiment scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace groupcast::util {

class Flags {
 public:
  /// Declares a flag before parsing; `description` feeds help().
  void declare(const std::string& name, const std::string& description,
               const std::string& default_value = "");

  /// Parses argv.  Returns false (and fills error()) on unknown flags,
  /// missing values, or malformed input.  `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  /// Rendered help text (program name + declared flags).
  std::string help(const std::string& program) const;

  // Typed accessors; fall back to the declared default.  A flag must have
  // been declared (throws PreconditionError otherwise); a value that does
  // not parse as the requested type reports the default.
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the flag was explicitly provided on the command line.
  bool provided(const std::string& name) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Declared {
    std::string description;
    std::string default_value;
    std::optional<std::string> value;
  };
  const Declared& find(const std::string& name) const;

  std::map<std::string, Declared> declared_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace groupcast::util
