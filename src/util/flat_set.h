// Open-addressing set of 64-bit keys, built for the node runtime's dedup
// tables (seen payloads / seen queries): insert-heavy, never iterated,
// never erased.  Compared with std::unordered_set<uint64_t> — one heap
// node plus bucket pointer per element, ~40-56 bytes — this costs one
// 8-byte slot per element at <= 7/8 load, which is what makes the
// per-peer memory budget at 100k peers (docs/PERFORMANCE.md, "Sharded
// execution & memory budget").
//
// Determinism: membership is a pure function of the inserted keys, so
// swapping this in for unordered_set changes no observable behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace groupcast::util {

class FlatSet64 {
 public:
  /// Inserts `key`; returns true if it was not already present.
  bool insert(std::uint64_t key) {
    if (key == kEmpty) {
      const bool fresh = !has_empty_key_;
      has_empty_key_ = true;
      return fresh;
    }
    if ((size_ + 1) * 8 > slots_.size() * 7) grow();
    std::uint64_t* slot = find_slot(key);
    if (*slot == key) return false;
    *slot = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (key == kEmpty) return has_empty_key_;
    if (slots_.empty()) return false;
    return *const_cast<FlatSet64*>(this)->find_slot(key) == key;
  }

  std::size_t size() const { return size_ + (has_empty_key_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  /// Retained bytes: the slot array is the whole footprint.
  std::size_t memory_bytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(std::uint64_t);
  }

 private:
  // 0 doubles as the empty-slot marker; a real 0 key is tracked aside.
  static constexpr std::uint64_t kEmpty = 0;

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full avalanche, so sequential payload ids
    // spread across the table instead of clustering one probe run.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Slot holding `key`, or the empty slot where it belongs.  Requires a
  /// non-full table (guaranteed by the load-factor check in insert).
  std::uint64_t* find_slot(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t at = static_cast<std::size_t>(mix(key)) & mask;
    while (slots_[at] != kEmpty && slots_[at] != key) at = (at + 1) & mask;
    return &slots_[at];
  }

  void grow() {
    const std::size_t next = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(next, kEmpty);
    for (const std::uint64_t key : old) {
      if (key != kEmpty) *find_slot(key) = key;
    }
  }

  std::vector<std::uint64_t> slots_;  // power-of-two length
  std::size_t size_ = 0;              // non-zero keys stored
  bool has_empty_key_ = false;
};

}  // namespace groupcast::util
