// Precondition / invariant checking helpers.
//
// The GroupCast libraries use exceptions for recoverable, caller-visible
// errors (bad arguments, protocol violations) and these macros to state
// contracts at API boundaries.  They always fire, including in release
// builds: simulation results that silently violate an invariant are worse
// than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace groupcast {

/// Thrown when a stated precondition is violated by a caller.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace groupcast

/// Check a caller-facing precondition; throws groupcast::PreconditionError.
#define GC_REQUIRE(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::groupcast::detail::throw_precondition(#expr, __FILE__, __LINE__,  \
                                              std::string{});             \
  } while (false)

/// Same as GC_REQUIRE with an explanatory message.
#define GC_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr))                                                          \
      ::groupcast::detail::throw_precondition(#expr, __FILE__, __LINE__,  \
                                              (msg));                     \
  } while (false)

/// Check an internal invariant; throws groupcast::InvariantError.
#define GC_ENSURE(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::groupcast::detail::throw_invariant(#expr, __FILE__, __LINE__,     \
                                           std::string{});                \
  } while (false)

#define GC_ENSURE_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::groupcast::detail::throw_invariant(#expr, __FILE__, __LINE__,     \
                                           (msg));                        \
  } while (false)
