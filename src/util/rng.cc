#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/require.h"

namespace groupcast::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream_id) {
  // First step diffuses the seed, the xor folds the stream id into the
  // diffused state, the second step diffuses the combination — so
  // (1, 0) / (1, 1) / (2, 0) all land far apart.
  std::uint64_t state = seed;
  const std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (stream_id + 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GC_REQUIRE(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GC_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  GC_REQUIRE(mean > 0.0);
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf.
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::weibull(double shape, double scale) {
  GC_REQUIRE(shape > 0.0);
  GC_REQUIRE(scale > 0.0);
  double u = uniform();
  while (u == 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  GC_REQUIRE(k <= n);
  // Floyd's algorithm would avoid the O(n) init but a partial Fisher–Yates
  // is simpler and the candidate lists involved are small.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    using std::swap;
    swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace groupcast::util
