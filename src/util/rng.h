// Deterministic pseudo-random number generation.
//
// All GroupCast simulations are seeded and reproducible.  We implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64 rather than
// relying on std::mt19937_64 solely for speed; the generator satisfies
// std's UniformRandomBitGenerator so it composes with <random> if needed.
#pragma once

#include <cstdint>
#include <vector>

namespace groupcast::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives the seed of an independent generator stream `stream_id` rooted
/// at `seed`: two dependent splitmix64 steps, so adjacent seeds and
/// adjacent stream ids — the experiment ladder seed, seed+1, ... is both —
/// land in uncorrelated states.  Deterministic: a (seed, stream) pair
/// always names the same stream, independent of which thread runs it or
/// how many other streams exist.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream_id);

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Weibull variate with the given shape (> 0) and scale (> 0), by
  /// inverse transform.  shape == 1 degenerates to Exponential(scale);
  /// shape < 1 produces the heavy-tailed session lengths measured for
  /// real P2P peers.
  double weibull(double shape, double scale);

  /// Standard normal variate (Box–Muller, no caching).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Spawns an independently-seeded child generator (for sub-experiments).
  Rng split();

  /// Generator for stream `stream_id` of `seed` (see stream_seed).
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream_id) {
    return Rng(stream_seed(seed, stream_id));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace groupcast::util
