#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace groupcast::util {

void Summary::add(double x) {
  values_.push_back(x);
  sum_ += x;
}

double Summary::mean() const {
  GC_REQUIRE(!values_.empty());
  return sum_ / static_cast<double>(values_.size());
}

double Summary::min() const {
  GC_REQUIRE(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  GC_REQUIRE(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::percentile(double p) const {
  GC_REQUIRE(!values_.empty());
  GC_REQUIRE(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void FrequencyCount::add(std::size_t value, std::size_t times) {
  counts_[value] += times;
  total_ += times;
}

std::vector<std::pair<std::size_t, std::size_t>> FrequencyCount::items()
    const {
  return {counts_.begin(), counts_.end()};
}

double FrequencyCount::log_log_slope() const {
  // Ordinary least squares on (log10 value, log10 count), value > 0.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& [value, count] : counts_) {
    if (value == 0) continue;
    const double x = std::log10(static_cast<double>(value));
    const double y = std::log10(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  GC_REQUIRE(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace groupcast::util
