// Small statistics toolkit used by the metrics module and the benchmark
// harnesses: running summaries, percentiles, and logarithmic binning for
// the degree-distribution figures.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace groupcast::util {

/// Accumulates a stream of doubles; O(1) add, O(n log n) percentile.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// p in [0,1]; nearest-rank percentile.  Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
};

/// Exact frequency count of integer observations (e.g. node degrees).
class FrequencyCount {
 public:
  void add(std::size_t value, std::size_t times = 1);

  /// (value, count) pairs in ascending value order.
  std::vector<std::pair<std::size_t, std::size_t>> items() const;
  std::size_t total() const { return total_; }
  std::size_t distinct() const { return counts_.size(); }

  /// Least-squares slope of log10(count) vs log10(value), ignoring value 0.
  /// This is the visual slope of the paper's log-log degree plots
  /// (Figures 7 and 8); a power law shows up as a straight negative slope.
  double log_log_slope() const;

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace groupcast::util
