// Parameterized invariant sweeps over the announcement engine: forwarding
// fraction, TTL, and scheme interactions, plus join-protocol accounting.
#include <gtest/gtest.h>

#include <tuple>

#include "core/advertisement.h"
#include "overlay/bootstrap.h"
#include "overlay/host_cache.h"
#include "test_helpers.h"

namespace groupcast::core {
namespace {

using overlay::PeerId;

/// One joined overlay shared by a test body (rebuilt per test for
/// isolation; 100 peers keeps each instantiation fast).
struct SweepFixture {
  testing::SmallWorld world;
  overlay::OverlayGraph graph;
  sim::Simulator simulator;

  explicit SweepFixture(std::uint64_t seed)
      : world(100, seed), graph(100) {
    overlay::HostCacheServer cache(*world.population,
                                   overlay::HostCacheOptions{}, world.rng);
    overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                          overlay::BootstrapOptions{},
                                          world.rng);
    for (PeerId p = 0; p < 100; ++p) bootstrap.join(p);
  }

  AdvertisementState announce(AnnouncementScheme scheme, double fraction,
                              std::size_t ttl) {
    AdvertisementOptions options;
    options.scheme = scheme;
    options.forward_fraction = fraction;
    options.ttl = ttl;
    AdvertisementEngine engine(simulator, *world.population, graph, options,
                               world.rng);
    return engine.announce(0);
  }
};

class FractionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FractionSweep, ReceivingRateGrowsWithFraction) {
  SweepFixture f(GetParam());
  double previous = -1.0;
  for (const double fraction : {0.15, 0.35, 0.6, 1.0}) {
    const auto advert =
        f.announce(AnnouncementScheme::kSsaUtility, fraction, 8);
    // Monotone up to sampling noise: allow a small dip.
    EXPECT_GT(advert.receiving_rate(), previous - 0.05)
        << "fraction " << fraction;
    previous = advert.receiving_rate();
  }
  // Fraction 1.0 degenerates to NSSA-like full forwarding.
  EXPECT_GT(previous, 0.95);
}

TEST_P(FractionSweep, MessagesGrowWithFraction) {
  SweepFixture f(GetParam());
  std::size_t previous = 0;
  for (const double fraction : {0.15, 0.35, 0.6, 1.0}) {
    const auto advert =
        f.announce(AnnouncementScheme::kSsaUtility, fraction, 8);
    EXPECT_GE(advert.messages + advert.messages / 4 + 8, previous)
        << "fraction " << fraction;
    previous = advert.messages;
  }
}

TEST_P(FractionSweep, ReceivingRateGrowsWithTtl) {
  SweepFixture f(GetParam());
  double previous = -1.0;
  for (const std::size_t ttl : {1u, 2u, 4u, 8u}) {
    const auto advert =
        f.announce(AnnouncementScheme::kSsaUtility, 0.35, ttl);
    EXPECT_GE(advert.receiving_rate(), previous - 1e-12) << "ttl " << ttl;
    previous = advert.receiving_rate();
  }
}

TEST_P(FractionSweep, SchemesAgreeAtFullFraction) {
  // At fraction 1.0 utility and random SSA both forward to everyone, so
  // all three schemes must reach identical peer sets.
  SweepFixture f(GetParam());
  const auto nssa = f.announce(AnnouncementScheme::kNssa, 1.0, 8);
  const auto ssa_u = f.announce(AnnouncementScheme::kSsaUtility, 1.0, 8);
  const auto ssa_r = f.announce(AnnouncementScheme::kSsaRandom, 1.0, 8);
  for (PeerId p = 0; p < 100; ++p) {
    EXPECT_EQ(nssa.received(p), ssa_u.received(p)) << p;
    EXPECT_EQ(nssa.received(p), ssa_r.received(p)) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionSweep,
                         ::testing::Values(21u, 22u, 23u));

// ------------------------------------------------------- join accounting

class JoinAccounting : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinAccounting, StatsInternallyConsistent) {
  testing::SmallWorld world(120, GetParam());
  overlay::OverlayGraph graph(120);
  overlay::HostCacheServer cache(*world.population,
                                 overlay::HostCacheOptions{}, world.rng);
  overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                        overlay::BootstrapOptions{},
                                        world.rng);
  for (PeerId p = 0; p < 120; ++p) {
    const auto stats = bootstrap.join(p);
    // Probes: 2 messages (request + response) per bootstrap candidate,
    // |B| in [5, 8] once the cache has enough entries.
    EXPECT_EQ(stats.probe_messages % 2, 0u);
    if (p >= 9) {
      EXPECT_GE(stats.probe_messages, 2u * 5u);
      EXPECT_LE(stats.probe_messages, 2u * 8u);
    }
    // The utility selection never requests more back links than the
    // out-degree target, and acceptances never exceed requests.
    const auto target =
        bootstrap.target_degree(world.population->info(p).capacity);
    EXPECT_LE(stats.out_links_created, target);
    EXPECT_LE(stats.back_link_requests, target);
    EXPECT_LE(stats.back_links_accepted, stats.back_link_requests);
    // Candidates include at least the probed peers themselves.
    if (stats.probe_messages > 0) {
      EXPECT_GE(stats.candidates_seen, stats.probe_messages / 2);
    }
  }
}

TEST_P(JoinAccounting, EveryLateJoinerIsConnected) {
  testing::SmallWorld world(120, GetParam() + 50);
  overlay::OverlayGraph graph(120);
  overlay::HostCacheServer cache(*world.population,
                                 overlay::HostCacheOptions{}, world.rng);
  overlay::GroupCastBootstrap bootstrap(*world.population, graph, cache,
                                        overlay::BootstrapOptions{},
                                        world.rng);
  for (PeerId p = 0; p < 120; ++p) {
    bootstrap.join(p);
    if (p >= 5) {
      EXPECT_GT(graph.degree(p), 0u) << "joiner " << p << " isolated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAccounting,
                         ::testing::Values(31u, 32u, 33u, 34u));

}  // namespace
}  // namespace groupcast::core
